//! End-to-end tests for the serving subsystem: the `stir repl` stdin
//! session and the `stird` TCP server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn setup(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("stir-serve-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(
        dir.join("tc.dl"),
        ".decl edge(x: number, y: number)\n.input edge\n\
         .decl path(x: number, y: number)\n.output path\n\
         path(x, y) :- edge(x, y).\n\
         path(x, z) :- path(x, y), edge(y, z).\n",
    )
    .expect("program written");
    std::fs::write(dir.join("edge.facts"), "1\t2\n2\t3\n").expect("facts written");
    dir
}

#[test]
fn repl_session_script() {
    let dir = setup("repl");
    let mut child = Command::new(env!("CARGO_BIN_EXE_stir"))
        .arg("repl")
        .arg(dir.join("tc.dl"))
        .arg("-F")
        .arg(&dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(b"?path(1, _)\n+edge(3, 4).\n?path(1, _)\n?path(_, 4)\n.stats\n.quit\n")
        .expect("script written");
    let out = child.wait_with_output().expect("waits");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    // Initial fixpoint: path(1,2) path(1,3).
    assert_eq!(lines[0], "1\t2");
    assert_eq!(lines[1], "1\t3");
    assert_eq!(lines[2], "ok 2 rows");
    // After the incremental insert the chain extends to 4.
    assert_eq!(lines[3], "ok 1 inserted");
    assert!(lines.contains(&"1\t4"), "{stdout}");
    assert!(lines.contains(&"ok 3 rows"), "{stdout}");
    // path(_, 4) = (1,4) (2,4) (3,4); (1,4) also shows in the second
    // ?path(1, _) response.
    let all_to_4 = lines.iter().filter(|l| l.ends_with("\t4")).count();
    assert_eq!(all_to_4, 4, "{stdout}");
    assert!(
        lines.contains(&"2\t4") && lines.contains(&"3\t4"),
        "{stdout}"
    );
    let stats = lines
        .iter()
        .find(|l| l.starts_with("requests="))
        .expect("stats line");
    assert!(stats.contains("update_tuples=1"), "{stats}");
    assert!(stats.contains("full_fallbacks=0"), "{stats}");
    assert_eq!(*lines.last().expect("nonempty"), "bye");
}

#[test]
fn repl_profile_json_covers_the_session() {
    let dir = setup("repl-profile");
    let json_path = dir.join("session.json");
    let mut child = Command::new(env!("CARGO_BIN_EXE_stir"))
        .arg("repl")
        .arg(dir.join("tc.dl"))
        .arg("-F")
        .arg(&dir)
        .arg("--profile-json")
        .arg(&json_path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(b"+edge(3, 4).\n?path(1, _)\n.quit\n")
        .expect("script written");
    let out = child.wait_with_output().expect("waits");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&json_path).expect("json written");
    let json = stir::Json::parse(&text).expect("valid JSON");
    let program = json
        .get("root")
        .and_then(|r| r.get("program"))
        .expect("root.program");
    // Serving spans sit alongside the batch phases.
    let phase = program.get("phase").expect("phase section");
    for name in ["evaluate", "serve:update", "serve:query"] {
        assert!(
            phase.get(name).and_then(stir::Json::as_u64).is_some(),
            "phase {name} present"
        );
    }
    // Serving counters are flushed into the metrics registry.
    let counter = program.get("counter").expect("counter section");
    for (name, expected) in [
        ("server.requests", 2),
        ("server.update_tuples", 1),
        ("server.query_rows", 3),
        ("server.full_fallbacks", 0),
    ] {
        assert_eq!(
            counter.get(name).and_then(stir::Json::as_u64),
            Some(expected),
            "counter {name}"
        );
    }
    assert!(
        counter
            .get("server.strata_rerun")
            .and_then(stir::Json::as_u64)
            .unwrap_or(0)
            >= 1,
        "incremental path taken"
    );
}

struct Server {
    child: Child,
    port: u16,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Server {
    fn start(dir: &std::path::Path, extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_stird"))
            .arg(dir.join("tc.dl"))
            .arg("-F")
            .arg(dir)
            .arg("--port")
            .arg("0")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawns");
        // The first stdout line announces the chosen port.
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("banner");
        let addr = banner
            .trim()
            .strip_prefix("stird: listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"));
        let port = addr
            .rsplit(':')
            .next()
            .and_then(|p| p.parse().ok())
            .expect("port in banner");
        Server {
            child,
            port,
            stdout,
        }
    }

    /// Starts with `--admin-addr 127.0.0.1:0` and returns the chosen
    /// admin port alongside the server (announced on stdout right
    /// after the protocol banner).
    fn start_with_admin(dir: &std::path::Path, extra: &[&str]) -> (Server, u16) {
        let mut args = vec!["--admin-addr", "127.0.0.1:0"];
        args.extend_from_slice(extra);
        let mut server = Server::start(dir, &args);
        let mut line = String::new();
        server.stdout.read_line(&mut line).expect("admin banner");
        let addr = line
            .trim()
            .strip_prefix("stird: admin listening on ")
            .unwrap_or_else(|| panic!("unexpected admin banner: {line:?}"));
        let admin_port = addr
            .rsplit(':')
            .next()
            .and_then(|p| p.parse().ok())
            .expect("port in admin banner");
        (server, admin_port)
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(("127.0.0.1", self.port)).expect("connects")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Sends one request line and reads the response through its
/// `ok`/`err` terminator (queries stream rows first).
fn request(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Vec<String> {
    stream.write_all(line.as_bytes()).expect("request written");
    stream.write_all(b"\n").expect("newline written");
    stream.flush().expect("flushes");
    let mut lines = Vec::new();
    loop {
        let mut response = String::new();
        reader.read_line(&mut response).expect("response line");
        let response = response.trim_end().to_string();
        let done = response.starts_with("ok ")
            || response.starts_with("err ")
            || response == "bye"
            || response.starts_with("requests=");
        lines.push(response);
        if done {
            return lines;
        }
    }
}

#[test]
fn stird_serves_updates_and_concurrent_queries() {
    let dir = setup("stird");
    let server = Server::start(&dir, &[]);

    // Writer connection: extend the graph.
    let mut writer = server.connect();
    let mut writer_rd = BufReader::new(writer.try_clone().expect("clone"));
    let resp = request(&mut writer, &mut writer_rd, "+edge(3, 4).");
    assert_eq!(resp, ["ok 1 inserted"]);

    // Two concurrent query clients, each hammering the read path.
    let results: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let server = &server;
                s.spawn(move || {
                    let mut conn = server.connect();
                    let mut rd = BufReader::new(conn.try_clone().expect("clone"));
                    let mut last = Vec::new();
                    for _ in 0..50 {
                        last = request(&mut conn, &mut rd, "?path(1, _)");
                    }
                    request(&mut conn, &mut rd, ".quit");
                    last
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("joins"))
            .collect()
    });
    for resp in &results {
        // path(1,2) (1,3) (1,4) after the update.
        assert_eq!(
            resp.last().map(String::as_str),
            Some("ok 3 rows"),
            "{resp:?}"
        );
        assert_eq!(resp.len(), 4);
    }

    // A second write interleaved after reads, then stop the server.
    let resp = request(&mut writer, &mut writer_rd, "+edge(4, 5).");
    assert_eq!(resp, ["ok 1 inserted"]);
    let resp = request(&mut writer, &mut writer_rd, "?path(1, _)");
    assert_eq!(resp.last().map(String::as_str), Some("ok 4 rows"));
    let resp = request(&mut writer, &mut writer_rd, ".stop");
    assert_eq!(resp, ["bye"]);

    let mut server = server;
    let status = server.child.wait().expect("exits");
    assert!(status.success(), "clean shutdown after .stop");
}

#[test]
fn stird_survives_abrupt_client_disconnect() {
    let dir = setup("stird-disconnect");
    let server = Server::start(&dir, &[]);

    // A client that queries, never reads the response, and vanishes:
    // dropping the socket with unread data in its receive buffer makes
    // the kernel send RST, so the server's next read fails with a
    // connection error rather than clean EOF.
    {
        let mut rude = server.connect();
        rude.write_all(b"?path(_, _)\n").expect("request written");
        rude.flush().expect("flushes");
        // Let the server write the response rows before the drop.
        std::thread::sleep(std::time::Duration::from_millis(300));
    }
    // And one that hangs up mid-line, without the newline terminator.
    {
        let mut half = server.connect();
        half.write_all(b"+edge(7, ").expect("half request written");
        half.flush().expect("flushes");
    }
    std::thread::sleep(std::time::Duration::from_millis(200));

    // The server must still be accepting and serving.
    let mut conn = server.connect();
    let mut rd = BufReader::new(conn.try_clone().expect("clone"));
    let resp = request(&mut conn, &mut rd, "?path(1, _)");
    assert_eq!(
        resp.last().map(String::as_str),
        Some("ok 2 rows"),
        "{resp:?}"
    );
    assert_eq!(request(&mut conn, &mut rd, ".stop"), ["bye"]);

    let mut server = server;
    let status = server.child.wait().expect("exits");
    assert!(status.success(), "clean shutdown after rude clients");
    let mut stderr = String::new();
    server
        .child
        .stderr
        .take()
        .expect("stderr")
        .read_to_string(&mut stderr)
        .expect("reads");
    assert!(
        stderr.contains("dropping connection from"),
        "reset is logged, not swallowed: {stderr}"
    );
}

#[test]
fn stird_writes_profile_json_on_stop() {
    let dir = setup("stird-profile");
    let json_path = dir.join("stird.json");
    let server = Server::start(&dir, &["--profile-json", json_path.to_str().expect("utf8")]);

    let mut conn = server.connect();
    let mut rd = BufReader::new(conn.try_clone().expect("clone"));
    assert_eq!(
        request(&mut conn, &mut rd, "+edge(3, 4)."),
        ["ok 1 inserted"]
    );
    let resp = request(&mut conn, &mut rd, "?path(_, _)");
    assert_eq!(resp.last().map(String::as_str), Some("ok 6 rows"));
    assert_eq!(request(&mut conn, &mut rd, ".stop"), ["bye"]);

    let mut server = server;
    let status = server.child.wait().expect("exits");
    assert!(status.success());
    let mut stderr = String::new();
    server
        .child
        .stderr
        .take()
        .expect("stderr")
        .read_to_string(&mut stderr)
        .expect("reads");
    // `.stop` is session control, not an engine request: 2 requests.
    assert!(stderr.contains("served 2 requests"), "{stderr}");

    let text = std::fs::read_to_string(&json_path).expect("json written");
    let json = stir::Json::parse(&text).expect("valid JSON");
    let counter = json
        .get("root")
        .and_then(|r| r.get("program"))
        .and_then(|p| p.get("counter"))
        .expect("counter section");
    assert_eq!(
        counter.get("server.requests").and_then(stir::Json::as_u64),
        Some(2)
    );
    assert_eq!(
        counter
            .get("server.update_tuples")
            .and_then(stir::Json::as_u64),
        Some(1)
    );
    assert_eq!(
        counter
            .get("server.query_rows")
            .and_then(stir::Json::as_u64),
        Some(6)
    );
}

#[test]
fn stird_rejects_oversized_and_non_utf8_lines() {
    let dir = setup("stird-hostile");
    let server = Server::start(&dir, &["--max-line-bytes", "128"]);

    let mut conn = server.connect();
    let mut rd = BufReader::new(conn.try_clone().expect("clone"));

    // An oversized line gets a bounded error, not an unbounded buffer.
    let mut big = vec![b'z'; 4096];
    big.push(b'\n');
    conn.write_all(&big).expect("big line written");
    conn.flush().expect("flushes");
    let mut response = String::new();
    rd.read_line(&mut response).expect("response");
    assert_eq!(response.trim_end(), "err request line exceeds 128 bytes");

    // Non-UTF-8 bytes get a parse error, not a dropped connection.
    conn.write_all(b"+edge(\xff\xfe, 2).\n").expect("written");
    conn.flush().expect("flushes");
    response.clear();
    rd.read_line(&mut response).expect("response");
    assert_eq!(response.trim_end(), "err request is not valid UTF-8");

    // The session (and the engine) still works afterwards.
    let resp = request(&mut conn, &mut rd, "+edge(3, 4).");
    assert_eq!(resp, ["ok 1 inserted"]);
    let resp = request(&mut conn, &mut rd, "?path(1, _)");
    assert_eq!(resp.last().map(String::as_str), Some("ok 3 rows"));
}

#[test]
fn stird_enforces_max_conns_with_a_clean_busy_reply() {
    let dir = setup("stird-busy");
    let server = Server::start(&dir, &["--max-conns", "1"]);

    // First connection occupies the only slot.
    let mut held = server.connect();
    let mut held_rd = BufReader::new(held.try_clone().expect("clone"));
    let resp = request(&mut held, &mut held_rd, "?path(1, _)");
    assert_eq!(resp.last().map(String::as_str), Some("ok 2 rows"));

    // Subsequent connections are refused with a protocol-level reply.
    let over = server.connect();
    let mut over_rd = BufReader::new(over);
    let mut response = String::new();
    over_rd.read_line(&mut response).expect("busy reply");
    assert_eq!(response.trim_end(), "err server busy retry-after 100");
    // ...and then closed.
    response.clear();
    assert_eq!(over_rd.read_line(&mut response).expect("eof"), 0);

    // Releasing the held slot frees capacity for the next client.
    assert_eq!(request(&mut held, &mut held_rd, ".quit"), ["bye"]);
    // The server decrements the counter after the session unwinds;
    // poll briefly instead of racing it.
    let mut served = false;
    for _ in 0..50 {
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut conn = server.connect();
        let mut rd = BufReader::new(conn.try_clone().expect("clone"));
        let mut line = String::new();
        conn.write_all(b"?path(1, _)\n").expect("query written");
        rd.read_line(&mut line).expect("line");
        if line.trim_end().starts_with("err server busy") {
            continue;
        }
        while !line.starts_with("ok ") && !line.starts_with("err ") {
            line.clear();
            rd.read_line(&mut line).expect("line");
        }
        assert_eq!(line.trim_end(), "ok 2 rows");
        served = true;
        break;
    }
    assert!(served, "slot never freed after .quit");
}

#[test]
fn stird_sigterm_drains_flushes_and_snapshots() {
    let dir = setup("stird-sigterm");
    let data_dir = dir.join("data");
    let server = Server::start(&dir, &["--data-dir", data_dir.to_str().expect("utf8")]);

    let mut conn = server.connect();
    let mut rd = BufReader::new(conn.try_clone().expect("clone"));
    assert_eq!(
        request(&mut conn, &mut rd, "+edge(3, 4)."),
        ["ok 1 inserted"]
    );

    // SIGTERM instead of `.stop`: the signal handler raises the stop
    // flag, the accept loop and the idle connection notice it, and the
    // shutdown path writes a final snapshot.
    let mut server = server;
    let pid = server.child.id().to_string();
    let killed = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs");
    assert!(killed.success());
    let status = server.child.wait().expect("exits");
    assert!(status.success(), "graceful exit on SIGTERM");

    let mut stderr = String::new();
    server
        .child
        .stderr
        .take()
        .expect("stderr")
        .read_to_string(&mut stderr)
        .expect("reads");
    assert!(
        stderr.contains("shutdown snapshot:"),
        "snapshot written at SIGTERM: {stderr}"
    );
    assert!(
        data_dir.join("snapshot.bin").exists(),
        "snapshot file exists"
    );

    // Restarting over the same data dir recovers the insert.
    let server = Server::start(&dir, &["--data-dir", data_dir.to_str().expect("utf8")]);
    let mut conn = server.connect();
    let mut rd = BufReader::new(conn.try_clone().expect("clone"));
    let resp = request(&mut conn, &mut rd, "?path(1, _)");
    assert_eq!(
        resp.last().map(String::as_str),
        Some("ok 3 rows"),
        "acked insert recovered after SIGTERM restart: {resp:?}"
    );
}

#[test]
fn stird_request_timeout_commits_updates_and_aborts_queries() {
    let dir = setup("stird-timeout");
    // An absurdly small deadline: every request exceeds it.
    let server = Server::start(&dir, &["--request-timeout", "0.000001"]);

    let mut conn = server.connect();
    let mut rd = BufReader::new(conn.try_clone().expect("clone"));
    // Updates run to completion (aborting mid-fixpoint would leave
    // derived strata stale) but report the blown deadline.
    let resp = request(&mut conn, &mut rd, "+edge(3, 4).");
    assert_eq!(resp, ["err deadline exceeded (update committed)"]);
    // Queries abort cleanly.
    let resp = request(&mut conn, &mut rd, "?path(_, _)");
    assert_eq!(resp, ["err evaluation error: deadline exceeded"]);

    // `.stats` is session control (no deadline): it shows the update
    // really committed despite the blown deadline.
    let resp = request(&mut conn, &mut rd, ".stats");
    let stats = resp.last().expect("stats line");
    assert!(stats.contains("update_tuples=1"), "{stats}");
}

/// Sends one HTTP GET to the admin endpoint and returns (status, body).
fn http_get(port: u16, path: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(("127.0.0.1", port)).expect("admin connects");
    write!(
        conn,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("request written");
    conn.flush().expect("flushes");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("admin response");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Finds `series value` in a Prometheus exposition and parses the value.
fn metric_value(body: &str, series: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(series).and_then(|r| r.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("series {series} missing"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("series {series} not numeric"))
}

#[test]
fn stird_metrics_endpoint_agrees_with_stats_json() {
    let dir = setup("stird-metrics");
    let (server, admin_port) = Server::start_with_admin(&dir, &[]);

    let mut conn = server.connect();
    let mut rd = BufReader::new(conn.try_clone().expect("clone"));
    assert_eq!(
        request(&mut conn, &mut rd, "+edge(3, 4)."),
        ["ok 1 inserted"]
    );
    for _ in 0..2 {
        let resp = request(&mut conn, &mut rd, "?path(1, _)");
        assert_eq!(resp.last().map(String::as_str), Some("ok 3 rows"));
    }

    // `.stats json` is the line-protocol view of the same registry:
    // one JSON line, no ok/err terminator (like `.stats` plain).
    conn.write_all(b".stats json\n").expect("stats written");
    conn.flush().expect("flushes");
    let mut stats_line = String::new();
    rd.read_line(&mut stats_line).expect("stats line");
    assert!(stats_line.starts_with('{'), "{stats_line}");
    let stats = stir::Json::parse(&stats_line).expect("valid stats JSON");
    let req_in_json = stats
        .get("server")
        .and_then(|s| s.get("requests"))
        .and_then(stir::Json::as_u64)
        .expect("server.requests");
    assert_eq!(req_in_json, 3, "update + two queries");
    let query_count_json = stats
        .get("histograms")
        .and_then(|h| h.get("serve_query"))
        .and_then(|q| q.get("count"))
        .and_then(stir::Json::as_u64)
        .expect("histograms.serve_query.count");
    assert_eq!(query_count_json, 2);

    // The scrape endpoint serves the same counts in exposition format.
    let (status, body) = http_get(admin_port, "/metrics");
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("# TYPE stir_serve_query_latency_ns summary"),
        "{body}"
    );
    assert_eq!(
        metric_value(&body, "stir_server_requests_total"),
        req_in_json
    );
    assert_eq!(metric_value(&body, "stir_server_update_tuples_total"), 1);
    assert_eq!(metric_value(&body, "stir_server_query_rows_total"), 6);
    assert_eq!(
        metric_value(&body, "stir_serve_query_latency_ns_count"),
        query_count_json
    );
    assert_eq!(metric_value(&body, "stir_serve_update_latency_ns_count"), 1);
    assert_eq!(
        metric_value(&body, "stir_relation_tuples{relation=\"edge\"}"),
        3
    );

    // Quantiles are monotone and bounded by the recorded maximum.
    let p50 = metric_value(&body, "stir_serve_query_latency_ns{quantile=\"0.5\"}");
    let p90 = metric_value(&body, "stir_serve_query_latency_ns{quantile=\"0.9\"}");
    let p99 = metric_value(&body, "stir_serve_query_latency_ns{quantile=\"0.99\"}");
    let p999 = metric_value(&body, "stir_serve_query_latency_ns{quantile=\"0.999\"}");
    let max = metric_value(&body, "stir_serve_query_latency_ns_max");
    assert!(p50 > 0, "a real query takes nonzero time");
    assert!(p50 <= p90 && p90 <= p99 && p99 <= p999, "{body}");
    assert!(p999 <= max, "quantiles clamp to the recorded max: {body}");

    let (status, body) = http_get(admin_port, "/healthz");
    assert_eq!(status, 200, "{body}");
    let (status, _) = http_get(admin_port, "/nonsense");
    assert_eq!(status, 404);
}

#[test]
fn stird_readyz_flips_to_503_when_draining() {
    let dir = setup("stird-readyz");
    let (server, admin_port) = Server::start_with_admin(&dir, &[]);

    // Serving: ready.
    let (status, body) = http_get(admin_port, "/readyz");
    assert_eq!(status, 200, "{body}");

    // Pre-connect the probe so it is in the admin accept queue before
    // the drain begins; the admin loop serves queued connections while
    // draining, so this GET deterministically sees the 503.
    let mut probe = TcpStream::connect(("127.0.0.1", admin_port)).expect("probe connects");
    let mut conn = server.connect();
    let mut rd = BufReader::new(conn.try_clone().expect("clone"));
    assert_eq!(request(&mut conn, &mut rd, ".stop"), ["bye"]);
    // `.stop` flips readiness before raising the stop flag; the tiny
    // window between the `bye` write and the flip is closed by waiting.
    std::thread::sleep(std::time::Duration::from_millis(100));
    write!(
        probe,
        "GET /readyz HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("probe written");
    probe.flush().expect("flushes");
    let mut raw = String::new();
    probe.read_to_string(&mut raw).expect("probe response");
    assert!(
        raw.starts_with("HTTP/1.1 503"),
        "draining server is not ready: {raw:?}"
    );

    let mut server = server;
    let status = server.child.wait().expect("exits");
    assert!(status.success(), "clean shutdown after .stop");
}

#[test]
fn stird_logs_slow_requests_over_the_threshold() {
    let dir = setup("stird-slow");
    // Threshold zero: every engine request is "slow".
    let server = Server::start(&dir, &["--slow-query-ms", "0"]);

    let mut conn = server.connect();
    let mut rd = BufReader::new(conn.try_clone().expect("clone"));
    assert_eq!(
        request(&mut conn, &mut rd, "+edge(3, 4)."),
        ["ok 1 inserted"]
    );
    let resp = request(&mut conn, &mut rd, "?path(1, _)");
    assert_eq!(resp.last().map(String::as_str), Some("ok 3 rows"));
    assert_eq!(request(&mut conn, &mut rd, ".stop"), ["bye"]);

    let mut server = server;
    let status = server.child.wait().expect("exits");
    assert!(status.success());
    let mut stderr = String::new();
    server
        .child
        .stderr
        .take()
        .expect("stderr")
        .read_to_string(&mut stderr)
        .expect("reads");
    assert!(
        stderr.contains("slow request id=1") && stderr.contains("kind=update"),
        "update logged as slow: {stderr}"
    );
    assert!(
        stderr.contains("slow request id=2") && stderr.contains("kind=query"),
        "query logged as slow: {stderr}"
    );
    assert!(
        stderr.contains("line=\"?path(1, _)\""),
        "offending line quoted: {stderr}"
    );
}

#[test]
fn stird_without_admin_flags_emits_no_new_output() {
    let dir = setup("stird-quiet");
    let server = Server::start(&dir, &[]);

    let mut conn = server.connect();
    let mut rd = BufReader::new(conn.try_clone().expect("clone"));
    assert_eq!(
        request(&mut conn, &mut rd, "+edge(3, 4)."),
        ["ok 1 inserted"]
    );
    let resp = request(&mut conn, &mut rd, "?path(1, _)");
    assert_eq!(resp.last().map(String::as_str), Some("ok 3 rows"));
    assert_eq!(request(&mut conn, &mut rd, ".stop"), ["bye"]);

    let mut server = server;
    let status = server.child.wait().expect("exits");
    assert!(status.success());

    // Stdout holds nothing past the banner, and stderr holds exactly
    // the historical summary line: observability is silent until a
    // flag asks for it.
    let mut rest = String::new();
    server
        .stdout
        .read_to_string(&mut rest)
        .expect("stdout drained");
    assert_eq!(rest, "", "no stdout beyond the banner");
    let mut stderr = String::new();
    server
        .child
        .stderr
        .take()
        .expect("stderr")
        .read_to_string(&mut stderr)
        .expect("reads");
    let lines: Vec<&str> = stderr.lines().collect();
    assert_eq!(lines.len(), 1, "one summary line only: {stderr}");
    assert!(lines[0].contains("served 2 requests"), "{stderr}");
}
