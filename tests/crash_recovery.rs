//! Crash-recovery differential tests for the durable serving stack.
//!
//! Each scenario starts `stird` with a data directory and a
//! `STIR_FAULT` crash injection, feeds it insert batches until the
//! injected fault kills the process, restarts it fault-free, and
//! checks the recovered database against an in-process oracle: a
//! from-scratch evaluation over exactly the acknowledged inserts.
//!
//! The invariant under test is the WAL contract: **acknowledged ⇒
//! recovered**. An insert that was in flight when the process died may
//! or may not survive (it is allowed to have reached the WAL before
//! the crash), so the recovered set must sit between `oracle(acked)`
//! and `oracle(acked ∪ in-flight)`.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use stir::{Engine, InputData, InterpreterConfig, Value};

const PROGRAM: &str = "\
.decl edge(x: number, y: number)\n.input edge\n\
.decl path(x: number, y: number)\n.output path\n\
path(x, y) :- edge(x, y).\n\
path(x, z) :- path(x, y), edge(y, z).\n";

const BASE_EDGES: &[[i64; 2]] = &[[1, 2], [2, 3]];

const MODES: &[&str] = &["sti", "dynamic", "unopt", "legacy"];

fn setup(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("stir-crash-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(dir.join("tc.dl"), PROGRAM).expect("program written");
    let facts: String = BASE_EDGES
        .iter()
        .map(|[x, y]| format!("{x}\t{y}\n"))
        .collect();
    std::fs::write(dir.join("edge.facts"), facts).expect("facts written");
    dir
}

struct Server {
    child: Child,
    port: u16,
}

impl Server {
    fn start(dir: &Path, mode: &str, fault: Option<&str>, extra: &[&str]) -> Server {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_stird"));
        cmd.arg(dir.join("tc.dl"))
            .arg("-F")
            .arg(dir)
            .arg("--mode")
            .arg(mode)
            .arg("--data-dir")
            .arg(dir.join("data"))
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .env_remove("STIR_FAULT");
        if let Some(spec) = fault {
            cmd.env("STIR_FAULT", spec);
        }
        let mut child = cmd.spawn().expect("spawns");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("banner");
        let addr = banner
            .trim()
            .strip_prefix("stird: listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"));
        let port = addr
            .rsplit(':')
            .next()
            .and_then(|p| p.parse().ok())
            .expect("port in banner");
        Server { child, port }
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(("127.0.0.1", self.port)).expect("connects")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Feeds `+edge(x, y).` batches one by one until `count` are
/// acknowledged or the connection dies mid-protocol (the injected
/// crash). Returns `(acked, in_flight)`: the edges the server said
/// `ok` to, and the one edge (if any) whose ack never arrived.
fn insert_until_crash(server: &Server, edges: &[[i64; 2]]) -> (Vec<[i64; 2]>, Option<[i64; 2]>) {
    let mut conn = server.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut acked = Vec::new();
    for &[x, y] in edges {
        if conn
            .write_all(format!("+edge({x}, {y}).\n").as_bytes())
            .is_err()
        {
            return (acked, Some([x, y]));
        }
        let _ = conn.flush();
        let mut response = String::new();
        match reader.read_line(&mut response) {
            Ok(n) if n > 0 && response.starts_with("ok ") => acked.push([x, y]),
            // Dead connection, EOF, or an err reply: the batch did not
            // commit from the client's point of view.
            _ => return (acked, Some([x, y])),
        }
    }
    (acked, None)
}

/// The retraction dual of [`insert_until_crash`]: feeds `-edge(x, y).`
/// lines one by one until all are acknowledged or the connection dies.
fn retract_until_crash(server: &Server, edges: &[[i64; 2]]) -> (Vec<[i64; 2]>, Option<[i64; 2]>) {
    let mut conn = server.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut acked = Vec::new();
    for &[x, y] in edges {
        if conn
            .write_all(format!("-edge({x}, {y}).\n").as_bytes())
            .is_err()
        {
            return (acked, Some([x, y]));
        }
        let _ = conn.flush();
        let mut response = String::new();
        match reader.read_line(&mut response) {
            Ok(n) if n > 0 && response.starts_with("ok ") => acked.push([x, y]),
            _ => return (acked, Some([x, y])),
        }
    }
    (acked, None)
}

/// Queries `?path(_, _)` over a fresh connection and returns the rows.
fn query_path(server: &Server) -> BTreeSet<Vec<i64>> {
    let mut conn = server.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    conn.write_all(b"?path(_, _)\n").expect("query written");
    conn.flush().expect("flushes");
    let mut rows = BTreeSet::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        let line = line.trim_end();
        if line.starts_with("ok ") {
            return rows;
        }
        assert!(!line.starts_with("err "), "query failed: {line}");
        let row: Vec<i64> = line
            .split('\t')
            .map(|v| v.parse().expect("numeric cell"))
            .collect();
        rows.insert(row);
    }
}

/// The from-scratch oracle: evaluate the program in-process over the
/// base facts plus `extra` edges, entirely bypassing the durability
/// stack, and return the `path` rows.
fn oracle(config: InterpreterConfig, extra: &[[i64; 2]]) -> BTreeSet<Vec<i64>> {
    let engine = Engine::from_source(PROGRAM).expect("oracle builds");
    let mut inputs = InputData::new();
    let edges: Vec<Vec<Value>> = BASE_EDGES
        .iter()
        .chain(extra)
        .map(|&[x, y]| vec![Value::Number(x as i32), Value::Number(y as i32)])
        .collect();
    inputs.insert("edge".to_owned(), edges);
    let result = engine.run(config, &inputs).expect("oracle runs");
    result.outputs["path"]
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| match v {
                    Value::Number(n) => i64::from(*n),
                    other => panic!("unexpected value {other}"),
                })
                .collect()
        })
        .collect()
}

fn config_for(mode: &str) -> InterpreterConfig {
    match mode {
        "sti" => InterpreterConfig::optimized(),
        "dynamic" => InterpreterConfig::dynamic_adapter(),
        "unopt" => InterpreterConfig::unoptimized(),
        "legacy" => InterpreterConfig::legacy(),
        other => panic!("unknown mode {other}"),
    }
}

/// A fresh chain suffix per scenario so every insert genuinely extends
/// the transitive closure.
fn edges_for_run(n: usize) -> Vec<[i64; 2]> {
    (0..n as i64).map(|i| [10 + i, 11 + i]).collect()
}

/// Runs one crash scenario end to end and asserts the recovery
/// invariant. `fault` must eventually kill the server while the insert
/// stream is running.
fn crash_scenario(name: &str, mode: &str, fault: &str, extra: &[&str]) {
    let dir = setup(&format!("{name}-{mode}"));
    let edges = edges_for_run(8);

    let server = Server::start(&dir, mode, Some(fault), extra);
    let (acked, in_flight) = insert_until_crash(&server, &edges);
    let status = {
        let mut server = server;
        server.child.wait().expect("crashed server reaped")
    };
    assert!(
        !status.success(),
        "{name}/{mode}: the injected fault should have killed the server"
    );
    assert!(
        in_flight.is_some(),
        "{name}/{mode}: the crash should interrupt the insert stream"
    );

    // Restart fault-free over the same data dir and read what survived.
    let server = Server::start(&dir, mode, None, extra);
    let recovered = query_path(&server);

    let config = config_for(mode);
    let floor = oracle(config, &acked);
    assert!(
        recovered.is_superset(&floor),
        "{name}/{mode}: acknowledged inserts lost in recovery\n  \
         acked={acked:?}\n  missing={:?}",
        floor.difference(&recovered).collect::<Vec<_>>()
    );
    let mut ceiling_edges = acked.clone();
    ceiling_edges.extend(in_flight);
    let ceiling = oracle(config, &ceiling_edges);
    assert!(
        recovered.is_subset(&ceiling),
        "{name}/{mode}: recovery invented tuples\n  extra={:?}",
        recovered.difference(&ceiling).collect::<Vec<_>>()
    );

    // The recovered server must still accept work.
    let (more, none) = insert_until_crash(&server, &[[90, 91]]);
    assert_eq!(
        more.len(),
        1,
        "{name}/{mode}: recovered server rejects inserts"
    );
    assert!(none.is_none());
}

/// Runs one *delete-record* crash scenario: inserts commit cleanly (the
/// armed fault only fires on delete records), then a retraction stream
/// runs until the injected crash. Recovery must replay exactly the
/// acknowledged retractions; the one in flight may or may not have
/// reached the WAL, so the recovered set must match one of the two
/// possible worlds — never a third.
fn delete_crash_scenario(name: &str, mode: &str, fault: &str, extra: &[&str]) {
    let dir = setup(&format!("{name}-{mode}"));
    let edges = edges_for_run(8);

    let server = Server::start(&dir, mode, Some(fault), extra);
    let (inserted, none) = insert_until_crash(&server, &edges);
    assert_eq!(
        inserted.len(),
        edges.len(),
        "{name}/{mode}: inserts must not trip a delete-record fault"
    );
    assert!(none.is_none());
    let (retracted, in_flight) = retract_until_crash(&server, &edges);
    let status = {
        let mut server = server;
        server.child.wait().expect("crashed server reaped")
    };
    assert!(
        !status.success(),
        "{name}/{mode}: the injected fault should have killed the server"
    );
    let in_flight =
        in_flight.unwrap_or_else(|| panic!("{name}/{mode}: crash should interrupt the stream"));

    let server = Server::start(&dir, mode, None, extra);
    let recovered = query_path(&server);

    let config = config_for(mode);
    let survivors = |gone: &[[i64; 2]]| -> Vec<[i64; 2]> {
        edges
            .iter()
            .filter(|e| !gone.contains(e))
            .copied()
            .collect()
    };
    let committed = oracle(config, &survivors(&retracted));
    let mut with_in_flight = retracted.clone();
    with_in_flight.push(in_flight);
    let also_in_flight = oracle(config, &survivors(&with_in_flight));
    assert!(
        recovered == committed || recovered == also_in_flight,
        "{name}/{mode}: recovery matches neither acked-only nor \
         acked+in-flight\n  retracted={retracted:?}\n  in_flight={in_flight:?}\n  \
         recovered={recovered:?}"
    );

    // The recovered server must accept both kinds of work.
    let (more, none) = insert_until_crash(&server, &[[90, 91]]);
    assert_eq!(
        more.len(),
        1,
        "{name}/{mode}: recovered server rejects inserts"
    );
    assert!(none.is_none());
    let (gone, none) = retract_until_crash(&server, &[[90, 91]]);
    assert_eq!(
        gone.len(),
        1,
        "{name}/{mode}: recovered server rejects retractions"
    );
    assert!(none.is_none());
}

#[test]
fn crash_during_wal_write_loses_nothing_acked() {
    for mode in MODES {
        crash_scenario("wal-write", mode, "wal_write:crash_at=3", &[]);
    }
}

#[test]
fn crash_during_wal_fsync_loses_nothing_acked() {
    for mode in MODES {
        crash_scenario(
            "wal-fsync",
            mode,
            "wal_fsync:crash_at=2",
            &["--durability", "always"],
        );
    }
}

#[test]
fn crash_during_snapshot_write_loses_nothing_acked() {
    for mode in MODES {
        crash_scenario(
            "snap-write",
            mode,
            "snapshot_write:crash_at=2",
            &["--snapshot-interval", "1"],
        );
    }
}

#[test]
fn crash_during_snapshot_rename_loses_nothing_acked() {
    for mode in MODES {
        crash_scenario(
            "snap-rename",
            mode,
            "snapshot_rename:crash_at=2",
            &["--snapshot-interval", "1"],
        );
    }
}

#[test]
fn crash_during_wal_delete_write_loses_no_acked_retraction() {
    for mode in MODES {
        delete_crash_scenario("wal-del-write", mode, "wal_delete_write:crash_at=3", &[]);
    }
}

#[test]
fn crash_during_wal_delete_fsync_loses_no_acked_retraction() {
    for mode in MODES {
        delete_crash_scenario(
            "wal-del-fsync",
            mode,
            "wal_delete_fsync:crash_at=2",
            &["--durability", "always"],
        );
    }
}

/// SIGKILL after a mixed insert/retract stream: with `--durability
/// always` every acked line — including the retractions — must survive
/// a hard kill byte for byte.
#[test]
fn sigkill_after_retractions_recovers_the_survivors() {
    let dir = setup("sigkill-retract");
    let edges = edges_for_run(6);
    let server = Server::start(&dir, "sti", None, &["--durability", "always"]);
    let (acked, none) = insert_until_crash(&server, &edges);
    assert_eq!(acked.len(), edges.len());
    assert!(none.is_none());
    let doomed = [edges[1], edges[4]];
    let (retracted, none) = retract_until_crash(&server, &doomed);
    assert_eq!(retracted.len(), doomed.len(), "retractions acked");
    assert!(none.is_none());
    {
        let mut server = server;
        server.child.kill().expect("SIGKILL");
        server.child.wait().expect("reaped");
    }

    let server = Server::start(&dir, "sti", None, &[]);
    let recovered = query_path(&server);
    let survivors: Vec<[i64; 2]> = edges
        .iter()
        .filter(|e| !doomed.contains(e))
        .copied()
        .collect();
    assert_eq!(
        recovered,
        oracle(InterpreterConfig::optimized(), &survivors),
        "SIGKILL after acked retractions must not resurrect the doomed facts"
    );
}

/// A transient (non-crash) failure writing a delete record must refuse
/// the retraction — never ack-and-drop — and leave the fact in place.
#[test]
fn transient_delete_record_failure_refuses_the_retraction() {
    let dir = setup("wal-del-once");
    let server = Server::start(&dir, "sti", Some("wal_delete_write:once"), &[]);
    let mut conn = server.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));

    conn.write_all(b"+edge(50, 51).\n")
        .expect("request written");
    let mut response = String::new();
    reader.read_line(&mut response).expect("response");
    assert!(
        response.starts_with("ok 1"),
        "insert unaffected: {response:?}"
    );

    conn.write_all(b"-edge(50, 51).\n")
        .expect("request written");
    response.clear();
    reader.read_line(&mut response).expect("response");
    assert!(
        response.starts_with("err "),
        "injected delete-record failure must surface as an error, got {response:?}"
    );

    // The very next retraction hits a healthy WAL and commits.
    conn.write_all(b"-edge(50, 51).\n")
        .expect("request written");
    response.clear();
    reader.read_line(&mut response).expect("response");
    assert!(response.starts_with("ok 1"), "got {response:?}");

    // Restart: the refused retraction left no trace, the committed one
    // holds — edge(50, 51) stays gone.
    drop(conn);
    drop(server);
    let server = Server::start(&dir, "sti", None, &[]);
    let recovered = query_path(&server);
    assert_eq!(
        recovered,
        oracle(InterpreterConfig::optimized(), &[]),
        "the retraction must survive the restart"
    );
}

#[test]
fn sigkill_mid_stream_loses_nothing_acked() {
    let dir = setup("sigkill");
    let edges = edges_for_run(6);
    let server = Server::start(&dir, "sti", None, &["--durability", "always"]);
    let (acked, in_flight) = insert_until_crash(&server, &edges);
    assert_eq!(
        acked.len(),
        edges.len(),
        "all inserts acked before the kill"
    );
    assert!(in_flight.is_none());
    {
        let mut server = server;
        server.child.kill().expect("SIGKILL");
        server.child.wait().expect("reaped");
    }

    let server = Server::start(&dir, "sti", None, &[]);
    let recovered = query_path(&server);
    assert_eq!(
        recovered,
        oracle(InterpreterConfig::optimized(), &acked),
        "SIGKILL after ack must not lose data under --durability always"
    );
}

/// A WAL record carrying a future kind tag (a deliberate frame from a
/// newer writer, CRC intact — not a torn tail) must refuse startup with
/// the record's offset, never silently truncate acknowledged history.
#[test]
fn hostile_wal_record_fails_startup_with_the_offset() {
    let dir = setup("wal-hostile");
    {
        let server = Server::start(&dir, "sti", None, &["--durability", "always"]);
        let (acked, none) = insert_until_crash(&server, &[[10, 11], [11, 12]]);
        assert_eq!(acked.len(), 2, "both inserts acked and fsynced");
        assert!(none.is_none());
    }

    // Walk the frames ([u32 len][u32 crc][payload]) past the 16-byte
    // header to the last record, flip its kind byte to a future tag,
    // and fix up the checksum.
    let wal = dir.join("data").join("wal.log");
    let mut bytes = std::fs::read(&wal).expect("wal exists");
    let mut p = 16usize;
    let mut last = p;
    while p + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[p..p + 4].try_into().unwrap()) as usize;
        if p + 8 + len > bytes.len() {
            break;
        }
        last = p;
        p += 8 + len;
    }
    let len = u32::from_le_bytes(bytes[last..last + 4].try_into().unwrap()) as usize;
    bytes[last + 8] = 7;
    let crc = stir_core::wal::crc32(&bytes[last + 8..last + 8 + len]);
    bytes[last + 4..last + 8].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&wal, &bytes).expect("hostile record written");

    let out = Command::new(env!("CARGO_BIN_EXE_stird"))
        .arg(dir.join("tc.dl"))
        .arg("-F")
        .arg(&dir)
        .arg("--data-dir")
        .arg(dir.join("data"))
        .env_remove("STIR_FAULT")
        .output()
        .expect("stird runs");
    assert!(
        !out.status.success(),
        "a hostile WAL record must refuse startup"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown WAL record kind 7"),
        "startup error names the unknown kind: {err}"
    );
    assert!(
        err.contains(&format!("offset {last}")),
        "startup error names the record offset {last}: {err}"
    );
}

/// A transient (non-crash) WAL write failure must refuse the insert —
/// never ack-and-drop — and leave the engine serving.
#[test]
fn transient_wal_failure_refuses_the_insert() {
    let dir = setup("wal-once");
    let server = Server::start(&dir, "sti", Some("wal_write:once"), &[]);
    let mut conn = server.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));

    conn.write_all(b"+edge(50, 51).\n")
        .expect("request written");
    let mut response = String::new();
    reader.read_line(&mut response).expect("response");
    assert!(
        response.starts_with("err "),
        "injected write failure must surface as an error, got {response:?}"
    );

    // The very next batch hits a healthy WAL and commits.
    conn.write_all(b"+edge(60, 61).\n")
        .expect("request written");
    response.clear();
    reader.read_line(&mut response).expect("response");
    assert!(response.starts_with("ok 1"), "got {response:?}");

    // Restart: only the acked batch is recovered.
    drop(conn);
    drop(server);
    let server = Server::start(&dir, "sti", None, &[]);
    let recovered = query_path(&server);
    assert_eq!(
        recovered,
        oracle(InterpreterConfig::optimized(), &[[60, 61]]),
        "refused batch must not reappear, acked batch must survive"
    );
}
