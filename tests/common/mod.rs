//! Shared test infrastructure: an independent, naive reference evaluator.
//!
//! The reference implementation shares *no* code with the engine's
//! evaluation path: it interprets the checked AST directly with naive
//! (non-semi-naive) fixpoint iteration and backtracking joins. It covers
//! the number-typed core of the language (positive/negative literals,
//! comparison constraints, arithmetic with binding equalities) — enough
//! to differentially test every structural feature of the engine.

use std::collections::{BTreeSet, HashMap};
use stir_core::Value;
use stir_frontend::analysis::CheckedProgram;
use stir_frontend::ast::{BinOp, CmpOp, Expr, Literal, UnOp};

pub type Tuple = Vec<i64>;
pub type Db = HashMap<String, BTreeSet<Tuple>>;

/// Naively evaluates a checked program over number-typed relations.
///
/// # Panics
///
/// Panics on constructs outside the supported subset (floats, strings,
/// aggregates, `$`).
pub fn eval_reference(checked: &CheckedProgram, inputs: &Db) -> Db {
    let mut db: Db = Db::new();
    for d in &checked.ast.decls {
        db.insert(d.name.clone(), BTreeSet::new());
    }
    for (name, rows) in inputs {
        db.get_mut(name)
            .expect("declared input")
            .extend(rows.iter().cloned());
    }
    for fact in &checked.ast.facts {
        let tuple: Tuple = fact
            .atom
            .args
            .iter()
            .map(|a| match a {
                Expr::Number(n, _) => *n,
                other => panic!("reference evaluator: non-number fact arg {other}"),
            })
            .collect();
        db.get_mut(&fact.atom.name).expect("declared").insert(tuple);
    }

    for stratum in &checked.strata {
        loop {
            let mut grew = false;
            for &ri in &stratum.rules {
                let rule = &checked.ast.rules[ri];
                let mut derived: Vec<Tuple> = Vec::new();
                join(&db, &rule.body, 0, &mut HashMap::new(), &mut |env| {
                    let tuple: Tuple = rule
                        .head
                        .args
                        .iter()
                        .map(|a| eval_expr(a, env).expect("head is grounded"))
                        .collect();
                    derived.push(tuple);
                });
                let target = db.get_mut(&rule.head.name).expect("declared");
                for t in derived {
                    grew |= target.insert(t);
                }
            }
            if !grew {
                break;
            }
        }
    }
    db
}

fn join(
    db: &Db,
    body: &[Literal],
    idx: usize,
    env: &mut HashMap<String, i64>,
    emit: &mut dyn FnMut(&HashMap<String, i64>),
) {
    let Some(lit) = body.get(idx) else {
        emit(env);
        return;
    };
    match lit {
        Literal::Positive(atom) => {
            let tuples: Vec<Tuple> = db[&atom.name].iter().cloned().collect();
            'tuples: for t in tuples {
                let mut bound: Vec<String> = Vec::new();
                for (arg, &v) in atom.args.iter().zip(&t) {
                    match arg {
                        Expr::Wildcard(_) => {}
                        Expr::Var(name, _) => match env.get(name) {
                            Some(&have) if have != v => {
                                unbind(env, &bound);
                                continue 'tuples;
                            }
                            Some(_) => {}
                            None => {
                                env.insert(name.clone(), v);
                                bound.push(name.clone());
                            }
                        },
                        e => match eval_expr(e, env) {
                            Some(want) if want == v => {}
                            _ => {
                                unbind(env, &bound);
                                continue 'tuples;
                            }
                        },
                    }
                }
                join(db, body, idx + 1, env, emit);
                unbind(env, &bound);
            }
        }
        Literal::Negative(atom) => {
            let matched = db[&atom.name].iter().any(|t| {
                atom.args.iter().zip(t).all(|(arg, &v)| match arg {
                    Expr::Wildcard(_) => true,
                    e => eval_expr(e, env) == Some(v),
                })
            });
            if !matched {
                join(db, body, idx + 1, env, emit);
            }
        }
        Literal::Constraint(c) => {
            // Binding equality?
            if c.op == CmpOp::Eq {
                for (var_side, other) in [(&c.lhs, &c.rhs), (&c.rhs, &c.lhs)] {
                    if let Expr::Var(name, _) = var_side {
                        if !env.contains_key(name) {
                            if let Some(v) = eval_expr(other, env) {
                                env.insert(name.clone(), v);
                                join(db, body, idx + 1, env, emit);
                                env.remove(name);
                            }
                            return;
                        }
                    }
                }
            }
            let (Some(a), Some(b)) = (eval_expr(&c.lhs, env), eval_expr(&c.rhs, env)) else {
                panic!("reference evaluator: ungrounded constraint {c}");
            };
            let holds = match c.op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            };
            if holds {
                join(db, body, idx + 1, env, emit);
            }
        }
    }
}

fn unbind(env: &mut HashMap<String, i64>, names: &[String]) {
    for n in names {
        env.remove(n);
    }
}

/// Evaluates with i32 wrapping semantics (matching the engine's `number`
/// arithmetic); returns `None` when a variable is unbound.
fn eval_expr(e: &Expr, env: &HashMap<String, i64>) -> Option<i64> {
    let w = |v: i64| i64::from(v as i32); // wrap to i32 like the engine
    Some(match e {
        Expr::Number(n, _) => w(*n),
        Expr::Var(v, _) => *env.get(v)?,
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = eval_expr(lhs, env)? as i32;
            let b = eval_expr(rhs, env)? as i32;
            let r = match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => a.wrapping_div(b),
                BinOp::Mod => a.wrapping_rem(b),
                BinOp::Pow => a.wrapping_pow(b as u32),
                BinOp::Band => a & b,
                BinOp::Bor => a | b,
                BinOp::Bxor => a ^ b,
                BinOp::Bshl => a.wrapping_shl(b as u32),
                BinOp::Bshr => a.wrapping_shr(b as u32),
                BinOp::Land => i32::from(a != 0 && b != 0),
                BinOp::Lor => i32::from(a != 0 || b != 0),
            };
            i64::from(r)
        }
        Expr::Unary { op, expr, .. } => {
            let a = eval_expr(expr, env)? as i32;
            let r = match op {
                UnOp::Neg => a.wrapping_neg(),
                UnOp::Bnot => !a,
                UnOp::Lnot => i32::from(a == 0),
            };
            i64::from(r)
        }
        other => panic!("reference evaluator: unsupported expression {other}"),
    })
}

/// Converts engine output rows (all `number`-typed) to reference tuples.
pub fn to_tuples(rows: &[Vec<Value>]) -> BTreeSet<Tuple> {
    rows.iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    Value::Number(n) => i64::from(*n),
                    other => panic!("expected number, got {other}"),
                })
                .collect()
        })
        .collect()
}
