//! Integration tests for the observability layer: folded-stack emitter
//! shape, profile JSON round-trips, and counter equivalence across
//! interpreter modes.

use stir::{profile_json, Engine, InputData, InterpreterConfig, Json, Telemetry};

const TC: &str = "\
    .decl edge(x: number, y: number)\n\
    .decl path(x: number, y: number)\n\
    .output path\n\
    edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5).\n\
    path(x, y) :- edge(x, y).\n\
    path(x, z) :- path(x, y), edge(y, z).\n";

#[test]
fn folded_stacks_have_flamegraph_shape() {
    let tel = Telemetry::new(true, false, stir::LogLevel::Off);
    let engine = Engine::from_source_with(TC, Some(&tel)).expect("compiles");
    engine
        .run_with(
            InterpreterConfig::optimized().with_trace(),
            &InputData::new(),
            &[],
            Some(&tel),
        )
        .expect("runs");
    let folded = tel.tracer.folded();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (path, ns) = line.rsplit_once(' ').expect("`frames value` lines");
        assert!(!path.is_empty());
        ns.parse::<u64>().expect("integer self-time");
    }
    // Statement spans nest under the evaluate phase; the fixpoint loop
    // contains the recursive rule's query.
    assert!(folded.contains("phase:evaluate;loop#0;query:"), "{folded}");
    assert!(folded.contains("phase:parse "), "{folded}");
}

#[test]
fn profile_json_round_trips_through_parser() {
    let tel = Telemetry::new(true, true, stir::LogLevel::Off);
    let engine = Engine::from_source_with(TC, Some(&tel)).expect("compiles");
    let started = std::time::Instant::now();
    let out = engine
        .run_with(
            InterpreterConfig::optimized().with_profile(),
            &InputData::new(),
            &[],
            Some(&tel),
        )
        .expect("runs");
    let json = profile_json(engine.ram(), out.profile.as_ref(), &tel, started.elapsed());
    let text = json.render();
    let reparsed = Json::parse(&text).expect("render → parse round-trip");
    assert_eq!(reparsed.render(), text, "stable fixpoint");
    let program = reparsed
        .get("root")
        .and_then(|r| r.get("program"))
        .expect("root.program");
    assert!(program.get("runtime_ns").and_then(Json::as_u64).is_some());
    // delta_path peaks at 3 new tuples and shrinks to the fixpoint.
    let iterations = program
        .get("iteration")
        .and_then(Json::items)
        .expect("array");
    assert_eq!(
        iterations.len(),
        3,
        "4-chain TC closes in 3 sampled iterations"
    );
    let sizes: Vec<u64> = iterations
        .iter()
        .map(|it| {
            it.get("frontier")
                .and_then(|f| f.get("delta_path"))
                .and_then(Json::as_u64)
                .expect("delta size")
        })
        .collect();
    assert_eq!(sizes, vec![3, 2, 1]);
}

#[test]
fn dispatch_and_iteration_counters_match_across_modes() {
    // §4.1's static dispatch changes *how* instructions execute, never
    // how often: the interpreter tree has the same shape and the same
    // per-tuple tick sites in both modes, so the counters must agree.
    let engine = Engine::from_source(TC).expect("compiles");
    let sti = engine
        .run(
            InterpreterConfig::optimized().with_profile(),
            &InputData::new(),
        )
        .expect("sti runs")
        .profile
        .expect("profile");
    let dynamic = engine
        .run(
            InterpreterConfig::dynamic_adapter().with_profile(),
            &InputData::new(),
        )
        .expect("dynamic runs")
        .profile
        .expect("profile");
    assert_eq!(sti.dispatches, dynamic.dispatches);
    assert_eq!(sti.iterations, dynamic.iterations);
    assert_eq!(sti.total_inserts, dynamic.total_inserts);
    assert_eq!(sti.frontier, dynamic.frontier);
    assert_eq!(sti.relations, dynamic.relations);
}

#[test]
fn telemetry_off_leaves_no_trace() {
    let tel = Telemetry::off();
    let engine = Engine::from_source_with(TC, Some(&tel)).expect("compiles");
    engine
        .run_with(
            InterpreterConfig::optimized(),
            &InputData::new(),
            &[],
            Some(&tel),
        )
        .expect("runs");
    assert!(tel.tracer.stats().is_empty());
    assert!(tel.metrics.snapshot().is_empty());
}
