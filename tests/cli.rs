//! Integration tests for the `stir` command-line driver.

use std::path::PathBuf;
use std::process::Command;

fn stir() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stir"))
}

fn setup(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("stir-cli-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(
        dir.join("tc.dl"),
        ".decl edge(x: number, y: number)\n.input edge\n\
         .decl path(x: number, y: number)\n.output path\n\
         path(x, y) :- edge(x, y).\n\
         path(x, z) :- path(x, y), edge(y, z).\n",
    )
    .expect("program written");
    std::fs::write(dir.join("edge.facts"), "1\t2\n2\t3\n").expect("facts written");
    dir
}

#[test]
fn evaluates_and_prints_outputs() {
    let dir = setup("basic");
    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("-F")
        .arg(&dir)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--- path (3 tuples)"), "{stdout}");
    assert!(stdout.contains("1\t3"), "{stdout}");
}

#[test]
fn writes_output_directory() {
    let dir = setup("outdir");
    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("-F")
        .arg(&dir)
        .arg("-D")
        .arg(dir.join("out"))
        .output()
        .expect("runs");
    assert!(out.status.success());
    let csv = std::fs::read_to_string(dir.join("out").join("path.csv")).expect("csv written");
    assert_eq!(csv.lines().count(), 3);
}

#[test]
fn all_modes_agree() {
    let dir = setup("modes");
    let mut results = Vec::new();
    for mode in ["sti", "dynamic", "unopt", "legacy"] {
        let out = stir()
            .arg(dir.join("tc.dl"))
            .arg("-F")
            .arg(&dir)
            .arg("--mode")
            .arg(mode)
            .output()
            .expect("runs");
        assert!(out.status.success(), "mode {mode}");
        results.push(String::from_utf8_lossy(&out.stdout).to_string());
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn jobs_flag_rejects_non_positive_values() {
    let dir = setup("jobs-bad");
    for bad in ["0", "abc", "-2", "1.5"] {
        let out = stir()
            .arg(dir.join("tc.dl"))
            .arg("-F")
            .arg(&dir)
            .arg("--jobs")
            .arg(bad)
            .output()
            .expect("runs");
        assert_eq!(out.status.code(), Some(2), "--jobs {bad} is a usage error");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("positive integer"),
            "--jobs {bad}: {stderr}"
        );
    }

    // A missing value prints the usage text.
    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("--jobs")
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: stir"));
}

#[test]
fn jobs_flag_preserves_outputs_in_every_mode() {
    let dir = setup("jobs");
    for mode in ["sti", "dynamic", "unopt", "legacy"] {
        let mut results = Vec::new();
        for jobs in ["1", "4"] {
            // `--jobs` before `--mode`, so this also checks that the
            // mode switch does not clobber the worker count.
            let out = stir()
                .arg(dir.join("tc.dl"))
                .arg("-F")
                .arg(&dir)
                .arg("--jobs")
                .arg(jobs)
                .arg("--mode")
                .arg(mode)
                .output()
                .expect("runs");
            assert!(
                out.status.success(),
                "mode {mode} jobs {jobs}: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            results.push(String::from_utf8_lossy(&out.stdout).to_string());
        }
        assert_eq!(results[0], results[1], "mode {mode}");
        assert!(results[0].contains("--- path (3 tuples)"));
    }
}

#[test]
fn profile_json_tuple_counts_survive_parallel_evaluation() {
    let dir = setup("jobs-profile");
    let json_path = dir.join("prof.json");
    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("-F")
        .arg(&dir)
        .arg("-j")
        .arg("4")
        .arg("--profile-json")
        .arg(&json_path)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&json_path).expect("json written");
    let json = stir::Json::parse(&text).expect("valid JSON");
    let program = json
        .get("root")
        .and_then(|r| r.get("program"))
        .expect("root.program");
    // The worker-count-independent invariant: per-rule tuples still sum
    // to the global insert counter, and the output is complete.
    let rule_tuples: u64 = program
        .get("rule")
        .and_then(stir::Json::entries)
        .expect("rule object")
        .iter()
        .map(|(_, r)| {
            r.get("tuples")
                .and_then(stir::Json::as_u64)
                .expect("tuples")
        })
        .sum();
    let inserts = program
        .get("counter")
        .and_then(|c| c.get("interp.inserts"))
        .and_then(stir::Json::as_u64)
        .expect("insert counter");
    assert_eq!(rule_tuples, inserts, "per-rule tuples sum to total inserts");
    let path_rel = program
        .get("relation")
        .and_then(|r| r.get("path"))
        .expect("path relation");
    assert_eq!(path_rel.get("tuples").and_then(stir::Json::as_u64), Some(3));
}

#[test]
fn ram_listing_mode() {
    let dir = setup("ram");
    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("--ram")
        .output()
        .expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("LOOP"), "{stdout}");
    assert!(stdout.contains("MERGE new_path INTO path"), "{stdout}");
}

#[test]
fn profile_flag_reports_rules() {
    let dir = setup("profile");
    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("-F")
        .arg(&dir)
        .arg("--profile")
        .output()
        .expect("runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("dispatches"), "{stderr}");
    assert!(stderr.contains("path(x, z) :-"), "{stderr}");
}

#[test]
fn help_and_version_exit_zero() {
    let out = stir().arg("--help").output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: stir"), "{stdout}");
    assert!(stdout.contains("--profile-json"), "{stdout}");

    let short = stir().arg("-h").output().expect("runs");
    assert!(short.status.success());

    let out = stir().arg("--version").output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("stir "), "{stdout}");
}

#[test]
fn profile_json_holds_its_invariants() {
    let dir = setup("profile-json");
    let json_path = dir.join("prof.json");
    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("-F")
        .arg(&dir)
        .arg("--profile-json")
        .arg(&json_path)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&json_path).expect("json written");
    let json = stir::Json::parse(&text).expect("valid JSON");
    let program = json
        .get("root")
        .and_then(|r| r.get("program"))
        .expect("root.program");

    // Phase timings cover the whole pipeline.
    let phase = program.get("phase").expect("phase section");
    for name in ["parse", "ram-translate", "build-db", "evaluate"] {
        assert!(
            phase.get(name).and_then(stir::Json::as_u64).is_some(),
            "{name}"
        );
    }

    // The per-rule tuple counts sum to the global insert counter.
    let rule = program.get("rule").expect("rule section");
    let rule_entries = rule.entries().expect("rule object");
    assert_eq!(rule_entries.len(), 2, "two TC rules");
    let rule_tuples: u64 = rule_entries
        .iter()
        .map(|(_, r)| {
            r.get("tuples")
                .and_then(stir::Json::as_u64)
                .expect("tuples")
        })
        .sum();
    let inserts = program
        .get("counter")
        .and_then(|c| c.get("interp.inserts"))
        .and_then(stir::Json::as_u64)
        .expect("insert counter");
    assert_eq!(rule_tuples, inserts, "per-rule tuples sum to total inserts");

    // Relation metrics: `path` ends with 3 tuples and a sampled index,
    // and the per-relation insert counts also sum to the global counter
    // (inserts land in `path` for the base rule, `new_path` inside the
    // fixpoint).
    let relations = program.get("relation").expect("relation section");
    let rel_inserts: u64 = relations
        .entries()
        .expect("relation object")
        .iter()
        .filter_map(|(_, r)| r.get("inserts").and_then(stir::Json::as_u64))
        .sum();
    assert_eq!(rel_inserts, inserts, "per-relation inserts sum to total");
    let path_rel = relations.get("path").expect("path relation");
    assert_eq!(path_rel.get("tuples").and_then(stir::Json::as_u64), Some(3));
    let index = path_rel
        .get("index")
        .and_then(stir::Json::items)
        .expect("indexes");
    assert!(!index.is_empty());
    assert!(index[0].get("nodes").and_then(stir::Json::as_u64).is_some());
    assert!(index[0].get("bytes").and_then(stir::Json::as_u64).is_some());

    // Per-iteration frontier samples from the fixpoint loop.
    let iterations = program
        .get("iteration")
        .and_then(stir::Json::items)
        .expect("iteration array");
    assert!(!iterations.is_empty(), "TC runs at least one iteration");
    for it in iterations {
        assert!(it
            .get("frontier")
            .and_then(|f| f.get("delta_path"))
            .is_some());
    }
}

#[test]
fn trace_folded_emits_stacks() {
    let dir = setup("folded");
    let folded_path = dir.join("trace.folded");
    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("-F")
        .arg(&dir)
        .arg("--trace-folded")
        .arg(&folded_path)
        .output()
        .expect("runs");
    assert!(out.status.success());
    let folded = std::fs::read_to_string(&folded_path).expect("folded written");
    let mut saw_query = false;
    for line in folded.lines() {
        let (path, ns) = line.rsplit_once(' ').expect("`path value` shape");
        ns.parse::<u64>().expect("self-time is a number");
        saw_query |= path.contains("query:");
    }
    assert!(saw_query, "statement spans present:\n{folded}");
    assert!(folded.contains("phase:evaluate;"), "{folded}");
}

#[test]
fn log_level_heartbeats() {
    let dir = setup("log");
    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("-F")
        .arg(&dir)
        .arg("--log")
        .arg("info")
        .arg("--profile")
        .output()
        .expect("runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("stir[info] loop#0 iteration 0"), "{stderr}");

    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("--log")
        .arg("loud")
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "bad level is a usage error");
}

#[test]
fn bad_program_fails_with_positioned_error() {
    let dir = setup("bad");
    std::fs::write(dir.join("bad.dl"), "p(x) :- q(x).").expect("written");
    let out = stir().arg(dir.join("bad.dl")).output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("undeclared"), "{stderr}");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = stir().arg("/nonexistent/prog.dl").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn missing_fact_dir_fails_cleanly() {
    let dir = setup("missing-fact-dir");
    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("-F")
        .arg(dir.join("no-such-dir"))
        .output()
        .expect("runs");
    assert!(!out.status.success(), "missing -F dir must be an error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-such-dir"), "{stderr}");
    assert!(
        stderr.contains("does not exist or is not a directory"),
        "{stderr}"
    );
}

#[test]
fn unreadable_fact_file_fails_cleanly() {
    let dir = setup("unreadable-facts");
    // Replace the fact *file* with a directory: reading it fails with a
    // non-NotFound error even when the tests run as root (which ignores
    // permission bits), unlike a chmod-000 file.
    std::fs::remove_file(dir.join("edge.facts")).expect("remove");
    std::fs::create_dir(dir.join("edge.facts")).expect("decoy dir");
    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("-F")
        .arg(&dir)
        .output()
        .expect("runs");
    assert!(
        !out.status.success(),
        "unreadable fact file must be an error"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
    assert!(stderr.contains("edge.facts"), "{stderr}");
}
