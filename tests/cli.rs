//! Integration tests for the `stir` command-line driver.

use std::path::PathBuf;
use std::process::Command;

fn stir() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stir"))
}

fn setup(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("stir-cli-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(
        dir.join("tc.dl"),
        ".decl edge(x: number, y: number)\n.input edge\n\
         .decl path(x: number, y: number)\n.output path\n\
         path(x, y) :- edge(x, y).\n\
         path(x, z) :- path(x, y), edge(y, z).\n",
    )
    .expect("program written");
    std::fs::write(dir.join("edge.facts"), "1\t2\n2\t3\n").expect("facts written");
    dir
}

#[test]
fn evaluates_and_prints_outputs() {
    let dir = setup("basic");
    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("-F")
        .arg(&dir)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--- path (3 tuples)"), "{stdout}");
    assert!(stdout.contains("1\t3"), "{stdout}");
}

#[test]
fn writes_output_directory() {
    let dir = setup("outdir");
    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("-F")
        .arg(&dir)
        .arg("-D")
        .arg(dir.join("out"))
        .output()
        .expect("runs");
    assert!(out.status.success());
    let csv = std::fs::read_to_string(dir.join("out").join("path.csv")).expect("csv written");
    assert_eq!(csv.lines().count(), 3);
}

#[test]
fn all_modes_agree() {
    let dir = setup("modes");
    let mut results = Vec::new();
    for mode in ["sti", "dynamic", "unopt", "legacy"] {
        let out = stir()
            .arg(dir.join("tc.dl"))
            .arg("-F")
            .arg(&dir)
            .arg("--mode")
            .arg(mode)
            .output()
            .expect("runs");
        assert!(out.status.success(), "mode {mode}");
        results.push(String::from_utf8_lossy(&out.stdout).to_string());
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn ram_listing_mode() {
    let dir = setup("ram");
    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("--ram")
        .output()
        .expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("LOOP"), "{stdout}");
    assert!(stdout.contains("MERGE new_path INTO path"), "{stdout}");
}

#[test]
fn profile_flag_reports_rules() {
    let dir = setup("profile");
    let out = stir()
        .arg(dir.join("tc.dl"))
        .arg("-F")
        .arg(&dir)
        .arg("--profile")
        .output()
        .expect("runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("dispatches"), "{stderr}");
    assert!(stderr.contains("path(x, z) :-"), "{stderr}");
}

#[test]
fn bad_program_fails_with_positioned_error() {
    let dir = setup("bad");
    std::fs::write(dir.join("bad.dl"), "p(x) :- q(x).").expect("written");
    let out = stir().arg(dir.join("bad.dl")).output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("undeclared"), "{stderr}");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = stir().arg("/nonexistent/prog.dl").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
