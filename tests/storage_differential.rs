//! Storage-backend differential testing: the disk-backed index layer
//! must be observationally identical to the in-memory B-trees.
//!
//! Part one replays randomized insert/retract/query interleavings
//! against a mem-backed and a disk-backed resident engine in lockstep —
//! every interpreter mode, sequential and parallel — and requires the
//! outputs to agree after every step. Proof trees (`.explain`) and
//! profile tuple counts must agree too: de-specialized storage is not
//! allowed to change what the engine derives, how it proves it, or how
//! much work it reports.
//!
//! Part two feeds hostile v2 snapshot files (truncation, bad magic,
//! checksum damage, tuple bitflips) directly to the reader and checks
//! every rejection names the byte offset of the damage.

use std::collections::BTreeSet;
use std::path::PathBuf;
use stir::core::resident::{PersistOptions, SNAPSHOT_FILE};
use stir::core::snap2;
use stir::core::wal;
use stir::{
    Engine, ExplainLimits, InputData, InterpreterConfig, ResidentEngine, StorageBackend, Value,
};

const PROGRAM: &str = "\
.decl e(x: number, y: number)\n.input e\n\
.decl f(x: number, y: number)\n.input f\n\
.decl r(x: number, y: number)\n.output r\n\
.decl s(x: number, y: number)\n.output s\n\
r(x, y) :- e(x, y).\n\
r(x, z) :- r(x, y), e(y, z).\n\
s(x, y) :- r(x, y), !f(x, y).\n";

fn modes() -> [(&'static str, InterpreterConfig); 4] {
    [
        ("sti", InterpreterConfig::optimized()),
        ("dynamic", InterpreterConfig::dynamic_adapter()),
        ("unopt", InterpreterConfig::unoptimized()),
        ("legacy", InterpreterConfig::legacy()),
    ]
}

/// Lehmer LCG (MINSTD): deterministic, no external crates.
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(48271) % 0x7fff_ffff;
    *state
}

fn rand_pairs(state: &mut u64, n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|_| {
            vec![
                Value::Number((lcg(state) % 7) as i32),
                Value::Number((lcg(state) % 7) as i32),
            ]
        })
        .collect()
}

fn sorted(rows: &[Vec<Value>]) -> BTreeSet<String> {
    rows.iter()
        .map(|r| {
            r.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect()
}

fn initial_inputs(state: &mut u64) -> InputData {
    let mut inputs = InputData::new();
    inputs.insert("e".into(), rand_pairs(state, 8));
    inputs.insert("f".into(), rand_pairs(state, 4));
    inputs
}

/// Random insert/retract interleavings applied to a mem-backed and a
/// disk-backed engine in lockstep must yield identical query results
/// after every step, in every mode, sequential and with 4 workers.
#[test]
fn randomized_interleavings_match_between_mem_and_disk() {
    for jobs in [1usize, 4] {
        for (mode, base) in modes() {
            for seed0 in 1u64..=5 {
                let mut state = seed0 * 7919 + jobs as u64;
                let inputs = initial_inputs(&mut state);
                let build = |storage| {
                    ResidentEngine::from_source(
                        PROGRAM,
                        base.with_jobs(jobs).with_storage(storage),
                        &inputs,
                        None,
                    )
                    .expect("builds")
                };
                let mut mem = build(StorageBackend::Mem);
                let mut disk = build(StorageBackend::Disk);
                for step in 0..10 {
                    let rel = if lcg(&mut state).is_multiple_of(2) {
                        "e"
                    } else {
                        "f"
                    };
                    let n = 1 + (lcg(&mut state) % 3) as usize;
                    let rows = rand_pairs(&mut state, n);
                    let ctx = || format!("seed {seed0} mode {mode} jobs {jobs} step {step}");
                    if lcg(&mut state).is_multiple_of(3) {
                        mem.retract_facts(rel, &rows, None)
                            .unwrap_or_else(|e| panic!("{}: mem retract: {e}", ctx()));
                        disk.retract_facts(rel, &rows, None)
                            .unwrap_or_else(|e| panic!("{}: disk retract: {e}", ctx()));
                    } else {
                        mem.insert_facts(rel, &rows, None)
                            .unwrap_or_else(|e| panic!("{}: mem insert: {e}", ctx()));
                        disk.insert_facts(rel, &rows, None)
                            .unwrap_or_else(|e| panic!("{}: disk insert: {e}", ctx()));
                    }
                    let (om, od) = (mem.outputs(), disk.outputs());
                    for out in ["r", "s"] {
                        assert_eq!(
                            sorted(&om[out]),
                            sorted(&od[out]),
                            "{}: output {out} diverged",
                            ctx()
                        );
                    }
                }
            }
        }
    }
}

/// Profiling must report the same tuple counts on both backends: the
/// disk layer changes where tuples live, not how many the fixpoint
/// derives or inserts.
#[test]
fn profile_tuple_counts_match_between_mem_and_disk() {
    let mut state = 17u64;
    let inputs = initial_inputs(&mut state);
    for jobs in [1usize, 4] {
        for (mode, base) in modes() {
            let run = |storage| {
                Engine::from_source(PROGRAM)
                    .expect("compiles")
                    .run(
                        base.with_profile().with_jobs(jobs).with_storage(storage),
                        &inputs,
                    )
                    .expect("evaluates")
            };
            let mem = run(StorageBackend::Mem);
            let disk = run(StorageBackend::Disk);
            assert_eq!(
                sorted(&mem.outputs["r"]),
                sorted(&disk.outputs["r"]),
                "mode {mode} jobs {jobs}: outputs diverged"
            );
            let (pm, pd) = (
                mem.profile.expect("profile"),
                disk.profile.expect("profile"),
            );
            assert_eq!(
                pm.total_inserts, pd.total_inserts,
                "mode {mode} jobs {jobs}: total inserts diverged"
            );
            let mem_inserts: Vec<u64> = pm.relations.iter().map(|r| r.inserts).collect();
            let disk_inserts: Vec<u64> = pd.relations.iter().map(|r| r.inserts).collect();
            assert_eq!(
                mem_inserts, disk_inserts,
                "mode {mode} jobs {jobs}: per-relation insert counts diverged"
            );
        }
    }
}

/// Proof trees must render identically on both backends, including
/// after retractions force re-derivation.
#[test]
fn explain_proof_shapes_match_between_mem_and_disk() {
    for jobs in [1usize, 4] {
        for (mode, base) in [
            ("sti", InterpreterConfig::optimized()),
            ("dynamic", InterpreterConfig::dynamic_adapter()),
        ] {
            let mut state = 23 + jobs as u64;
            let inputs = initial_inputs(&mut state);
            let build = |storage| {
                ResidentEngine::from_source(
                    PROGRAM,
                    base.with_provenance().with_jobs(jobs).with_storage(storage),
                    &inputs,
                    None,
                )
                .expect("builds")
            };
            let mut mem = build(StorageBackend::Mem);
            let mut disk = build(StorageBackend::Disk);
            let extra = rand_pairs(&mut state, 3);
            mem.insert_facts("e", &extra, None).expect("mem insert");
            disk.insert_facts("e", &extra, None).expect("disk insert");
            let gone = vec![inputs["e"][0].clone()];
            mem.retract_facts("e", &gone, None).expect("mem retract");
            disk.retract_facts("e", &gone, None).expect("disk retract");

            let rows = mem.outputs()["r"].clone();
            assert_eq!(
                sorted(&rows),
                sorted(&disk.outputs()["r"]),
                "mode {mode} jobs {jobs}: outputs diverged before explain"
            );
            assert!(!rows.is_empty(), "degenerate case: no derived tuples");
            for row in &rows {
                let pm = mem
                    .explain("r", row, ExplainLimits::default(), None)
                    .expect("mem explains");
                let pd = disk
                    .explain("r", row, ExplainLimits::default(), None)
                    .expect("disk explains");
                assert_eq!(
                    mem.render_proof(&pm),
                    disk.render_proof(&pd),
                    "mode {mode} jobs {jobs}: proof for {row:?} diverged"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Hostile inputs: every rejection names the byte offset of the damage.
// ---------------------------------------------------------------------

/// Builds a real v2 snapshot on disk and returns its path, bytes, and
/// the program fingerprint the reader expects.
fn v2_fixture(name: &str) -> (PathBuf, Vec<u8>, u64) {
    let dir = std::env::temp_dir().join("stir-storage-diff").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut state = 41u64;
    let inputs = initial_inputs(&mut state);
    let engine = Engine::from_source(PROGRAM).expect("compiles");
    let fp = wal::fingerprint(&engine.ram().to_string());
    let config = InterpreterConfig::optimized().with_storage(StorageBackend::Disk);
    let opts = PersistOptions {
        durability: wal::Durability::Batch,
        snapshot_interval: None,
    };
    let (mut r, _) =
        ResidentEngine::open(engine, config, &inputs, &dir, opts, None).expect("opens");
    r.snapshot(None).expect("snapshots");
    drop(r);
    let path = dir.join(SNAPSHOT_FILE);
    let bytes = std::fs::read(&path).expect("snapshot bytes");
    assert!(snap2::is_v2(&path), "fixture must be a v2 snapshot");
    (path, bytes, fp)
}

fn open_err(path: &std::path::Path, fp: u64) -> String {
    snap2::open_snapshot_v2(path, fp, 1 << 20)
        .err()
        .expect("corrupt snapshot must be rejected")
        .to_string()
}

#[test]
fn hostile_bad_magic_names_byte_offset_zero() {
    let (path, mut bytes, fp) = v2_fixture("bad-magic");
    bytes[0] ^= 0xff;
    std::fs::write(&path, &bytes).expect("writes");
    let err = open_err(&path, fp);
    assert!(
        err.contains("byte offset 0"),
        "magic rejection must name offset 0: {err}"
    );
}

#[test]
fn hostile_truncated_file_names_the_offset() {
    let (path, bytes, fp) = v2_fixture("truncated");
    // Cut mid-body: the header's directory bounds no longer land at the
    // end of the file, which is caught before any byte is decoded.
    let cut = bytes.len() - 10;
    std::fs::write(&path, &bytes[..cut]).expect("writes");
    let err = open_err(&path, fp);
    assert!(
        err.contains("byte offset 20"),
        "truncation must be caught by the directory bounds check: {err}"
    );

    // Cut inside the header: rejected before any decode is attempted.
    std::fs::write(&path, &bytes[..12]).expect("writes");
    let err = open_err(&path, fp);
    assert!(
        err.contains("truncated snapshot") && err.contains("byte offset 12"),
        "header truncation must name the file length: {err}"
    );
}

#[test]
fn hostile_checksum_damage_names_the_trailer_offset() {
    let (path, mut bytes, fp) = v2_fixture("bad-crc");
    let trailer = bytes.len() - 4;
    bytes[trailer] ^= 0x01;
    std::fs::write(&path, &bytes).expect("writes");
    let err = open_err(&path, fp);
    assert!(
        err.contains("checksum mismatch") && err.contains(&format!("byte offset {trailer}")),
        "checksum rejection must name the trailer offset {trailer}: {err}"
    );
}

#[test]
fn hostile_tuple_bitflip_is_caught_by_the_checksum() {
    let (path, mut bytes, fp) = v2_fixture("bitflip");
    // Flip one bit in the run region (just past the 36-byte header, in
    // some tuple's stored word). The CRC covers the whole body, so the
    // damage surfaces as a checksum mismatch at the trailer.
    bytes[40] ^= 0x40;
    std::fs::write(&path, &bytes).expect("writes");
    let trailer = bytes.len() - 4;
    let err = open_err(&path, fp);
    assert!(
        err.contains("checksum mismatch") && err.contains(&format!("byte offset {trailer}")),
        "tuple bitflip must be rejected with the trailer offset: {err}"
    );
}

/// Bounded-memory soak: a page cache squeezed far below the data size
/// must never exceed its budget, no matter how hostile the probe
/// pattern, while still answering everything correctly.
#[test]
fn page_cache_stays_within_budget_under_random_load() {
    use stir::der::disk::DiskIndex;
    use stir::der::{IndexAdapter, Order};

    let dir = std::env::temp_dir().join("stir-storage-diff").join("soak");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    // A 220-node chain closes to ~24k path tuples — a run spanning
    // dozens of 16 KiB pages.
    let nodes = 220i32;
    let edges: Vec<Vec<Value>> = (0..nodes - 1)
        .map(|i| vec![Value::Number(i), Value::Number(i + 1)])
        .collect();
    let mut inputs = InputData::new();
    inputs.insert("e".into(), edges);
    let src = "\
        .decl e(x: number, y: number)\n.input e\n\
        .decl r(x: number, y: number)\n.output r\n\
        r(x, y) :- e(x, y).\n\
        r(x, z) :- r(x, y), e(y, z).\n";
    let engine = Engine::from_source(src).expect("compiles");
    let fp = wal::fingerprint(&engine.ram().to_string());
    let config = InterpreterConfig::optimized().with_storage(StorageBackend::Disk);
    let opts = PersistOptions {
        durability: wal::Durability::Batch,
        snapshot_interval: None,
    };
    let (mut r, _) =
        ResidentEngine::open(engine, config, &inputs, &dir, opts, None).expect("opens");
    let total = r.outputs()["r"].len();
    r.snapshot(None).expect("snapshots");
    drop(r);

    // Reopen the raw snapshot with a 4-page budget and hammer it.
    let budget = 4 * 16 * 1024;
    let snap =
        snap2::open_snapshot_v2(&dir.join(SNAPSHOT_FILE), fp, budget).expect("maps under budget");
    let rel = snap
        .relations
        .iter()
        .find(|rel| rel.name == "r" && !rel.runs.is_empty())
        .expect("r is run-backed");
    let cols = rel.runs[0].order.clone();
    let idx = DiskIndex::with_base(Order::new(cols.clone()), false, snap.base_run(rel, 0));
    assert_eq!(idx.len(), total, "base run holds the full closure");

    // Probes take source-order tuples (the adapter encodes them);
    // range bounds are in stored order, so a stored prefix `a` selects
    // every path leaving `a` (cols[0] == 0) or every path reaching
    // `a` (cols[0] == 1). On the chain closure r(x, y) ⟺ x < y.
    let mut state = 91u64;
    let mut hits = 0usize;
    for step in 0..5000 {
        let a = (lcg(&mut state) % nodes as u64) as u32;
        let b = (lcg(&mut state) % nodes as u64) as u32;
        if lcg(&mut state).is_multiple_of(2) {
            if idx.contains(&[a, b]) {
                hits += 1;
            }
            assert_eq!(idx.contains(&[a, b]), a < b, "probe ({a}, {b})");
        } else {
            let mut it = idx.range(&[a, 0], &[a, u32::MAX]);
            let mut n = 0usize;
            while it.next_tuple().is_some() {
                n += 1;
            }
            let expect = if cols[0] == 0 {
                (nodes - 1 - a as i32).max(0) as usize
            } else {
                a as usize
            };
            assert_eq!(n, expect, "row count for stored prefix {a}");
        }
        let resident = snap
            .file
            .stats()
            .resident_bytes
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(
            resident <= budget as u64,
            "step {step}: resident {resident} exceeds budget {budget}"
        );
    }
    assert!(hits > 0, "degenerate probe pattern");
    let stats = snap.file.stats();
    assert!(
        stats.evictions.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "a 4-page budget over a multi-page run must evict"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_wrong_program_fingerprint_is_rejected() {
    let (path, _, fp) = v2_fixture("wrong-fp");
    let err = open_err(&path, fp ^ 1);
    assert!(
        err.contains("fingerprint mismatch"),
        "foreign snapshot must be rejected: {err}"
    );
}
