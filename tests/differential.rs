//! Differential tests: every interpreter configuration must agree with
//! the independent naive reference evaluator on randomized programs.

mod common;

use common::{eval_reference, to_tuples, Db};
use std::collections::BTreeSet;
use stir::{Engine, InputData, InterpreterConfig, Value};
use stir_frontend::parse_and_check;

/// Runs one program through the reference evaluator and every interpreter
/// configuration, comparing the named outputs.
fn check(src: &str, inputs: &Db, outputs: &[&str]) {
    let checked = parse_and_check(src).expect("checks");
    let reference = eval_reference(&checked, inputs);

    let engine = Engine::from_source(src).expect("compiles");
    let engine_inputs: InputData = inputs
        .iter()
        .map(|(name, rows)| {
            (
                name.clone(),
                rows.iter()
                    .map(|t| t.iter().map(|&v| Value::Number(v as i32)).collect())
                    .collect(),
            )
        })
        .collect();

    for config in [
        InterpreterConfig::optimized(),
        InterpreterConfig::dynamic_adapter(),
        InterpreterConfig::unoptimized(),
        InterpreterConfig::legacy(),
        InterpreterConfig {
            super_instructions: false,
            ..InterpreterConfig::optimized()
        },
        InterpreterConfig {
            static_reordering: false,
            ..InterpreterConfig::optimized()
        },
        InterpreterConfig {
            outlined_handlers: false,
            ..InterpreterConfig::optimized()
        },
        InterpreterConfig {
            buffered_iterators: false,
            ..InterpreterConfig::dynamic_adapter()
        },
    ] {
        let got = engine.run(config, &engine_inputs).expect("evaluates");
        for &rel in outputs {
            let engine_rows = to_tuples(&got.outputs[rel]);
            assert_eq!(
                engine_rows, reference[rel],
                "relation `{rel}` differs from reference under {config:?}"
            );
        }
    }
}

/// A deterministic pseudo-random edge list.
fn edges(n_nodes: i64, n_edges: usize, seed: u64) -> BTreeSet<Vec<i64>> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64
    };
    (0..n_edges)
        .map(|_| vec![next().rem_euclid(n_nodes), next().rem_euclid(n_nodes)])
        .collect()
}

#[test]
fn transitive_closure_random_graphs() {
    const SRC: &str = "\
        .decl e(x: number, y: number)\n.input e\n\
        .decl p(x: number, y: number)\n.output p\n\
        p(x, y) :- e(x, y).\n\
        p(x, z) :- p(x, y), e(y, z).\n";
    for seed in 1..=5 {
        let mut db = Db::new();
        db.insert("e".into(), edges(12, 30, seed));
        check(SRC, &db, &["p"]);
    }
}

#[test]
fn same_generation() {
    const SRC: &str = "\
        .decl parent(x: number, y: number)\n.input parent\n\
        .decl sg(x: number, y: number)\n.output sg\n\
        sg(x, x) :- parent(x, _).\n\
        sg(x, x) :- parent(_, x).\n\
        sg(x, y) :- parent(xp, x), sg(xp, yp), parent(yp, y).\n";
    for seed in 1..=3 {
        let mut db = Db::new();
        db.insert("parent".into(), edges(10, 14, seed * 7));
        check(SRC, &db, &["sg"]);
    }
}

#[test]
fn stratified_negation_over_recursive_stratum() {
    // Negation over a *complete* recursive relation: unreachable pairs.
    const SRC: &str = "\
        .decl move(x: number, y: number)\n.input move\n\
        .decl node(x: number)\n\
        .decl reach(x: number, y: number)\n.output reach\n\
        .decl cut(x: number, y: number)\n.output cut\n\
        node(x) :- move(x, _).\n\
        node(x) :- move(_, x).\n\
        reach(x, y) :- move(x, y).\n\
        reach(x, z) :- reach(x, y), move(y, z).\n\
        cut(x, y) :- node(x), node(y), !reach(x, y), x != y.\n";
    for seed in 1..=4 {
        let mut db = Db::new();
        db.insert("move".into(), edges(16, 20, seed * 13));
        check(SRC, &db, &["reach", "cut"]);
    }
}

#[test]
fn arithmetic_bindings_and_filters() {
    const SRC: &str = "\
        .decl e(x: number, y: number)\n.input e\n\
        .decl r(a: number, b: number, c: number)\n.output r\n\
        r(x, y, z) :- e(x, y), z = (x * 3 + y) band 255, z % 2 = 0, x != y.\n";
    let mut db = Db::new();
    db.insert("e".into(), edges(40, 60, 99));
    check(SRC, &db, &["r"]);
}

#[test]
fn multi_column_joins_and_secondary_indexes() {
    const SRC: &str = "\
        .decl t(a: number, b: number, c: number)\n.input t\n\
        .decl j(a: number, c1: number, c2: number)\n.output j\n\
        .decl k(c: number)\n.output k\n\
        j(a, c1, c2) :- t(a, b, c1), t(b, a, c2).\n\
        k(c) :- t(_, _, c), t(c, _, _).\n";
    let mut state = 5u64;
    let mut next = move || {
        state = state.wrapping_mul(48271) % 0x7fff_ffff;
        (state % 8) as i64
    };
    let rows: BTreeSet<Vec<i64>> = (0..60).map(|_| vec![next(), next(), next()]).collect();
    let mut db = Db::new();
    db.insert("t".into(), rows);
    check(SRC, &db, &["j", "k"]);
}

#[test]
fn mutually_recursive_strata() {
    const SRC: &str = "\
        .decl base(x: number, y: number)\n.input base\n\
        .decl a(x: number, y: number)\n.output a\n\
        .decl b(x: number, y: number)\n.output b\n\
        a(x, y) :- base(x, y).\n\
        b(x, z) :- a(x, y), base(y, z).\n\
        a(x, z) :- b(x, y), base(y, z), x <= y.\n";
    for seed in 1..=3 {
        let mut db = Db::new();
        db.insert("base".into(), edges(9, 18, seed * 31));
        check(SRC, &db, &["a", "b"]);
    }
}

#[test]
fn wildcards_and_constants_in_patterns() {
    const SRC: &str = "\
        .decl t(a: number, b: number, c: number)\n.input t\n\
        .decl r(b: number)\n.output r\n\
        .decl s(a: number, c: number)\n.output s\n\
        r(b) :- t(3, b, _).\n\
        s(a, c) :- t(a, 5, c), !t(c, 5, a).\n";
    let mut db = Db::new();
    let rows: BTreeSet<Vec<i64>> = (0..7)
        .flat_map(|a| (0..7).map(move |c| vec![a, 5, c]))
        .chain((0..7).map(|b| vec![3, b, 0]))
        .collect();
    db.insert("t".into(), rows);
    check(SRC, &db, &["r", "s"]);
}
