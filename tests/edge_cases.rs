//! Edge-case and failure-injection tests across the whole pipeline.

use stir::{Engine, InputData, InterpreterConfig, Value};

fn run(src: &str) -> stir::EvalOutcome {
    Engine::from_source(src)
        .expect("compiles")
        .run(InterpreterConfig::optimized(), &InputData::new())
        .expect("runs")
}

fn run_err(src: &str) -> String {
    match Engine::from_source(src) {
        Err(e) => e.to_string(),
        Ok(engine) => engine
            .run(InterpreterConfig::optimized(), &InputData::new())
            .expect_err("expected failure")
            .to_string(),
    }
}

#[test]
fn buffered_iterator_boundaries_through_the_engine() {
    // Exactly 127 / 128 / 129 tuples through the dynamic (buffered) path —
    // the buffer refill boundary of the paper's §3 mechanism.
    for n in [127u32, 128, 129, 256, 257] {
        let facts: String = (0..n).map(|i| format!("e({i}).\n")).collect();
        let src =
            format!(".decl e(x: number)\n.decl p(x: number)\n.output p\n{facts}p(x) :- e(x).\n");
        let engine = Engine::from_source(&src).expect("compiles");
        for config in [
            InterpreterConfig::dynamic_adapter(),
            InterpreterConfig {
                buffered_iterators: false,
                ..InterpreterConfig::dynamic_adapter()
            },
        ] {
            let out = engine.run(config, &InputData::new()).expect("runs");
            assert_eq!(out.outputs["p"].len(), n as usize, "n = {n}");
        }
    }
}

#[test]
fn arity_sixteen_relations_work() {
    let cols: Vec<String> = (0..16).map(|i| format!("c{i}: number")).collect();
    let vals: Vec<String> = (0..16).map(|i| i.to_string()).collect();
    let vars: Vec<String> = (0..16).map(|i| format!("v{i}")).collect();
    let src = format!(
        ".decl wide({})\n.decl out({})\n.output out\n\
         wide({}).\n\
         out({}) :- wide({}).\n",
        cols.join(", "),
        cols.join(", "),
        vals.join(", "),
        vars.join(", "),
        vars.join(", "),
    );
    let out = run(&src);
    assert_eq!(out.outputs["out"].len(), 1);
    assert_eq!(out.outputs["out"][0][15], Value::Number(15));
}

#[test]
fn seventeen_columns_are_rejected_cleanly() {
    let cols: Vec<String> = (0..17).map(|i| format!("c{i}: number")).collect();
    let src = format!(".decl too_wide({})\n", cols.join(", "));
    let err = run_err(&src);
    assert!(err.contains("arity 17"), "{err}");
}

#[test]
fn float_index_order_is_bit_order() {
    // The documented de-specialization trade-off: floats are ordered by
    // bit pattern inside indexes, but *comparisons* use real float
    // semantics. Negative floats therefore compare correctly in filters.
    let src = "\
        .decl m(f: float)\n.decl neg(f: float)\n.output neg\n\
        m(-2.5). m(-0.5). m(0.5). m(2.5).\n\
        neg(f) :- m(f), f < 0.0.\n";
    let out = run(src);
    assert_eq!(out.outputs["neg"].len(), 2);
}

#[test]
fn self_join_with_repeated_variable() {
    // e(x, x) needs an intra-tuple equality filter.
    let src = "\
        .decl e(x: number, y: number)\n.decl loop_node(x: number)\n.output loop_node\n\
        e(1, 1). e(1, 2). e(3, 3).\n\
        loop_node(x) :- e(x, x).\n";
    let out = run(src);
    assert_eq!(
        out.outputs["loop_node"],
        vec![vec![Value::Number(1)], vec![Value::Number(3)]]
    );
}

#[test]
fn expression_arguments_in_body_atoms() {
    // e(x + 1, x) requires the complex argument to become a filter.
    let src = "\
        .decl e(a: number, b: number)\n.decl succ(x: number)\n.output succ\n\
        e(2, 1). e(5, 3). e(9, 8).\n\
        succ(x) :- e(x + 1, x).\n";
    let out = run(src);
    assert_eq!(
        out.outputs["succ"],
        vec![vec![Value::Number(1)], vec![Value::Number(8)]]
    );
}

#[test]
fn negation_with_prefix_wildcards() {
    let src = "\
        .decl e(a: number, b: number)\n.decl n(x: number)\n.decl lonely(x: number)\n.output lonely\n\
        n(1). n(2). n(3).\n\
        e(2, 9).\n\
        lonely(x) :- n(x), !e(x, _).\n";
    let out = run(src);
    assert_eq!(
        out.outputs["lonely"],
        vec![vec![Value::Number(1)], vec![Value::Number(3)]]
    );
}

#[test]
fn unstratifiable_and_ungrounded_programs_fail_cleanly() {
    assert!(
        run_err(".decl p(x: number)\n.decl s(x: number)\np(x) :- s(x), !p(x).\n")
            .contains("not stratifiable")
    );
    assert!(run_err(".decl p(x: number)\np(y) :- p(x).\n").contains("grounded"));
    assert!(run_err(".decl p(x: number)\nq(1).\n").contains("undeclared"));
}

#[test]
fn division_by_zero_in_deep_recursion_propagates() {
    let src = "\
        .decl e(x: number)\n.decl p(x: number)\n.output p\n\
        e(4). e(2). e(0).\n\
        p(8).\n\
        p(y) :- p(x), e(d), y = x / d.\n";
    let err = run_err(src);
    assert!(err.contains("division by zero"), "{err}");
}

#[test]
fn duplicate_derivations_converge() {
    // Many rules deriving the same tuples must still reach a fixpoint.
    let src = "\
        .decl e(x: number, y: number)\n.decl p(x: number, y: number)\n.output p\n\
        e(1, 2). e(2, 1).\n\
        p(x, y) :- e(x, y).\n\
        p(x, y) :- e(y, x).\n\
        p(x, z) :- p(x, y), p(y, z).\n\
        p(x, z) :- p(z, x), e(x, x) ; p(x, z).\n";
    let out = run(src);
    assert_eq!(out.outputs["p"].len(), 4); // {1,2} × {1,2}
}

#[test]
fn large_symbol_churn_via_functors() {
    // cat() interns fresh strings at runtime; make sure the symbol table
    // grows safely and outputs decode.
    let n = 500;
    let facts: String = (0..n).map(|i| format!("num({i}).\n")).collect();
    let src = format!(
        ".decl num(x: number)\n.decl named(s: symbol)\n.output named\n\
         {facts}\
         named(s) :- num(x), s = cat(\"id_\", to_string(x)).\n"
    );
    let out = run(&src);
    assert_eq!(out.outputs["named"].len(), n);
    assert!(out.outputs["named"]
        .iter()
        .any(|r| r[0] == Value::Symbol("id_499".into())));
}

#[test]
fn substr_and_to_number_round_trip() {
    let src = r#"
        .decl raw(s: symbol)
        .decl parsed(n: number)
        .output parsed
        raw("x=42"). raw("x=-7").
        parsed(n) :- raw(s), n = to_number(substr(s, 2, 8)).
    "#;
    let out = run(src);
    // Rows sort by stored bit pattern, so 42 precedes -7 (two's complement).
    assert_eq!(
        out.outputs["parsed"],
        vec![vec![Value::Number(42)], vec![Value::Number(-7)]]
    );
}

#[test]
fn aggregates_nested_in_arithmetic() {
    let src = "\
        .decl e(x: number)\n.decl r(v: number)\n.output r\n\
        e(1). e(2). e(3).\n\
        r(v) :- v = 10 * (count : { e(_) }) + (max x : { e(x) }).\n";
    let out = run(src);
    assert_eq!(out.outputs["r"], vec![vec![Value::Number(33)]]);
}

#[test]
fn comments_and_formatting_robustness() {
    let src = "\
        // line comment\n\
        .decl e(x: number) /* inline */\n\
        .decl p(x: number)\n.output p\n\
        /* multi\n line */ e(1).\n\
        p(x) /* anywhere */ :- e(x).\n";
    let out = run(src);
    assert_eq!(out.outputs["p"].len(), 1);
}

#[test]
fn outputs_with_no_rules_are_facts_only() {
    let src = ".decl p(x: number)\n.output p\np(3). p(1). p(2).\n";
    let out = run(src);
    assert_eq!(
        out.outputs["p"],
        vec![
            vec![Value::Number(1)],
            vec![Value::Number(2)],
            vec![Value::Number(3)]
        ]
    );
}
