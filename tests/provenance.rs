//! Proof-tree validity for the provenance subsystem.
//!
//! Every `.explain` tree handed out by the engine is re-checked by an
//! independent verifier that shares no code with the matcher:
//!
//! 1. **Membership** — every node's tuple (and every premise) must be
//!    queryable in the live database.
//! 2. **Height discipline** — premises must have strictly smaller
//!    heights than their conclusion; only inputs sit at height 0.
//! 3. **Rule re-instantiation** — for each non-aggregate internal node,
//!    a tiny program holding just the claimed rule and the premise
//!    tuples as ground facts is evaluated from scratch; the node's fact
//!    must be derivable from exactly those premises.
//!
//! Programs × facts are seeded (proptest is not vendored); every shape
//! runs in all four interpreter modes at jobs 1 and 4. A final
//! differential pins the off-mode contract: with provenance off, the
//! derived database and the profile are indistinguishable from a build
//! that never heard of annotations.

use std::collections::BTreeSet;
use stir::{
    profile_json, Engine, ExplainLimits, InputData, InterpreterConfig, LogLevel, ProofNode,
    ResidentEngine, Telemetry, Value,
};

/// One test program: full source for the engine plus bare declarations
/// (no directives) for the mini re-instantiation programs.
struct Shape {
    name: &'static str,
    src: &'static str,
    mini_decls: &'static str,
    /// Relations whose proofs we walk (the program's `.output`s).
    outputs: &'static [&'static str],
}

const SHAPES: &[Shape] = &[
    Shape {
        name: "transitive-closure",
        src: "\
            .decl e(x: number, y: number)\n.input e\n\
            .decl p(x: number, y: number)\n.output p\n\
            p(x, y) :- e(x, y).\n\
            p(x, z) :- p(x, y), e(y, z).\n",
        mini_decls: "\
            .decl e(x: number, y: number)\n\
            .decl p(x: number, y: number)\n",
        outputs: &["p"],
    },
    Shape {
        name: "negation-arithmetic",
        src: "\
            .decl e(x: number, y: number)\n.input e\n\
            .decl f(x: number, y: number)\n.input f\n\
            .decl r(x: number, y: number)\n.output r\n\
            r(x, y) :- e(x, y), !f(x, y).\n\
            r(x, z) :- r(x, y), e(y, z), x < z.\n\
            r(y, k) :- e(x, y), k = x + 1, x < 5.\n",
        mini_decls: "\
            .decl e(x: number, y: number)\n\
            .decl f(x: number, y: number)\n\
            .decl r(x: number, y: number)\n",
        outputs: &["r"],
    },
    Shape {
        name: "aggregate",
        src: "\
            .decl e(x: number, y: number)\n.input e\n\
            .decl s(x: number, v: number)\n.output s\n\
            .decl big(x: number)\n.output big\n\
            s(x, v) :- e(x, _), v = sum y : { e(x, y) }.\n\
            big(x) :- s(x, v), v > 5.\n",
        mini_decls: "\
            .decl e(x: number, y: number)\n\
            .decl s(x: number, v: number)\n\
            .decl big(x: number)\n",
        outputs: &["s", "big"],
    },
    Shape {
        name: "eqrel",
        src: "\
            .decl e(x: number, y: number)\n.input e\n\
            .decl same(x: number, y: number) eqrel\n\
            .decl r(x: number, y: number)\n.output r\n\
            same(x, y) :- e(x, y).\n\
            r(x, y) :- same(x, y), x < y.\n",
        mini_decls: "\
            .decl e(x: number, y: number)\n\
            .decl same(x: number, y: number) eqrel\n\
            .decl r(x: number, y: number)\n",
        outputs: &["r"],
    },
    Shape {
        name: "mutual-recursion",
        src: "\
            .decl e(x: number, y: number)\n.input e\n\
            .decl ev(x: number, y: number)\n.output ev\n\
            .decl od(x: number, y: number)\n.output od\n\
            ev(x, y) :- e(x, y).\n\
            od(x, z) :- ev(x, y), e(y, z).\n\
            ev(x, z) :- od(x, y), e(y, z).\n",
        mini_decls: "\
            .decl e(x: number, y: number)\n\
            .decl ev(x: number, y: number)\n\
            .decl od(x: number, y: number)\n",
        outputs: &["ev", "od"],
    },
];

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pairs(state: &mut u64, n: usize, dom: u64) -> Vec<Vec<Value>> {
    (0..n)
        .map(|_| {
            vec![
                Value::Number((splitmix(state) % dom) as i32),
                Value::Number((splitmix(state) % dom) as i32),
            ]
        })
        .collect()
}

fn modes() -> [(&'static str, InterpreterConfig); 4] {
    [
        ("sti", InterpreterConfig::optimized()),
        ("dynamic", InterpreterConfig::dynamic_adapter()),
        ("unopt", InterpreterConfig::unoptimized()),
        ("legacy", InterpreterConfig::legacy()),
    ]
}

/// Decodes a number-typed encoded tuple back to [`Value`]s. All shapes
/// above are number-only, so no symbol table is needed.
fn decode(tuple: &[u32]) -> Vec<Value> {
    tuple.iter().map(|&b| Value::Number(b as i32)).collect()
}

fn fact_line(rel: &str, tuple: &[u32]) -> String {
    let vals: Vec<String> = tuple.iter().map(|&b| (b as i32).to_string()).collect();
    format!("{rel}({}).", vals.join(", "))
}

/// The independent proof checker (see the module docs for the three
/// obligations). Returns the number of nodes visited.
fn check_tree(engine: &ResidentEngine, shape: &Shape, node: &ProofNode, ctx: &str) -> usize {
    let meta = &engine.ram().relations[node.rel.0];
    let name = meta.name.clone();

    // (1) Membership: the fact must be in the live database.
    let pattern: Vec<Option<Value>> = decode(&node.tuple).into_iter().map(Some).collect();
    let rows = engine
        .query(&name, &pattern, None)
        .unwrap_or_else(|e| panic!("{ctx}: membership query for {name} failed: {e}"));
    assert_eq!(
        rows.len(),
        1,
        "{ctx}: node {name}{:?} is not in the database",
        node.tuple
    );

    // (2) Height discipline.
    if node.is_input() {
        assert_eq!(node.height, 0, "{ctx}: input {name}{:?}", node.tuple);
        assert!(node.premises.is_empty(), "{ctx}: input node with premises");
    } else {
        assert!(
            node.height >= 1,
            "{ctx}: derived {name}{:?} at height 0",
            node.tuple
        );
        for p in &node.premises {
            assert!(
                p.height < node.height,
                "{ctx}: premise height {} >= conclusion height {} for {name}{:?}",
                p.height,
                node.height,
                node.tuple
            );
        }
    }

    // (3) Rule re-instantiation, for transparent non-aggregate nodes.
    // Aggregate rules (their label shows the `{ ... }` body) range over
    // the whole relation, which premise facts alone cannot reproduce;
    // the engine recomputes those during matching instead.
    if !node.is_input() && !node.opaque && !node.truncated {
        let rule = node
            .label
            .as_deref()
            .unwrap_or_else(|| panic!("{ctx}: derived node without a rule label"));
        if !rule.contains('{') {
            let mut mini = String::from(shape.mini_decls);
            mini.push_str(&format!(".output {name}\n"));
            for p in &node.premises {
                let p_name = &engine.ram().relations[p.rel.0].name;
                mini.push_str(&fact_line(p_name, &p.tuple));
                mini.push('\n');
            }
            mini.push_str(rule);
            mini.push('\n');
            let out = Engine::from_source(&mini)
                .unwrap_or_else(|e| panic!("{ctx}: mini program rejected: {e}\n{mini}"))
                .run(InterpreterConfig::optimized(), &InputData::new())
                .unwrap_or_else(|e| panic!("{ctx}: mini program failed: {e}\n{mini}"));
            let want = decode(&node.tuple);
            assert!(
                out.outputs[&name].contains(&want),
                "{ctx}: rule `{rule}` does not derive {name}{want:?} from its premises\n{mini}"
            );
        }
    }

    1 + node
        .premises
        .iter()
        .map(|p| check_tree(engine, shape, p, ctx))
        .sum::<usize>()
}

#[test]
fn every_explain_tree_passes_the_independent_checker() {
    let mut trees = 0usize;
    for shape in SHAPES {
        for seed in 1u64..=4 {
            let mut state = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(shape.name.len() as u64);
            let mut inputs = InputData::new();
            inputs.insert("e".into(), pairs(&mut state, 12, 6));
            if shape.src.contains(".input f") {
                inputs.insert("f".into(), pairs(&mut state, 6, 6));
            }
            for (mode, config) in modes() {
                for jobs in [1usize, 4] {
                    let ctx = format!("shape {} seed {seed} mode {mode} jobs {jobs}", shape.name);
                    let config = config.with_jobs(jobs).with_provenance();
                    let engine = ResidentEngine::from_source(shape.src, config, &inputs, None)
                        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                    for rel in shape.outputs {
                        for row in &engine.outputs()[*rel] {
                            let node = engine
                                .explain(rel, row, ExplainLimits::default(), None)
                                .unwrap_or_else(|e| panic!("{ctx}: explain {rel}{row:?}: {e}"));
                            trees += check_tree(&engine, shape, &node, &ctx);
                        }
                    }
                }
            }
        }
    }
    assert!(trees > 500, "checker degenerated: only {trees} nodes seen");
}

/// With provenance off, evaluation must be indistinguishable from a
/// build without the subsystem: same derived database, same profile
/// counts, and no provenance-flavoured keys in the machine-readable
/// profile.
#[test]
fn provenance_off_is_invisible_and_on_changes_no_tuples() {
    let shape = &SHAPES[1]; // negation + arithmetic exercises most paths
    let mut state = 99u64;
    let mut inputs = InputData::new();
    inputs.insert("e".into(), pairs(&mut state, 14, 6));
    inputs.insert("f".into(), pairs(&mut state, 7, 6));

    let engine = Engine::from_source(shape.src).expect("compiles");
    for (mode, config) in modes() {
        let off = engine
            .run(config.with_profile(), &inputs)
            .unwrap_or_else(|e| panic!("mode {mode} off: {e}"));
        let on = engine
            .run(config.with_profile().with_provenance(), &inputs)
            .unwrap_or_else(|e| panic!("mode {mode} on: {e}"));
        assert_eq!(
            sorted(&off.outputs["r"]),
            sorted(&on.outputs["r"]),
            "mode {mode}: annotations changed the derived database"
        );
        let (po, pn) = (off.profile.expect("off"), on.profile.expect("on"));
        assert_eq!(po.total_inserts, pn.total_inserts, "mode {mode}");
        assert_eq!(po.relations, pn.relations, "mode {mode}");
        assert_eq!(po.dispatches, pn.dispatches, "mode {mode}");
    }

    // The machine-readable profile of a provenance-off serving session
    // must not grow any explain/provenance keys.
    let tel = Telemetry::new(true, true, LogLevel::Off);
    let resident = ResidentEngine::from_source(
        shape.src,
        InterpreterConfig::optimized().with_profile(),
        &inputs,
        Some(&tel),
    )
    .expect("builds");
    resident.sync_metrics(&tel);
    let json = profile_json(
        resident.ram(),
        resident.initial_profile(),
        &tel,
        std::time::Duration::from_millis(1),
    )
    .render();
    assert!(
        !json.contains("explain") && !json.contains("provenance"),
        "provenance-off profile JSON leaks new keys:\n{json}"
    );
}

fn sorted(rows: &[Vec<Value>]) -> BTreeSet<String> {
    rows.iter()
        .map(|r| {
            r.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect()
}
