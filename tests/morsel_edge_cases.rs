//! Edge cases for morsel-driven parallel scans: empty and single-tuple
//! relations, morsel targets far larger than the data (the sequential
//! small-scan fallback), nullary/unary relations, forced stealing via
//! tiny morsels, and the `STIR_MORSEL_SIZE` environment knob.

use std::collections::BTreeSet;
use stir::{Engine, InputData, InterpreterConfig, Value};

const TC: &str = ".decl e(x: number, y: number)\n.input e\n\
                  .decl p(x: number, y: number)\n.output p\n\
                  p(x, y) :- e(x, y).\n\
                  p(x, z) :- p(x, y), e(y, z).\n";

fn all_modes() -> [(&'static str, InterpreterConfig); 4] {
    [
        ("sti", InterpreterConfig::optimized()),
        ("dynamic", InterpreterConfig::dynamic_adapter()),
        ("unopt", InterpreterConfig::unoptimized()),
        ("legacy", InterpreterConfig::legacy()),
    ]
}

fn chain(n: u32) -> InputData {
    let mut inputs = InputData::new();
    inputs.insert(
        "e".into(),
        (0..n)
            .map(|i| vec![Value::Number(i as i32), Value::Number(i as i32 + 1)])
            .collect(),
    );
    inputs
}

fn sorted(rows: &[Vec<Value>]) -> BTreeSet<String> {
    rows.iter()
        .map(|r| {
            r.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect()
}

#[test]
fn empty_relations_survive_every_morsel_size() {
    let engine = Engine::from_source(TC).expect("compiles");
    let mut inputs = InputData::new();
    inputs.insert("e".into(), Vec::new());
    for (mode, config) in all_modes() {
        for morsel in [1usize, 2, 1024, usize::MAX] {
            let out = engine
                .run(config.with_jobs(7).with_morsel_size(morsel), &inputs)
                .unwrap_or_else(|e| panic!("mode {mode} morsel {morsel}: {e}"));
            assert!(out.outputs["p"].is_empty(), "mode {mode} morsel {morsel}");
        }
    }
}

#[test]
fn oversize_morsel_target_routes_through_the_small_scan_fallback() {
    // A target far larger than any relation means every eligible scan
    // takes the coordinator-side sequential path: the report still
    // appears (small scans are counted) but no worker fan-out happens.
    let engine = Engine::from_source(TC).expect("compiles");
    let inputs = chain(30);
    let baseline = engine
        .run(InterpreterConfig::optimized().with_jobs(1), &inputs)
        .expect("sequential runs");
    for (mode, config) in all_modes() {
        let out = engine
            .run(config.with_jobs(4).with_morsel_size(usize::MAX), &inputs)
            .unwrap_or_else(|e| panic!("mode {mode}: {e}"));
        assert_eq!(
            sorted(&baseline.outputs["p"]),
            sorted(&out.outputs["p"]),
            "mode {mode}"
        );
        let par = out
            .parallel
            .unwrap_or_else(|| panic!("mode {mode}: small scans should still be reported"));
        assert_eq!(par.scans, 0, "mode {mode}: nothing should fan out");
        assert!(par.small_scans > 0, "mode {mode}");
        assert_eq!(par.morsels(), 0, "mode {mode}");
        assert_eq!(par.steals(), 0, "mode {mode}");
    }
}

#[test]
fn single_tuple_relations_are_correct_at_every_morsel_size() {
    let engine = Engine::from_source(TC).expect("compiles");
    let inputs = chain(1);
    for (mode, config) in all_modes() {
        for morsel in [1usize, 2, usize::MAX] {
            let out = engine
                .run(config.with_jobs(4).with_morsel_size(morsel), &inputs)
                .unwrap_or_else(|e| panic!("mode {mode} morsel {morsel}: {e}"));
            assert_eq!(
                sorted(&out.outputs["p"]),
                BTreeSet::from(["0\t1".to_string()]),
                "mode {mode} morsel {morsel}"
            );
        }
    }
}

#[test]
fn nullary_and_unary_relations_run_under_parallel_configs() {
    // Nullary scans never fan out (there is no tuple axis to split) and
    // unary relations exercise the arity-1 chunking path; both must be
    // correct under an aggressively parallel configuration.
    let src = ".decl flag()\n.decl n(x: number)\n.input n\n\
               .decl ok(x: number)\n.output ok\n\
               flag().\n\
               ok(x) :- flag(), n(x), x < 5.\n";
    let engine = Engine::from_source(src).expect("compiles");
    let mut inputs = InputData::new();
    inputs.insert(
        "n".into(),
        (0..20).map(|i| vec![Value::Number(i)]).collect(),
    );
    for (mode, config) in all_modes() {
        let out = engine
            .run(config.with_jobs(7).with_morsel_size(1), &inputs)
            .unwrap_or_else(|e| panic!("mode {mode}: {e}"));
        assert_eq!(
            sorted(&out.outputs["ok"]),
            (0..5).map(|i| i.to_string()).collect(),
            "mode {mode}"
        );
    }
}

#[test]
fn tiny_morsels_force_fan_out_and_stealing() {
    // Single-tuple morsels on a 64-edge graph: every eligible scan
    // splits into many more morsels than workers, so the scheduler must
    // fan out; delivered-tuple totals are exact. Whether a *steal*
    // happens on a given run depends on thread scheduling, so it is
    // asserted over a batch of runs (worker 0 draining a neighbour's
    // range counts, which in practice happens on the first run).
    let engine = Engine::from_source(TC).expect("compiles");
    let inputs = chain(64);
    let config = InterpreterConfig::optimized()
        .with_jobs(4)
        .with_morsel_size(1);
    let baseline = engine
        .run(InterpreterConfig::optimized().with_jobs(1), &inputs)
        .expect("sequential runs");
    let mut stole = false;
    for attempt in 0..32 {
        let out = engine
            .run(config, &inputs)
            .unwrap_or_else(|e| panic!("attempt {attempt}: {e}"));
        assert_eq!(
            sorted(&baseline.outputs["p"]),
            sorted(&out.outputs["p"]),
            "attempt {attempt}"
        );
        let par = out.parallel.expect("parallel scans ran");
        assert!(par.scans > 0, "attempt {attempt}: no scan fanned out");
        assert!(
            par.morsels() > par.scans,
            "attempt {attempt}: single-tuple morsels should outnumber scans"
        );
        if par.steals() > 0 {
            stole = true;
            break;
        }
    }
    assert!(stole, "no steal observed across 32 runs of 1-tuple morsels");
}

#[test]
fn morsel_size_env_knob_feeds_the_default_config() {
    // Serialized within this test: set, observe, clean up. Other tests
    // in this binary pass explicit `with_morsel_size`, so a concurrent
    // reader of the default cannot be perturbed by the window below.
    std::env::set_var("STIR_MORSEL_SIZE", "3");
    let from_env = InterpreterConfig::optimized();
    std::env::set_var("STIR_MORSEL_SIZE", "0");
    let clamped = InterpreterConfig::optimized();
    std::env::set_var("STIR_MORSEL_SIZE", "not-a-number");
    let garbage = InterpreterConfig::optimized();
    std::env::remove_var("STIR_MORSEL_SIZE");
    let plain = InterpreterConfig::optimized();

    assert_eq!(from_env.morsel_size, 3, "env knob respected");
    assert_eq!(
        clamped.morsel_size,
        stir::core::config::DEFAULT_MORSEL_SIZE,
        "zero is rejected, not clamped to 1"
    );
    assert_eq!(
        garbage.morsel_size,
        stir::core::config::DEFAULT_MORSEL_SIZE,
        "unparsable values fall back to the default"
    );
    assert_eq!(plain.morsel_size, stir::core::config::DEFAULT_MORSEL_SIZE);

    // And the env-derived size actually drives evaluation.
    let engine = Engine::from_source(TC).expect("compiles");
    let inputs = chain(16);
    let seq = engine
        .run(from_env.with_jobs(1), &inputs)
        .expect("sequential runs");
    let par = engine
        .run(from_env.with_jobs(3), &inputs)
        .expect("parallel runs");
    assert_eq!(sorted(&seq.outputs["p"]), sorted(&par.outputs["p"]));
    assert!(par.parallel.expect("report").scans > 0, "16 > 3 fans out");
}
