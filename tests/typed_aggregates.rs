//! Aggregates over every attribute type, across interpreter configs and
//! against the synthesizer's compiled semantics.

use stir::{Engine, InputData, InterpreterConfig, Value};

fn run(src: &str) -> stir::EvalOutcome {
    Engine::from_source(src)
        .expect("compiles")
        .run(InterpreterConfig::optimized(), &InputData::new())
        .expect("runs")
}

#[test]
fn unsigned_aggregates_use_unsigned_comparisons() {
    let src = "\
        .decl m(u: unsigned)\n\
        .decl lo(u: unsigned)\n.decl hi(u: unsigned)\n.decl s(u: unsigned)\n\
        .output lo\n.output hi\n.output s\n\
        m(1). m(4000000000). m(7).\n\
        lo(v) :- v = min u : { m(u) }.\n\
        hi(v) :- v = max u : { m(u) }.\n\
        s(v) :- v = sum u : { m(u) }.\n";
    let out = run(src);
    assert_eq!(out.outputs["lo"], vec![vec![Value::Unsigned(1)]]);
    assert_eq!(
        out.outputs["hi"],
        vec![vec![Value::Unsigned(4_000_000_000)]]
    );
    // 4000000008 wraps in u32? No: 4_000_000_000 + 8 < u32::MAX.
    assert_eq!(out.outputs["s"], vec![vec![Value::Unsigned(4_000_000_008)]]);
}

#[test]
fn float_aggregates_use_float_semantics() {
    let src = "\
        .decl m(f: float)\n\
        .decl lo(f: float)\n.decl hi(f: float)\n.decl s(f: float)\n\
        .output lo\n.output hi\n.output s\n\
        m(-2.5). m(0.25). m(10.0).\n\
        lo(v) :- v = min f : { m(f) }.\n\
        hi(v) :- v = max f : { m(f) }.\n\
        s(v) :- v = sum f : { m(f) }.\n";
    let out = run(src);
    assert_eq!(out.outputs["lo"], vec![vec![Value::Float(-2.5)]]);
    assert_eq!(out.outputs["hi"], vec![vec![Value::Float(10.0)]]);
    assert_eq!(out.outputs["s"], vec![vec![Value::Float(7.75)]]);
}

#[test]
fn signed_min_max_handle_negatives() {
    let src = "\
        .decl m(n: number)\n\
        .decl lo(n: number)\n.decl hi(n: number)\n\
        .output lo\n.output hi\n\
        m(-5). m(3). m(-100). m(99).\n\
        lo(v) :- v = min n : { m(n) }.\n\
        hi(v) :- v = max n : { m(n) }.\n";
    let out = run(src);
    assert_eq!(out.outputs["lo"], vec![vec![Value::Number(-100)]]);
    assert_eq!(out.outputs["hi"], vec![vec![Value::Number(99)]]);
}

#[test]
fn keyed_aggregates_respect_groups_across_configs() {
    let src = "\
        .decl sale(region: number, amount: number)\n\
        .decl mx(region: number, m: number)\n\
        .output mx\n\
        sale(1, 5). sale(1, 50). sale(2, 7). sale(3, 1). sale(3, 2). sale(3, 3).\n\
        mx(r, m) :- sale(r, _), m = max a : { sale(r, a) }.\n";
    let engine = Engine::from_source(src).expect("compiles");
    let expected = vec![
        vec![Value::Number(1), Value::Number(50)],
        vec![Value::Number(2), Value::Number(7)],
        vec![Value::Number(3), Value::Number(3)],
    ];
    for config in [
        InterpreterConfig::optimized(),
        InterpreterConfig::dynamic_adapter(),
        InterpreterConfig::unoptimized(),
        InterpreterConfig::legacy(),
    ] {
        let out = engine.run(config, &InputData::new()).expect("runs");
        assert_eq!(out.outputs["mx"], expected, "{config:?}");
    }
}

#[test]
fn aggregate_over_aggregate_strata() {
    // An aggregate over a relation that is itself aggregate-defined:
    // two stratification layers of negative edges.
    let src = "\
        .decl raw(k: number, v: number)\n\
        .decl per_key(k: number, s: number)\n\
        .decl best(m: number)\n\
        .output best\n\
        raw(1, 10). raw(1, 20). raw(2, 40). raw(2, 1).\n\
        per_key(k, s) :- raw(k, _), s = sum v : { raw(k, v) }.\n\
        best(m) :- m = max s : { per_key(_, s) }.\n";
    let out = run(src);
    assert_eq!(out.outputs["best"], vec![vec![Value::Number(41)]]);
}

#[test]
fn count_keyed_by_symbol() {
    let src = r#"
        .decl ev(kind: symbol, id: number)
        .decl per(kind: symbol, n: number)
        .output per
        ev("read", 1). ev("read", 2). ev("write", 3).
        per(k, n) :- ev(k, _), n = count : { ev(k, _) }.
    "#;
    let out = run(src);
    assert_eq!(
        out.outputs["per"],
        vec![
            vec![Value::Symbol("read".into()), Value::Number(2)],
            vec![Value::Symbol("write".into()), Value::Number(1)],
        ]
    );
}
