//! Randomized differential testing for retraction: interleaving random
//! insertion and retraction batches through the resident engine must
//! leave the database in exactly the state of a from-scratch evaluation
//! over the *surviving* facts, in every interpreter mode at jobs 1
//! and 4.
//!
//! Programs come from the same restricted seeded grammar as
//! `resident_differential` (negation included, so retraction's
//! full-recompute fallback is exercised alongside the DRed over-delete /
//! re-derive path). A second test retracts under annotated evaluation
//! and re-checks every surviving `.explain` tree with the independent
//! proof checker obligations (membership, height discipline, rule
//! re-instantiation). proptest is not vendored; each failing case
//! reproduces from its seed.

use std::collections::BTreeSet;
use stir::{Engine, ExplainLimits, InputData, InterpreterConfig, ProofNode, ResidentEngine, Value};
use stir_frontend::parse_and_check;

#[derive(Debug, Clone)]
enum BodyAtom {
    E(usize, usize),
    F(usize, usize),
    NotE(usize, usize),
    Lt(usize, usize),
    Bind(usize, usize, i64),
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn body_atom(state: &mut u64) -> BodyAtom {
    let a = (splitmix(state) % 4) as usize;
    let b = (splitmix(state) % 4) as usize;
    match splitmix(state) % 9 {
        0..=2 => BodyAtom::E(a, b),
        3..=5 => BodyAtom::F(a, b),
        6 => BodyAtom::NotE(a, b),
        7 => BodyAtom::Lt(a, b),
        _ => BodyAtom::Bind(a, b, (splitmix(state) % 7) as i64 - 3),
    }
}

fn render_rule(head: (usize, usize), body: &[BodyAtom]) -> Option<String> {
    let mut bound = [false; 4];
    let mut parts: Vec<String> = Vec::new();
    let mut positives = 0;
    for atom in body {
        match atom {
            BodyAtom::E(a, b) => {
                bound[*a] = true;
                bound[*b] = true;
                parts.push(format!("e(v{a}, v{b})"));
                positives += 1;
            }
            BodyAtom::F(a, b) => {
                bound[*a] = true;
                bound[*b] = true;
                parts.push(format!("f(v{a}, v{b})"));
                positives += 1;
            }
            BodyAtom::NotE(a, b) => {
                if !bound[*a] || !bound[*b] {
                    return None;
                }
                parts.push(format!("!e(v{a}, v{b})"));
            }
            BodyAtom::Lt(a, b) => {
                if !bound[*a] || !bound[*b] {
                    return None;
                }
                parts.push(format!("v{a} < v{b}"));
            }
            BodyAtom::Bind(k, i, c) => {
                if !bound[*i] || bound[*k] {
                    return None;
                }
                bound[*k] = true;
                parts.push(format!("v{k} = v{i} + {c}"));
            }
        }
    }
    if positives == 0 || !bound[head.0] || !bound[head.1] {
        return None;
    }
    Some(format!(
        "r(v{}, v{}) :- {}.",
        head.0,
        head.1,
        parts.join(", ")
    ))
}

fn pairs(state: &mut u64, n: usize, dom: u64) -> Vec<Vec<Value>> {
    (0..n)
        .map(|_| {
            vec![
                Value::Number((splitmix(state) % dom) as i32),
                Value::Number((splitmix(state) % dom) as i32),
            ]
        })
        .collect()
}

fn sorted(rows: &[Vec<Value>]) -> BTreeSet<String> {
    rows.iter()
        .map(|r| {
            r.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect()
}

fn modes() -> [(&'static str, InterpreterConfig); 4] {
    [
        ("sti", InterpreterConfig::optimized()),
        ("dynamic", InterpreterConfig::dynamic_adapter()),
        ("unopt", InterpreterConfig::unoptimized()),
        ("legacy", InterpreterConfig::legacy()),
    ]
}

/// One step of a random update stream.
#[derive(Debug, Clone)]
enum Op {
    Insert(&'static str, Vec<Vec<Value>>),
    Retract(&'static str, Vec<Vec<Value>>),
}

/// A random interleaving over the live fact sets. Retractions mostly
/// pick facts that are actually present (so the deletion machinery has
/// real work) with an occasional absent row mixed in (a no-op, as in
/// real update streams).
fn interleaving(
    state: &mut u64,
    live_e: &mut Vec<Vec<Value>>,
    live_f: &mut Vec<Vec<Value>>,
    n_ops: usize,
) -> Vec<Op> {
    let mut ops = Vec::new();
    for _ in 0..n_ops {
        let (rel, live): (&'static str, &mut Vec<Vec<Value>>) = if splitmix(state).is_multiple_of(2)
        {
            ("e", live_e)
        } else {
            ("f", live_f)
        };
        let retract = !live.is_empty() && !splitmix(state).is_multiple_of(3);
        if retract {
            let n = 1 + (splitmix(state) % 3) as usize;
            let mut rows = Vec::new();
            for _ in 0..n {
                if splitmix(state).is_multiple_of(5) {
                    rows.extend(pairs(state, 1, 9)); // likely absent
                } else if !live.is_empty() {
                    let k = (splitmix(state) as usize) % live.len();
                    rows.push(live[k].clone());
                }
            }
            for r in &rows {
                live.retain(|x| x != r);
            }
            ops.push(Op::Retract(rel, rows));
        } else {
            let n = 1 + (splitmix(state) % 4) as usize;
            let rows = pairs(state, n, 9);
            for r in &rows {
                if !live.contains(r) {
                    live.push(r.clone());
                }
            }
            ops.push(Op::Insert(rel, rows));
        }
    }
    ops
}

#[test]
fn retraction_interleavings_match_from_scratch_survivors() {
    let mut checked_cases = 0;
    let (mut saw_incremental, mut saw_fallback, mut saw_rederive) = (false, false, false);
    for seed in 1u64..=40 {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1E5;
        let n_rules = 1 + (splitmix(&mut state) % 3) as usize;
        let mut rules: Vec<String> = Vec::new();
        for _ in 0..n_rules {
            let n_atoms = 1 + (splitmix(&mut state) % 4) as usize;
            let body: Vec<BodyAtom> = (0..n_atoms).map(|_| body_atom(&mut state)).collect();
            let head = (
                (splitmix(&mut state) % 4) as usize,
                (splitmix(&mut state) % 4) as usize,
            );
            if let Some(r) = render_rule(head, &body) {
                rules.push(r);
            }
        }
        if rules.is_empty() {
            continue;
        }
        if splitmix(&mut state).is_multiple_of(2) {
            rules.push("r(x, z) :- r(x, y), e(y, z).".to_owned());
        }
        let src = format!(
            ".decl e(x: number, y: number)\n.input e\n\
             .decl f(x: number, y: number)\n.input f\n\
             .decl r(x: number, y: number)\n.output r\n\
             {}\n",
            rules.join("\n")
        );
        if parse_and_check(&src).is_err() {
            continue;
        }

        let mut initial = InputData::new();
        initial.insert("e".into(), pairs(&mut state, 8, 9));
        initial.insert("f".into(), pairs(&mut state, 6, 9));
        // The live sets the interleaving evolves: the oracle evaluates
        // from scratch over exactly these survivors at the end.
        let mut live_e: Vec<Vec<Value>> = Vec::new();
        for r in &initial["e"] {
            if !live_e.contains(r) {
                live_e.push(r.clone());
            }
        }
        let mut live_f: Vec<Vec<Value>> = Vec::new();
        for r in &initial["f"] {
            if !live_f.contains(r) {
                live_f.push(r.clone());
            }
        }
        let n_ops = 2 + (splitmix(&mut state) % 4) as usize;
        let ops = interleaving(&mut state, &mut live_e, &mut live_f, n_ops);
        if !ops.iter().any(|o| matches!(o, Op::Retract(..))) {
            continue;
        }

        let mut survivors = InputData::new();
        survivors.insert("e".into(), live_e.clone());
        survivors.insert("f".into(), live_f.clone());

        for (mode, config) in &modes() {
            for jobs in [1usize, 4] {
                let ctx = format!("seed {seed} mode {mode} jobs {jobs}");
                let config = config.with_jobs(jobs);
                let mut resident = ResidentEngine::from_source(&src, config, &initial, None)
                    .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                for op in &ops {
                    match op {
                        Op::Insert(rel, rows) => resident
                            .insert_facts(rel, rows, None)
                            .map(|_| ())
                            .unwrap_or_else(|e| panic!("{ctx}: insert: {e}\n{src}")),
                        Op::Retract(rel, rows) => {
                            let report = resident
                                .retract_facts(rel, rows, None)
                                .unwrap_or_else(|e| panic!("{ctx}: retract: {e}\n{src}"));
                            saw_rederive |= report.rederived > 0;
                        }
                    }
                }
                let incremental = resident.outputs();

                let oracle = Engine::from_source(&src)
                    .expect("compiles")
                    .run(config, &survivors)
                    .expect("evaluates");
                assert_eq!(
                    sorted(&incremental["r"]),
                    sorted(&oracle.outputs["r"]),
                    "{ctx}\nops: {ops:?}\nprogram:\n{src}"
                );

                let stats = resident.stats();
                assert!(stats.retracts > 0, "{ctx}: retraction counter never moved");
                saw_incremental |= stats.strata_rerun > 0;
                saw_fallback |= stats.full_fallbacks > 0;
            }
        }
        checked_cases += 1;
    }
    assert!(
        checked_cases >= 10,
        "generator degenerated: only {checked_cases} cases had a retraction"
    );
    assert!(
        saw_incremental,
        "no case exercised the DRed incremental path"
    );
    assert!(saw_rederive, "no case restored an over-deleted tuple");

    // The grammar only rarely aims a retraction at a negatively-read
    // relation, so pin the recompute-fallback path deterministically:
    // retracting from `e` flips `!e(..)` bodies, which one-step
    // re-derivation cannot handle.
    if !saw_fallback {
        let src = "\
            .decl e(x: number, y: number)\n.input e\n\
            .decl f(x: number, y: number)\n.input f\n\
            .decl r(x: number, y: number)\n.output r\n\
            r(x, y) :- f(x, y), !e(x, y).\n";
        let mut initial = InputData::new();
        initial.insert("e".into(), vec![vec![Value::Number(1), Value::Number(2)]]);
        initial.insert(
            "f".into(),
            vec![
                vec![Value::Number(1), Value::Number(2)],
                vec![Value::Number(3), Value::Number(4)],
            ],
        );
        let mut resident =
            ResidentEngine::from_source(src, InterpreterConfig::optimized(), &initial, None)
                .expect("builds");
        resident
            .retract_facts("e", &[vec![Value::Number(1), Value::Number(2)]], None)
            .expect("retracts");
        assert_eq!(
            sorted(&resident.outputs()["r"]).len(),
            2,
            "!e(1,2) now holds"
        );
        saw_fallback = resident.stats().full_fallbacks > 0;
    }
    assert!(
        saw_fallback,
        "no case exercised the recompute fallback path"
    );
}

const TC: &str = "\
    .decl e(x: number, y: number)\n.input e\n\
    .decl p(x: number, y: number)\n.output p\n\
    p(x, y) :- e(x, y).\n\
    p(x, z) :- p(x, y), e(y, z).\n";

const TC_MINI_DECLS: &str = "\
    .decl e(x: number, y: number)\n\
    .decl p(x: number, y: number)\n";

fn decode(tuple: &[u32]) -> Vec<Value> {
    tuple.iter().map(|&b| Value::Number(b as i32)).collect()
}

fn fact_line(rel: &str, tuple: &[u32]) -> String {
    let vals: Vec<String> = tuple.iter().map(|&b| (b as i32).to_string()).collect();
    format!("{rel}({}).", vals.join(", "))
}

/// The independent proof checker from the provenance suite: membership
/// in the live (post-retraction) database, strict height discipline, and
/// rule re-instantiation over just the premises. Returns nodes visited.
fn check_tree(engine: &ResidentEngine, node: &ProofNode, ctx: &str) -> usize {
    let name = engine.ram().relations[node.rel.0].name.clone();
    let pattern: Vec<Option<Value>> = decode(&node.tuple).into_iter().map(Some).collect();
    let rows = engine
        .query(&name, &pattern, None)
        .unwrap_or_else(|e| panic!("{ctx}: membership query for {name} failed: {e}"));
    assert_eq!(
        rows.len(),
        1,
        "{ctx}: node {name}{:?} is not in the post-retraction database",
        node.tuple
    );
    if node.is_input() {
        assert_eq!(node.height, 0, "{ctx}: input {name}{:?}", node.tuple);
        assert!(node.premises.is_empty(), "{ctx}: input node with premises");
    } else {
        assert!(
            node.height >= 1,
            "{ctx}: derived {name}{:?} at height 0",
            node.tuple
        );
        for p in &node.premises {
            assert!(
                p.height < node.height,
                "{ctx}: premise height {} >= conclusion height {} for {name}{:?}",
                p.height,
                node.height,
                node.tuple
            );
        }
    }
    if !node.is_input() && !node.opaque && !node.truncated {
        let rule = node
            .label
            .as_deref()
            .unwrap_or_else(|| panic!("{ctx}: derived node without a rule label"));
        let mut mini = String::from(TC_MINI_DECLS);
        mini.push_str(&format!(".output {name}\n"));
        for p in &node.premises {
            let p_name = &engine.ram().relations[p.rel.0].name;
            mini.push_str(&fact_line(p_name, &p.tuple));
            mini.push('\n');
        }
        mini.push_str(rule);
        mini.push('\n');
        let out = Engine::from_source(&mini)
            .unwrap_or_else(|e| panic!("{ctx}: mini program rejected: {e}\n{mini}"))
            .run(InterpreterConfig::optimized(), &InputData::new())
            .unwrap_or_else(|e| panic!("{ctx}: mini program failed: {e}\n{mini}"));
        let want = decode(&node.tuple);
        assert!(
            out.outputs[&name].contains(&want),
            "{ctx}: rule `{rule}` does not derive {name}{want:?} from its premises\n{mini}"
        );
    }
    1 + node
        .premises
        .iter()
        .map(|p| check_tree(engine, p, ctx))
        .sum::<usize>()
}

/// Retraction under annotated evaluation: after random insert/retract
/// interleavings, every surviving output tuple must still hand out a
/// proof tree that passes the independent checker — no tree may lean on
/// an erased fact, and heights must reflect the shrunken database.
#[test]
fn explain_trees_stay_valid_across_retractions() {
    let mut nodes = 0usize;
    for seed in 1u64..=6 {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xE4A5;
        let mut initial = InputData::new();
        initial.insert("e".into(), pairs(&mut state, 12, 6));
        let mut live: Vec<Vec<Value>> = Vec::new();
        for r in &initial["e"] {
            if !live.contains(r) {
                live.push(r.clone());
            }
        }
        for (mode, config) in &modes() {
            for jobs in [1usize, 4] {
                let ctx = format!("seed {seed} mode {mode} jobs {jobs}");
                let config = config.with_jobs(jobs).with_provenance();
                let mut engine = ResidentEngine::from_source(TC, config, &initial, None)
                    .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                // Retract a third of the live edges, then insert a couple
                // back, then retract one more — a real interleaving.
                let mut doomed = Vec::new();
                let mut s2 = state;
                for _ in 0..live.len() / 3 {
                    let k = (splitmix(&mut s2) as usize) % live.len();
                    doomed.push(live[k].clone());
                }
                engine
                    .retract_facts("e", &doomed, None)
                    .unwrap_or_else(|e| panic!("{ctx}: retract: {e}"));
                let back = pairs(&mut s2, 2, 6);
                engine
                    .insert_facts("e", &back, None)
                    .unwrap_or_else(|e| panic!("{ctx}: insert: {e}"));
                if let Some(last) = back.last() {
                    engine
                        .retract_facts("e", std::slice::from_ref(last), None)
                        .unwrap_or_else(|e| panic!("{ctx}: retract: {e}"));
                }
                for row in &engine.outputs()["p"] {
                    let node = engine
                        .explain("p", row, ExplainLimits::default(), None)
                        .unwrap_or_else(|e| panic!("{ctx}: explain p{row:?}: {e}"));
                    nodes += check_tree(&engine, &node, &ctx);
                }
            }
        }
    }
    assert!(nodes > 300, "checker degenerated: only {nodes} nodes seen");
}
