//! Randomized differential testing for the resident engine: applying
//! random insertion batches incrementally must leave the database in
//! exactly the state of a from-scratch evaluation over the union of all
//! facts, in every interpreter mode.
//!
//! Programs come from the same restricted seeded grammar as
//! `prop_differential` (negation included, so the full-recompute
//! fallback path is exercised alongside the delta-restart path).
//! proptest is not vendored; each failing case reproduces from its seed.

use std::collections::BTreeSet;
use stir::{Engine, InputData, InterpreterConfig, ResidentEngine, Value};
use stir_frontend::parse_and_check;

#[derive(Debug, Clone)]
enum BodyAtom {
    E(usize, usize),
    F(usize, usize),
    NotE(usize, usize),
    Lt(usize, usize),
    Bind(usize, usize, i64),
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn body_atom(state: &mut u64) -> BodyAtom {
    let a = (splitmix(state) % 4) as usize;
    let b = (splitmix(state) % 4) as usize;
    match splitmix(state) % 9 {
        0..=2 => BodyAtom::E(a, b),
        3..=5 => BodyAtom::F(a, b),
        6 => BodyAtom::NotE(a, b),
        7 => BodyAtom::Lt(a, b),
        _ => BodyAtom::Bind(a, b, (splitmix(state) % 7) as i64 - 3),
    }
}

fn render_rule(head: (usize, usize), body: &[BodyAtom]) -> Option<String> {
    let mut bound = [false; 4];
    let mut parts: Vec<String> = Vec::new();
    let mut positives = 0;
    for atom in body {
        match atom {
            BodyAtom::E(a, b) => {
                bound[*a] = true;
                bound[*b] = true;
                parts.push(format!("e(v{a}, v{b})"));
                positives += 1;
            }
            BodyAtom::F(a, b) => {
                bound[*a] = true;
                bound[*b] = true;
                parts.push(format!("f(v{a}, v{b})"));
                positives += 1;
            }
            BodyAtom::NotE(a, b) => {
                if !bound[*a] || !bound[*b] {
                    return None;
                }
                parts.push(format!("!e(v{a}, v{b})"));
            }
            BodyAtom::Lt(a, b) => {
                if !bound[*a] || !bound[*b] {
                    return None;
                }
                parts.push(format!("v{a} < v{b}"));
            }
            BodyAtom::Bind(k, i, c) => {
                if !bound[*i] || bound[*k] {
                    return None;
                }
                bound[*k] = true;
                parts.push(format!("v{k} = v{i} + {c}"));
            }
        }
    }
    if positives == 0 || !bound[head.0] || !bound[head.1] {
        return None;
    }
    Some(format!(
        "r(v{}, v{}) :- {}.",
        head.0,
        head.1,
        parts.join(", ")
    ))
}

fn pairs(state: &mut u64, n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|_| {
            vec![
                Value::Number((splitmix(state) % 9) as i32),
                Value::Number((splitmix(state) % 9) as i32),
            ]
        })
        .collect()
}

fn sorted(rows: &[Vec<Value>]) -> BTreeSet<String> {
    rows.iter()
        .map(|r| {
            r.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect()
}

#[test]
fn incremental_batches_match_from_scratch_union() {
    let modes: [(&str, InterpreterConfig); 4] = [
        ("sti", InterpreterConfig::optimized()),
        ("dynamic", InterpreterConfig::dynamic_adapter()),
        ("unopt", InterpreterConfig::unoptimized()),
        ("legacy", InterpreterConfig::legacy()),
    ];
    let mut checked_cases = 0;
    let (mut saw_incremental, mut saw_fallback) = (false, false);
    for seed in 1u64..=48 {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let n_rules = 1 + (splitmix(&mut state) % 3) as usize;
        let mut rules: Vec<String> = Vec::new();
        for _ in 0..n_rules {
            let n_atoms = 1 + (splitmix(&mut state) % 4) as usize;
            let body: Vec<BodyAtom> = (0..n_atoms).map(|_| body_atom(&mut state)).collect();
            let head = (
                (splitmix(&mut state) % 4) as usize,
                (splitmix(&mut state) % 4) as usize,
            );
            if let Some(r) = render_rule(head, &body) {
                rules.push(r);
            }
        }
        if rules.is_empty() {
            continue;
        }
        if splitmix(&mut state).is_multiple_of(2) {
            rules.push("r(x, z) :- r(x, y), e(y, z).".to_owned());
        }
        let src = format!(
            ".decl e(x: number, y: number)\n.input e\n\
             .decl f(x: number, y: number)\n.input f\n\
             .decl r(x: number, y: number)\n.output r\n\
             {}\n",
            rules.join("\n")
        );
        if parse_and_check(&src).is_err() {
            continue;
        }

        let mut initial = InputData::new();
        initial.insert("e".into(), pairs(&mut state, 8));
        initial.insert("f".into(), pairs(&mut state, 6));
        let n_batches = 1 + (splitmix(&mut state) % 3) as usize;
        let batches: Vec<(String, Vec<Vec<Value>>)> = (0..n_batches)
            .map(|_| {
                let rel = if splitmix(&mut state).is_multiple_of(2) {
                    "e"
                } else {
                    "f"
                };
                let n = 1 + (splitmix(&mut state) % 4) as usize;
                (rel.to_string(), pairs(&mut state, n))
            })
            .collect();

        // The oracle: one from-scratch run over the union of all facts.
        let mut union = initial.clone();
        for (rel, rows) in &batches {
            union
                .get_mut(rel.as_str())
                .expect("e/f present")
                .extend(rows.iter().cloned());
        }

        for (mode, config) in &modes {
            let mut resident =
                ResidentEngine::from_source(&src, *config, &initial, None).expect("builds");
            for (rel, rows) in &batches {
                resident
                    .insert_facts(rel, rows, None)
                    .unwrap_or_else(|e| panic!("seed {seed} mode {mode}: {e}\n{src}"));
            }
            let incremental = resident.outputs();

            let oracle = Engine::from_source(&src)
                .expect("compiles")
                .run(*config, &union)
                .expect("evaluates");
            assert_eq!(
                sorted(&incremental["r"]),
                sorted(&oracle.outputs["r"]),
                "seed {seed} mode {mode}\nprogram:\n{src}"
            );

            let stats = resident.stats();
            saw_incremental |= stats.strata_rerun > 0;
            saw_fallback |= stats.full_fallbacks > 0;
        }
        checked_cases += 1;
    }
    assert!(
        checked_cases >= 10,
        "generator degenerated: only {checked_cases} well-formed cases"
    );
    assert!(saw_incremental, "no case exercised the delta-restart path");
    assert!(saw_fallback, "no case exercised the negation fallback path");
}
