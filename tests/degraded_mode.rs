//! Degraded-mode serving tests: storage-failure self-healing, group
//! commit, and overload shedding.
//!
//! The chaos soak drives a `stird` with probabilistic `STIR_FAULT`
//! injection (`wal_write`/`wal_fsync`/`wal_probe` with `p=` triggers)
//! under concurrent reader/writer clients for a bounded fault window
//! (`STIR_FAULT_WINDOW_MS`), then checks the degraded-mode contract:
//!
//! * **No acked write is ever lost** — after a `SIGKILL` and fault-free
//!   restart, the recovered database sits between `oracle(acked)` and
//!   `oracle(acked ∪ attempted)`, exactly the crash-recovery invariant.
//! * **Reads never fail while degraded** — queries keep serving rows
//!   through every storage failure.
//! * **The engine always heals once the faults stop** — a write is
//!   accepted and `/readyz` returns plain `ready` within the backoff
//!   budget after the window expires.
//! * **Every transition is observable** — `.stats`, `/metrics`, and
//!   `/readyz` report the degraded episode.
//!
//! Alongside the soak: deterministic (p=1) degrade/heal and
//! circuit-breaker scenarios, a group-commit coalescing check (≥4
//! concurrent writers, measurably fewer fsyncs than commits), and a
//! write-shedding check (reads admitted while writes shed).

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};
use stir::core::telemetry::ServeMetrics;
use stir::core::{Durability, PersistOptions};
use stir::serve::{handle_line, handle_request, RequestCtx, SessionConfig, WriteAdmission};
use stir::{Engine, InputData, InterpreterConfig, ResidentEngine, Value};

const PROGRAM: &str = "\
.decl edge(x: number, y: number)\n.input edge\n\
.decl path(x: number, y: number)\n.output path\n\
path(x, y) :- edge(x, y).\n\
path(x, z) :- path(x, y), edge(y, z).\n";

const BASE_EDGES: &[[i64; 2]] = &[[1, 2], [2, 3]];

fn setup(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("stir-degraded-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(dir.join("tc.dl"), PROGRAM).expect("program written");
    let facts: String = BASE_EDGES
        .iter()
        .map(|[x, y]| format!("{x}\t{y}\n"))
        .collect();
    std::fs::write(dir.join("edge.facts"), facts).expect("facts written");
    dir
}

/// Fault injection for one server run: the `STIR_FAULT` spec plus its
/// seed and optional disarm window.
struct Faults {
    spec: &'static str,
    seed: u64,
    window_ms: Option<u64>,
}

struct Server {
    child: Child,
    port: u16,
    admin_port: u16,
}

impl Server {
    fn start(dir: &Path, mode: &str, faults: Option<&Faults>, extra: &[&str]) -> Server {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_stird"));
        cmd.arg(dir.join("tc.dl"))
            .arg("-F")
            .arg(dir)
            .arg("--mode")
            .arg(mode)
            .arg("--data-dir")
            .arg(dir.join("data"))
            .arg("--admin-addr")
            .arg("127.0.0.1:0")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .env_remove("STIR_FAULT")
            .env_remove("STIR_FAULT_SEED")
            .env_remove("STIR_FAULT_WINDOW_MS");
        if let Some(f) = faults {
            cmd.env("STIR_FAULT", f.spec);
            cmd.env("STIR_FAULT_SEED", f.seed.to_string());
            if let Some(ms) = f.window_ms {
                cmd.env("STIR_FAULT_WINDOW_MS", ms.to_string());
            }
        }
        let mut child = cmd.spawn().expect("spawns");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("banner");
        let port = banner
            .trim()
            .strip_prefix("stird: listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
            .rsplit(':')
            .next()
            .and_then(|p| p.parse().ok())
            .expect("port in banner");
        banner.clear();
        stdout.read_line(&mut banner).expect("admin banner");
        let admin_port = banner
            .trim()
            .strip_prefix("stird: admin listening on ")
            .unwrap_or_else(|| panic!("unexpected admin banner: {banner:?}"))
            .rsplit(':')
            .next()
            .and_then(|p| p.parse().ok())
            .expect("port in admin banner");
        Server {
            child,
            port,
            admin_port,
        }
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(("127.0.0.1", self.port)).expect("connects")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One admin `GET`; returns `(status, body)`.
fn admin_get(port: u16, path: &str) -> (u16, String) {
    let mut sock = TcpStream::connect(("127.0.0.1", port)).expect("admin connects");
    write!(
        sock,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("request written");
    let mut buf = String::new();
    sock.read_to_string(&mut buf).expect("admin response");
    let status = buf
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {buf:?}"));
    let body = buf
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Sends one request line and reads through the `ok`/`err`/`.stats`
/// terminator, returning every response line.
fn request(conn: &mut TcpStream, rd: &mut BufReader<TcpStream>, line: &str) -> Vec<String> {
    conn.write_all(line.as_bytes()).expect("request written");
    conn.write_all(b"\n").expect("newline written");
    conn.flush().expect("flushes");
    let mut lines = Vec::new();
    loop {
        let mut response = String::new();
        rd.read_line(&mut response).expect("response line");
        let response = response.trim_end().to_string();
        let done = response.starts_with("ok ")
            || response.starts_with("err ")
            || response == "bye"
            || response.starts_with("requests=");
        lines.push(response);
        if done {
            return lines;
        }
    }
}

/// Queries `?path(_, _)` over a fresh connection and returns the rows.
fn query_path(server: &Server) -> BTreeSet<Vec<i64>> {
    let mut conn = server.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    conn.write_all(b"?path(_, _)\n").expect("query written");
    conn.flush().expect("flushes");
    let mut rows = BTreeSet::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        let line = line.trim_end();
        if line.starts_with("ok ") {
            return rows;
        }
        assert!(!line.starts_with("err "), "query failed: {line}");
        rows.insert(
            line.split('\t')
                .map(|v| v.parse().expect("numeric cell"))
                .collect(),
        );
    }
}

/// From-scratch oracle over the base facts plus `extra` edges.
fn oracle(config: InterpreterConfig, extra: &[[i64; 2]]) -> BTreeSet<Vec<i64>> {
    let engine = Engine::from_source(PROGRAM).expect("oracle builds");
    let mut inputs = InputData::new();
    let edges: Vec<Vec<Value>> = BASE_EDGES
        .iter()
        .chain(extra)
        .map(|&[x, y]| vec![Value::Number(x as i32), Value::Number(y as i32)])
        .collect();
    inputs.insert("edge".to_owned(), edges);
    let result = engine.run(config, &inputs).expect("oracle runs");
    result.outputs["path"]
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| match v {
                    Value::Number(n) => i64::from(*n),
                    other => panic!("unexpected value {other}"),
                })
                .collect()
        })
        .collect()
}

fn config_for(mode: &str) -> InterpreterConfig {
    match mode {
        "sti" => InterpreterConfig::optimized(),
        "dynamic" => InterpreterConfig::dynamic_adapter(),
        "unopt" => InterpreterConfig::unoptimized(),
        "legacy" => InterpreterConfig::legacy(),
        other => panic!("unknown mode {other}"),
    }
}

/// The chaos soak (see module docs). Writers use disjoint edge ranges
/// so `acked`/`attempted` stay per-edge attributable.
fn chaos_soak(mode: &str, seed: u64) {
    let dir = setup(&format!("soak-{mode}"));
    let faults = Faults {
        spec: "wal_write:p=0.25,wal_fsync:p=0.25,wal_probe:p=0.4",
        seed,
        window_ms: Some(2_000),
    };
    let server = Server::start(
        &dir,
        mode,
        Some(&faults),
        &["--durability", "always", "--heal-budget", "100000"],
    );

    let soak = Duration::from_millis(2_600);
    let (acked, attempted) = std::thread::scope(|s| {
        // Reader: queries must serve rows through every degradation.
        let reads = s.spawn(|| {
            let mut conn = server.connect();
            let mut rd = BufReader::new(conn.try_clone().expect("clone"));
            let t0 = Instant::now();
            let mut served = 0u64;
            while t0.elapsed() < soak {
                let resp = request(&mut conn, &mut rd, "?path(1, _)");
                let last = resp.last().expect("terminator");
                assert!(
                    last.starts_with("ok "),
                    "read failed during degradation: {last}"
                );
                served += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            served
        });
        // Writers: each unique edge is sent exactly once and lands in
        // `acked` (server said ok ⇒ durable) or `attempted` (refused or
        // errored ⇒ may or may not have reached the WAL).
        let writers: Vec<_> = (0..2u64)
            .map(|w| {
                let server = &server;
                s.spawn(move || {
                    let mut conn = server.connect();
                    let mut rd = BufReader::new(conn.try_clone().expect("clone"));
                    let (mut acked, mut attempted) = (Vec::new(), Vec::new());
                    let t0 = Instant::now();
                    let mut i = 0i64;
                    while t0.elapsed() < soak {
                        let base = 1_000 + (w as i64) * 1_000;
                        let edge = [base + i, base + i + 1];
                        let resp = request(
                            &mut conn,
                            &mut rd,
                            &format!("+edge({}, {}).", edge[0], edge[1]),
                        );
                        let last = resp.last().expect("terminator");
                        if last.starts_with("ok ") {
                            acked.push(edge);
                        } else {
                            assert!(last.starts_with("err "), "unexpected reply {last}");
                            attempted.push(edge);
                        }
                        i += 1;
                    }
                    (acked, attempted)
                })
            })
            .collect();
        let served = reads.join().expect("reader");
        assert!(served > 0, "reader never completed a query");
        let mut acked = Vec::new();
        let mut attempted = Vec::new();
        for h in writers {
            let (a, t) = h.join().expect("writer");
            acked.extend(a);
            attempted.extend(t);
        }
        (acked, attempted)
    });
    assert!(
        !acked.is_empty(),
        "soak acked nothing; faults drowned the write path entirely"
    );

    // Faults have disarmed (the window expired mid-soak); the engine
    // must heal within the backoff budget and accept writes again.
    let mut acked = acked;
    let mut healed = false;
    let deadline = Instant::now() + Duration::from_secs(8);
    let mut conn = server.connect();
    let mut rd = BufReader::new(conn.try_clone().expect("clone"));
    let mut k = 0i64;
    while Instant::now() < deadline {
        let edge = [9_000 + k, 9_001 + k];
        let resp = request(
            &mut conn,
            &mut rd,
            &format!("+edge({}, {}).", edge[0], edge[1]),
        );
        if resp.last().expect("terminator").starts_with("ok ") {
            acked.push(edge);
            healed = true;
            break;
        }
        k += 1;
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(healed, "engine did not heal after the fault window expired");

    // The episode is observable end to end.
    let (status, body) = admin_get(server.admin_port, "/readyz");
    assert_eq!(status, 200, "healed server not ready: {body}");
    assert_eq!(body, "ready\n");
    let (status, metrics) = admin_get(server.admin_port, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("stir_degraded 0"),
        "healed gauge missing:\n{metrics}"
    );
    assert!(metrics.contains("stir_degraded_entered_total"), "{metrics}");
    assert!(metrics.contains("stir_degraded_healed_total"), "{metrics}");
    assert!(
        metrics.contains("stir_group_commit_fsyncs_total"),
        "{metrics}"
    );
    let stats = request(&mut conn, &mut rd, ".stats");
    let line = stats.last().expect("stats line");
    assert!(line.contains("health=healthy"), "{line}");
    assert!(line.contains("degraded_entered="), "{line}");
    assert!(line.contains("group_commit_fsyncs="), "{line}");

    // SIGKILL + fault-free restart: acked ⊆ recovered ⊆ attempted.
    drop(conn);
    drop(rd);
    let mut server = server;
    server.child.kill().expect("sigkill");
    server.child.wait().expect("reaped");
    drop(server);
    let server = Server::start(&dir, mode, None, &["--durability", "always"]);
    let recovered = query_path(&server);
    let config = config_for(mode);
    let floor = oracle(config, &acked);
    let mut all = acked.clone();
    all.extend(&attempted);
    let ceiling = oracle(config, &all);
    assert!(
        floor.is_subset(&recovered),
        "{mode}: lost acked writes: {:?}",
        floor.difference(&recovered).take(5).collect::<Vec<_>>()
    );
    assert!(
        recovered.is_subset(&ceiling),
        "{mode}: recovered rows no client ever sent: {:?}",
        recovered.difference(&ceiling).take(5).collect::<Vec<_>>()
    );
}

#[test]
fn chaos_soak_sti() {
    chaos_soak("sti", 11);
}

#[test]
fn chaos_soak_dynamic() {
    chaos_soak("dynamic", 12);
}

#[test]
fn chaos_soak_unopt() {
    chaos_soak("unopt", 13);
}

#[test]
fn chaos_soak_legacy() {
    chaos_soak("legacy", 14);
}

#[test]
fn degraded_mode_refuses_writes_serves_reads_and_heals() {
    let dir = setup("degrade-heal");
    // p=1 faults make the sequence deterministic: the first write fails
    // and its inline probe fails, entering Degraded; the window then
    // expires and a background probe heals.
    let faults = Faults {
        spec: "wal_write:p=1,wal_probe:p=1",
        seed: 1,
        window_ms: Some(1_500),
    };
    let server = Server::start(
        &dir,
        "sti",
        Some(&faults),
        &["--durability", "always", "--heal-budget", "1000"],
    );
    let mut conn = server.connect();
    let mut rd = BufReader::new(conn.try_clone().expect("clone"));

    // First write: storage error, and the failed probe degrades.
    let resp = request(&mut conn, &mut rd, "+edge(3, 4).");
    let last = resp.last().expect("reply");
    assert!(last.starts_with("err "), "{last}");
    assert!(last.contains("storage error"), "{last}");

    // Subsequent writes are refused with a retry hint; reads serve.
    let resp = request(&mut conn, &mut rd, "+edge(4, 5).");
    assert!(
        resp.last()
            .expect("reply")
            .starts_with("err degraded retry-after "),
        "{resp:?}"
    );
    let resp = request(&mut conn, &mut rd, "?path(1, _)");
    assert_eq!(resp.last().map(String::as_str), Some("ok 2 rows"));

    // The episode is visible everywhere while it lasts.
    let stats = request(&mut conn, &mut rd, ".stats");
    let line = stats.last().expect("stats line");
    assert!(line.contains("health=degraded"), "{line}");
    assert!(line.contains("degraded_entered=1"), "{line}");
    let (status, body) = admin_get(server.admin_port, "/readyz");
    assert_eq!(status, 200, "degraded still serves reads: {body}");
    assert!(body.contains("degraded"), "{body}");
    let (_, metrics) = admin_get(server.admin_port, "/metrics");
    assert!(metrics.contains("stir_degraded 1"), "{metrics}");
    assert!(
        metrics.contains("stir_degraded_entered_total 1"),
        "{metrics}"
    );

    // Once the fault window expires the heal loop recovers the engine;
    // the failed write from above goes through on retry and extends the
    // closure.
    let deadline = Instant::now() + Duration::from_secs(8);
    let mut healed = false;
    while Instant::now() < deadline {
        let resp = request(&mut conn, &mut rd, "+edge(3, 4).");
        if resp.last().expect("reply").starts_with("ok ") {
            healed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(healed, "engine did not heal");
    let resp = request(&mut conn, &mut rd, "?path(1, _)");
    assert_eq!(resp.last().map(String::as_str), Some("ok 3 rows"));
    let stats = request(&mut conn, &mut rd, ".stats");
    let line = stats.last().expect("stats line");
    assert!(line.contains("health=healthy"), "{line}");
    assert!(line.contains("degraded_healed=1"), "{line}");
    let (status, body) = admin_get(server.admin_port, "/readyz");
    assert_eq!((status, body.as_str()), (200, "ready\n"));
    let (_, metrics) = admin_get(server.admin_port, "/metrics");
    assert!(metrics.contains("stir_degraded 0"), "{metrics}");
    assert!(
        metrics.contains("stir_degraded_healed_total 1"),
        "{metrics}"
    );
}

#[test]
fn heal_budget_exhaustion_latches_failed_and_readyz_503() {
    let dir = setup("failed-latch");
    // Permanent faults (no window) with a budget of 1: the entry probe
    // plus one background probe exhaust it and open the breaker.
    let faults = Faults {
        spec: "wal_write:p=1,wal_probe:p=1",
        seed: 1,
        window_ms: None,
    };
    let server = Server::start(
        &dir,
        "sti",
        Some(&faults),
        &["--durability", "always", "--heal-budget", "1"],
    );
    let mut conn = server.connect();
    let mut rd = BufReader::new(conn.try_clone().expect("clone"));
    let resp = request(&mut conn, &mut rd, "+edge(3, 4).");
    assert!(resp.last().expect("reply").starts_with("err "), "{resp:?}");

    let deadline = Instant::now() + Duration::from_secs(5);
    let mut failed = false;
    while Instant::now() < deadline {
        let (status, body) = admin_get(server.admin_port, "/readyz");
        if status == 503 {
            assert!(body.contains("storage failed"), "{body}");
            failed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(failed, "breaker never opened");

    // Writes stay refused with the long hint; reads still serve.
    let resp = request(&mut conn, &mut rd, "+edge(4, 5).");
    assert_eq!(
        resp.last().map(String::as_str),
        Some("err degraded retry-after 5000")
    );
    let resp = request(&mut conn, &mut rd, "?path(1, _)");
    assert_eq!(resp.last().map(String::as_str), Some("ok 2 rows"));
    let stats = request(&mut conn, &mut rd, ".stats");
    assert!(stats.last().expect("line").contains("health=failed"));
    let (_, metrics) = admin_get(server.admin_port, "/metrics");
    assert!(metrics.contains("stir_degraded 2"), "{metrics}");
}

#[test]
fn group_commit_coalesces_fsyncs_across_concurrent_writers() {
    let dir = setup("group-commit");
    let engine = Engine::from_source(PROGRAM).expect("engine");
    let mut inputs = InputData::new();
    inputs.insert(
        "edge".to_owned(),
        BASE_EDGES
            .iter()
            .map(|&[x, y]| vec![Value::Number(x as i32), Value::Number(y as i32)])
            .collect(),
    );
    let (mut resident, _) = ResidentEngine::open(
        engine,
        InterpreterConfig::optimized(),
        &inputs,
        &dir.join("data"),
        PersistOptions {
            durability: Durability::Always,
            snapshot_interval: None,
        },
        None,
    )
    .expect("opens");
    let metrics = Arc::new(ServeMetrics::on());
    resident.attach_serve_metrics(Arc::clone(&metrics));
    resident.enable_group_commit();
    let shared = RwLock::new(resident);

    const WRITERS: i64 = 8;
    const PER_WRITER: i64 = 25;
    let barrier = std::sync::Barrier::new(WRITERS as usize);
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let (shared, barrier) = (&shared, &barrier);
            s.spawn(move || {
                barrier.wait();
                for i in 0..PER_WRITER {
                    let base = 100 + w * 100;
                    let line = format!("+edge({}, {}).", base + i, base + i + 1);
                    let mut out = Vec::new();
                    handle_line(shared, &line, None, &mut out).expect("io");
                    let reply = String::from_utf8(out).expect("utf8");
                    assert_eq!(reply.trim_end(), "ok 1 inserted", "ack semantics unchanged");
                }
            });
        }
    });

    let eng = shared.read().unwrap();
    let requests = (WRITERS * PER_WRITER) as u64;
    let (fsyncs, commits) = eng.group_commit_stats().expect("group commit enabled");
    assert_eq!(commits, requests, "every ack passed the barrier");
    assert!(fsyncs >= 1);
    assert!(
        fsyncs < commits,
        "group commit did not coalesce: {fsyncs} fsyncs for {commits} commits"
    );
    // All fsyncs under `always` flow through the barrier: the inline
    // counter stays 0 and the `stir_wal_fsync` histogram observes
    // exactly the barrier flushes.
    assert_eq!(eng.wal_stats().expect("wal").fsyncs, 0);
    assert_eq!(metrics.wal_fsync.snapshot().count, fsyncs);
}

#[test]
fn write_admission_sheds_writes_but_not_reads() {
    let engine = Engine::from_source(PROGRAM).expect("engine");
    let mut inputs = InputData::new();
    inputs.insert(
        "edge".to_owned(),
        BASE_EDGES
            .iter()
            .map(|&[x, y]| vec![Value::Number(x as i32), Value::Number(y as i32)])
            .collect(),
    );
    let resident =
        ResidentEngine::new(engine, InterpreterConfig::optimized(), &inputs, None).expect("engine");
    let shared = RwLock::new(resident);
    let admission = Arc::new(WriteAdmission::new(1));
    let ctx = RequestCtx {
        admission: Some(Arc::clone(&admission)),
        ..RequestCtx::default()
    };
    let cfg = SessionConfig::default();

    std::thread::scope(|s| {
        // Holding a read lock parks the first writer *after* admission
        // (it holds the only permit, blocked on the engine lock)...
        let guard = shared.read().unwrap();
        let blocked = s.spawn(|| {
            let mut out = Vec::new();
            handle_request(&shared, "+edge(7, 8).", &cfg, &ctx, None, &mut out).expect("io");
            String::from_utf8(out).expect("utf8")
        });
        std::thread::sleep(Duration::from_millis(150));
        // ...so the second writer is shed at the admission gate, while
        // a read sails through untouched.
        let shed = s.spawn(|| {
            let mut out = Vec::new();
            handle_request(&shared, "+edge(8, 9).", &cfg, &ctx, None, &mut out).expect("io");
            String::from_utf8(out).expect("utf8")
        });
        let reply = shed.join().expect("shed writer");
        assert_eq!(reply.trim_end(), "err overloaded retry-after 50");
        // A read issued in the same overloaded moment passes admission
        // (it may queue on the engine lock, but it is never refused).
        let reader = s.spawn(|| {
            let mut out = Vec::new();
            handle_request(&shared, "?path(1, _)", &cfg, &ctx, None, &mut out).expect("io");
            String::from_utf8(out).expect("utf8")
        });
        drop(guard);
        let read = reader.join().expect("reader");
        assert!(read.ends_with("ok 2 rows\n"), "read was shed: {read}");
        let reply = blocked.join().expect("blocked writer");
        assert_eq!(reply.trim_end(), "ok 1 inserted", "permit holder completes");
    });

    // The freed permit admits the next write.
    let mut out = Vec::new();
    handle_request(&shared, "+edge(9, 10).", &cfg, &ctx, None, &mut out).expect("io");
    assert_eq!(
        String::from_utf8(out).expect("utf8").trim_end(),
        "ok 1 inserted"
    );
}
