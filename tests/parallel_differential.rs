//! Randomized differential testing for parallel evaluation: running a
//! program with `--jobs N` (including odd/prime worker counts that
//! never divide the data evenly) must produce exactly the relations
//! (and the same profile tuple counts) as `--jobs 1`, in every
//! interpreter mode. A tiny morsel size forces the work-stealing
//! machinery onto these small test relations — the default target would
//! route them all through the sequential small-scan fallback.
//!
//! Programs come from the same restricted seeded grammar as
//! `resident_differential`. proptest is not vendored; each failing case
//! reproduces from its seed.

use std::collections::BTreeSet;
use stir::{Engine, InputData, InterpreterConfig, Value};
use stir_frontend::parse_and_check;

#[derive(Debug, Clone)]
enum BodyAtom {
    E(usize, usize),
    F(usize, usize),
    NotE(usize, usize),
    Lt(usize, usize),
    Bind(usize, usize, i64),
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn body_atom(state: &mut u64) -> BodyAtom {
    let a = (splitmix(state) % 4) as usize;
    let b = (splitmix(state) % 4) as usize;
    match splitmix(state) % 9 {
        0..=2 => BodyAtom::E(a, b),
        3..=5 => BodyAtom::F(a, b),
        6 => BodyAtom::NotE(a, b),
        7 => BodyAtom::Lt(a, b),
        _ => BodyAtom::Bind(a, b, (splitmix(state) % 7) as i64 - 3),
    }
}

fn render_rule(head: (usize, usize), body: &[BodyAtom]) -> Option<String> {
    let mut bound = [false; 4];
    let mut parts: Vec<String> = Vec::new();
    let mut positives = 0;
    for atom in body {
        match atom {
            BodyAtom::E(a, b) => {
                bound[*a] = true;
                bound[*b] = true;
                parts.push(format!("e(v{a}, v{b})"));
                positives += 1;
            }
            BodyAtom::F(a, b) => {
                bound[*a] = true;
                bound[*b] = true;
                parts.push(format!("f(v{a}, v{b})"));
                positives += 1;
            }
            BodyAtom::NotE(a, b) => {
                if !bound[*a] || !bound[*b] {
                    return None;
                }
                parts.push(format!("!e(v{a}, v{b})"));
            }
            BodyAtom::Lt(a, b) => {
                if !bound[*a] || !bound[*b] {
                    return None;
                }
                parts.push(format!("v{a} < v{b}"));
            }
            BodyAtom::Bind(k, i, c) => {
                if !bound[*i] || bound[*k] {
                    return None;
                }
                bound[*k] = true;
                parts.push(format!("v{k} = v{i} + {c}"));
            }
        }
    }
    if positives == 0 || !bound[head.0] || !bound[head.1] {
        return None;
    }
    Some(format!(
        "r(v{}, v{}) :- {}.",
        head.0,
        head.1,
        parts.join(", ")
    ))
}

fn pairs(state: &mut u64, n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|_| {
            vec![
                Value::Number((splitmix(state) % 9) as i32),
                Value::Number((splitmix(state) % 9) as i32),
            ]
        })
        .collect()
}

fn sorted(rows: &[Vec<Value>]) -> BTreeSet<String> {
    rows.iter()
        .map(|r| {
            r.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect()
}

/// Job counts exercised against the sequential baseline: the even split,
/// plus odd/prime counts that leave remainder morsels on every range.
const JOB_COUNTS: [usize; 3] = [3, 4, 7];

/// Morsel target small enough that the tiny test relations still split
/// into many chunks (and steals actually happen).
const TINY_MORSELS: usize = 2;

#[test]
fn many_jobs_match_one_job_in_every_mode() {
    let modes: [(&str, InterpreterConfig); 4] = [
        ("sti", InterpreterConfig::optimized()),
        ("dynamic", InterpreterConfig::dynamic_adapter()),
        ("unopt", InterpreterConfig::unoptimized()),
        ("legacy", InterpreterConfig::legacy()),
    ];
    let mut checked_cases = 0;
    for seed in 1u64..=48 {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let n_rules = 1 + (splitmix(&mut state) % 3) as usize;
        let mut rules: Vec<String> = Vec::new();
        for _ in 0..n_rules {
            let n_atoms = 1 + (splitmix(&mut state) % 4) as usize;
            let body: Vec<BodyAtom> = (0..n_atoms).map(|_| body_atom(&mut state)).collect();
            let head = (
                (splitmix(&mut state) % 4) as usize,
                (splitmix(&mut state) % 4) as usize,
            );
            if let Some(r) = render_rule(head, &body) {
                rules.push(r);
            }
        }
        if rules.is_empty() {
            continue;
        }
        if splitmix(&mut state).is_multiple_of(2) {
            rules.push("r(x, z) :- r(x, y), e(y, z).".to_owned());
        }
        let src = format!(
            ".decl e(x: number, y: number)\n.input e\n\
             .decl f(x: number, y: number)\n.input f\n\
             .decl r(x: number, y: number)\n.output r\n\
             {}\n",
            rules.join("\n")
        );
        if parse_and_check(&src).is_err() {
            continue;
        }

        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&mut state, 12));
        inputs.insert("f".into(), pairs(&mut state, 9));

        let engine = Engine::from_source(&src).expect("compiles");
        for (mode, config) in &modes {
            let sequential = engine
                .run(config.with_jobs(1), &inputs)
                .unwrap_or_else(|e| panic!("seed {seed} mode {mode} jobs=1: {e}\n{src}"));
            for jobs in JOB_COUNTS {
                let parallel = engine
                    .run(
                        config.with_jobs(jobs).with_morsel_size(TINY_MORSELS),
                        &inputs,
                    )
                    .unwrap_or_else(|e| panic!("seed {seed} mode {mode} jobs={jobs}: {e}\n{src}"));
                assert_eq!(
                    sorted(&sequential.outputs["r"]),
                    sorted(&parallel.outputs["r"]),
                    "seed {seed} mode {mode} jobs={jobs}\nprogram:\n{src}"
                );
            }
        }
        checked_cases += 1;
    }
    assert!(
        checked_cases >= 10,
        "generator degenerated: only {checked_cases} well-formed cases"
    );
}

/// Provenance heights must be independent of the worker count: the
/// annotation epoch advances once per executed RAM query on the
/// coordinator, so worker interleavings inside a query cannot move a
/// tuple between heights. Compared via the proof trees' root heights
/// (and shapes) for every derived tuple.
#[test]
fn proof_heights_are_job_count_invariant() {
    use stir::{ExplainLimits, ResidentEngine};
    const TC: &str = ".decl e(x: number, y: number)\n.input e\n\
                      .decl p(x: number, y: number)\n.output p\n\
                      p(x, y) :- e(x, y).\n\
                      p(x, z) :- p(x, y), e(y, z).\n";
    let mut state = 13u64;
    let mut inputs = InputData::new();
    inputs.insert("e".into(), pairs(&mut state, 24));

    for (mode, config) in [
        ("sti", InterpreterConfig::optimized()),
        ("dynamic", InterpreterConfig::dynamic_adapter()),
        ("unopt", InterpreterConfig::unoptimized()),
        ("legacy", InterpreterConfig::legacy()),
    ] {
        let config = config.with_provenance();
        let seq = ResidentEngine::from_source(TC, config.with_jobs(1), &inputs, None)
            .unwrap_or_else(|e| panic!("mode {mode} jobs=1: {e}"));
        let rows = seq.outputs()["p"].clone();
        for jobs in JOB_COUNTS {
            let par = ResidentEngine::from_source(
                TC,
                config.with_jobs(jobs).with_morsel_size(TINY_MORSELS),
                &inputs,
                None,
            )
            .unwrap_or_else(|e| panic!("mode {mode} jobs={jobs}: {e}"));
            assert_eq!(
                sorted(&rows),
                sorted(&par.outputs()["p"]),
                "mode {mode} jobs={jobs}"
            );
            for row in &rows {
                let a = seq
                    .explain("p", row, ExplainLimits::default(), None)
                    .unwrap_or_else(|e| panic!("mode {mode} jobs=1 explain {row:?}: {e}"));
                let b = par
                    .explain("p", row, ExplainLimits::default(), None)
                    .unwrap_or_else(|e| panic!("mode {mode} jobs={jobs} explain {row:?}: {e}"));
                assert_eq!(
                    a.height, b.height,
                    "mode {mode} jobs={jobs}: height of p{row:?} depends on the job count"
                );
                assert_eq!(
                    a.size(),
                    b.size(),
                    "mode {mode} jobs={jobs}: proof shape of p{row:?} depends on the job count"
                );
            }
        }
    }
}

/// Tuple counts in the profile must be independent of the worker count:
/// total inserts, per-relation inserts, and per-query `(executions,
/// tuples)` are all deterministic, only wall time may differ.
#[test]
fn profile_tuple_counts_are_job_count_invariant() {
    const TC: &str = ".decl e(x: number, y: number)\n.input e\n\
                      .decl p(x: number, y: number)\n.output p\n\
                      p(x, y) :- e(x, y).\n\
                      p(x, z) :- p(x, y), e(y, z).\n";
    let mut state = 7u64;
    let mut inputs = InputData::new();
    inputs.insert("e".into(), pairs(&mut state, 40));

    let engine = Engine::from_source(TC).expect("compiles");
    for config in [
        InterpreterConfig::optimized(),
        InterpreterConfig::dynamic_adapter(),
        InterpreterConfig::unoptimized(),
        InterpreterConfig::legacy(),
    ] {
        let config = config.with_profile();
        let seq = engine
            .run(config.with_jobs(1), &inputs)
            .expect("jobs=1 runs");
        let sp = seq.profile.expect("profiled");
        for jobs in JOB_COUNTS {
            let par = engine
                .run(
                    config.with_jobs(jobs).with_morsel_size(TINY_MORSELS),
                    &inputs,
                )
                .unwrap_or_else(|e| panic!("jobs={jobs} runs: {e}"));
            let pp = par.profile.expect("profiled");
            assert_eq!(sp.total_inserts, pp.total_inserts, "jobs={jobs}");
            assert_eq!(sp.relations, pp.relations, "jobs={jobs}");
            assert_eq!(sp.dispatches, pp.dispatches, "jobs={jobs}");
            assert_eq!(sp.iterations, pp.iterations, "jobs={jobs}");
            assert_eq!(sp.queries.len(), pp.queries.len(), "jobs={jobs}");
            for (s, p) in sp.queries.iter().zip(&pp.queries) {
                assert_eq!(s.label, p.label, "jobs={jobs}");
                assert_eq!(s.executions, p.executions, "jobs={jobs} query {}", s.label);
                assert_eq!(s.tuples, p.tuples, "jobs={jobs} query {}", s.label);
            }
            assert_eq!(
                sorted(&seq.outputs["p"]),
                sorted(&par.outputs["p"]),
                "jobs={jobs}"
            );
        }
    }
}
