//! Classic Datalog programs with analytically known answers, checked
//! across the full pipeline under every interpreter configuration.

use stir::{Engine, InputData, InterpreterConfig, Value};

fn run_all_configs(src: &str, inputs: &InputData) -> Vec<stir::EvalOutcome> {
    let engine = Engine::from_source(src).expect("compiles");
    [
        InterpreterConfig::optimized(),
        InterpreterConfig::dynamic_adapter(),
        InterpreterConfig::unoptimized(),
        InterpreterConfig::legacy(),
    ]
    .into_iter()
    .map(|c| engine.run(c, inputs).expect("runs"))
    .collect()
}

fn assert_all_equal_and<'a>(
    outs: &'a [stir::EvalOutcome],
    rel: &str,
    f: impl FnOnce(&'a [Vec<Value>]),
) {
    for o in &outs[1..] {
        assert_eq!(
            o.outputs[rel], outs[0].outputs[rel],
            "configs disagree on {rel}"
        );
    }
    f(&outs[0].outputs[rel]);
}

#[test]
fn closure_of_a_cycle_is_complete() {
    // TC of a directed n-cycle is all n^2 pairs.
    let n = 20;
    let facts: String = (0..n)
        .map(|i| format!("e({}, {}).\n", i, (i + 1) % n))
        .collect();
    let src = format!(
        ".decl e(x: number, y: number)\n.decl p(x: number, y: number)\n.output p\n\
         {facts}\
         p(x, y) :- e(x, y).\n\
         p(x, z) :- p(x, y), e(y, z).\n"
    );
    let outs = run_all_configs(&src, &InputData::new());
    assert_all_equal_and(&outs, "p", |rows| {
        assert_eq!(rows.len(), (n * n) as usize);
    });
}

#[test]
fn closure_of_a_chain_is_triangular() {
    let n = 30;
    let facts: String = (0..n - 1)
        .map(|i| format!("e({}, {}).\n", i, i + 1))
        .collect();
    let src = format!(
        ".decl e(x: number, y: number)\n.decl p(x: number, y: number)\n.output p\n\
         {facts}\
         p(x, y) :- e(x, y).\n\
         p(x, z) :- p(x, y), e(y, z).\n"
    );
    let outs = run_all_configs(&src, &InputData::new());
    assert_all_equal_and(&outs, "p", |rows| {
        assert_eq!(rows.len(), (n * (n - 1) / 2) as usize);
    });
}

#[test]
fn ancestors_with_generation_counting() {
    let src = "\
        .decl parent(c: number, p: number)\n\
        .decl ancestor(c: number, a: number, gen: number)\n\
        .output ancestor\n\
        parent(1, 10). parent(10, 100). parent(100, 1000).\n\
        ancestor(c, p, 1) :- parent(c, p).\n\
        ancestor(c, a, g) :- ancestor(c, b, g0), parent(b, a), g = g0 + 1.\n";
    let outs = run_all_configs(src, &InputData::new());
    assert_all_equal_and(&outs, "ancestor", |rows| {
        assert_eq!(rows.len(), 6); // 3 + 2 + 1 chains
        assert!(rows.contains(&vec![
            Value::Number(1),
            Value::Number(1000),
            Value::Number(3)
        ]));
    });
}

#[test]
fn even_odd_partition_is_exact() {
    let n = 40;
    let facts: String = (0..=n).map(|i| format!("num({i}).\n")).collect();
    let src = format!(
        ".decl num(x: number)\n.decl even(x: number)\n.decl odd(x: number)\n\
         .output even\n.output odd\n\
         {facts}\
         even(0).\n\
         odd(y) :- even(x), num(y), y = x + 1.\n\
         even(y) :- odd(x), num(y), y = x + 1.\n"
    );
    let outs = run_all_configs(&src, &InputData::new());
    assert_all_equal_and(&outs, "even", |rows| {
        assert_eq!(rows.len(), (n / 2 + 1) as usize);
    });
    assert_all_equal_and(&outs, "odd", |rows| {
        assert_eq!(rows.len(), (n / 2) as usize);
    });
}

#[test]
fn aggregate_sums_per_group() {
    let src = "\
        .decl sale(region: number, amount: number)\n\
        .decl total(region: number, sum: number)\n\
        .decl grand(sum: number)\n\
        .decl biggest(m: number)\n\
        .output total\n.output grand\n.output biggest\n\
        sale(1, 100). sale(1, 250). sale(2, 40). sale(2, 60). sale(3, 7).\n\
        total(r, s) :- sale(r, _), s = sum a : { sale(r, a) }.\n\
        grand(s) :- s = sum a : { sale(_, a) }.\n\
        biggest(m) :- m = max a : { sale(_, a) }.\n";
    let outs = run_all_configs(src, &InputData::new());
    assert_all_equal_and(&outs, "total", |rows| {
        assert_eq!(
            rows,
            &[
                vec![Value::Number(1), Value::Number(350)],
                vec![Value::Number(2), Value::Number(100)],
                vec![Value::Number(3), Value::Number(7)],
            ]
        );
    });
    assert_all_equal_and(&outs, "grand", |rows| {
        assert_eq!(rows, &[vec![Value::Number(457)]]);
    });
    assert_all_equal_and(&outs, "biggest", |rows| {
        assert_eq!(rows, &[vec![Value::Number(250)]]);
    });
}

#[test]
fn string_pipeline() {
    let src = r#"
        .decl file(name: symbol)
        .decl backup(name: symbol, tag: symbol, len: number)
        .output backup
        file("a.txt"). file("notes.md").
        backup(n, t, l) :- file(n), t = cat(n, ".bak"), l = strlen(n).
    "#;
    let outs = run_all_configs(src, &InputData::new());
    assert_all_equal_and(&outs, "backup", |rows| {
        assert!(rows.contains(&vec![
            Value::Symbol("a.txt".into()),
            Value::Symbol("a.txt.bak".into()),
            Value::Number(5),
        ]));
        assert_eq!(rows.len(), 2);
    });
}

#[test]
fn unsigned_and_float_columns() {
    let src = "\
        .decl m(u: unsigned, f: float)\n\
        .decl big(u: unsigned)\n\
        .decl hot(f: float)\n\
        .output big\n.output hot\n\
        m(4000000000, 1.5). m(7, 2.25). m(100, -3.5).\n\
        big(u) :- m(u, _), u > 1000000.\n\
        hot(f) :- m(_, f), f > 1.0.\n";
    let outs = run_all_configs(src, &InputData::new());
    assert_all_equal_and(&outs, "big", |rows| {
        assert_eq!(rows, &[vec![Value::Unsigned(4_000_000_000)]]);
    });
    assert_all_equal_and(&outs, "hot", |rows| {
        assert_eq!(rows.len(), 2);
    });
}

#[test]
fn eqrel_components_via_union_find() {
    let src = "\
        .decl link(x: number, y: number)\n\
        .decl same(x: number, y: number) eqrel\n\
        .decl pair_count(n: number)\n\
        .output pair_count\n\
        link(1, 2). link(2, 3). link(3, 4).\n\
        link(10, 11).\n\
        same(x, y) :- link(x, y).\n\
        pair_count(n) :- n = count : { same(_, _) }.\n";
    let outs = run_all_configs(src, &InputData::new());
    // {1,2,3,4} → 16 pairs; {10,11} → 4 pairs.
    assert_all_equal_and(&outs, "pair_count", |rows| {
        assert_eq!(rows, &[vec![Value::Number(20)]]);
    });
}

#[test]
fn the_papers_example_program() {
    // Fig. 2 on the paper's own tiny graph.
    let src = r#"
        .decl edge(x: symbol, y: symbol)
        .decl protect(b: symbol)
        .decl vulnerable(b: symbol)
        .decl unsafe_blk(b: symbol)
        .decl violation(b: symbol)
        .output violation
        edge("while", "body"). edge("body", "check"). edge("check", "use").
        protect("check").
        vulnerable("use"). vulnerable("body").
        unsafe_blk("while").
        unsafe_blk(y) :- unsafe_blk(x), edge(x, y), !protect(y).
        violation(x) :- vulnerable(x), unsafe_blk(x).
    "#;
    let outs = run_all_configs(src, &InputData::new());
    assert_all_equal_and(&outs, "violation", |rows| {
        // "check" is protected, so "use" is never reached; only "body".
        assert_eq!(rows, &[vec![Value::Symbol("body".into())]]);
    });
}

#[test]
fn empty_inputs_yield_empty_outputs() {
    let src = "\
        .decl e(x: number, y: number)\n.input e\n\
        .decl p(x: number, y: number)\n.output p\n\
        p(x, y) :- e(x, y).\n\
        p(x, z) :- p(x, y), e(y, z).\n";
    let outs = run_all_configs(src, &InputData::new());
    assert_all_equal_and(&outs, "p", |rows| assert!(rows.is_empty()));
}

#[test]
fn deep_recursion_terminates() {
    // A 2000-node chain exercises many fixpoint iterations.
    let n = 2000;
    let rows: Vec<Vec<Value>> = (0..n - 1)
        .map(|i| vec![Value::Number(i), Value::Number(i + 1)])
        .collect();
    let mut inputs = InputData::new();
    inputs.insert("e".into(), rows);
    let src = "\
        .decl e(x: number, y: number)\n.input e\n\
        .decl dist(x: number)\n.output dist\n\
        dist(0).\n\
        dist(y) :- dist(x), e(x, y).\n";
    let engine = Engine::from_source(src).expect("compiles");
    let out = engine
        .run(InterpreterConfig::optimized(), &inputs)
        .expect("runs");
    assert_eq!(out.outputs["dist"].len(), n as usize);
}
