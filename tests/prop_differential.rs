//! Property-based differential testing: randomly generated Datalog
//! programs (from a restricted grammar) and inputs must produce identical
//! results under the naive reference evaluator and every interpreter
//! configuration.

mod common;

use common::{eval_reference, to_tuples, Db};
use proptest::prelude::*;
use std::collections::BTreeSet;
use stir::{Engine, InputData, InterpreterConfig, Value};
use stir_frontend::parse_and_check;

/// One randomly assembled rule body atom over relations e/f (binary).
#[derive(Debug, Clone)]
enum BodyAtom {
    /// `e(v_i, v_j)`
    E(usize, usize),
    /// `f(v_i, v_j)`
    F(usize, usize),
    /// `!e(v_i, v_j)` (variables must be bound by earlier atoms)
    NotE(usize, usize),
    /// `v_i < v_j`
    Lt(usize, usize),
    /// `v_k = v_i + c`
    Bind(usize, usize, i64),
}

fn body_atom() -> impl Strategy<Value = BodyAtom> {
    prop_oneof![
        3 => (0usize..4, 0usize..4).prop_map(|(a, b)| BodyAtom::E(a, b)),
        3 => (0usize..4, 0usize..4).prop_map(|(a, b)| BodyAtom::F(a, b)),
        1 => (0usize..4, 0usize..4).prop_map(|(a, b)| BodyAtom::NotE(a, b)),
        1 => (0usize..4, 0usize..4).prop_map(|(a, b)| BodyAtom::Lt(a, b)),
        1 => (0usize..4, 0usize..4, -3i64..4).prop_map(|(k, i, c)| BodyAtom::Bind(k, i, c)),
    ]
}

/// Renders a rule for head `r(v_a, v_b)` if it is well-formed (grounded);
/// returns `None` otherwise.
fn render_rule(head: (usize, usize), body: &[BodyAtom], recursive: bool) -> Option<String> {
    let mut bound = [false; 4];
    let mut parts: Vec<String> = Vec::new();
    let mut positives = 0;
    for atom in body {
        match atom {
            BodyAtom::E(a, b) => {
                bound[*a] = true;
                bound[*b] = true;
                parts.push(format!("e(v{a}, v{b})"));
                positives += 1;
            }
            BodyAtom::F(a, b) => {
                bound[*a] = true;
                bound[*b] = true;
                parts.push(format!("f(v{a}, v{b})"));
                positives += 1;
            }
            BodyAtom::NotE(a, b) => {
                if !bound[*a] || !bound[*b] {
                    return None;
                }
                parts.push(format!("!e(v{a}, v{b})"));
            }
            BodyAtom::Lt(a, b) => {
                if !bound[*a] || !bound[*b] {
                    return None;
                }
                parts.push(format!("v{a} < v{b}"));
            }
            BodyAtom::Bind(k, i, c) => {
                if !bound[*i] || bound[*k] {
                    return None;
                }
                bound[*k] = true;
                parts.push(format!("v{k} = v{i} + {c}"));
            }
        }
    }
    if positives == 0 || !bound[head.0] || !bound[head.1] {
        return None;
    }
    let rec = if recursive {
        // Prepend a recursive atom; it binds its own variables.
        format!("r(v{}, v{}), ", head.0, head.1)
    } else {
        String::new()
    };
    // The recursive variant reuses head vars which are bound by the body,
    // making it a plain (always-true once derived) self-join — instead use
    // a distinct structure: r(v0, v1) in front, which binds v0/v1.
    let _ = rec;
    let body_txt = parts.join(", ");
    Some(format!("r(v{}, v{}) :- {}.", head.0, head.1, body_txt))
}

fn edge_set(seed: u64, n: usize) -> BTreeSet<Vec<i64>> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % 9) as i64
    };
    (0..n).map(|_| vec![next(), next()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_agree_with_reference(
        bodies in prop::collection::vec(
            (prop::collection::vec(body_atom(), 1..5), (0usize..4, 0usize..4)),
            1..4,
        ),
        add_recursive in proptest::bool::ANY,
        seed in 1u64..500,
    ) {
        let mut rules: Vec<String> = bodies
            .iter()
            .filter_map(|(body, head)| render_rule(*head, body, false))
            .collect();
        prop_assume!(!rules.is_empty());
        if add_recursive {
            rules.push("r(x, z) :- r(x, y), e(y, z).".to_owned());
        }
        let src = format!(
            ".decl e(x: number, y: number)\n.input e\n\
             .decl f(x: number, y: number)\n.input f\n\
             .decl r(x: number, y: number)\n.output r\n\
             {}\n",
            rules.join("\n")
        );
        // Some assembled programs are still ill-formed (e.g. ungrounded
        // via negation-only); skip those.
        let Ok(checked) = parse_and_check(&src) else {
            return Ok(());
        };

        let mut db = Db::new();
        db.insert("e".into(), edge_set(seed, 14));
        db.insert("f".into(), edge_set(seed.wrapping_mul(31), 10));
        let reference = eval_reference(&checked, &db);

        let engine = Engine::from_source(&src).expect("reference-checked program compiles");
        let inputs: InputData = db
            .iter()
            .map(|(name, rows)| {
                (
                    name.clone(),
                    rows.iter()
                        .map(|t| t.iter().map(|&v| Value::Number(v as i32)).collect())
                        .collect(),
                )
            })
            .collect();
        for config in [
            InterpreterConfig::optimized(),
            InterpreterConfig::unoptimized(),
            InterpreterConfig::legacy(),
        ] {
            let got = engine.run(config, &inputs).expect("evaluates");
            prop_assert_eq!(
                to_tuples(&got.outputs["r"]),
                reference["r"].clone(),
                "config {:?}\nprogram:\n{}",
                config,
                src
            );
        }
    }
}
