//! Randomized differential testing: randomly generated Datalog programs
//! (from a restricted grammar) and inputs must produce identical results
//! under the naive reference evaluator and every interpreter
//! configuration.
//!
//! Programs are assembled from a seeded splitmix64 stream (proptest is
//! not vendored), so each failing case reproduces from its seed.

mod common;

use common::{eval_reference, to_tuples, Db};
use std::collections::BTreeSet;
use stir::{Engine, InputData, InterpreterConfig, Value};
use stir_frontend::parse_and_check;

/// One randomly assembled rule body atom over relations e/f (binary).
#[derive(Debug, Clone)]
enum BodyAtom {
    /// `e(v_i, v_j)`
    E(usize, usize),
    /// `f(v_i, v_j)`
    F(usize, usize),
    /// `!e(v_i, v_j)` (variables must be bound by earlier atoms)
    NotE(usize, usize),
    /// `v_i < v_j`
    Lt(usize, usize),
    /// `v_k = v_i + c`
    Bind(usize, usize, i64),
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Weighted pick mirroring the original proptest strategy
/// (3:3:1:1:1 across E/F/NotE/Lt/Bind).
fn body_atom(state: &mut u64) -> BodyAtom {
    let a = (splitmix(state) % 4) as usize;
    let b = (splitmix(state) % 4) as usize;
    match splitmix(state) % 9 {
        0..=2 => BodyAtom::E(a, b),
        3..=5 => BodyAtom::F(a, b),
        6 => BodyAtom::NotE(a, b),
        7 => BodyAtom::Lt(a, b),
        _ => BodyAtom::Bind(a, b, (splitmix(state) % 7) as i64 - 3),
    }
}

/// Renders a rule for head `r(v_a, v_b)` if it is well-formed (grounded);
/// returns `None` otherwise.
fn render_rule(head: (usize, usize), body: &[BodyAtom]) -> Option<String> {
    let mut bound = [false; 4];
    let mut parts: Vec<String> = Vec::new();
    let mut positives = 0;
    for atom in body {
        match atom {
            BodyAtom::E(a, b) => {
                bound[*a] = true;
                bound[*b] = true;
                parts.push(format!("e(v{a}, v{b})"));
                positives += 1;
            }
            BodyAtom::F(a, b) => {
                bound[*a] = true;
                bound[*b] = true;
                parts.push(format!("f(v{a}, v{b})"));
                positives += 1;
            }
            BodyAtom::NotE(a, b) => {
                if !bound[*a] || !bound[*b] {
                    return None;
                }
                parts.push(format!("!e(v{a}, v{b})"));
            }
            BodyAtom::Lt(a, b) => {
                if !bound[*a] || !bound[*b] {
                    return None;
                }
                parts.push(format!("v{a} < v{b}"));
            }
            BodyAtom::Bind(k, i, c) => {
                if !bound[*i] || bound[*k] {
                    return None;
                }
                bound[*k] = true;
                parts.push(format!("v{k} = v{i} + {c}"));
            }
        }
    }
    if positives == 0 || !bound[head.0] || !bound[head.1] {
        return None;
    }
    let body_txt = parts.join(", ");
    Some(format!("r(v{}, v{}) :- {}.", head.0, head.1, body_txt))
}

fn edge_set(seed: u64, n: usize) -> BTreeSet<Vec<i64>> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % 9) as i64
    };
    (0..n).map(|_| vec![next(), next()]).collect()
}

#[test]
fn random_programs_agree_with_reference() {
    let mut checked_cases = 0;
    for seed in 1u64..=96 {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15);
        let n_rules = 1 + (splitmix(&mut state) % 3) as usize;
        let mut rules: Vec<String> = Vec::new();
        for _ in 0..n_rules {
            let n_atoms = 1 + (splitmix(&mut state) % 4) as usize;
            let body: Vec<BodyAtom> = (0..n_atoms).map(|_| body_atom(&mut state)).collect();
            let head = (
                (splitmix(&mut state) % 4) as usize,
                (splitmix(&mut state) % 4) as usize,
            );
            if let Some(r) = render_rule(head, &body) {
                rules.push(r);
            }
        }
        if rules.is_empty() {
            continue;
        }
        if splitmix(&mut state).is_multiple_of(2) {
            rules.push("r(x, z) :- r(x, y), e(y, z).".to_owned());
        }
        let src = format!(
            ".decl e(x: number, y: number)\n.input e\n\
             .decl f(x: number, y: number)\n.input f\n\
             .decl r(x: number, y: number)\n.output r\n\
             {}\n",
            rules.join("\n")
        );
        // Some assembled programs are still ill-formed (e.g. ungrounded
        // via negation-only); skip those.
        let Ok(checked) = parse_and_check(&src) else {
            continue;
        };

        let mut db = Db::new();
        db.insert("e".into(), edge_set(seed, 14));
        db.insert("f".into(), edge_set(seed.wrapping_mul(31), 10));
        let reference = eval_reference(&checked, &db);

        let engine = Engine::from_source(&src).expect("reference-checked program compiles");
        let inputs: InputData = db
            .iter()
            .map(|(name, rows)| {
                (
                    name.clone(),
                    rows.iter()
                        .map(|t| t.iter().map(|&v| Value::Number(v as i32)).collect())
                        .collect(),
                )
            })
            .collect();
        for config in [
            InterpreterConfig::optimized(),
            InterpreterConfig::unoptimized(),
            InterpreterConfig::legacy(),
        ] {
            let got = engine.run(config, &inputs).expect("evaluates");
            assert_eq!(
                to_tuples(&got.outputs["r"]),
                reference["r"].clone(),
                "seed {seed} config {config:?}\nprogram:\n{src}"
            );
        }
        checked_cases += 1;
    }
    assert!(
        checked_cases >= 20,
        "generator degenerated: only {checked_cases} well-formed cases"
    );
}
