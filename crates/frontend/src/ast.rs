//! The abstract syntax tree of a Datalog program.

use crate::span::Span;
use std::fmt;

/// Attribute (column) types.
///
/// All of them are stored as `u32` bit patterns at runtime; the type
/// steers functor semantics and I/O formatting (de-specialization step 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Signed 32-bit integer (`number`).
    Number,
    /// Unsigned 32-bit integer (`unsigned`).
    Unsigned,
    /// 32-bit IEEE float (`float`).
    Float,
    /// Interned string (`symbol`).
    Symbol,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Number => write!(f, "number"),
            AttrType::Unsigned => write!(f, "unsigned"),
            AttrType::Float => write!(f, "float"),
            AttrType::Symbol => write!(f, "symbol"),
        }
    }
}

/// Representation hint on a relation declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReprHint {
    /// No hint: the planner chooses (B-tree).
    #[default]
    Default,
    /// Force B-tree indexes.
    BTree,
    /// Force Brie indexes.
    Brie,
    /// Union-find equivalence relation (binary relations only).
    EqRel,
}

/// One declared attribute: `name: type`.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

/// A relation declaration (`.decl`).
#[derive(Debug, Clone, PartialEq)]
pub struct RelationDecl {
    /// Relation name.
    pub name: String,
    /// Declared attributes in order.
    pub attrs: Vec<Attribute>,
    /// Representation hint.
    pub repr: ReprHint,
    /// Source location.
    pub span: Span,
}

impl RelationDecl {
    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }
}

/// Binary operators in value expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `^` (exponentiation)
    Pow,
    /// `band` (bitwise and)
    Band,
    /// `bor` (bitwise or)
    Bor,
    /// `bxor` (bitwise xor)
    Bxor,
    /// `bshl` (shift left)
    Bshl,
    /// `bshr` (shift right)
    Bshr,
    /// `land` (logical and: nonzero ∧ nonzero)
    Land,
    /// `lor` (logical or)
    Lor,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "^",
            BinOp::Band => "band",
            BinOp::Bor => "bor",
            BinOp::Bxor => "bxor",
            BinOp::Bshl => "bshl",
            BinOp::Bshr => "bshr",
            BinOp::Land => "land",
            BinOp::Lor => "lor",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Bitwise complement `bnot`.
    Bnot,
    /// Logical not `lnot`.
    Lnot,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Bnot => write!(f, "bnot"),
            UnOp::Lnot => write!(f, "lnot"),
        }
    }
}

/// Built-in functors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Functor {
    /// `cat(a, b)`: string concatenation.
    Cat,
    /// `ord(s)`: the symbol id of a string.
    Ord,
    /// `strlen(s)`: string length.
    Strlen,
    /// `substr(s, from, len)`: substring.
    Substr,
    /// `to_number(s)`: parse a string as a number.
    ToNumber,
    /// `to_string(n)`: render a number as a string.
    ToString,
    /// `min(a, b)`: binary minimum.
    Min,
    /// `max(a, b)`: binary maximum.
    Max,
}

impl Functor {
    /// The functor's argument count.
    pub fn arity(self) -> usize {
        match self {
            Functor::Cat | Functor::Min | Functor::Max => 2,
            Functor::Substr => 3,
            _ => 1,
        }
    }

    /// Parses a functor name.
    pub fn from_name(name: &str) -> Option<Functor> {
        Some(match name {
            "cat" => Functor::Cat,
            "ord" => Functor::Ord,
            "strlen" => Functor::Strlen,
            "substr" => Functor::Substr,
            "to_number" => Functor::ToNumber,
            "to_string" => Functor::ToString,
            "min" => Functor::Min,
            "max" => Functor::Max,
            _ => return None,
        })
    }

    /// The surface name.
    pub fn name(self) -> &'static str {
        match self {
            Functor::Cat => "cat",
            Functor::Ord => "ord",
            Functor::Strlen => "strlen",
            Functor::Substr => "substr",
            Functor::ToNumber => "to_number",
            Functor::ToString => "to_string",
            Functor::Min => "min",
            Functor::Max => "max",
        }
    }
}

/// Aggregate kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// `count : { body }`
    Count,
    /// `sum e : { body }`
    Sum,
    /// `min e : { body }`
    Min,
    /// `max e : { body }`
    Max,
}

impl AggKind {
    /// Parses an aggregate keyword.
    pub fn from_name(name: &str) -> Option<AggKind> {
        Some(match name {
            "count" => AggKind::Count,
            "sum" => AggKind::Sum,
            "min" => AggKind::Min,
            "max" => AggKind::Max,
            _ => return None,
        })
    }

    /// The surface keyword.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Min => "min",
            AggKind::Max => "max",
        }
    }
}

/// A value expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A variable reference.
    Var(String, Span),
    /// The anonymous variable `_`.
    Wildcard(Span),
    /// An integer literal (signed/unsigned resolution happens in typing).
    Number(i64, Span),
    /// A float literal.
    Float(f32, Span),
    /// A string literal.
    Str(String, Span),
    /// The auto-increment counter `$`.
    Counter(Span),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// A functor call.
    Call {
        /// Which functor.
        func: Functor,
        /// Arguments.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// An aggregate sub-query, e.g. `sum x : { f(x) }`.
    Aggregate {
        /// Aggregate kind.
        kind: AggKind,
        /// The aggregated expression (`None` for `count`).
        value: Option<Box<Expr>>,
        /// The aggregate body literals.
        body: Vec<Literal>,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// The expression's source location.
    pub fn span(&self) -> Span {
        match self {
            Expr::Var(_, s)
            | Expr::Wildcard(s)
            | Expr::Number(_, s)
            | Expr::Float(_, s)
            | Expr::Str(_, s)
            | Expr::Counter(s) => *s,
            Expr::Binary { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Call { span, .. }
            | Expr::Aggregate { span, .. } => *span,
        }
    }

    /// Whether this is a constant literal.
    pub fn is_constant(&self) -> bool {
        matches!(self, Expr::Number(..) | Expr::Float(..) | Expr::Str(..))
    }

    /// Collects the free variables of the expression into `out`
    /// (aggregate bodies bind their own variables and are skipped).
    pub fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Var(v, _) => out.push(v),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            Expr::Unary { expr, .. } => expr.collect_vars(out),
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            _ => {}
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v, _) => write!(f, "{v}"),
            Expr::Wildcard(_) => write!(f, "_"),
            Expr::Number(n, _) => write!(f, "{n}"),
            Expr::Float(x, _) => write!(f, "{x}"),
            Expr::Str(s, _) => write!(f, "{s:?}"),
            Expr::Counter(_) => write!(f, "$"),
            Expr::Binary { op, lhs, rhs, .. } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Unary { op, expr, .. } => write!(f, "({op} {expr})"),
            Expr::Call { func, args, .. } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Aggregate {
                kind, value, body, ..
            } => {
                write!(f, "{}", kind.name())?;
                if let Some(v) = value {
                    write!(f, " {v}")?;
                }
                write!(f, " : {{ ")?;
                for (i, l) in body.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}")?;
                }
                write!(f, " }}")
            }
        }
    }
}

/// Comparison operators in constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A relation atom `name(arg, ...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Relation name.
    pub name: String,
    /// Argument expressions.
    pub args: Vec<Expr>,
    /// Source location.
    pub span: Span,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A binary comparison constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Operator.
    pub op: CmpOp,
    /// Left expression.
    pub lhs: Expr,
    /// Right expression.
    pub rhs: Expr,
    /// Source location.
    pub span: Span,
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// One body literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A positive atom.
    Positive(Atom),
    /// A negated atom `!a(...)`.
    Negative(Atom),
    /// A comparison constraint.
    Constraint(Constraint),
}

impl Literal {
    /// The literal's source location.
    pub fn span(&self) -> Span {
        match self {
            Literal::Positive(a) | Literal::Negative(a) => a.span,
            Literal::Constraint(c) => c.span,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Positive(a) => write!(f, "{a}"),
            Literal::Negative(a) => write!(f, "!{a}"),
            Literal::Constraint(c) => write!(f, "{c}"),
        }
    }
}

/// A rule `head :- body.`
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The conjunction of body literals.
    pub body: Vec<Literal>,
    /// Source location.
    pub span: Span,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ".")
    }
}

/// A ground fact `rel(c1, ..., cn).`
#[derive(Debug, Clone, PartialEq)]
pub struct Fact {
    /// The fact atom; arguments must be constants (checked semantically).
    pub atom: Atom,
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.", self.atom)
    }
}

/// A whole parsed program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Relation declarations, in source order.
    pub decls: Vec<RelationDecl>,
    /// Relations marked `.input` (facts supplied externally).
    pub inputs: Vec<String>,
    /// Relations marked `.output` (results reported).
    pub outputs: Vec<String>,
    /// Ground facts from the source text.
    pub facts: Vec<Fact>,
    /// Rules (already normalized: no disjunction).
    pub rules: Vec<Rule>,
}

impl Program {
    /// Finds a declaration by name.
    pub fn decl(&self, name: &str) -> Option<&RelationDecl> {
        self.decls.iter().find(|d| d.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn var(name: &str) -> Expr {
        Expr::Var(name.into(), Span::default())
    }

    #[test]
    fn display_round_trip_shapes() {
        let rule = Rule {
            head: Atom {
                name: "path".into(),
                args: vec![var("x"), var("z")],
                span: Span::default(),
            },
            body: vec![
                Literal::Positive(Atom {
                    name: "edge".into(),
                    args: vec![var("x"), var("y")],
                    span: Span::default(),
                }),
                Literal::Negative(Atom {
                    name: "blocked".into(),
                    args: vec![var("y")],
                    span: Span::default(),
                }),
                Literal::Constraint(Constraint {
                    op: CmpOp::Lt,
                    lhs: var("x"),
                    rhs: Expr::Number(10, Span::default()),
                    span: Span::default(),
                }),
            ],
            span: Span::default(),
        };
        assert_eq!(
            rule.to_string(),
            "path(x, z) :- edge(x, y), !blocked(y), x < 10."
        );
    }

    #[test]
    fn collect_vars_walks_expressions() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(var("a")),
            rhs: Box::new(Expr::Call {
                func: Functor::Max,
                args: vec![var("b"), Expr::Number(1, Span::default())],
                span: Span::default(),
            }),
            span: Span::default(),
        };
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars, vec!["a", "b"]);
    }

    #[test]
    fn functor_metadata_is_consistent() {
        for f in [
            Functor::Cat,
            Functor::Ord,
            Functor::Strlen,
            Functor::Substr,
            Functor::ToNumber,
            Functor::ToString,
            Functor::Min,
            Functor::Max,
        ] {
            assert_eq!(Functor::from_name(f.name()), Some(f));
        }
        assert_eq!(Functor::from_name("nope"), None);
        assert_eq!(Functor::Substr.arity(), 3);
    }

    #[test]
    fn aggregate_display() {
        let agg = Expr::Aggregate {
            kind: AggKind::Sum,
            value: Some(Box::new(var("x"))),
            body: vec![Literal::Positive(Atom {
                name: "f".into(),
                args: vec![var("x")],
                span: Span::default(),
            })],
            span: Span::default(),
        };
        assert_eq!(agg.to_string(), "sum x : { f(x) }");
    }
}
