//! Source positions for error reporting.

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// The start of the file.
    pub fn start() -> Pos {
        Pos { line: 1, col: 1 }
    }
}

impl Default for Pos {
    fn default() -> Self {
        Pos::start()
    }
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open source range `[from, to)` used to attach diagnostics to
/// AST nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// Where the construct starts.
    pub from: Pos,
    /// Where the construct ends.
    pub to: Pos,
}

impl Span {
    /// A single-point span.
    pub fn at(pos: Pos) -> Span {
        Span { from: pos, to: pos }
    }

    /// The smallest span covering both operands.
    pub fn merge(self, other: Span) -> Span {
        Span {
            from: self.from.min(other.from),
            to: self.to.max(other.to),
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::at(Pos { line: 1, col: 5 });
        let b = Span::at(Pos { line: 2, col: 1 });
        let m = a.merge(b);
        assert_eq!(m.from, Pos { line: 1, col: 5 });
        assert_eq!(m.to, Pos { line: 2, col: 1 });
    }

    #[test]
    fn display_is_line_colon_col() {
        assert_eq!(Pos { line: 3, col: 7 }.to_string(), "3:7");
    }
}
