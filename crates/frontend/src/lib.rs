//! The STIR Datalog frontend: lexer, parser, AST, and semantic analysis.
//!
//! This crate implements the first phase of the Soufflé-style pipeline
//! (paper Fig. 1): source text → AST → semantically checked program. It
//! supports the Soufflé subset exercised by the paper's benchmarks:
//!
//! * relation declarations with `number` / `unsigned` / `float` / `symbol`
//!   attribute types and representation hints (`btree`, `brie`, `eqrel`);
//! * facts and Horn rules with stratified negation;
//! * arithmetic/bitwise/string functors and comparison constraints;
//! * `count` / `sum` / `min` / `max` aggregates;
//! * disjunction in rule bodies (normalized into multiple rules);
//! * `.input` / `.output` directives.
//!
//! # Example
//!
//! ```
//! use stir_frontend::parse_and_check;
//!
//! let program = parse_and_check(
//!     r#"
//!     .decl edge(x: number, y: number)
//!     .decl path(x: number, y: number)
//!     .output path
//!     edge(1, 2). edge(2, 3).
//!     path(x, y) :- edge(x, y).
//!     path(x, z) :- path(x, y), edge(y, z).
//!     "#,
//! )?;
//! assert_eq!(program.ast.rules.len(), 2);
//! assert_eq!(program.strata.len(), 2);
//! # Ok::<(), stir_frontend::error::FrontendError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod span;
pub mod symbols;
pub mod token;

pub use analysis::{analyze, CheckedProgram};
pub use error::FrontendError;
pub use symbols::SymbolTable;

/// Parses and semantically checks a Datalog program.
///
/// This is the one-call entry point: lex + parse + normalize + name/arity
/// resolution + groundedness + type checks + stratification.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error encountered,
/// with source positions.
pub fn parse_and_check(source: &str) -> Result<CheckedProgram, FrontendError> {
    let program = parser::parse(source)?;
    analysis::analyze(program).map_err(FrontendError::from)
}
