//! Frontend error types.

use crate::span::Span;
use std::fmt;

/// A lexical or syntactic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Where the error occurred.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// A semantic error (undeclared relation, arity mismatch, ungrounded
/// variable, unstratifiable negation, type error, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemanticError {
    /// Human-readable description.
    pub msg: String,
    /// Where the error occurred.
    pub span: Span,
}

impl SemanticError {
    /// Creates a semantic error.
    pub fn new(msg: impl Into<String>, span: Span) -> Self {
        SemanticError {
            msg: msg.into(),
            span,
        }
    }
}

impl fmt::Display for SemanticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semantic error at {}: {}", self.span, self.msg)
    }
}

impl std::error::Error for SemanticError {}

/// Any error produced by the frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// Lexing or parsing failed.
    Parse(ParseError),
    /// The program is syntactically valid but semantically ill-formed.
    Semantic(SemanticError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Parse(e) => e.fmt(f),
            FrontendError::Semantic(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

impl From<SemanticError> for FrontendError {
    fn from(e: SemanticError) -> Self {
        FrontendError::Semantic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Pos;

    #[test]
    fn errors_display_with_positions() {
        let e = SemanticError::new("boom", Span::at(Pos { line: 2, col: 4 }));
        assert_eq!(e.to_string(), "semantic error at 2:4: boom");
        let fe: FrontendError = e.into();
        assert!(fe.to_string().contains("boom"));
    }
}
