//! String interning.
//!
//! Symbols (string values) are stored once in a [`SymbolTable`] and
//! referred to everywhere else by their `u32` index — the bit pattern that
//! ends up inside DER indexes. Interning happens at fact-encoding and
//! functor-evaluation time; indexes never see strings (de-specialization
//! step 2).

use std::collections::HashMap;

/// A bidirectional string ↔ `u32` interner.
///
/// # Example
///
/// ```
/// use stir_frontend::symbols::SymbolTable;
///
/// let mut table = SymbolTable::new();
/// let a = table.intern("hello");
/// let b = table.intern("world");
/// assert_ne!(a, b);
/// assert_eq!(table.intern("hello"), a);
/// assert_eq!(table.resolve(a), "hello");
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    strings: Vec<String>,
    ids: HashMap<String, u32>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its stable id.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("symbol table overflow");
        self.strings.push(s.to_owned());
        self.ids.insert(s.to_owned(), id);
        id
    }

    /// Looks up an id without interning.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.ids.get(s).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// All interned strings, in id order (id `i` is `strings()[i]`).
    ///
    /// Used by the durability layer to persist the table; interning the
    /// strings back in this order reproduces identical ids.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("x");
        assert_eq!(t.intern("x"), a);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_resolvable() {
        let mut t = SymbolTable::new();
        let ids: Vec<u32> = ["a", "b", "c"].iter().map(|s| t.intern(s)).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(t.resolve(1), "b");
        assert_eq!(t.lookup("c"), Some(2));
        assert_eq!(t.lookup("missing"), None);
    }
}
