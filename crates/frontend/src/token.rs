//! Token definitions for the Datalog lexer.

use crate::span::Span;

/// The kinds of token produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword-like word (`edge`, `number`, `count`, ...).
    ///
    /// Keywords are context-sensitive in Soufflé-style Datalog (e.g.
    /// `count` is a fine relation name), so the lexer does not reserve
    /// them; the parser decides by context.
    Ident(String),
    /// A decimal or hex (`0x...`) or binary (`0b...`) integer literal.
    Number(i64),
    /// A floating-point literal.
    Float(f32),
    /// A quoted string literal (quotes stripped, escapes resolved).
    Str(String),
    /// A directive word following a dot, e.g. `.decl` → `Directive("decl")`.
    Directive(String),

    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `.` (clause terminator)
    Dot,
    /// `:-`
    If,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `!`
    Bang,
    /// `_`
    Underscore,
    /// `$` (auto-increment counter, Soufflé extension)
    Dollar,

    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,

    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^` (exponentiation, as in Soufflé)
    Caret,

    /// End of input.
    Eof,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number(n) => write!(f, "number `{n}`"),
            TokenKind::Float(x) => write!(f, "float `{x}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Directive(d) => write!(f, "directive `.{d}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::If => write!(f, "`:-`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Underscore => write!(f, "`_`"),
            TokenKind::Dollar => write!(f, "`$`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Caret => write!(f, "`^`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}
