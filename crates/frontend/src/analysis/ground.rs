//! Groundedness (range restriction) checking.
//!
//! Every variable of a rule must be *grounded*: bound by a positive body
//! atom (appearing there as a direct argument), or by an equality
//! constraint whose other side is already grounded. Variables in heads,
//! negated atoms, comparison constraints, and functor arguments never
//! bind — they only consume bindings. This is Soufflé's range-restriction
//! rule; it is what makes bottom-up evaluation possible.

use crate::ast::{CmpOp, Expr, Literal, Program, Rule};
use crate::error::SemanticError;
use std::collections::HashSet;

/// Checks all rules of a program.
///
/// # Errors
///
/// Reports the first ungrounded variable with its position.
pub fn check_groundedness(ast: &Program) -> Result<(), SemanticError> {
    for rule in &ast.rules {
        check_rule(rule)?;
    }
    Ok(())
}

fn check_rule(rule: &Rule) -> Result<(), SemanticError> {
    let bound = fixpoint_bindings(&rule.body, &HashSet::new());

    // Aggregate bodies must themselves be grounded (given outer bindings),
    // and then every used variable must be bound.
    for lit in &rule.body {
        if let Literal::Constraint(c) = lit {
            for agg in [&c.lhs, &c.rhs] {
                check_aggregates(agg, &bound)?;
            }
        }
    }

    let mut used: Vec<(&str, crate::span::Span)> = Vec::new();
    for arg in &rule.head.args {
        collect_used(arg, &mut used);
    }
    for lit in &rule.body {
        match lit {
            Literal::Positive(a) => {
                // Complex expressions in positive-atom arguments consume.
                for arg in &a.args {
                    if !matches!(arg, Expr::Var(..) | Expr::Wildcard(..)) {
                        collect_used(arg, &mut used);
                    }
                }
            }
            Literal::Negative(a) => {
                for arg in &a.args {
                    collect_used(arg, &mut used);
                }
            }
            Literal::Constraint(c) => {
                collect_used_outer(&c.lhs, &mut used);
                collect_used_outer(&c.rhs, &mut used);
            }
        }
    }
    for (v, span) in used {
        if !bound.contains(v) {
            return Err(SemanticError::new(
                format!("variable `{v}` is not grounded by a positive body atom"),
                span,
            ));
        }
    }
    Ok(())
}

/// Computes the set of variables grounded by `body`, starting from
/// `outer` (used for aggregate bodies, which inherit outer bindings).
pub fn fixpoint_bindings<'a>(body: &'a [Literal], outer: &HashSet<&'a str>) -> HashSet<&'a str> {
    let mut bound: HashSet<&'a str> = outer.clone();
    // Positive atoms bind their direct variable arguments.
    for lit in body {
        if let Literal::Positive(a) = lit {
            for arg in &a.args {
                if let Expr::Var(v, _) = arg {
                    bound.insert(v);
                }
            }
        }
    }
    // Equalities propagate bindings until fixpoint.
    loop {
        let mut grew = false;
        for lit in body {
            let Literal::Constraint(c) = lit else {
                continue;
            };
            if c.op != CmpOp::Eq {
                continue;
            }
            for (maybe_var, other) in [(&c.lhs, &c.rhs), (&c.rhs, &c.lhs)] {
                if let Expr::Var(v, _) = maybe_var {
                    if !bound.contains(v.as_str()) && expr_grounded(other, &bound) {
                        bound.insert(v);
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            return bound;
        }
    }
}

/// Whether all free variables of `e` are in `bound`. Aggregates are
/// considered grounded iff their own body grounds their value expression
/// (checked separately in [`check_aggregates`]); here they always count as
/// grounded values.
fn expr_grounded(e: &Expr, bound: &HashSet<&str>) -> bool {
    match e {
        Expr::Var(v, _) => bound.contains(v.as_str()),
        Expr::Wildcard(_) => false,
        Expr::Number(..) | Expr::Float(..) | Expr::Str(..) | Expr::Counter(_) => true,
        Expr::Binary { lhs, rhs, .. } => expr_grounded(lhs, bound) && expr_grounded(rhs, bound),
        Expr::Unary { expr, .. } => expr_grounded(expr, bound),
        Expr::Call { args, .. } => args.iter().all(|a| expr_grounded(a, bound)),
        Expr::Aggregate { .. } => true,
    }
}

/// Collects variables *consumed* by an expression (all of them).
fn collect_used<'a>(e: &'a Expr, out: &mut Vec<(&'a str, crate::span::Span)>) {
    match e {
        Expr::Var(v, span) => out.push((v, *span)),
        Expr::Binary { lhs, rhs, .. } => {
            collect_used(lhs, out);
            collect_used(rhs, out);
        }
        Expr::Unary { expr, .. } => collect_used(expr, out),
        Expr::Call { args, .. } => {
            for a in args {
                collect_used(a, out);
            }
        }
        // Aggregate bodies have their own scope, handled separately.
        _ => {}
    }
}

/// Like [`collect_used`] but skips direct `Var` at the top (an equality
/// `X = e` defines `X` rather than using it; the fixpoint decides).
fn collect_used_outer<'a>(e: &'a Expr, out: &mut Vec<(&'a str, crate::span::Span)>) {
    if matches!(e, Expr::Var(..)) {
        // Definition or use — the binding fixpoint covers both; if it did
        // not get bound, the error surfaces through the other side or the
        // head. To catch genuinely free constraint vars (e.g. `x < 3` with
        // x never bound), still record it.
        if let Expr::Var(v, span) = e {
            out.push((v, *span));
        }
        return;
    }
    collect_used(e, out);
}

/// Checks aggregate sub-queries nested in `e`: the aggregate body must be
/// grounded (with outer bindings visible), and the aggregated value
/// expression must be grounded by the aggregate body.
fn check_aggregates(e: &Expr, outer: &HashSet<&str>) -> Result<(), SemanticError> {
    match e {
        Expr::Aggregate {
            value, body, span, ..
        } => {
            let inner = fixpoint_bindings(body, outer);
            if let Some(v) = value {
                let mut used = Vec::new();
                collect_used(v, &mut used);
                for (var, vspan) in used {
                    if !inner.contains(var) {
                        return Err(SemanticError::new(
                            format!("aggregate value variable `{var}` is not grounded"),
                            vspan,
                        ));
                    }
                }
            }
            // Negations/constraints inside the aggregate body must be
            // grounded too.
            for lit in body {
                match lit {
                    Literal::Negative(a) => {
                        let mut used = Vec::new();
                        for arg in &a.args {
                            collect_used(arg, &mut used);
                        }
                        for (var, vspan) in used {
                            if !inner.contains(var) {
                                return Err(SemanticError::new(
                                    format!("variable `{var}` in aggregate body is not grounded"),
                                    vspan,
                                ));
                            }
                        }
                    }
                    Literal::Constraint(c) => {
                        for side in [&c.lhs, &c.rhs] {
                            check_aggregates(side, &inner)?;
                        }
                    }
                    Literal::Positive(_) => {}
                }
            }
            let _ = span;
            Ok(())
        }
        Expr::Binary { lhs, rhs, .. } => {
            check_aggregates(lhs, outer)?;
            check_aggregates(rhs, outer)
        }
        Expr::Unary { expr, .. } => check_aggregates(expr, outer),
        Expr::Call { args, .. } => {
            for a in args {
                check_aggregates(a, outer)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<(), SemanticError> {
        check_groundedness(&parse(src).expect("parses"))
    }

    #[test]
    fn positive_atoms_ground_their_vars() {
        check("p(x, y) :- e(x, y).").expect("grounded");
    }

    #[test]
    fn head_var_must_be_bound() {
        let err = check("p(x, z) :- e(x, y).").unwrap_err();
        assert!(err.msg.contains("`z`"));
    }

    #[test]
    fn negation_does_not_bind() {
        let err = check("p(x) :- !e(x).").unwrap_err();
        assert!(err.msg.contains("`x`"));
        check("p(x) :- d(x), !e(x).").expect("grounded via d");
    }

    #[test]
    fn equalities_propagate_bindings() {
        check("p(y) :- e(x), y = x + 1.").expect("grounded");
        check("p(z) :- e(x), y = x + 1, z = y * 2.").expect("chained");
        let err = check("p(y) :- e(x), y = w + 1.").unwrap_err();
        assert!(err.msg.contains("`w`") || err.msg.contains("`y`"));
    }

    #[test]
    fn comparison_does_not_bind() {
        let err = check("p(x) :- e(y), x < y.").unwrap_err();
        assert!(err.msg.contains("`x`"));
    }

    #[test]
    fn complex_args_in_positive_atoms_consume() {
        let err = check("p(1) :- e(x + 1).").unwrap_err();
        assert!(err.msg.contains("`x`"));
        check("p(1) :- d(x), e(x + 1).").expect("grounded");
    }

    #[test]
    fn aggregate_value_must_be_bound_by_its_body() {
        check("p(n) :- n = sum x : { f(x) }.").expect("grounded");
        let err = check("p(n) :- n = sum y : { f(x) }.").unwrap_err();
        assert!(err.msg.contains("`y`"));
    }

    #[test]
    fn aggregates_see_outer_bindings() {
        check("p(n, k) :- g(k), n = count : { f(k, _) }.").expect("grounded");
    }
}
