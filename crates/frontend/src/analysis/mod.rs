//! Semantic analysis: name/arity resolution, type checks, groundedness,
//! and stratification.
//!
//! [`analyze`] runs all passes and produces a [`CheckedProgram`], the
//! contract consumed by the RAM translator: every atom refers to a declared
//! relation with the right arity, every rule is range-restricted
//! (grounded), and the rules are partitioned into [`Stratum`]s that can be
//! evaluated bottom-up with semi-naive evaluation inside each stratum.

pub mod graph;
pub mod ground;
pub mod resolve;
pub mod stratify;
pub mod types;

use crate::ast::Program;
use crate::error::SemanticError;
use std::collections::BTreeMap;

/// Everything known about one declared relation after analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationInfo {
    /// Index of the declaration in `ast.decls`.
    pub decl_index: usize,
    /// Whether facts are supplied externally (`.input`).
    pub is_input: bool,
    /// Whether results are reported (`.output`).
    pub is_output: bool,
}

/// One evaluation stratum: a strongly connected component of the relation
/// dependency graph, in bottom-up order.
#[derive(Debug, Clone, PartialEq)]
pub struct Stratum {
    /// Relations defined in this stratum.
    pub relations: Vec<String>,
    /// Indices (into `ast.rules`) of the rules whose heads live here.
    pub rules: Vec<usize>,
    /// Whether the stratum is recursive (needs fixpoint iteration).
    pub recursive: bool,
}

/// A parsed program that passed all semantic checks.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedProgram {
    /// The (normalized) AST.
    pub ast: Program,
    /// Per-relation metadata, keyed by name.
    pub relations: BTreeMap<String, RelationInfo>,
    /// Strata in bottom-up evaluation order.
    pub strata: Vec<Stratum>,
}

impl CheckedProgram {
    /// The declaration of `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a checked relation (analysis guarantees all
    /// referenced names are).
    pub fn decl(&self, name: &str) -> &crate::ast::RelationDecl {
        let info = &self.relations[name];
        &self.ast.decls[info.decl_index]
    }
}

/// Runs all semantic passes over a parsed program.
///
/// # Errors
///
/// Returns the first violation found: undeclared/duplicate relations,
/// arity mismatches, non-constant facts, head wildcards, type conflicts,
/// ungrounded variables, or unstratifiable negation/aggregation.
pub fn analyze(ast: Program) -> Result<CheckedProgram, SemanticError> {
    let relations = resolve::resolve(&ast)?;
    types::check_types(&ast)?;
    ground::check_groundedness(&ast)?;
    let strata = stratify::stratify(&ast)?;
    Ok(CheckedProgram {
        ast,
        relations,
        strata,
    })
}
