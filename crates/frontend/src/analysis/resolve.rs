//! Name and arity resolution.
//!
//! Checks that every atom refers to a declared relation with matching
//! arity, that declarations are unique and within the engine's arity
//! budget, that facts are ground constants, that `eqrel` relations are
//! binary, and that wildcards/`$` appear only where allowed.

use crate::analysis::RelationInfo;
use crate::ast::{Atom, Expr, Literal, Program, ReprHint};
use crate::error::SemanticError;
use std::collections::BTreeMap;

/// The engine's pre-instantiated arity budget (kept in sync with
/// `stir_der::MAX_ARITY`; duplicated here so the frontend has no
/// dependency on the data-structure crate).
pub const MAX_ARITY: usize = 16;

/// Runs resolution, returning per-relation metadata.
///
/// # Errors
///
/// See module docs.
pub fn resolve(ast: &Program) -> Result<BTreeMap<String, RelationInfo>, SemanticError> {
    let mut relations: BTreeMap<String, RelationInfo> = BTreeMap::new();
    for (i, d) in ast.decls.iter().enumerate() {
        if relations.contains_key(&d.name) {
            return Err(SemanticError::new(
                format!("relation `{}` declared twice", d.name),
                d.span,
            ));
        }
        if d.arity() > MAX_ARITY {
            return Err(SemanticError::new(
                format!(
                    "relation `{}` has arity {}, exceeding the supported maximum of {MAX_ARITY}",
                    d.name,
                    d.arity()
                ),
                d.span,
            ));
        }
        if d.repr == ReprHint::EqRel && d.arity() != 2 {
            return Err(SemanticError::new(
                format!("eqrel relation `{}` must be binary", d.name),
                d.span,
            ));
        }
        relations.insert(
            d.name.clone(),
            RelationInfo {
                decl_index: i,
                is_input: false,
                is_output: false,
            },
        );
    }

    for name in &ast.inputs {
        match relations.get_mut(name) {
            Some(info) => info.is_input = true,
            None => {
                return Err(SemanticError::new(
                    format!("`.input {name}` refers to an undeclared relation"),
                    Default::default(),
                ))
            }
        }
    }
    for name in &ast.outputs {
        match relations.get_mut(name) {
            Some(info) => info.is_output = true,
            None => {
                return Err(SemanticError::new(
                    format!("`.output {name}` refers to an undeclared relation"),
                    Default::default(),
                ))
            }
        }
    }

    let check_atom = |atom: &Atom| -> Result<(), SemanticError> {
        let Some(info) = relations.get(&atom.name) else {
            return Err(SemanticError::new(
                format!("undeclared relation `{}`", atom.name),
                atom.span,
            ));
        };
        let decl = &ast.decls[info.decl_index];
        if decl.arity() != atom.args.len() {
            return Err(SemanticError::new(
                format!(
                    "relation `{}` has arity {}, but is used with {} argument(s)",
                    atom.name,
                    decl.arity(),
                    atom.args.len()
                ),
                atom.span,
            ));
        }
        Ok(())
    };

    // Facts: declared, right arity, all-constant arguments.
    for fact in &ast.facts {
        check_atom(&fact.atom)?;
        for arg in &fact.atom.args {
            if !arg.is_constant() {
                return Err(SemanticError::new(
                    format!("fact argument `{arg}` is not a constant"),
                    arg.span(),
                ));
            }
        }
    }

    // Rules: every atom (including inside aggregates) declared with the
    // right arity; wildcards and `$` only where legal.
    for rule in &ast.rules {
        check_atom(&rule.head)?;
        for arg in &rule.head.args {
            check_head_expr(arg)?;
        }
        check_literals(&rule.body, &check_atom)?;
    }
    Ok(relations)
}

fn check_literals(
    body: &[Literal],
    check_atom: &dyn Fn(&Atom) -> Result<(), SemanticError>,
) -> Result<(), SemanticError> {
    for lit in body {
        match lit {
            Literal::Positive(a) | Literal::Negative(a) => {
                check_atom(a)?;
                for arg in &a.args {
                    check_body_expr(arg, check_atom)?;
                }
            }
            Literal::Constraint(c) => {
                check_body_expr(&c.lhs, check_atom)?;
                check_body_expr(&c.rhs, check_atom)?;
            }
        }
    }
    Ok(())
}

/// Head arguments: no wildcards, no aggregates.
fn check_head_expr(e: &Expr) -> Result<(), SemanticError> {
    match e {
        Expr::Wildcard(span) => Err(SemanticError::new(
            "wildcard `_` is not allowed in a rule head",
            *span,
        )),
        Expr::Aggregate { span, .. } => Err(SemanticError::new(
            "aggregates are not allowed in a rule head",
            *span,
        )),
        Expr::Binary { lhs, rhs, .. } => {
            check_head_expr(lhs)?;
            check_head_expr(rhs)
        }
        Expr::Unary { expr, .. } => check_head_expr(expr),
        Expr::Call { args, .. } => {
            for a in args {
                check_head_expr(a)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Body expressions: `$` is head-only; aggregate bodies are checked
/// recursively.
fn check_body_expr(
    e: &Expr,
    check_atom: &dyn Fn(&Atom) -> Result<(), SemanticError>,
) -> Result<(), SemanticError> {
    match e {
        Expr::Counter(span) => Err(SemanticError::new(
            "the counter `$` is only allowed in a rule head",
            *span,
        )),
        Expr::Binary { lhs, rhs, .. } => {
            check_body_expr(lhs, check_atom)?;
            check_body_expr(rhs, check_atom)
        }
        Expr::Unary { expr, .. } => check_body_expr(expr, check_atom),
        Expr::Call { args, .. } => {
            for a in args {
                check_body_expr(a, check_atom)?;
            }
            Ok(())
        }
        Expr::Aggregate { body, value, .. } => {
            if let Some(v) = value {
                check_body_expr(v, check_atom)?;
            }
            check_literals(body, check_atom)
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn resolve_src(src: &str) -> Result<BTreeMap<String, RelationInfo>, SemanticError> {
        resolve(&parse(src).expect("parses"))
    }

    #[test]
    fn accepts_well_formed_programs() {
        let rels = resolve_src(
            ".decl e(x: number, y: number)\n.decl p(x: number, y: number)\n\
             .input e\n.output p\n\
             e(1, 2).\np(x, y) :- e(x, y).",
        )
        .expect("resolves");
        assert!(rels["e"].is_input);
        assert!(rels["p"].is_output);
        assert!(!rels["p"].is_input);
    }

    #[test]
    fn rejects_undeclared_and_arity_errors() {
        assert!(resolve_src("p(x) :- q(x).")
            .unwrap_err()
            .msg
            .contains("undeclared"));
        let err =
            resolve_src(".decl q(x: number)\n.decl p(x: number)\np(x) :- q(x, x).").unwrap_err();
        assert!(err.msg.contains("arity"));
    }

    #[test]
    fn rejects_duplicate_declarations() {
        let err = resolve_src(".decl p(x: number)\n.decl p(y: number)").unwrap_err();
        assert!(err.msg.contains("declared twice"));
    }

    #[test]
    fn rejects_non_constant_facts() {
        let err = resolve_src(".decl p(x: number)\np(x).").unwrap_err();
        assert!(err.msg.contains("not a constant"));
    }

    #[test]
    fn rejects_head_wildcards_and_body_counters() {
        let err = resolve_src(".decl p(x: number)\n.decl q(x: number)\np(_) :- q(_).").unwrap_err();
        assert!(err.msg.contains("wildcard"));
        let err = resolve_src(".decl p(x: number)\n.decl q(x: number)\np(1) :- q($).").unwrap_err();
        assert!(err.msg.contains("counter"));
    }

    #[test]
    fn rejects_nonbinary_eqrel() {
        let err = resolve_src(".decl e(x: number, y: number, z: number) eqrel").unwrap_err();
        assert!(err.msg.contains("binary"));
    }

    #[test]
    fn rejects_oversized_arity() {
        let attrs: Vec<String> = (0..17).map(|i| format!("a{i}: number")).collect();
        let src = format!(".decl big({})", attrs.join(", "));
        let err = resolve_src(&src).unwrap_err();
        assert!(err.msg.contains("arity 17"));
    }

    #[test]
    fn checks_atoms_inside_aggregates() {
        let err = resolve_src(".decl p(x: number)\np(n) :- n = count : { ghost(_) }.").unwrap_err();
        assert!(err.msg.contains("undeclared relation `ghost`"));
    }

    #[test]
    fn rejects_unknown_io_directives() {
        let err = resolve_src(".input nope").unwrap_err();
        assert!(err.msg.contains("undeclared"));
    }
}
