//! Stratification: SCC condensation of the relation dependency graph.
//!
//! Edges run from a rule's head relation to every relation used in its
//! body. Negated atoms and relations inside aggregate bodies induce
//! *negative* edges: the consumer needs the producer to be complete, so a
//! negative edge within a strongly connected component makes the program
//! unstratifiable and is rejected (standard stratified-Datalog semantics).

use crate::analysis::graph::DiGraph;
use crate::analysis::Stratum;
use crate::ast::{Expr, Literal, Program};
use crate::error::SemanticError;
use std::collections::HashMap;

/// Computes the strata of a checked program in bottom-up order.
///
/// # Errors
///
/// Rejects programs where negation or aggregation is involved in a
/// recursive cycle.
pub fn stratify(ast: &Program) -> Result<Vec<Stratum>, SemanticError> {
    let names: Vec<&str> = ast.decls.iter().map(|d| d.name.as_str()).collect();
    let ids: HashMap<&str, usize> = names.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    let mut graph = DiGraph::new(names.len());
    // (head, body) pairs that must not share a component.
    let mut negative: Vec<(usize, usize, crate::span::Span)> = Vec::new();

    for rule in &ast.rules {
        let head = ids[rule.head.name.as_str()];
        for lit in &rule.body {
            collect_edges(lit, head, &ids, &mut graph, &mut negative);
        }
    }

    let sccs = graph.sccs();
    let mut component_of = vec![0usize; names.len()];
    for (ci, comp) in sccs.iter().enumerate() {
        for &v in comp {
            component_of[v] = ci;
        }
    }

    for (head, body, span) in negative {
        if component_of[head] == component_of[body] {
            return Err(SemanticError::new(
                format!(
                    "program is not stratifiable: `{}` depends negatively on `{}` within a recursive cycle",
                    names[head], names[body]
                ),
                span,
            ));
        }
    }

    // Build strata. A component is recursive if it has more than one
    // relation or a self-edge.
    let mut rules_of: Vec<Vec<usize>> = vec![Vec::new(); sccs.len()];
    for (ri, rule) in ast.rules.iter().enumerate() {
        let head = ids[rule.head.name.as_str()];
        rules_of[component_of[head]].push(ri);
    }

    let mut strata = Vec::with_capacity(sccs.len());
    for (ci, comp) in sccs.iter().enumerate() {
        let recursive = comp.len() > 1 || comp.iter().any(|&v| graph.successors(v).contains(&v));
        strata.push(Stratum {
            relations: comp.iter().map(|&v| names[v].to_owned()).collect(),
            rules: rules_of[ci].clone(),
            recursive,
        });
    }
    Ok(strata)
}

fn collect_edges(
    lit: &Literal,
    head: usize,
    ids: &HashMap<&str, usize>,
    graph: &mut DiGraph,
    negative: &mut Vec<(usize, usize, crate::span::Span)>,
) {
    match lit {
        Literal::Positive(a) => {
            graph.add_edge(head, ids[a.name.as_str()]);
            for arg in &a.args {
                collect_expr_edges(arg, head, ids, graph, negative);
            }
        }
        Literal::Negative(a) => {
            let body = ids[a.name.as_str()];
            graph.add_edge(head, body);
            negative.push((head, body, a.span));
        }
        Literal::Constraint(c) => {
            collect_expr_edges(&c.lhs, head, ids, graph, negative);
            collect_expr_edges(&c.rhs, head, ids, graph, negative);
        }
    }
}

fn collect_expr_edges(
    e: &Expr,
    head: usize,
    ids: &HashMap<&str, usize>,
    graph: &mut DiGraph,
    negative: &mut Vec<(usize, usize, crate::span::Span)>,
) {
    match e {
        Expr::Binary { lhs, rhs, .. } => {
            collect_expr_edges(lhs, head, ids, graph, negative);
            collect_expr_edges(rhs, head, ids, graph, negative);
        }
        Expr::Unary { expr, .. } => collect_expr_edges(expr, head, ids, graph, negative),
        Expr::Call { args, .. } => {
            for a in args {
                collect_expr_edges(a, head, ids, graph, negative);
            }
        }
        Expr::Aggregate { body, span, .. } => {
            // Aggregation requires complete inputs: negative-strength edges
            // to every relation in the aggregate body.
            for lit in body {
                match lit {
                    Literal::Positive(a) | Literal::Negative(a) => {
                        let b = ids[a.name.as_str()];
                        graph.add_edge(head, b);
                        negative.push((head, b, *span));
                    }
                    Literal::Constraint(c) => {
                        collect_expr_edges(&c.lhs, head, ids, graph, negative);
                        collect_expr_edges(&c.rhs, head, ids, graph, negative);
                    }
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn strata_of(src: &str) -> Result<Vec<Stratum>, SemanticError> {
        stratify(&parse(src).expect("parses"))
    }

    const TC: &str = "\
        .decl e(x: number, y: number)\n\
        .decl p(x: number, y: number)\n\
        p(x, y) :- e(x, y).\n\
        p(x, z) :- p(x, y), e(y, z).\n";

    #[test]
    fn transitive_closure_has_recursive_stratum() {
        let strata = strata_of(TC).expect("stratifies");
        assert_eq!(strata.len(), 2);
        assert_eq!(strata[0].relations, vec!["e"]);
        assert!(!strata[0].recursive);
        assert_eq!(strata[1].relations, vec!["p"]);
        assert!(strata[1].recursive);
        assert_eq!(strata[1].rules.len(), 2);
    }

    #[test]
    fn mutual_recursion_shares_a_stratum() {
        let strata = strata_of(
            ".decl a(x: number)\n.decl b(x: number)\n.decl s(x: number)\n\
             a(x) :- s(x).\n\
             a(x) :- b(x).\n\
             b(x) :- a(x), s(x).\n",
        )
        .expect("stratifies");
        let rec: Vec<_> = strata.iter().filter(|s| s.recursive).collect();
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].relations, vec!["a", "b"]);
        assert_eq!(rec[0].rules.len(), 3);
    }

    #[test]
    fn negation_across_strata_is_fine() {
        let strata = strata_of(
            ".decl e(x: number)\n.decl p(x: number)\n.decl q(x: number)\n\
             p(x) :- e(x).\n\
             q(x) :- e(x), !p(x).\n",
        )
        .expect("stratifies");
        let pos = |name: &str| {
            strata
                .iter()
                .position(|s| s.relations.contains(&name.to_owned()))
                .unwrap()
        };
        assert!(pos("p") < pos("q"));
    }

    #[test]
    fn negation_in_cycle_is_rejected() {
        let err = strata_of(
            ".decl p(x: number)\n.decl q(x: number)\n.decl s(x: number)\n\
             p(x) :- s(x), !q(x).\n\
             q(x) :- s(x), !p(x).\n",
        )
        .unwrap_err();
        assert!(err.msg.contains("not stratifiable"));
    }

    #[test]
    fn self_negation_is_rejected() {
        let err = strata_of(".decl s(x: number)\n.decl p(x: number)\np(x) :- s(x), !p(x).\n")
            .unwrap_err();
        assert!(err.msg.contains("not stratifiable"));
    }

    #[test]
    fn aggregate_over_own_stratum_is_rejected() {
        let err = strata_of(
            ".decl p(x: number)\n.decl s(x: number)\n\
             p(n) :- s(n).\n\
             p(n) :- n = count : { p(_) }.\n",
        )
        .unwrap_err();
        assert!(err.msg.contains("not stratifiable"));
    }

    #[test]
    fn aggregate_over_lower_stratum_is_fine() {
        let strata = strata_of(
            ".decl e(x: number)\n.decl total(n: number)\n\
             total(n) :- n = count : { e(_) }.\n",
        )
        .expect("stratifies");
        assert_eq!(strata.len(), 2);
    }

    #[test]
    fn facts_only_relations_form_leaf_strata() {
        let strata = strata_of(".decl e(x: number)\ne(1).").expect("stratifies");
        assert_eq!(strata.len(), 1);
        assert!(!strata[0].recursive);
        assert!(strata[0].rules.is_empty());
    }
}
