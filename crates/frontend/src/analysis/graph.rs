//! Tarjan's strongly-connected-components algorithm (iterative).
//!
//! Used by stratification: the relation dependency graph is condensed into
//! SCCs, which become strata. Tarjan emits SCCs in reverse topological
//! order, so reversing the result yields bottom-up evaluation order.

/// A directed graph over dense node ids `0..n`.
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    succ: Vec<Vec<usize>>,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            succ: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Adds the edge `from → to` (duplicates allowed; harmless for SCC).
    pub fn add_edge(&mut self, from: usize, to: usize) {
        self.succ[from].push(to);
    }

    /// Successors of `v`.
    pub fn successors(&self, v: usize) -> &[usize] {
        &self.succ[v]
    }

    /// Computes strongly connected components in **topological order**
    /// (every edge goes from an earlier-or-equal component to an earlier
    /// one... i.e. dependencies of a node appear in earlier components when
    /// edges point from dependent to dependency).
    ///
    /// Concretely: with edges `head → body-relation`, the returned order
    /// lists body (dependency) components before head components, which is
    /// exactly bottom-up stratum order.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<usize>> = Vec::new();

        // Iterative Tarjan with an explicit work stack of (node, child idx).
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut work: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&(v, ci)) = work.last() {
                if ci == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if ci < self.succ[v].len() {
                    let w = self.succ[v][ci];
                    work.last_mut().expect("nonempty").1 += 1;
                    if index[w] == usize::MAX {
                        work.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    work.pop();
                    if let Some(&(parent, _)) = work.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
            }
        }
        // Tarjan emits components in reverse topological order with respect
        // to edges pointing *out of* later components; with head→body edges
        // the emitted order is already dependencies-first.
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_nodes_are_their_own_components() {
        let mut g = DiGraph::new(3);
        g.add_edge(2, 1);
        g.add_edge(1, 0);
        let sccs = g.sccs();
        assert_eq!(sccs, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn cycles_are_grouped() {
        let mut g = DiGraph::new(4);
        // 3 → {1,2} cycle → 0
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(1, 0);
        g.add_edge(3, 1);
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 3);
        assert_eq!(sccs[0], vec![0]);
        assert_eq!(sccs[1], vec![1, 2]);
        assert_eq!(sccs[2], vec![3]);
    }

    #[test]
    fn self_loops_are_single_node_components() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        let sccs = g.sccs();
        assert_eq!(sccs, vec![vec![0], vec![1]]);
    }

    #[test]
    fn dependencies_come_first() {
        // head → body edges: p → e, q → p.
        let mut g = DiGraph::new(3);
        let (e, p, q) = (0, 1, 2);
        g.add_edge(p, e);
        g.add_edge(q, p);
        let sccs = g.sccs();
        let pos = |x: usize| sccs.iter().position(|c| c.contains(&x)).unwrap();
        assert!(pos(e) < pos(p));
        assert!(pos(p) < pos(q));
    }

    #[test]
    fn big_cycle_is_one_component() {
        let n = 100;
        let mut g = DiGraph::new(n);
        for v in 0..n {
            g.add_edge(v, (v + 1) % n);
        }
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), n);
    }
}
