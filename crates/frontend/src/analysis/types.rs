//! Lightweight type checking.
//!
//! The engine's value domain is untyped bits; typing exists to catch
//! obvious source-level mistakes and to drive I/O and functor semantics:
//!
//! * constants in atom arguments must match the declared attribute type;
//! * a variable occurring directly in several atom positions must see a
//!   single type;
//! * symbol-typed values cannot flow into arithmetic, and vice versa
//!   (checked shallowly through direct variable/constant occurrences).

use crate::ast::{AttrType, Expr, Literal, Program};
use crate::error::SemanticError;
use std::collections::HashMap;

/// Checks all facts and rules.
///
/// # Errors
///
/// Reports the first type conflict found.
pub fn check_types(ast: &Program) -> Result<(), SemanticError> {
    let decls: HashMap<&str, &crate::ast::RelationDecl> =
        ast.decls.iter().map(|d| (d.name.as_str(), d)).collect();

    for fact in &ast.facts {
        if let Some(decl) = decls.get(fact.atom.name.as_str()) {
            for (arg, attr) in fact.atom.args.iter().zip(&decl.attrs) {
                check_constant(arg, attr.ty)?;
            }
        }
    }

    for rule in &ast.rules {
        let mut vars: HashMap<&str, (AttrType, crate::span::Span)> = HashMap::new();
        // First pass: infer variable types from all atom positions.
        let mut atoms: Vec<&crate::ast::Atom> = vec![&rule.head];
        collect_atoms(&rule.body, &mut atoms);
        for atom in &atoms {
            let Some(decl) = decls.get(atom.name.as_str()) else {
                continue; // resolution reports this
            };
            for (arg, attr) in atom.args.iter().zip(&decl.attrs) {
                match arg {
                    Expr::Var(v, span) => {
                        if let Some((prev, _)) = vars.get(v.as_str()) {
                            if *prev != attr.ty {
                                return Err(SemanticError::new(
                                    format!(
                                        "variable `{v}` used with conflicting types `{prev}` and `{}`",
                                        attr.ty
                                    ),
                                    *span,
                                ));
                            }
                        } else {
                            vars.insert(v, (attr.ty, *span));
                        }
                    }
                    e if e.is_constant() => check_constant(e, attr.ty)?,
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

fn collect_atoms<'a>(body: &'a [Literal], out: &mut Vec<&'a crate::ast::Atom>) {
    for lit in body {
        match lit {
            Literal::Positive(a) | Literal::Negative(a) => out.push(a),
            Literal::Constraint(c) => {
                for side in [&c.lhs, &c.rhs] {
                    collect_agg_atoms(side, out);
                }
            }
        }
    }
}

fn collect_agg_atoms<'a>(e: &'a Expr, out: &mut Vec<&'a crate::ast::Atom>) {
    match e {
        Expr::Aggregate { body, .. } => collect_atoms(body, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_agg_atoms(lhs, out);
            collect_agg_atoms(rhs, out);
        }
        Expr::Unary { expr, .. } => collect_agg_atoms(expr, out),
        Expr::Call { args, .. } => {
            for a in args {
                collect_agg_atoms(a, out);
            }
        }
        _ => {}
    }
}

fn check_constant(e: &Expr, expected: AttrType) -> Result<(), SemanticError> {
    let ok = match (e, expected) {
        (Expr::Number(n, _), AttrType::Number) => i32::try_from(*n).is_ok(),
        (Expr::Number(n, _), AttrType::Unsigned) => u32::try_from(*n).is_ok(),
        (Expr::Number(..), AttrType::Float) => true, // integer literal widens
        (Expr::Float(..), AttrType::Float) => true,
        (Expr::Str(..), AttrType::Symbol) => true,
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(SemanticError::new(
            format!("constant `{e}` does not fit attribute type `{expected}`"),
            e.span(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<(), SemanticError> {
        check_types(&parse(src).expect("parses"))
    }

    #[test]
    fn constants_must_match_declared_types() {
        check(".decl p(x: number, s: symbol)\np(1, \"a\").").expect("typed");
        let err = check(".decl p(x: number)\np(\"oops\").").unwrap_err();
        assert!(err.msg.contains("does not fit"));
        let err = check(".decl p(s: symbol)\np(3).").unwrap_err();
        assert!(err.msg.contains("does not fit"));
    }

    #[test]
    fn numeric_ranges_are_enforced() {
        check(".decl p(x: unsigned)\np(4000000000).").expect("fits u32");
        let err = check(".decl p(x: number)\np(4000000000).").unwrap_err();
        assert!(err.msg.contains("does not fit"));
        let err = check(".decl p(x: unsigned)\np(-1).").unwrap_err();
        assert!(err.msg.contains("does not fit"));
    }

    #[test]
    fn variables_need_consistent_types() {
        let err = check(
            ".decl n(x: number)\n.decl s(x: symbol)\n.decl p(x: number)\n\
             p(x) :- n(x), s(x).",
        )
        .unwrap_err();
        assert!(err.msg.contains("conflicting types"));
        check(
            ".decl n(x: number)\n.decl m(x: number)\n.decl p(x: number)\n\
             p(x) :- n(x), m(x).",
        )
        .expect("consistent");
    }

    #[test]
    fn aggregate_bodies_participate() {
        let err = check(
            ".decl n(x: number)\n.decl s(x: symbol)\n.decl p(x: number)\n\
             p(c) :- n(c), c = count : { n(y), s(y) }.",
        )
        .unwrap_err();
        assert!(err.msg.contains("conflicting types"));
    }

    #[test]
    fn integer_literals_widen_to_float() {
        check(".decl p(x: float)\np(3). p(2.5).").expect("typed");
    }
}
