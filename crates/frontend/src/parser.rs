//! A recursive-descent parser for the Datalog surface syntax.
//!
//! Disjunctive rule bodies (`;`) are normalized away during parsing: a
//! rule with `k` top-level disjuncts becomes `k` rules sharing the head.
//! The bitwise/logical operator words (`band`, `bor`, `bxor`, `bshl`,
//! `bshr`, `land`, `lor`, `bnot`, `lnot`) and the aggregate/functor names
//! are reserved in expression positions, as in Soufflé.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::tokenize;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a full program.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its position.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source)?;
    Parser {
        tokens,
        pos: 0,
        program: Program::default(),
    }
    .run()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    program: Program,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            span: self.span(),
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if *self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.span();
                self.bump();
                Ok((name, span))
            }
            other => Err(self.error(format!("expected {what}, found {other}"))),
        }
    }

    fn run(mut self) -> Result<Program, ParseError> {
        loop {
            match self.peek().clone() {
                TokenKind::Eof => return Ok(self.program),
                TokenKind::Directive(d) => {
                    self.bump();
                    self.directive(&d)?;
                }
                TokenKind::Ident(_) => self.clause()?,
                other => {
                    return Err(self.error(format!(
                        "expected a declaration, fact, or rule; found {other}"
                    )))
                }
            }
        }
    }

    // ----- directives -------------------------------------------------

    fn directive(&mut self, name: &str) -> Result<(), ParseError> {
        match name {
            "decl" => self.decl_directive(),
            "input" => {
                let (rel, _) = self.expect_ident("relation name")?;
                self.skip_optional_parens()?;
                self.program.inputs.push(rel);
                Ok(())
            }
            "output" => {
                let (rel, _) = self.expect_ident("relation name")?;
                self.skip_optional_parens()?;
                self.program.outputs.push(rel);
                Ok(())
            }
            // Accepted and ignored for Soufflé compatibility.
            "printsize" => {
                let _ = self.expect_ident("relation name")?;
                Ok(())
            }
            other => Err(self.error(format!("unknown directive `.{other}`"))),
        }
    }

    fn decl_directive(&mut self) -> Result<(), ParseError> {
        let (name, span) = self.expect_ident("relation name")?;
        self.expect(TokenKind::LParen)?;
        let mut attrs = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let (attr_name, _) = self.expect_ident("attribute name")?;
                self.expect(TokenKind::Colon)?;
                let (ty_name, ty_span) = self.expect_ident("attribute type")?;
                let ty = match ty_name.as_str() {
                    "number" => AttrType::Number,
                    "unsigned" => AttrType::Unsigned,
                    "float" => AttrType::Float,
                    "symbol" => AttrType::Symbol,
                    other => {
                        return Err(ParseError {
                            msg: format!("unknown attribute type `{other}`"),
                            span: ty_span,
                        })
                    }
                };
                attrs.push(Attribute {
                    name: attr_name,
                    ty,
                });
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let mut repr = ReprHint::Default;
        while let TokenKind::Ident(hint) = self.peek().clone() {
            match hint.as_str() {
                "btree" => repr = ReprHint::BTree,
                "brie" => repr = ReprHint::Brie,
                "eqrel" => repr = ReprHint::EqRel,
                // Soufflé allows qualifiers like `inline`/`overridable`;
                // unknown words end the declaration instead.
                _ => break,
            }
            self.bump();
        }
        self.program.decls.push(RelationDecl {
            name,
            attrs,
            repr,
            span,
        });
        Ok(())
    }

    /// Skips a balanced `( ... )` group if present (`.input rel(IO=file)`).
    fn skip_optional_parens(&mut self) -> Result<(), ParseError> {
        if *self.peek() != TokenKind::LParen {
            return Ok(());
        }
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::LParen => depth += 1,
                TokenKind::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return Ok(());
                    }
                }
                TokenKind::Eof => return Err(self.error("unterminated directive arguments")),
                _ => {}
            }
            self.bump();
        }
    }

    // ----- clauses ----------------------------------------------------

    fn clause(&mut self) -> Result<(), ParseError> {
        let head = self.atom()?;
        match self.peek().clone() {
            TokenKind::Dot => {
                self.bump();
                self.program.facts.push(Fact { atom: head });
                Ok(())
            }
            TokenKind::If => {
                self.bump();
                let disjuncts = self.disjunctive_body()?;
                let span = head.span;
                self.expect(TokenKind::Dot)?;
                for body in disjuncts {
                    self.program.rules.push(Rule {
                        head: head.clone(),
                        body,
                        span,
                    });
                }
                Ok(())
            }
            other => Err(self.error(format!("expected `.` or `:-` after atom, found {other}"))),
        }
    }

    fn disjunctive_body(&mut self) -> Result<Vec<Vec<Literal>>, ParseError> {
        let mut out = vec![self.conjunction()?];
        while *self.peek() == TokenKind::Semicolon {
            self.bump();
            out.push(self.conjunction()?);
        }
        Ok(out)
    }

    fn conjunction(&mut self) -> Result<Vec<Literal>, ParseError> {
        let mut out = vec![self.literal()?];
        while *self.peek() == TokenKind::Comma {
            self.bump();
            out.push(self.literal()?);
        }
        Ok(out)
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        if *self.peek() == TokenKind::Bang {
            self.bump();
            return Ok(Literal::Negative(self.atom()?));
        }
        // An identifier followed by `(` is an atom unless the identifier
        // is a functor or aggregate keyword (those start expressions).
        if let TokenKind::Ident(name) = self.peek() {
            let is_expr_word = Functor::from_name(name).is_some()
                || AggKind::from_name(name).is_some()
                || matches!(name.as_str(), "bnot" | "lnot");
            if !is_expr_word && *self.peek2() == TokenKind::LParen {
                return Ok(Literal::Positive(self.atom()?));
            }
        }
        // Otherwise it is a constraint.
        let span = self.span();
        let lhs = self.expr()?;
        let op = match self.peek() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => {
                return Err(self.error(format!(
                    "expected a comparison operator in constraint, found {other}"
                )))
            }
        };
        self.bump();
        let rhs = self.expr()?;
        Ok(Literal::Constraint(Constraint { op, lhs, rhs, span }))
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let (name, span) = self.expect_ident("relation name")?;
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(Atom { name, args, span })
    }

    // ----- expressions --------------------------------------------------
    //
    // Precedence (low → high):
    //   lor < land < bor < bxor < band < bshl/bshr < +- < */% < ^ < unary

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(0)
    }

    fn level_op(&self, level: usize) -> Option<BinOp> {
        let word = |w: &str| matches!(self.peek(), TokenKind::Ident(s) if s == w);
        match level {
            0 if word("lor") => Some(BinOp::Lor),
            1 if word("land") => Some(BinOp::Land),
            2 if word("bor") => Some(BinOp::Bor),
            3 if word("bxor") => Some(BinOp::Bxor),
            4 if word("band") => Some(BinOp::Band),
            5 if word("bshl") => Some(BinOp::Bshl),
            5 if word("bshr") => Some(BinOp::Bshr),
            6 if *self.peek() == TokenKind::Plus => Some(BinOp::Add),
            6 if *self.peek() == TokenKind::Minus => Some(BinOp::Sub),
            7 if *self.peek() == TokenKind::Star => Some(BinOp::Mul),
            7 if *self.peek() == TokenKind::Slash => Some(BinOp::Div),
            7 if *self.peek() == TokenKind::Percent => Some(BinOp::Mod),
            _ => None,
        }
    }

    fn binary_level(&mut self, level: usize) -> Result<Expr, ParseError> {
        if level > 7 {
            return self.pow_expr();
        }
        let mut lhs = self.binary_level(level + 1)?;
        while let Some(op) = self.level_op(level) {
            let span = self.span();
            self.bump();
            let rhs = self.binary_level(level + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    /// `^` is right-associative, binding tighter than `*`.
    fn pow_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.unary_expr()?;
        if *self.peek() == TokenKind::Caret {
            let span = self.span();
            self.bump();
            let rhs = self.pow_expr()?;
            return Ok(Expr::Binary {
                op: BinOp::Pow,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            });
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                // Fold negation into numeric literals immediately.
                match self.peek().clone() {
                    TokenKind::Number(n) => {
                        self.bump();
                        Ok(Expr::Number(-n, span))
                    }
                    TokenKind::Float(x) => {
                        self.bump();
                        Ok(Expr::Float(-x, span))
                    }
                    _ => Ok(Expr::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(self.unary_expr()?),
                        span,
                    }),
                }
            }
            TokenKind::Ident(w) if w == "bnot" => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Bnot,
                    expr: Box::new(self.unary_expr()?),
                    span,
                })
            }
            TokenKind::Ident(w) if w == "lnot" => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Lnot,
                    expr: Box::new(self.unary_expr()?),
                    span,
                })
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(Expr::Number(n, span))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(Expr::Float(x, span))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s, span))
            }
            TokenKind::Underscore => {
                self.bump();
                Ok(Expr::Wildcard(span))
            }
            TokenKind::Dollar => {
                self.bump();
                Ok(Expr::Counter(span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                // Aggregate? (`count : {...}` / `sum e : {...}`; `min`/`max`
                // followed by `(` are functors instead.)
                if let Some(kind) = AggKind::from_name(&name) {
                    let followed_by_paren = *self.peek2() == TokenKind::LParen;
                    if !(matches!(kind, AggKind::Min | AggKind::Max) && followed_by_paren) {
                        return self.aggregate(kind);
                    }
                }
                if let Some(func) = Functor::from_name(&name) {
                    if *self.peek2() == TokenKind::LParen {
                        return self.functor_call(func);
                    }
                }
                self.bump();
                Ok(Expr::Var(name, span))
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }

    fn functor_call(&mut self, func: Functor) -> Result<Expr, ParseError> {
        let span = self.span();
        self.bump(); // name
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        if args.len() != func.arity() {
            return Err(ParseError {
                msg: format!(
                    "functor `{}` takes {} argument(s), got {}",
                    func.name(),
                    func.arity(),
                    args.len()
                ),
                span,
            });
        }
        Ok(Expr::Call { func, args, span })
    }

    fn aggregate(&mut self, kind: AggKind) -> Result<Expr, ParseError> {
        let span = self.span();
        self.bump(); // keyword
        let value = if kind == AggKind::Count {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        self.expect(TokenKind::Colon)?;
        self.expect(TokenKind::LBrace)?;
        let body = self.conjunction()?;
        self.expect(TokenKind::RBrace)?;
        Ok(Expr::Aggregate {
            kind,
            value,
            body,
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse(src).expect("parses")
    }

    #[test]
    fn parses_declarations() {
        let p = parse_ok(".decl edge(x: number, y: symbol) brie");
        assert_eq!(p.decls.len(), 1);
        let d = &p.decls[0];
        assert_eq!(d.name, "edge");
        assert_eq!(d.arity(), 2);
        assert_eq!(d.attrs[0].ty, AttrType::Number);
        assert_eq!(d.attrs[1].ty, AttrType::Symbol);
        assert_eq!(d.repr, ReprHint::Brie);
    }

    #[test]
    fn parses_facts_and_rules() {
        let p = parse_ok(
            ".decl e(x: number, y: number)\n\
             e(1, 2). e(2, 3).\n\
             p(x, z) :- e(x, y), e(y, z).",
        );
        assert_eq!(p.facts.len(), 2);
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].body.len(), 2);
        assert_eq!(p.rules[0].to_string(), "p(x, z) :- e(x, y), e(y, z).");
    }

    #[test]
    fn parses_input_output_directives() {
        let p = parse_ok(".input edge(IO=file, filename=\"e.facts\")\n.output path");
        assert_eq!(p.inputs, vec!["edge"]);
        assert_eq!(p.outputs, vec!["path"]);
    }

    #[test]
    fn negation_and_constraints() {
        let p = parse_ok("v(x) :- a(x), !b(x), x < 10, x + 1 != 3.");
        let body = &p.rules[0].body;
        assert!(matches!(body[1], Literal::Negative(_)));
        match &body[3] {
            Literal::Constraint(c) => {
                assert_eq!(c.op, CmpOp::Ne);
                assert_eq!(c.lhs.to_string(), "(x + 1)");
            }
            other => panic!("expected constraint, got {other}"),
        }
    }

    #[test]
    fn disjunction_expands_to_multiple_rules() {
        let p = parse_ok("r(x) :- a(x), c(x) ; b(x).");
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].body.len(), 2);
        assert_eq!(p.rules[1].body.len(), 1);
        assert_eq!(p.rules[0].head, p.rules[1].head);
    }

    #[test]
    fn operator_precedence() {
        let p = parse_ok("r(y) :- a(x), y = x + 2 * 3 band 1.");
        let Literal::Constraint(c) = &p.rules[0].body[1] else {
            panic!()
        };
        // band binds looser than + and *
        assert_eq!(c.rhs.to_string(), "((x + (2 * 3)) band 1)");
    }

    #[test]
    fn pow_is_right_associative() {
        let p = parse_ok("r(y) :- y = 2 ^ 3 ^ 2.");
        let Literal::Constraint(c) = &p.rules[0].body[0] else {
            panic!()
        };
        assert_eq!(c.rhs.to_string(), "(2 ^ (3 ^ 2))");
    }

    #[test]
    fn negative_literals_fold() {
        let p = parse_ok("f(-3, -2.5).");
        assert_eq!(
            p.facts[0].atom.args[0],
            Expr::Number(-3, p.facts[0].atom.args[0].span())
        );
        assert!(matches!(p.facts[0].atom.args[1], Expr::Float(v, _) if v == -2.5));
    }

    #[test]
    fn functor_calls_and_arity_checking() {
        let p = parse_ok("r(z) :- a(x, y), z = min(x, y) + strlen(\"ab\").");
        let Literal::Constraint(c) = &p.rules[0].body[1] else {
            panic!()
        };
        assert_eq!(c.rhs.to_string(), "(min(x, y) + strlen(\"ab\"))");
        assert!(parse("r(z) :- z = min(1).").is_err());
    }

    #[test]
    fn aggregates_parse() {
        let p = parse_ok("total(n) :- n = count : { edge(_, _) }.");
        let Literal::Constraint(c) = &p.rules[0].body[0] else {
            panic!()
        };
        assert!(matches!(
            &c.rhs,
            Expr::Aggregate {
                kind: AggKind::Count,
                value: None,
                ..
            }
        ));

        let p = parse_ok("m(s) :- s = sum x : { f(x), x > 0 }.");
        let Literal::Constraint(c) = &p.rules[0].body[0] else {
            panic!()
        };
        match &c.rhs {
            Expr::Aggregate {
                kind, value, body, ..
            } => {
                assert_eq!(*kind, AggKind::Sum);
                assert!(value.is_some());
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected aggregate, got {other}"),
        }
    }

    #[test]
    fn min_with_paren_is_functor_not_aggregate() {
        let p = parse_ok("r(z) :- a(x), z = min(x, 3).");
        let Literal::Constraint(c) = &p.rules[0].body[1] else {
            panic!()
        };
        assert!(matches!(
            &c.rhs,
            Expr::Call {
                func: Functor::Min,
                ..
            }
        ));
    }

    #[test]
    fn wildcards_and_counter() {
        let p = parse_ok("r(x, $) :- a(x, _).");
        assert!(matches!(p.rules[0].head.args[1], Expr::Counter(_)));
        let Literal::Positive(a) = &p.rules[0].body[0] else {
            panic!()
        };
        assert!(matches!(a.args[1], Expr::Wildcard(_)));
    }

    #[test]
    fn error_messages_carry_positions() {
        let err = parse(".decl edge(x: wrong)").unwrap_err();
        assert!(err.to_string().contains("unknown attribute type"));
        let err = parse("r(x) :- .").unwrap_err();
        assert!(err.to_string().contains("expected"));
        let err = parse(".nonsense foo").unwrap_err();
        assert!(err.to_string().contains("unknown directive"));
    }

    #[test]
    fn nullary_atoms() {
        let p = parse_ok(".decl flag()\nflag().\nr(1) :- flag().");
        assert_eq!(p.decls[0].arity(), 0);
        assert_eq!(p.facts[0].atom.args.len(), 0);
    }
}
