//! A hand-written lexer for the Datalog surface syntax.

use crate::error::ParseError;
use crate::span::{Pos, Span};
use crate::token::{Token, TokenKind};

/// Tokenizes `source` completely (including a trailing [`TokenKind::Eof`]).
///
/// # Errors
///
/// Returns a [`ParseError`] for unterminated strings/comments, malformed
/// numbers, or characters outside the language.
pub fn tokenize(source: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pos: Pos,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().peekable(),
            pos: Pos::start(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            span: Span::at(self.pos),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::at(start),
                });
                return Ok(out);
            };
            let kind = match c {
                'a'..='z' | 'A'..='Z' | '?' => self.word(),
                '_' => {
                    // `_` alone is a wildcard; `_foo` is an identifier.
                    self.bump();
                    match self.peek() {
                        Some(c2) if c2.is_ascii_alphanumeric() || c2 == '_' => {
                            let mut s = String::from("_");
                            s.push_str(&self.word_tail());
                            TokenKind::Ident(s)
                        }
                        _ => TokenKind::Underscore,
                    }
                }
                '0'..='9' => self.number(false)?,
                '"' => self.string()?,
                '.' => {
                    self.bump();
                    match self.peek() {
                        Some(c2) if c2.is_ascii_alphabetic() => {
                            TokenKind::Directive(self.word_tail())
                        }
                        _ => TokenKind::Dot,
                    }
                }
                ':' => {
                    self.bump();
                    if self.peek() == Some('-') {
                        self.bump();
                        TokenKind::If
                    } else {
                        TokenKind::Colon
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Ne
                    } else {
                        TokenKind::Bang
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Le
                    } else {
                        TokenKind::Lt
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Ge
                    } else {
                        TokenKind::Gt
                    }
                }
                '=' => {
                    self.bump();
                    TokenKind::Eq
                }
                '(' => {
                    self.bump();
                    TokenKind::LParen
                }
                ')' => {
                    self.bump();
                    TokenKind::RParen
                }
                '{' => {
                    self.bump();
                    TokenKind::LBrace
                }
                '}' => {
                    self.bump();
                    TokenKind::RBrace
                }
                ',' => {
                    self.bump();
                    TokenKind::Comma
                }
                ';' => {
                    self.bump();
                    TokenKind::Semicolon
                }
                '$' => {
                    self.bump();
                    TokenKind::Dollar
                }
                '+' => {
                    self.bump();
                    TokenKind::Plus
                }
                '-' => {
                    self.bump();
                    TokenKind::Minus
                }
                '*' => {
                    self.bump();
                    TokenKind::Star
                }
                '/' => {
                    self.bump();
                    TokenKind::Slash
                }
                '%' => {
                    self.bump();
                    TokenKind::Percent
                }
                '^' => {
                    self.bump();
                    TokenKind::Caret
                }
                other => return Err(self.error(format!("unexpected character `{other}`"))),
            };
            out.push(Token {
                kind,
                span: Span {
                    from: start,
                    to: self.pos,
                },
            });
        }
    }

    /// Skips whitespace and `//` / `/* ... */` comments.
    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') => {
                    // Look ahead without consuming in case it is division.
                    let mut clone = self.chars.clone();
                    clone.next();
                    match clone.next() {
                        Some('/') => {
                            while let Some(c) = self.bump() {
                                if c == '\n' {
                                    break;
                                }
                            }
                        }
                        Some('*') => {
                            self.bump();
                            self.bump();
                            let mut prev = ' ';
                            loop {
                                match self.bump() {
                                    Some('/') if prev == '*' => break,
                                    Some(c) => prev = c,
                                    None => return Err(self.error("unterminated block comment")),
                                }
                            }
                        }
                        _ => return Ok(()),
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn word(&mut self) -> TokenKind {
        TokenKind::Ident(self.word_tail())
    }

    fn word_tail(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '?' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn number(&mut self, _negative: bool) -> Result<TokenKind, ParseError> {
        let mut s = String::new();
        // Radix prefixes.
        if self.peek() == Some('0') {
            let mut clone = self.chars.clone();
            clone.next();
            match clone.next() {
                Some('x') | Some('X') => {
                    self.bump();
                    self.bump();
                    let digits = self.word_tail();
                    return i64::from_str_radix(&digits, 16)
                        .map(TokenKind::Number)
                        .map_err(|_| self.error(format!("bad hex literal `0x{digits}`")));
                }
                Some('b') | Some('B') => {
                    self.bump();
                    self.bump();
                    let digits = self.word_tail();
                    return i64::from_str_radix(&digits, 2)
                        .map(TokenKind::Number)
                        .map_err(|_| self.error(format!("bad binary literal `0b{digits}`")));
                }
                _ => {}
            }
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // A fractional part makes it a float — but `1.` at the end of a
        // fact must stay (number, dot), so require a digit after the dot.
        if self.peek() == Some('.') {
            let mut clone = self.chars.clone();
            clone.next();
            if matches!(clone.next(), Some(c) if c.is_ascii_digit()) {
                s.push('.');
                self.bump();
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                return s
                    .parse::<f32>()
                    .map(TokenKind::Float)
                    .map_err(|_| self.error(format!("bad float literal `{s}`")));
            }
        }
        s.parse::<i64>()
            .map(TokenKind::Number)
            .map_err(|_| self.error(format!("bad number literal `{s}`")))
    }

    fn string(&mut self) -> Result<TokenKind, ParseError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(TokenKind::Str(s)),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    Some(other) => return Err(self.error(format!("unknown escape `\\{other}`"))),
                    None => return Err(self.error("unterminated string literal")),
                },
                Some('\n') | None => return Err(self.error("unterminated string literal")),
                Some(c) => s.push(c),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_a_rule() {
        use TokenKind::*;
        assert_eq!(
            kinds("path(x, z) :- edge(x, y), path(y, z)."),
            vec![
                Ident("path".into()),
                LParen,
                Ident("x".into()),
                Comma,
                Ident("z".into()),
                RParen,
                If,
                Ident("edge".into()),
                LParen,
                Ident("x".into()),
                Comma,
                Ident("y".into()),
                RParen,
                Comma,
                Ident("path".into()),
                LParen,
                Ident("y".into()),
                Comma,
                Ident("z".into()),
                RParen,
                Dot,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_directives_and_fact_dots() {
        use TokenKind::*;
        assert_eq!(
            kinds(".decl edge(x: number)\nedge(1)."),
            vec![
                Directive("decl".into()),
                Ident("edge".into()),
                LParen,
                Ident("x".into()),
                Colon,
                Ident("number".into()),
                RParen,
                Ident("edge".into()),
                LParen,
                Number(1),
                RParen,
                Dot,
                Eof
            ]
        );
    }

    #[test]
    fn numbers_in_all_radixes() {
        use TokenKind::*;
        assert_eq!(
            kinds("42 0x2A 0b101010 3.5"),
            vec![Number(42), Number(42), Number(42), Float(3.5), Eof]
        );
    }

    #[test]
    fn fact_terminator_is_not_a_float() {
        use TokenKind::*;
        assert_eq!(
            kinds("f(1)."),
            vec![Ident("f".into()), LParen, Number(1), RParen, Dot, Eof]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds(r#""hello\nworld""#),
            vec![TokenKind::Str("hello\nworld".into()), TokenKind::Eof]
        );
        assert!(tokenize("\"unterminated").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        use TokenKind::*;
        assert_eq!(
            kinds("a // line\n /* block\nstill */ b"),
            vec![Ident("a".into()), Ident("b".into()), Eof]
        );
        assert!(tokenize("/* never closed").is_err());
    }

    #[test]
    fn comparison_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("< <= > >= = != ! :-"),
            vec![Lt, Le, Gt, Ge, Eq, Ne, Bang, If, Eof]
        );
    }

    #[test]
    fn wildcard_vs_underscore_ident() {
        use TokenKind::*;
        assert_eq!(kinds("_ _x"), vec![Underscore, Ident("_x".into()), Eof]);
    }

    #[test]
    fn positions_track_lines() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!(toks[0].span.from.line, 1);
        assert_eq!(toks[1].span.from.line, 2);
        assert_eq!(toks[1].span.from.col, 3);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(tokenize("a @ b").is_err());
    }
}
