//! Parser robustness properties: no input panics the frontend, and the
//! AST's `Display` output reparses to an equivalent AST.
//!
//! Seeded deterministic fuzzing stands in for proptest (not vendored):
//! every case is reproducible from its loop index.

use stir_frontend::ast::Program;
use stir_frontend::parser::parse;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Arbitrary printable bytes never panic the lexer/parser — they either
/// parse or produce a positioned error.
#[test]
fn arbitrary_input_never_panics() {
    let mut state = 0x5EED;
    for case in 0..256 {
        let len = (splitmix(&mut state) % 80) as usize;
        let input: String = (0..len)
            .map(|_| {
                // Printable ASCII plus newline/tab to hit whitespace paths.
                let r = splitmix(&mut state) % 97;
                match r {
                    95 => '\n',
                    96 => '\t',
                    _ => (b' ' + r as u8) as char,
                }
            })
            .collect();
        let _ = parse(&input);
        let _ = case;
    }
}

/// Inputs built from the language's own token alphabet stress the parser
/// harder than uniform noise; still no panics.
#[test]
fn token_soup_never_panics() {
    let alphabet = [
        ".decl", ".input", ".output", "(", ")", "{", "}", ",", ".", ":-", ":", ";", "!", "_", "$",
        "=", "!=", "<", "<=", "+", "-", "*", "/", "%", "^", "x", "foo", "number", "symbol",
        "count", "sum", "min", "max", "band", "bor", "bnot", "42", "3.5", "\"str\"", "0x1F",
    ];
    let mut state = 0x70CE5 ^ 0xFFFF;
    for _case in 0..256 {
        let len = (splitmix(&mut state) % 30) as usize;
        let tokens: Vec<&str> = (0..len)
            .map(|_| alphabet[(splitmix(&mut state) as usize) % alphabet.len()])
            .collect();
        let input = tokens.join(" ");
        let _ = parse(&input);
    }
}

/// Programs covering every construct, printed and reparsed.
#[test]
fn display_round_trips() {
    let sources = [
        ".decl e(x: number, y: number)\n.decl p(x: number, y: number)\n\
         p(x, y) :- e(x, y).\n\
         p(x, z) :- p(x, y), e(y, z).",
        ".decl a(x: number)\n.decl b(x: number)\n.decl r(x: number)\n\
         r(x) :- a(x), !b(x), x < 10, x + 1 != 3.",
        ".decl f(s: symbol)\n.decl g(s: symbol, n: number)\n\
         g(t, n) :- f(s), t = cat(s, \"!\"), n = strlen(s) * 2 + ord(s).",
        ".decl e(x: number)\n.decl t(n: number)\n\
         t(n) :- n = count : { e(_) }.\n\
         t(n) :- n = sum x : { e(x), x > 0 }.",
        ".decl m(a: number)\n.decl r(a: number)\n\
         r(x) :- m(x), x band 3 != 0, x bor 1 > 0, x bxor 2 >= 0, \
                 x bshl 1 <= 100, x bshr 1 < 50, bnot x != 0.",
    ];
    for src in sources {
        let first: Program = parse(src).expect("parses");
        // Re-render every clause and reparse the whole program body.
        let decls: String = first
            .decls
            .iter()
            .map(|d| {
                let attrs: Vec<String> = d
                    .attrs
                    .iter()
                    .map(|a| format!("{}: {}", a.name, a.ty))
                    .collect();
                format!(".decl {}({})\n", d.name, attrs.join(", "))
            })
            .collect();
        let facts: String = first.facts.iter().map(|f| format!("{f}\n")).collect();
        let rules: String = first.rules.iter().map(|r| format!("{r}\n")).collect();
        let rendered = format!("{decls}{facts}{rules}");
        let second = parse(&rendered)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\nrendered:\n{rendered}"));
        assert_eq!(first.decls.len(), second.decls.len());
        assert_eq!(first.facts.len(), second.facts.len());
        assert_eq!(first.rules.len(), second.rules.len());
        // Rule text is a canonical form: rendering again is a fixpoint.
        for (a, b) in first.rules.iter().zip(&second.rules) {
            assert_eq!(a.to_string(), b.to_string());
        }
    }
}
