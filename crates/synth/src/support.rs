//! The runtime support module embedded into every synthesized program.
//!
//! The synthesizer emits *self-contained* Rust source (no external
//! crates), so the pieces the generated code needs — symbol table,
//! union-find equivalence relation, intrinsic semantics identical to the
//! interpreter's `stir_core::functors`, fact I/O — are emitted verbatim
//! from this constant.

/// Source text of the generated program's `mod support`.
pub const SUPPORT_MODULE: &str = r#"
#[allow(dead_code)]
mod support {
    use std::collections::HashMap;
    use std::io::{BufRead, Write};

    pub struct Syms {
        strings: Vec<String>,
        ids: HashMap<String, u32>,
    }

    impl Syms {
        pub fn new() -> Syms {
            Syms { strings: Vec::new(), ids: HashMap::new() }
        }

        pub fn seed(&mut self, base: &[&str]) {
            for s in base {
                self.intern(s);
            }
        }

        pub fn intern(&mut self, s: &str) -> u32 {
            if let Some(&id) = self.ids.get(s) {
                return id;
            }
            let id = self.strings.len() as u32;
            self.strings.push(s.to_owned());
            self.ids.insert(s.to_owned(), id);
            id
        }

        pub fn resolve(&self, id: u32) -> &str {
            &self.strings[id as usize]
        }
    }

    /// Union-find equivalence relation (mirrors the engine's `eqrel`).
    pub struct EqRel {
        ids: HashMap<u32, usize>,
        parent: Vec<usize>,
        members: Vec<Vec<u32>>,
        pairs: usize,
    }

    impl EqRel {
        pub fn new() -> EqRel {
            EqRel { ids: HashMap::new(), parent: Vec::new(), members: Vec::new(), pairs: 0 }
        }

        fn node(&mut self, v: u32) -> usize {
            if let Some(&id) = self.ids.get(&v) {
                return id;
            }
            let id = self.parent.len();
            self.ids.insert(v, id);
            self.parent.push(id);
            self.members.push(vec![v]);
            self.pairs += 1;
            id
        }

        fn find(&self, mut id: usize) -> usize {
            while self.parent[id] != id {
                id = self.parent[id];
            }
            id
        }

        pub fn insert(&mut self, a: u32, b: u32) -> bool {
            let ia = self.node(a);
            let ib = self.node(b);
            let ra = self.find(ia);
            let rb = self.find(ib);
            if ra == rb {
                return false;
            }
            let (big, small) = if self.members[ra].len() >= self.members[rb].len() {
                (ra, rb)
            } else {
                (rb, ra)
            };
            let moved = std::mem::take(&mut self.members[small]);
            self.pairs += 2 * moved.len() * self.members[big].len();
            self.members[big].extend(moved);
            self.parent[small] = big;
            true
        }

        pub fn contains(&self, a: u32, b: u32) -> bool {
            match (self.ids.get(&a), self.ids.get(&b)) {
                (Some(&ia), Some(&ib)) => self.find(ia) == self.find(ib),
                _ => false,
            }
        }

        pub fn len(&self) -> usize {
            self.pairs
        }

        pub fn is_empty(&self) -> bool {
            self.pairs == 0
        }

        pub fn class_of(&self, a: u32) -> Vec<u32> {
            match self.ids.get(&a) {
                Some(&ia) => {
                    let mut out = self.members[self.find(ia)].clone();
                    out.sort_unstable();
                    out
                }
                None => Vec::new(),
            }
        }

        pub fn iter_pairs(&self) -> Vec<[u32; 2]> {
            let mut firsts: Vec<u32> = self.ids.keys().copied().collect();
            firsts.sort_unstable();
            let mut out = Vec::with_capacity(self.pairs);
            for x in firsts {
                for y in self.class_of(x) {
                    out.push([x, y]);
                }
            }
            out
        }
    }

    // ---- intrinsics: bit-identical to the interpreter -----------------

    pub fn div_s(a: u32, b: u32) -> u32 {
        if b as i32 == 0 { panic!("division by zero"); }
        (a as i32).wrapping_div(b as i32) as u32
    }
    pub fn div_u(a: u32, b: u32) -> u32 {
        if b == 0 { panic!("division by zero"); }
        a / b
    }
    pub fn mod_s(a: u32, b: u32) -> u32 {
        if b as i32 == 0 { panic!("remainder by zero"); }
        (a as i32).wrapping_rem(b as i32) as u32
    }
    pub fn mod_u(a: u32, b: u32) -> u32 {
        if b == 0 { panic!("remainder by zero"); }
        a % b
    }
    pub fn pow_s(a: u32, b: u32) -> u32 { (a as i32).wrapping_pow(b) as u32 }
    pub fn pow_u(a: u32, b: u32) -> u32 { a.wrapping_pow(b) }
    pub fn f(v: u32) -> f32 { f32::from_bits(v) }
    pub fn fb(v: f32) -> u32 { v.to_bits() }
    pub fn min_s(a: u32, b: u32) -> u32 { (a as i32).min(b as i32) as u32 }
    pub fn max_s(a: u32, b: u32) -> u32 { (a as i32).max(b as i32) as u32 }
    pub fn to_number(syms: &Syms, s: u32) -> u32 {
        let text = syms.resolve(s);
        match text.trim().parse::<i32>() {
            Ok(v) => v as u32,
            Err(_) => panic!("to_number: `{}` is not a number", text),
        }
    }
    pub fn substr(syms: &mut Syms, s: u32, from: u32, len: u32) -> u32 {
        let text: String = syms.resolve(s).to_owned();
        let from = (from as i32).max(0) as usize;
        let len = (len as i32).max(0) as usize;
        let sub: String = text.chars().skip(from).take(len).collect();
        syms.intern(&sub)
    }

    // ---- fact I/O -----------------------------------------------------

    /// Reads `<dir>/<name>.facts` (tab-separated, one tuple per line).
    /// `types` holds one code per column: n/u/f/s.
    pub fn load_facts(
        dir: &std::path::Path,
        name: &str,
        types: &str,
        syms: &mut Syms,
    ) -> Vec<Vec<u32>> {
        let path = dir.join(format!("{name}.facts"));
        let Ok(file) = std::fs::File::open(&path) else {
            return Vec::new(); // missing input file = empty relation
        };
        let reader = std::io::BufReader::new(file);
        let codes: Vec<char> = types.chars().collect();
        let mut out = Vec::new();
        for line in reader.lines() {
            let line = line.expect("readable facts file");
            if line.is_empty() {
                continue;
            }
            let mut tuple = Vec::with_capacity(codes.len());
            for (field, code) in line.split('\t').zip(&codes) {
                let bits = match code {
                    'n' => field.parse::<i32>().expect("number field") as u32,
                    'u' => field.parse::<u32>().expect("unsigned field"),
                    'f' => field.parse::<f32>().expect("float field").to_bits(),
                    's' => syms.intern(field),
                    _ => unreachable!(),
                };
                tuple.push(bits);
            }
            assert_eq!(tuple.len(), codes.len(), "short row in {}", path.display());
            out.push(tuple);
        }
        out
    }

    /// Writes tuples to `<dir>/<name>.csv`, decoded per the type codes.
    pub fn write_output(
        dir: &std::path::Path,
        name: &str,
        rows: &[Vec<u32>],
        types: &str,
        syms: &Syms,
    ) {
        let mut file = std::io::BufWriter::new(
            std::fs::File::create(dir.join(format!("{name}.csv"))).expect("writable out dir"),
        );
        let codes: Vec<char> = types.chars().collect();
        for row in rows {
            let mut first = true;
            for (bits, code) in row.iter().zip(&codes) {
                if !first {
                    write!(file, "\t").unwrap();
                }
                first = false;
                match code {
                    'n' => write!(file, "{}", *bits as i32).unwrap(),
                    'u' => write!(file, "{}", bits).unwrap(),
                    'f' => write!(file, "{}", f32::from_bits(*bits)).unwrap(),
                    's' => write!(file, "{}", syms.resolve(*bits)).unwrap(),
                    _ => unreachable!(),
                }
            }
            writeln!(file).unwrap();
        }
    }
}
"#;
