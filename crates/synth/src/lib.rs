//! The STIR synthesizer: RAM → standalone Rust, compiled with `rustc -O`.
//!
//! This crate is the *compiled baseline* of the reproduction — the
//! counterpart of Soufflé's C++ synthesizer. [`codegen::generate`] emits a
//! self-contained Rust program with monomorphized per-relation index sets
//! and straight-line loop nests; [`compile::compile`] builds it;
//! [`compile::run`] executes it and parses its timing/profile protocol.
//!
//! # Example
//!
//! ```no_run
//! use stir_frontend::parse_and_check;
//! use stir_ram::translate::translate;
//!
//! let checked = parse_and_check(".decl p(x: number)\n.output p\np(1).")?;
//! let ram = translate(&checked)?;
//! let source = stir_synth::codegen::generate(&ram);
//! let program = stir_synth::compile::compile(&source, std::path::Path::new("/tmp/synth"))?;
//! let outcome = stir_synth::compile::run(
//!     &program,
//!     std::path::Path::new("/tmp/facts"),
//!     std::path::Path::new("/tmp/out"),
//! )?;
//! assert_eq!(outcome.outputs["p"], vec![vec!["1".to_string()]]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod codegen;
pub mod compile;
pub mod support;

pub use codegen::{generate, query_labels};
pub use compile::{compile, run, CompiledProgram, RunOutcome};
