//! Compiling and running synthesized programs.
//!
//! [`compile`] writes the generated source to disk and invokes `rustc -O`
//! on it — the analogue of Soufflé handing its synthesized C++ to GCC.
//! The measured compile time is what Table 1's "first run" accounting
//! adds to the compiled engine's execution time.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

/// A compiled synthesized program.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Path of the generated source.
    pub source_path: PathBuf,
    /// Path of the compiled binary.
    pub binary_path: PathBuf,
    /// Wall time of the `rustc -O` invocation.
    pub compile_time: Duration,
}

/// Writes `source` into `dir/main.rs` and compiles it with `rustc -O`.
///
/// # Errors
///
/// Fails if `rustc` is unavailable or rejects the generated program (a
/// synthesizer bug — the source is left on disk for inspection).
pub fn compile(source: &str, dir: &Path) -> io::Result<CompiledProgram> {
    std::fs::create_dir_all(dir)?;
    let source_path = dir.join("main.rs");
    let binary_path = dir.join("prog");
    std::fs::write(&source_path, source)?;
    let started = Instant::now();
    let output = Command::new("rustc")
        .arg("--edition")
        .arg("2021")
        .arg("-O")
        .arg(&source_path)
        .arg("-o")
        .arg(&binary_path)
        .output()?;
    let compile_time = started.elapsed();
    if !output.status.success() {
        return Err(io::Error::other(format!(
            "rustc failed on synthesized program {}:\n{}",
            source_path.display(),
            String::from_utf8_lossy(&output.stderr)
        )));
    }
    Ok(CompiledProgram {
        source_path,
        binary_path,
        compile_time,
    })
}

/// The result of running a compiled program.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Wall time of the whole process.
    pub wall_time: Duration,
    /// Evaluation-only time reported by the binary (`EVALNS`).
    pub eval_time: Duration,
    /// Per-query `(nanoseconds, executions)` in query order (`PROFILE`).
    pub profile: Vec<(Duration, u64)>,
    /// Output relations, read back from the CSV files: name → sorted rows
    /// of display-formatted fields.
    pub outputs: HashMap<String, Vec<Vec<String>>>,
}

/// Runs a compiled program on a facts directory, collecting outputs from
/// `out_dir`.
///
/// # Errors
///
/// Fails if the process errors or its output protocol is malformed.
pub fn run(program: &CompiledProgram, facts_dir: &Path, out_dir: &Path) -> io::Result<RunOutcome> {
    std::fs::create_dir_all(out_dir)?;
    let started = Instant::now();
    let output = Command::new(&program.binary_path)
        .arg(facts_dir)
        .arg(out_dir)
        .output()?;
    let wall_time = started.elapsed();
    if !output.status.success() {
        return Err(io::Error::other(format!(
            "synthesized program failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        )));
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    let mut eval_time = Duration::ZERO;
    let mut profile = Vec::new();
    for line in stdout.lines() {
        let mut fields = line.split('\t');
        match fields.next() {
            Some("EVALNS") => {
                let ns: u128 = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| io::Error::other("malformed EVALNS line"))?;
                eval_time = Duration::from_nanos(ns as u64);
            }
            Some("PROFILE") => {
                let _idx = fields.next();
                let ns: u128 = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| io::Error::other("malformed PROFILE line"))?;
                let execs: u64 = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| io::Error::other("malformed PROFILE line"))?;
                profile.push((Duration::from_nanos(ns as u64), execs));
            }
            _ => {}
        }
    }

    let mut outputs = HashMap::new();
    for entry in std::fs::read_dir(out_dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("csv") {
            continue;
        }
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_owned();
        let content = std::fs::read_to_string(&path)?;
        let mut rows: Vec<Vec<String>> = content
            .lines()
            .map(|l| l.split('\t').map(str::to_owned).collect())
            .collect();
        rows.sort();
        outputs.insert(name, rows);
    }
    Ok(RunOutcome {
        wall_time,
        eval_time,
        profile,
        outputs,
    })
}

/// Writes input facts (display-formatted fields) as `<rel>.facts` files.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_facts_dir(dir: &Path, facts: &HashMap<String, Vec<Vec<String>>>) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (name, rows) in facts {
        let mut text = String::new();
        for row in rows {
            text.push_str(&row.join("\t"));
            text.push('\n');
        }
        std::fs::write(dir.join(format!("{name}.facts")), text)?;
    }
    Ok(())
}
