//! Synthesizer edge cases: generated code must survive hostile symbol
//! contents, negative/extreme numbers, every representation, and empty
//! programs — and stay differentially equal to the interpreter.

use stir_core::{Engine, InputData, InterpreterConfig, Value};
use stir_synth::{codegen, compile};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("stir-synth-edge").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn differential(name: &str, src: &str) {
    let engine = Engine::from_source(src).expect("compiles to RAM");
    let interp = engine
        .run(InterpreterConfig::optimized(), &InputData::new())
        .expect("interprets");
    let dir = tmp(name);
    let source = codegen::generate(engine.ram());
    let program = compile::compile(&source, &dir.join("build")).expect("rustc succeeds");
    let outcome =
        compile::run(&program, &dir.join("facts"), &dir.join("out")).expect("binary runs");
    for (rel, rows) in &interp.outputs {
        let mut interp_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        interp_rows.sort();
        assert_eq!(&interp_rows, &outcome.outputs[rel], "relation `{rel}`");
    }
}

#[test]
fn hostile_symbol_contents_escape_correctly() {
    differential(
        "hostile_symbols",
        r#"
        .decl s(x: symbol)
        .decl out(x: symbol, l: number)
        .output out
        s("quote\"inside"). s("back\\slash").
        s("{ braces } and ${dollar}"). s("").
        // NOTE: symbols containing tabs/newlines are excluded — the
        // TSV facts/CSV format cannot represent them (as in Soufflé).
        out(x, l) :- s(x), l = strlen(x).
        "#,
    );
}

#[test]
fn extreme_numbers_survive() {
    differential(
        "extremes",
        "\
        .decl m(a: number, b: unsigned)\n\
        .decl out(a: number, b: unsigned)\n\
        .output out\n\
        m(-2147483648, 0). m(2147483647, 4294967295). m(0, 1).\n\
        out(a, b) :- m(a, b), a <= 2147483647.\n",
    );
}

#[test]
fn every_representation_in_one_program() {
    differential(
        "all_reprs",
        "\
        .decl bt(a: number, b: number) btree\n\
        .decl br(a: number, b: number) brie\n\
        .decl eq(a: number, b: number) eqrel\n\
        .decl out(a: number, b: number)\n\
        .output out\n\
        bt(1, 2). br(2, 3). eq(3, 4). eq(4, 5).\n\
        out(a, c) :- bt(a, b), br(b, c).\n\
        out(a, b) :- eq(a, b), a < b.\n",
    );
}

#[test]
fn empty_program_compiles_and_runs() {
    differential("empty", ".decl p(x: number)\n.output p\n");
}

#[test]
fn counter_and_wrapping_arithmetic() {
    differential(
        "wrapping",
        "\
        .decl e(x: number)\n\
        .decl out(a: number, b: number)\n\
        .output out\n\
        e(2147483647).\n\
        out(x + 1, x * 2) :- e(x).\n",
    );
}

#[test]
fn generated_source_is_self_contained() {
    let engine = Engine::from_source(".decl p(x: number)\n.output p\np(1).\n").expect("compiles");
    let source = codegen::generate(engine.ram());
    assert!(source.contains("mod support"));
    assert!(!source.contains("extern crate"));
    assert!(!source.contains("use stir"), "no dependency on the engine");
    // One PROFILE slot per query.
    assert_eq!(codegen::query_labels(engine.ram()).len(), 0);
}
