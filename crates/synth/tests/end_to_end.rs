//! Differential tests: the synthesized binary must agree with the
//! interpreter on outputs, and its protocol must parse.
//!
//! These tests invoke `rustc` and are therefore slower than unit tests.

use std::collections::HashMap;
use stir_core::{Engine, InputData, InterpreterConfig, Value};
use stir_synth::{codegen, compile};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("stir-synth-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Runs both engines and asserts equal outputs.
fn differential(name: &str, src: &str, inputs: &InputData) {
    let engine = Engine::from_source(src).expect("compiles to RAM");
    let interp_out = engine
        .run(InterpreterConfig::optimized(), inputs)
        .expect("interprets");

    let source = codegen::generate(engine.ram());
    let dir = tmp(name);
    let program = compile::compile(&source, &dir.join("build")).expect("rustc succeeds");

    // Write inputs as display-formatted TSV.
    let facts: HashMap<String, Vec<Vec<String>>> = inputs
        .iter()
        .map(|(k, rows)| {
            (
                k.clone(),
                rows.iter()
                    .map(|r| r.iter().map(|v| v.to_string()).collect())
                    .collect(),
            )
        })
        .collect();
    let facts_dir = dir.join("facts");
    compile::write_facts_dir(&facts_dir, &facts).expect("facts written");

    let outcome = compile::run(&program, &facts_dir, &dir.join("out")).expect("binary runs");

    // Compare decoded, sorted string rows (symbol ids may differ).
    for (rel, rows) in &interp_out.outputs {
        let mut interp_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        interp_rows.sort();
        let synth_rows = outcome
            .outputs
            .get(rel)
            .unwrap_or_else(|| panic!("output `{rel}` missing from synthesized run"));
        assert_eq!(&interp_rows, synth_rows, "relation `{rel}` differs");
    }
    assert!(outcome.eval_time.as_nanos() > 0 || outcome.wall_time.as_nanos() > 0);
    assert_eq!(
        outcome.profile.len(),
        codegen::query_labels(engine.ram()).len()
    );
}

#[test]
fn transitive_closure_matches() {
    differential(
        "tc",
        ".decl e(x: number, y: number)\n\
         .decl p(x: number, y: number)\n\
         .output p\n\
         e(1, 2). e(2, 3). e(3, 4). e(4, 2).\n\
         p(x, y) :- e(x, y).\n\
         p(x, z) :- p(x, y), e(y, z).\n",
        &InputData::new(),
    );
}

#[test]
fn inputs_negation_and_arithmetic_match() {
    let mut inputs = InputData::new();
    inputs.insert(
        "e".into(),
        (0..50)
            .map(|i| vec![Value::Number(i), Value::Number((i * 7) % 50)])
            .collect(),
    );
    differential(
        "neg_arith",
        ".decl e(x: number, y: number)\n.input e\n\
         .decl odd(x: number)\n\
         .decl r(x: number, y: number)\n\
         .output r\n\
         odd(x) :- e(x, _), x % 2 = 1.\n\
         r(x, y) :- e(x, y), !odd(x), y = x * 3 - 1 ; e(x, y), odd(x), y < 10.\n",
        &inputs,
    );
}

#[test]
fn strings_aggregates_and_eqrel_match() {
    differential(
        "strings_aggs",
        ".decl word(s: symbol)\n\
         .decl stat(s: symbol, l: number)\n\
         .decl total(n: number)\n\
         .decl eq(x: number, y: number) eqrel\n\
         .decl pairld(x: number, y: number)\n\
         .output stat\n.output total\n.output pairld\n\
         word(\"ada\"). word(\"grace\"). word(\"alan\").\n\
         stat(m, l) :- word(s), m = cat(s, \"!\"), l = strlen(s).\n\
         total(n) :- n = count : { word(_) }.\n\
         eq(1, 2). eq(2, 3). eq(10, 11).\n\
         pairld(x, y) :- eq(x, y), x < y.\n",
        &InputData::new(),
    );
}

#[test]
fn secondary_indexes_and_recursion_match() {
    // Forces two indexes on e (searched on both columns) inside a
    // recursive stratum, exercising MERGE/SWAP of multi-index relations.
    let mut inputs = InputData::new();
    inputs.insert(
        "e".into(),
        (0..30)
            .map(|i| vec![Value::Number(i % 10), Value::Number((i * 3) % 10)])
            .collect(),
    );
    differential(
        "two_idx",
        ".decl e(x: number, y: number)\n.input e\n\
         .decl fwd(x: number, y: number)\n\
         .decl bwd(x: number, y: number)\n\
         .output fwd\n.output bwd\n\
         fwd(x, y) :- e(x, y).\n\
         fwd(x, z) :- fwd(x, y), e(y, z).\n\
         bwd(x, y) :- e(x, y).\n\
         bwd(x, z) :- e(y, z), bwd(x, y).\n",
        &inputs,
    );
}
