//! **E10** — micro-benchmarks of the DER substrate backing the paper's
//! §3/§4.1 claims: monomorphized (static) index operations vs the
//! dynamic adapter interface vs the legacy runtime-comparator B-tree,
//! and buffered vs unbuffered virtual iteration.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use stir_der::adapter::{BTreeIndex, IndexAdapter};
use stir_der::brie::Brie;
use stir_der::btree::BTreeIndexSet;
use stir_der::dynindex::DynBTreeIndex;
use stir_der::iter::{BufferedTupleIter, TupleIter};
use stir_der::order::Order;

const N: u32 = 20_000;

fn tuples() -> Vec<[u32; 2]> {
    let mut seed = 1u32;
    (0..N)
        .map(|_| {
            seed = seed.wrapping_mul(48271) % 0x7fff_ffff;
            [seed % 1000, seed % 4093]
        })
        .collect()
}

fn bench_inserts(c: &mut Criterion) {
    let data = tuples();
    let mut g = c.benchmark_group("insert_20k");
    g.bench_function("btree_static", |b| {
        b.iter_batched(
            BTreeIndexSet::<2>::new,
            |mut set| {
                for t in &data {
                    set.insert(*t);
                }
                set
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("brie_static", |b| {
        b.iter_batched(
            Brie::<2>::new,
            |mut set| {
                for t in &data {
                    set.insert(*t);
                }
                set
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("btree_dyn_adapter", |b| {
        b.iter_batched(
            || BTreeIndex::<2>::new(Order::natural(2)),
            |mut idx| {
                for t in &data {
                    IndexAdapter::insert(&mut idx, t);
                }
                idx
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("legacy_runtime_comparator", |b| {
        b.iter_batched(
            || DynBTreeIndex::new(Order::natural(2)),
            |mut idx| {
                for t in &data {
                    idx.insert(t);
                }
                idx
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_scans(c: &mut Criterion) {
    let data = tuples();
    let static_set: BTreeIndexSet<2> = data.iter().copied().collect();
    let mut adapter = BTreeIndex::<2>::new(Order::natural(2));
    let mut legacy = DynBTreeIndex::new(Order::natural(2));
    for t in &data {
        IndexAdapter::insert(&mut adapter, t);
        legacy.insert(t);
    }

    let mut g = c.benchmark_group("full_scan");
    g.bench_function("monomorphic_iter", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for t in static_set.iter() {
                acc += u64::from(t[1]);
            }
            black_box(acc)
        })
    });
    g.bench_function("virtual_unbuffered", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            let mut it = adapter.scan();
            while let Some(t) = it.next_tuple() {
                acc += u64::from(t[1]);
            }
            black_box(acc)
        })
    });
    g.bench_function("virtual_buffered_128", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            let mut it = BufferedTupleIter::new(adapter.scan());
            while let Some(t) = it.next_tuple() {
                acc += u64::from(t[1]);
            }
            black_box(acc)
        })
    });
    g.bench_function("legacy_materializing", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            let mut it = legacy.scan();
            while let Some(t) = it.next_tuple() {
                acc += u64::from(t[1]);
            }
            black_box(acc)
        })
    });
    g.finish();

    let mut g = c.benchmark_group("primitive_search");
    g.bench_function("monomorphic_range", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for key in 0..1000u32 {
                for t in static_set.range(&[key, 0], &[key, u32::MAX]) {
                    acc += u64::from(t[1]);
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("virtual_range", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for key in 0..1000u32 {
                let mut it = adapter.range(&[key, 0], &[key, u32::MAX]);
                while let Some(t) = it.next_tuple() {
                    acc += u64::from(t[1]);
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("legacy_range", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for key in 0..1000u32 {
                let mut it = legacy.range(&[key, 0], &[key, u32::MAX]);
                while let Some(t) = it.next_tuple() {
                    acc += u64::from(t[1]);
                }
            }
            black_box(acc)
        })
    });
    g.finish();

    let mut g = c.benchmark_group("contains_20k");
    g.bench_function("monomorphic", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for t in &data {
                hits += u32::from(static_set.contains(t));
            }
            black_box(hits)
        })
    });
    g.bench_function("virtual", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for t in &data {
                hits += u32::from(adapter.contains(t));
            }
            black_box(hits)
        })
    });
    g.bench_function("legacy", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for t in &data {
                hits += u32::from(legacy.contains(t));
            }
            black_box(hits)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_inserts, bench_scans
}
criterion_main!(benches);
