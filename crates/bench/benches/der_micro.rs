//! **E10** — micro-benchmarks of the DER substrate backing the paper's
//! §3/§4.1 claims: monomorphized (static) index operations vs the
//! dynamic adapter interface vs the legacy runtime-comparator B-tree,
//! and buffered vs unbuffered virtual iteration.
//!
//! Plain wall-clock timing (best of `reps()` runs) — criterion is not
//! vendored, and the other figure benches already use this harness.

use std::hint::black_box;
use std::time::{Duration, Instant};
use stir_bench::{best, fmt_dur, print_table, reps};
use stir_der::adapter::{BTreeIndex, IndexAdapter};
use stir_der::brie::Brie;
use stir_der::btree::BTreeIndexSet;
use stir_der::dynindex::DynBTreeIndex;
use stir_der::iter::{BufferedTupleIter, TupleIter};
use stir_der::order::Order;

const N: u32 = 20_000;

fn tuples() -> Vec<[u32; 2]> {
    let mut seed = 1u32;
    (0..N)
        .map(|_| {
            seed = seed.wrapping_mul(48271) % 0x7fff_ffff;
            [seed % 1000, seed % 4093]
        })
        .collect()
}

fn time<R>(mut f: impl FnMut() -> R) -> Duration {
    let runs = reps().max(5);
    best(
        (0..runs)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect(),
    )
}

fn main() {
    let data = tuples();
    let mut rows = Vec::new();

    rows.push(vec![
        "insert_20k/btree_static".into(),
        fmt_dur(time(|| {
            let mut set = BTreeIndexSet::<2>::new();
            for t in &data {
                set.insert(*t);
            }
            set
        })),
    ]);
    rows.push(vec![
        "insert_20k/brie_static".into(),
        fmt_dur(time(|| {
            let mut set = Brie::<2>::new();
            for t in &data {
                set.insert(*t);
            }
            set
        })),
    ]);
    rows.push(vec![
        "insert_20k/btree_dyn_adapter".into(),
        fmt_dur(time(|| {
            let mut idx = BTreeIndex::<2>::new(Order::natural(2));
            for t in &data {
                IndexAdapter::insert(&mut idx, t);
            }
            idx
        })),
    ]);
    rows.push(vec![
        "insert_20k/legacy_runtime_comparator".into(),
        fmt_dur(time(|| {
            let mut idx = DynBTreeIndex::new(Order::natural(2));
            for t in &data {
                idx.insert(t);
            }
            idx
        })),
    ]);

    let static_set: BTreeIndexSet<2> = data.iter().copied().collect();
    let mut adapter = BTreeIndex::<2>::new(Order::natural(2));
    let mut legacy = DynBTreeIndex::new(Order::natural(2));
    for t in &data {
        IndexAdapter::insert(&mut adapter, t);
        legacy.insert(t);
    }

    rows.push(vec![
        "full_scan/monomorphic_iter".into(),
        fmt_dur(time(|| {
            let mut acc = 0u64;
            for t in static_set.iter() {
                acc += u64::from(t[1]);
            }
            acc
        })),
    ]);
    rows.push(vec![
        "full_scan/virtual_unbuffered".into(),
        fmt_dur(time(|| {
            let mut acc = 0u64;
            let mut it = adapter.scan();
            while let Some(t) = it.next_tuple() {
                acc += u64::from(t[1]);
            }
            acc
        })),
    ]);
    rows.push(vec![
        "full_scan/virtual_buffered_128".into(),
        fmt_dur(time(|| {
            let mut acc = 0u64;
            let mut it = BufferedTupleIter::new(adapter.scan());
            while let Some(t) = it.next_tuple() {
                acc += u64::from(t[1]);
            }
            acc
        })),
    ]);
    rows.push(vec![
        "full_scan/legacy_materializing".into(),
        fmt_dur(time(|| {
            let mut acc = 0u64;
            let mut it = legacy.scan();
            while let Some(t) = it.next_tuple() {
                acc += u64::from(t[1]);
            }
            acc
        })),
    ]);

    rows.push(vec![
        "primitive_search/monomorphic_range".into(),
        fmt_dur(time(|| {
            let mut acc = 0u64;
            for key in 0..1000u32 {
                for t in static_set.range(&[key, 0], &[key, u32::MAX]) {
                    acc += u64::from(t[1]);
                }
            }
            acc
        })),
    ]);
    rows.push(vec![
        "primitive_search/virtual_range".into(),
        fmt_dur(time(|| {
            let mut acc = 0u64;
            for key in 0..1000u32 {
                let mut it = adapter.range(&[key, 0], &[key, u32::MAX]);
                while let Some(t) = it.next_tuple() {
                    acc += u64::from(t[1]);
                }
            }
            acc
        })),
    ]);
    rows.push(vec![
        "primitive_search/legacy_range".into(),
        fmt_dur(time(|| {
            let mut acc = 0u64;
            for key in 0..1000u32 {
                let mut it = legacy.range(&[key, 0], &[key, u32::MAX]);
                while let Some(t) = it.next_tuple() {
                    acc += u64::from(t[1]);
                }
            }
            acc
        })),
    ]);

    rows.push(vec![
        "contains_20k/monomorphic".into(),
        fmt_dur(time(|| {
            let mut hits = 0u32;
            for t in &data {
                hits += u32::from(static_set.contains(t));
            }
            hits
        })),
    ]);
    rows.push(vec![
        "contains_20k/virtual".into(),
        fmt_dur(time(|| {
            let mut hits = 0u32;
            for t in &data {
                hits += u32::from(adapter.contains(t));
            }
            hits
        })),
    ]);
    rows.push(vec![
        "contains_20k/legacy".into(),
        fmt_dur(time(|| {
            let mut hits = 0u32;
            for t in &data {
                hits += u32::from(legacy.contains(t));
            }
            hits
        })),
    ]);

    print_table("E10 — DER micro-benchmarks", &["benchmark", "best"], &rows);
}
