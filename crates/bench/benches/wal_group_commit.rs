//! **Group commit** — what fsync coalescing buys concurrent writers
//! under `always` durability.
//!
//! A warm transitive-closure database absorbs concurrent single-edge
//! insert streams from 1, 4, and 16 writer threads, once with
//! per-request fsyncs (the pre-group-commit `always` path) and once
//! with group commit (appends stay ordered under the engine write
//! lock; the fsync is deferred to a shared barrier where one
//! `sync_data` acknowledges every append it covers). The table reports
//! wall-clock throughput, mean per-insert latency, and the actual
//! fsync count next to the commit count — the coalescing ratio is the
//! whole story: at 1 writer the barrier degenerates to one fsync per
//! commit, and the win grows with concurrency while `ok` ⟹ durable is
//! preserved verbatim. This backs the EXPERIMENTS.md E13 group-commit
//! claim.

use std::path::PathBuf;
use std::sync::RwLock;
use std::time::{Duration, Instant};
use stir_bench::{fmt_dur, print_table, reps, scale};
use stir_core::resident::{PersistOptions, ResidentEngine};
use stir_core::wal::Durability;
use stir_core::{Engine, InputData, InterpreterConfig, Value};
use stir_workloads::spec::Scale;

const TC: &str = "\
    .decl edge(x: number, y: number)\n.input edge\n\
    .decl path(x: number, y: number)\n.output path\n\
    path(x, y) :- edge(x, y).\n\
    path(x, z) :- path(x, y), edge(y, z).\n";

fn inputs_with(nodes: i32) -> InputData {
    let mut inputs = InputData::new();
    inputs.insert(
        "edge".into(),
        (0..nodes - 1)
            .map(|i| vec![Value::Number(i), Value::Number(i + 1)])
            .collect(),
    );
    inputs
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("stir-group-commit-bench")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    dir
}

struct Run {
    wall: Duration,
    mean_insert: Duration,
    fsyncs: u64,
    commits: u64,
}

/// `writers` threads each push `per_writer` disjoint single-edge
/// batches through one engine under `always` durability, with or
/// without group commit. Returns wall time, mean ack latency, and the
/// fsync/commit counts.
fn run(nodes: i32, writers: usize, per_writer: usize, group: bool) -> Run {
    let tag = format!("{writers}w-{}", if group { "group" } else { "each" });
    let dir = fresh_dir(&tag);
    let engine = Engine::from_source(TC).expect("compiles");
    let opts = PersistOptions {
        durability: Durability::Always,
        snapshot_interval: None,
    };
    let (mut resident, _) = ResidentEngine::open(
        engine,
        InterpreterConfig::optimized(),
        &inputs_with(nodes),
        &dir,
        opts,
        None,
    )
    .expect("durable engine opens");
    if group {
        resident.enable_group_commit();
    }
    let shared = RwLock::new(resident);

    let barrier = std::sync::Barrier::new(writers);
    let started = Instant::now();
    let total_ack: Duration = std::thread::scope(|s| {
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let (shared, barrier) = (&shared, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    let mut acks = Duration::ZERO;
                    for k in 0..per_writer {
                        // Disjoint back-edges per writer: every batch is
                        // genuinely new and the delta wave stays small.
                        let v = (nodes - 2) - ((w * per_writer + k) as i32 * 13) % (nodes - 8);
                        let rows = vec![vec![Value::Number(v), Value::Number(v - 5)]];
                        let t0 = Instant::now();
                        let ticket = {
                            let mut eng = shared.write().unwrap();
                            eng.insert_facts("edge", &rows, None).expect("insert");
                            eng.take_commit_ticket()
                        };
                        if let Some(t) = ticket {
                            t.wait().expect("group fsync");
                        }
                        acks += t0.elapsed();
                    }
                    acks
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("writer")).sum()
    });
    let wall = started.elapsed();

    let eng = shared.read().unwrap();
    let commits = (writers * per_writer) as u64;
    let (fsyncs, barrier_commits) = eng.group_commit_stats().unwrap_or((0, 0));
    let fsyncs = if group {
        assert_eq!(barrier_commits, commits, "every ack passed the barrier");
        fsyncs
    } else {
        eng.wal_stats().expect("wal").fsyncs
    };
    drop(eng);
    let _ = std::fs::remove_dir_all(&dir);
    Run {
        wall,
        mean_insert: total_ack / commits as u32,
        fsyncs,
        commits,
    }
}

fn main() {
    let nodes: i32 = match scale() {
        Scale::Tiny => 120,
        Scale::Small => 400,
        Scale::Medium => 800,
        Scale::Large => 1600,
    };
    let per_writer = (reps() * 8).clamp(16, 128);

    let mut rows_out = Vec::new();
    let mut coalesced_at_16 = (0u64, 0u64);
    for writers in [1usize, 4, 16] {
        let each = run(nodes, writers, per_writer, false);
        let grouped = run(nodes, writers, per_writer, true);
        if writers == 16 {
            coalesced_at_16 = (grouped.fsyncs, grouped.commits);
        }
        let speedup = each.wall.as_secs_f64() / grouped.wall.as_secs_f64();
        rows_out.push(vec![
            format!("{writers}"),
            fmt_dur(each.mean_insert),
            fmt_dur(grouped.mean_insert),
            format!("{}/{}", each.fsyncs, each.commits),
            format!("{}/{}", grouped.fsyncs, grouped.commits),
            format!("{speedup:.2}x"),
        ]);
    }

    print_table(
        &format!(
            "Group commit — concurrent single-edge inserts on a warm \
             {nodes}-node TC chain under `always` durability \
             ({per_writer} inserts per writer; fsync-per-request vs \
             group-committed)"
        ),
        &[
            "writers",
            "ack (each)",
            "ack (group)",
            "fsync/commit (each)",
            "fsync/commit (group)",
            "wall speedup",
        ],
        &rows_out,
    );
    let (fsyncs, commits) = coalesced_at_16;
    println!("\ngroup commit at 16 writers: {fsyncs} fsyncs for {commits} commits");
    assert!(
        fsyncs < commits,
        "16 concurrent writers should coalesce fsyncs ({fsyncs}/{commits})"
    );
}
