//! **Fig. 18** — impact of static access & instruction generation: the
//! STI with statically dispatched, monomorphized index instructions vs
//! the same interpreter going through the dynamic `IndexAdapter`
//! interface with 128-tuple buffered iterators.
//!
//! Paper's reported shape: static instruction generation is 24.4% faster
//! on average (up to 55%), consistently across all benchmarks.

use stir_bench::{fmt_dur, print_table, scale};
use stir_core::{Engine, InterpreterConfig};
use stir_workloads::{all_suites, instances};

fn main() {
    let scale = scale();
    let mut rows = Vec::new();
    let mut rels = Vec::new();
    for suite in all_suites() {
        for w in instances(suite, scale) {
            let engine = Engine::from_source(&w.program).expect("compiles");
            let times = stir_bench::interp_times_interleaved(
                &engine,
                &[
                    InterpreterConfig::dynamic_adapter(),
                    InterpreterConfig::optimized(),
                ],
                &w.inputs,
            );
            let (dynamic, static_) = (times[0], times[1]);
            let rel = static_.as_secs_f64() / dynamic.as_secs_f64().max(1e-9);
            rels.push(rel);
            rows.push(vec![
                w.name.clone(),
                fmt_dur(dynamic),
                fmt_dur(static_),
                format!("{rel:.3}"),
            ]);
        }
    }
    print_table(
        &format!("Fig. 18 — static interface vs dynamic adapter (scale {scale:?}; dynamic = 1.0)"),
        &[
            "benchmark",
            "dynamic adapter",
            "static STI",
            "relative runtime",
        ],
        &rows,
    );
    let avg = rels.iter().sum::<f64>() / rels.len() as f64;
    let best = rels.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "\naverage speedup from static instruction generation: {:.1}% (best {:.1}%)   (paper: 24.4% avg, up to 55%)",
        100.0 * (1.0 - avg),
        100.0 * (1.0 - best)
    );
}
