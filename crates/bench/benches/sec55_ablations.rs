//! **§5.5** — the two remaining ablations:
//!
//! * *static tuple reordering* (paper: 3.2–5.1% improvement, consistent
//!   across benchmarks; modest because insertions cannot be reordered
//!   statically). The effect concentrates on scans over *permuted*
//!   (secondary) indexes, so in addition to the suites a dedicated
//!   reordering-heavy micro-workload is measured.
//! * *reducing register pressure* (paper: 6.3% average improvement from
//!   5–12.5% fewer instructions; realized here as handler outlining —
//!   see `InterpreterConfig::outlined_handlers`). **This one does not
//!   transfer to Rust/LLVM**: the optimized preset keeps it off and this
//!   bench quantifies the loss when it is forced on.

use stir_bench::{fmt_dur, print_table, scale};
use stir_core::{Engine, InterpreterConfig};
use stir_workloads::{all_suites, instances};

fn main() {
    let scale = scale();
    let no_reorder = InterpreterConfig {
        static_reordering: false,
        ..InterpreterConfig::optimized()
    };
    let outlined = InterpreterConfig {
        outlined_handlers: true,
        ..InterpreterConfig::optimized()
    };

    let mut rows = Vec::new();
    let mut reorder_rels = Vec::new();
    let mut outline_rels = Vec::new();
    for suite in all_suites() {
        for w in instances(suite, scale) {
            let engine = Engine::from_source(&w.program).expect("compiles");
            let times = stir_bench::interp_times_interleaved(
                &engine,
                &[InterpreterConfig::optimized(), no_reorder, outlined],
                &w.inputs,
            );
            let (full, reorder_off, outline_on) = (times[0], times[1], times[2]);
            let r1 = full.as_secs_f64() / reorder_off.as_secs_f64().max(1e-9);
            let r2 = outline_on.as_secs_f64() / full.as_secs_f64().max(1e-9);
            reorder_rels.push(r1);
            outline_rels.push(r2);
            rows.push(vec![
                w.name.clone(),
                fmt_dur(full),
                fmt_dur(reorder_off),
                format!("{r1:.3}"),
                fmt_dur(outline_on),
                format!("{r2:.3}"),
            ]);
        }
    }
    print_table(
        &format!("§5.5 — reordering & register-pressure ablations (scale {scale:?})"),
        &[
            "benchmark",
            "full STI",
            "reorder off",
            "on/off",
            "outline on",
            "on/full",
        ],
        &rows,
    );
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nstatic reordering (suites): avg relative runtime {:.3} (improvement {:.1}%)   (paper: 3.2–5.1%)",
        avg(&reorder_rels),
        100.0 * (1.0 - avg(&reorder_rels))
    );
    println!(
        "handler outlining forced ON: avg {:.3}x the optimized runtime   (paper's §4.3 gained 6.3% in C++/GCC;\n\
         under Rust/LLVM the trade loses, so the optimized preset leaves it off — a documented deviation)",
        avg(&outline_rels)
    );

    // Reordering concentrates on permuted-index scans, which the suites
    // exercise only lightly; isolate it with a secondary-index-heavy
    // micro-workload (every recursive join scans e on its second column).
    let n: i32 = match scale {
        stir_workloads::spec::Scale::Tiny => 60,
        stir_workloads::spec::Scale::Small => 250,
        _ => 600,
    };
    let mut facts = String::new();
    for i in 0..n {
        facts.push_str(&format!("e({}, {}).\n", i, (i * 7 + 1) % n));
        facts.push_str(&format!("e({}, {}).\n", i, (i * 13 + 5) % n));
    }
    let src = format!(
        ".decl e(x: number, y: number)\n.decl up(x: number, y: number)\n.output up\n\
         {facts}\
         up(x, y) :- e(x, y).\n\
         up(x, z) :- up(y, z), e(x, y).\n"
    );
    let engine = Engine::from_source(&src).expect("micro compiles");
    let empty = stir_core::InputData::new();
    let times = stir_bench::interp_times_interleaved(
        &engine,
        &[InterpreterConfig::optimized(), no_reorder],
        &empty,
    );
    let (full, off) = (times[0], times[1]);
    println!(
        "\nreordering micro-workload (secondary-index-heavy TC, n = {n}): on {} / off {} = {:.3}",
        fmt_dur(full),
        fmt_dur(off),
        full.as_secs_f64() / off.as_secs_f64().max(1e-9)
    );
    println!(
        "note: suite programs search mostly natural orders, so the suite-level effect sits near the\n\
         measurement noise floor; the micro-workload shows the isolated effect, matching the paper's\n\
         'modest but consistent' framing."
    );
}
