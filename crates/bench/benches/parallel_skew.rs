//! **Parallel balance under skew** — the E12 work-stealing story.
//!
//! A Zipf-skewed graph (out-degrees clustered at low node ids) is
//! evaluated with profiling on at `jobs = 4`, and the per-worker *work*
//! counters (whole-frame loop iterations, outer tuples plus inner
//! joins) are read back from the work-stealing scheduler. The table
//! compares the measured max/min per-worker work ratio against the
//! *analytic* imbalance of the old static contiguous partitioning on
//! the same input — which grows without bound in the skew exponent,
//! while morsel stealing stays within a small constant.
//!
//! With at least two cores available, the harness asserts the
//! work-stealing ratio on the controlled two-hop workload is ≤ 2×. On a
//! single core the worker threads run serialized and whichever runs
//! first can drain the whole queue, so the assertion is skipped and the
//! table is informational (the same honesty note `parallel_scaling`
//! prints).

use stir_bench::{fmt_ratio, print_table, scale};
use stir_core::{Engine, InputData, InterpreterConfig, Value};
use stir_workloads::spec::Scale;
use stir_workloads::zipf::ZipfGraph;

const TWO_HOP: &str = "\
    .decl node(x: number)\n.input node\n\
    .decl edge(x: number, y: number)\n.input edge\n\
    .decl two(x: number, z: number)\n.output two\n\
    two(x, z) :- node(x), edge(x, y), edge(y, z).\n";

const TC: &str = "\
    .decl node(x: number)\n.input node\n\
    .decl edge(x: number, y: number)\n.input edge\n\
    .decl path(x: number, y: number)\n.output path\n\
    path(x, y) :- edge(x, y).\n\
    path(x, z) :- path(x, y), edge(y, z).\n";

fn inputs_of(g: &ZipfGraph) -> InputData {
    let mut inputs = InputData::new();
    inputs.insert(
        "node".into(),
        (0..g.nodes)
            .map(|i| vec![Value::Number(i as i32)])
            .collect(),
    );
    inputs.insert(
        "edge".into(),
        g.edges
            .iter()
            .map(|&(s, d)| vec![Value::Number(s as i32), Value::Number(d as i32)])
            .collect(),
    );
    inputs
}

/// max/min over per-worker work, counting only workers that did any.
/// Returns `None` when fewer than two workers participated (single-core
/// serialization can hand the whole queue to one thread).
fn work_ratio(work: &[u64]) -> Option<f64> {
    let active: Vec<u64> = work.iter().copied().filter(|&w| w > 0).collect();
    if active.len() < 2 {
        return None;
    }
    let max = *active.iter().max().expect("nonempty");
    let min = *active.iter().min().expect("nonempty");
    Some(max as f64 / min as f64)
}

fn main() {
    let (nodes, edges) = match scale() {
        Scale::Tiny => (1000u32, 20_000u64),
        Scale::Small => (4000, 100_000),
        Scale::Medium => (8000, 200_000),
        Scale::Large => (16_000, 400_000),
    };
    let jobs = 4usize;
    // Fine morsels: the chunk holding the hub nodes must stay well under
    // a worker's fair share of the total work for stealing to even it
    // out (see DESIGN §9 on morsel sizing).
    let config = InterpreterConfig::optimized()
        .with_profile()
        .with_jobs(jobs)
        .with_morsel_size(32);

    // s = 0.5 softens the single-hub head (no one morsel dominates) but
    // keeps contiguous splits badly lopsided: the first quarter of the
    // node table carries half the edges.
    let g = ZipfGraph::generate(nodes, edges, 0.5, 0xE12);
    let inputs = inputs_of(&g);

    let static_work = g.static_partition_work(jobs);
    let static_ratio = *static_work.iter().max().expect("jobs > 0") as f64
        / (*static_work.iter().min().expect("jobs > 0")).max(1) as f64;

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut two_hop_ratio = None;
    for (name, src) in [("two-hop", TWO_HOP), ("tc", TC)] {
        let engine = Engine::from_source(src).expect("compiles");
        let out = engine.run(config, &inputs).expect("runs");
        let par = out.parallel.expect("parallel scans ran");
        let work: Vec<u64> = par.workers.iter().map(|w| w.work).collect();
        let ratio = work_ratio(&work);
        if name == "two-hop" {
            two_hop_ratio = ratio;
        }
        rows.push(vec![
            name.to_string(),
            par.scans.to_string(),
            par.morsels().to_string(),
            par.steals().to_string(),
            work.iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join("/"),
            ratio.map_or("n/a".into(), fmt_ratio),
            fmt_ratio(static_ratio),
        ]);
    }

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    print_table(
        &format!(
            "Parallel balance under Zipf skew — {nodes} nodes / ~{edges} edges, \
             jobs={jobs}, morsel=32, {cores} core(s) available"
        ),
        &[
            "workload",
            "scans",
            "morsels",
            "steals",
            "work/worker",
            "steal ratio",
            "static ratio",
        ],
        &rows,
    );
    println!(
        "\nstatic contiguous split of `node` would give per-partition edge work {static_work:?}"
    );

    if cores >= 2 {
        let ratio = two_hop_ratio.expect("two or more workers active on a multi-core host");
        assert!(
            ratio <= 2.0,
            "work-stealing balance violated: max/min per-worker work = {ratio:.2} > 2"
        );
        assert!(
            static_ratio > 2.0,
            "workload not skewed enough to demonstrate imbalance: {static_ratio:.2}"
        );
        println!("balance OK: work-stealing {ratio:.2}x vs static {static_ratio:.2}x");
    } else {
        println!("note: single core — workers serialize, balance assertion skipped");
    }
}
