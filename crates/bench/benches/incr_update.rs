//! **Incremental update latency** — the point of a resident engine.
//!
//! A warm transitive-closure database absorbs insertion batches of 1,
//! 100, and 10k edges through [`ResidentEngine::insert_facts`]'s
//! delta-restart path; each batch is compared against a from-scratch
//! re-evaluation over the union of old and new facts (the only option a
//! batch engine has). The headline number is the single-fact speedup,
//! which the serving subsystem promises to keep ≥ 10× on this workload;
//! large batches are allowed to approach (or cross) the break-even
//! point, and the table shows where.
//!
//! The per-batch work figures come from the existing JSON profile
//! machinery ([`stir_bench::profile_json_eval`] read back through
//! [`stir_bench::rules_from_json`]), so the derivation counts printed
//! here are the same figures every profile consumer sees.

use std::time::{Duration, Instant};
use stir_bench::{
    fmt_dur, fmt_ratio, interp_time, print_table, profile_json_eval, reps, rules_from_json, scale,
};
use stir_core::resident::ResidentEngine;
use stir_core::{Engine, InputData, InterpreterConfig, Value};
use stir_workloads::spec::Scale;

const TC: &str = "\
    .decl edge(x: number, y: number)\n.input edge\n\
    .decl path(x: number, y: number)\n.output path\n\
    path(x, y) :- edge(x, y).\n\
    path(x, z) :- path(x, y), edge(y, z).\n";

/// A chain with periodic forward shortcuts: deep enough for a real
/// fixpoint, quadratic enough that full recomputation visibly hurts.
fn chain(nodes: i32) -> Vec<Vec<Value>> {
    let mut edges = Vec::new();
    for i in 0..nodes - 1 {
        edges.push(vec![Value::Number(i), Value::Number(i + 1)]);
        if i % 7 == 0 && i + 3 < nodes {
            edges.push(vec![Value::Number(i), Value::Number(i + 3)]);
        }
    }
    edges
}

/// `n` update rows that are new w.r.t. [`chain`]: back-edges `v -> v-5`
/// walking down from the end of the chain. A single one closes a small
/// cycle near the chain's tail (the delta wave dies out in a handful of
/// iterations); enough of them collapse the whole chain into one SCC,
/// so the 10k batch really does force a large amount of new work (and
/// repeats rows, as real update streams do).
fn batch(nodes: i32, n: usize) -> Vec<Vec<Value>> {
    let span = nodes - 8;
    (0..n)
        .map(|k| {
            let v = (nodes - 2) - (k as i32 * 13) % span;
            vec![Value::Number(v), Value::Number(v - 5)]
        })
        .collect()
}

fn inputs_with(edges: Vec<Vec<Value>>) -> InputData {
    let mut inputs = InputData::new();
    inputs.insert("edge".into(), edges);
    inputs
}

/// Best-of-reps incremental latency for one batch on a warm engine. The
/// engine is rebuilt per repetition (an insert mutates it), with the
/// rebuild outside the timed region; the timed region is exactly what a
/// `stird` client waits for, per-request tree builds included.
fn incr_time(initial: &InputData, rows: &[Vec<Value>]) -> Duration {
    let config = InterpreterConfig::optimized();
    let mut best = Duration::MAX;
    for _ in 0..reps().max(3) {
        let mut resident =
            ResidentEngine::from_source(TC, config, initial, None).expect("warm engine builds");
        let started = Instant::now();
        resident
            .insert_facts("edge", rows, None)
            .expect("update succeeds");
        best = best.min(started.elapsed());
    }
    best
}

fn main() {
    let nodes: i32 = match scale() {
        Scale::Tiny => 120,
        Scale::Small => 400,
        Scale::Medium => 800,
        Scale::Large => 1600,
    };
    let initial = inputs_with(chain(nodes));
    let engine = Engine::from_source(TC).expect("compiles");
    let config = InterpreterConfig::optimized();

    let mut rows_out: Vec<Vec<String>> = Vec::new();
    let mut single_fact_speedup = 0.0;
    for n in [1usize, 100, 10_000] {
        let rows = batch(nodes, n);
        let union = inputs_with(initial["edge"].iter().chain(rows.iter()).cloned().collect());

        let incr = incr_time(&initial, &rows);
        let full = interp_time(&engine, config, &union);
        let speedup = full.as_secs_f64() / incr.as_secs_f64();
        if n == 1 {
            single_fact_speedup = speedup;
        }

        // Total derivations of the full run, read back through the
        // profile-JSON emitters the way any profile consumer would.
        let derived: u64 = rules_from_json(&profile_json_eval(&engine, config, &union))
            .iter()
            .map(|r| r.tuples)
            .sum();

        rows_out.push(vec![
            n.to_string(),
            derived.to_string(),
            fmt_dur(incr),
            fmt_dur(full),
            fmt_ratio(speedup),
        ]);
    }

    print_table(
        &format!(
            "Incremental update latency — warm TC on a {nodes}-node chain \
             (best of {} reps; full = from-scratch over the union)",
            reps().max(3)
        ),
        &[
            "batch",
            "derived",
            "incremental",
            "full recompute",
            "speedup",
        ],
        &rows_out,
    );
    println!(
        "\nsingle-fact update speedup: {single_fact_speedup:.1}x   (serving-subsystem target: >= 10x)"
    );
    assert!(
        single_fact_speedup >= 10.0,
        "single-fact incremental update regressed below 10x vs full recompute"
    );
}
