//! **Incremental retraction latency** — the deletion dual of
//! `incr_update`.
//!
//! A warm transitive-closure database absorbs retraction batches of 1,
//! 10, and 100 edges through [`ResidentEngine::retract_facts`]'s
//! DRed-style over-delete / re-derive path; each batch is compared
//! against a from-scratch re-evaluation over the surviving facts (the
//! only option a batch engine has — and what the resident engine itself
//! does when it must fall back). The headline number is the single-fact
//! retraction speedup, which the retraction subsystem promises to keep
//! ≥ 10× on this workload; large batches doom a growing share of the
//! database and are allowed to approach break-even.
//!
//! The doomed edges walk down from the chain's tail, so a single
//! retraction kills a localized cone (the deletion wave dies out fast)
//! while the shortcut edges left in place force real re-derivation
//! work — over-deleted tuples with surviving alternative paths have to
//! be found and restored, not just dropped.

use std::time::{Duration, Instant};
use stir_bench::{fmt_dur, fmt_ratio, interp_time, print_table, reps, scale};
use stir_core::resident::ResidentEngine;
use stir_core::{Engine, InputData, InterpreterConfig, Value};
use stir_workloads::spec::Scale;

const TC: &str = "\
    .decl edge(x: number, y: number)\n.input edge\n\
    .decl path(x: number, y: number)\n.output path\n\
    path(x, y) :- edge(x, y).\n\
    path(x, z) :- path(x, y), edge(y, z).\n";

/// The same warm database as `incr_update`: a chain with periodic
/// forward shortcuts, deep enough for a real fixpoint, quadratic enough
/// that full recomputation visibly hurts.
fn chain(nodes: i32) -> Vec<Vec<Value>> {
    let mut edges = Vec::new();
    for i in 0..nodes - 1 {
        edges.push(vec![Value::Number(i), Value::Number(i + 1)]);
        if i % 7 == 0 && i + 3 < nodes {
            edges.push(vec![Value::Number(i), Value::Number(i + 3)]);
        }
    }
    edges
}

/// `n` chain edges to retract, walking down from the tail the same way
/// `incr_update` walks its insertions. Repeats are possible for large
/// `n` (a repeat retraction is a no-op, as in real update streams);
/// every row is a real edge of [`chain`], so each batch genuinely
/// shrinks the database.
fn doomed(nodes: i32, n: usize) -> Vec<Vec<Value>> {
    let span = nodes - 8;
    (0..n)
        .map(|k| {
            let v = (nodes - 2) - (k as i32 * 13) % span;
            vec![Value::Number(v), Value::Number(v + 1)]
        })
        .collect()
}

fn inputs_with(edges: Vec<Vec<Value>>) -> InputData {
    let mut inputs = InputData::new();
    inputs.insert("edge".into(), edges);
    inputs
}

/// Best-of-reps retraction latency on a warm engine. The engine is
/// rebuilt per repetition (a retraction mutates it), with the rebuild
/// outside the timed region; the timed region is exactly what a `stird`
/// client waits for on a `-fact.` line.
fn retract_time(initial: &InputData, rows: &[Vec<Value>]) -> (Duration, u64, u64) {
    let config = InterpreterConfig::optimized();
    let mut best = Duration::MAX;
    let mut retracted = 0;
    let mut rederived = 0;
    for _ in 0..reps().max(3) {
        let mut resident =
            ResidentEngine::from_source(TC, config, initial, None).expect("warm engine builds");
        let started = Instant::now();
        let report = resident
            .retract_facts("edge", rows, None)
            .expect("retraction succeeds");
        best = best.min(started.elapsed());
        retracted = report.retracted;
        rederived = report.rederived;
    }
    (best, retracted, rederived)
}

fn main() {
    let nodes: i32 = match scale() {
        Scale::Tiny => 120,
        Scale::Small => 400,
        Scale::Medium => 800,
        Scale::Large => 1600,
    };
    let initial = inputs_with(chain(nodes));
    let engine = Engine::from_source(TC).expect("compiles");
    let config = InterpreterConfig::optimized();

    let mut rows_out: Vec<Vec<String>> = Vec::new();
    let mut single_fact_speedup = 0.0;
    for n in [1usize, 10, 100] {
        let rows = doomed(nodes, n);
        let survivors = inputs_with(
            initial["edge"]
                .iter()
                .filter(|e| !rows.contains(e))
                .cloned()
                .collect(),
        );

        let (incr, retracted, rederived) = retract_time(&initial, &rows);
        let full = interp_time(&engine, config, &survivors);
        let speedup = full.as_secs_f64() / incr.as_secs_f64();
        if n == 1 {
            single_fact_speedup = speedup;
        }

        rows_out.push(vec![
            n.to_string(),
            retracted.to_string(),
            rederived.to_string(),
            fmt_dur(incr),
            fmt_dur(full),
            fmt_ratio(speedup),
        ]);
    }

    print_table(
        &format!(
            "Incremental retraction latency — warm TC on a {nodes}-node chain \
             (best of {} reps; full = from-scratch over the survivors)",
            reps().max(3)
        ),
        &[
            "batch",
            "retracted",
            "rederived",
            "incremental",
            "full recompute",
            "speedup",
        ],
        &rows_out,
    );
    println!(
        "\nsingle-fact retraction speedup: {single_fact_speedup:.1}x   (retraction-subsystem target: >= 10x)"
    );
    assert!(
        single_fact_speedup >= 10.0,
        "single-fact incremental retraction regressed below 10x vs full recompute"
    );
}
