//! **Fig. 17 / §5.2** — the `moved_label` case study: print the RAM
//! representation of the outlier rule, then install a hand-crafted
//! super-instruction for its filter chain and measure the improvement.
//!
//! Paper's reported shape: the rule's filter needs 14 dispatches per
//! inner-loop iteration; fusing it into one native call cut the rule from
//! 44 s to 4 s and the whole benchmark's slowdown from 2.7× to 1.7×.

use std::time::Duration;
use stir_bench::{fmt_dur, print_table, scale, SynthCache};
use stir_core::itree::Fusion;
use stir_core::{Engine, InterpreterConfig};
use stir_ram::stmt::{RamOp, RamStmt};
use stir_workloads::spec::Scale;

/// Hand-crafted condition for the `moved_label` filter chain — exactly
/// the conjunction the translator emits, computed natively. Register
/// layout: `t0 = sym_value(a, v)` at regs[0..2], `t1 = candidate(c, k)`
/// at regs[2..4].
fn moved_label_cond(regs: &[u32]) -> bool {
    let v = regs[1] as i32;
    let c = regs[2] as i32;
    let k = regs[3] as i32;
    let d = v.wrapping_sub(c);
    v >= c.wrapping_sub(4096)
        && v <= c.wrapping_add(4096)
        && (v & 4095) != 0
        && d != 0
        && d % 8 == 0
        && ((v ^ k) & 7) != 3
        && v.wrapping_mul(2).wrapping_sub(c) > 16
}

/// Hand-crafted condition for the second outlier, `moved_data`.
fn moved_data_cond(regs: &[u32]) -> bool {
    let v = regs[1] as i32;
    let c = regs[2] as i32;
    let k = regs[3] as i32;
    c >= v.wrapping_sub(512)
        && c <= v.wrapping_add(512)
        && (c & 15) == (v & 15)
        && k.wrapping_add(v).wrapping_sub(c) % 4 != 1
}

fn rule_time(
    engine: &Engine,
    w: &stir_workloads::Workload,
    fusions: &[Fusion],
) -> (Duration, Duration, Duration) {
    let out = engine
        .run_fused(
            InterpreterConfig::optimized().with_profile(),
            &w.inputs,
            fusions,
        )
        .expect("runs");
    let rules = out.profile.expect("profiled").by_rule();
    let total: Duration = rules.iter().map(|r| r.time).sum();
    let find = |frag: &str| {
        rules
            .iter()
            .find(|r| r.label.contains(frag))
            .map(|r| r.time)
            .unwrap_or_default()
    };
    (find("moved_label("), find("moved_data("), total)
}

fn main() {
    let scale = if scale() == Scale::Tiny {
        Scale::Tiny
    } else {
        Scale::Medium
    };
    let w = stir_workloads::ddisasm::generate("gamess-like", scale, 404);
    let engine = Engine::from_source(&w.program).expect("compiles");

    // --- Fig. 17: the RAM listing of the outlier rule -----------------
    let mut listing = None;
    engine.ram().main.walk(&mut |s| {
        if let RamStmt::Query { label, op, .. } = s {
            if label.contains("moved_label(") && listing.is_none() {
                let mut dispatches = 0usize;
                op.walk(&mut |o| {
                    if let RamOp::Filter { cond, .. } = o {
                        dispatches += cond.dispatch_count();
                    }
                });
                listing = Some((
                    stir_ram::pretty::stmt_to_string(engine.ram(), s),
                    dispatches,
                ));
            }
        }
    });
    let (text, filter_dispatches) = listing.expect("moved_label rule exists");
    println!("=== Fig. 17 — RAM representation of the moved_label analogue ===");
    println!("{text}");
    println!("filter dispatch count per inner iteration: {filter_dispatches}   (paper: 14)");

    // --- §5.2: hand-crafted super-instructions --------------------------
    // Correctness first: fused and unfused agree.
    let fusions_all = [
        Fusion {
            label_contains: "moved_label(".into(),
            cond: moved_label_cond,
        },
        Fusion {
            label_contains: "moved_data(".into(),
            cond: moved_data_cond,
        },
    ];
    let plain_out = engine
        .run(InterpreterConfig::optimized(), &w.inputs)
        .expect("runs");
    let fused_out = engine
        .run_fused(InterpreterConfig::optimized(), &w.inputs, &fusions_all)
        .expect("runs");
    assert_eq!(
        plain_out.outputs, fused_out.outputs,
        "hand-crafted super-instruction changed the fixpoint"
    );

    let (ml_plain, md_plain, total_plain) = rule_time(&engine, &w, &[]);
    let (ml_fused, md_fused, total_fused) = rule_time(&engine, &w, &fusions_all);

    // Synthesized reference for the slowdown-before/after numbers.
    let mut cache = SynthCache::new();
    let (synth_time, _) = cache.synth_eval(&w, &engine);

    print_table(
        &format!("§5.2 — hand-crafted super-instructions (scale {scale:?})"),
        &["measure", "plain STI", "with fused filters"],
        &[
            vec![
                "moved_label rule time".into(),
                fmt_dur(ml_plain),
                fmt_dur(ml_fused),
            ],
            vec![
                "moved_data rule time".into(),
                fmt_dur(md_plain),
                fmt_dur(md_fused),
            ],
            vec![
                "whole benchmark".into(),
                fmt_dur(total_plain),
                fmt_dur(total_fused),
            ],
            vec![
                "slowdown vs synth".into(),
                format!(
                    "{:.2}x",
                    total_plain.as_secs_f64() / synth_time.as_secs_f64().max(1e-9)
                ),
                format!(
                    "{:.2}x",
                    total_fused.as_secs_f64() / synth_time.as_secs_f64().max(1e-9)
                ),
            ],
        ],
    );
    println!(
        "\npaper: moved_label 44s → 4s; benchmark slowdown 2.7x → 1.7x after fusing the outliers"
    );
}
