//! **Telemetry overhead** — cost of the observability layer on a
//! transitive-closure micro-benchmark.
//!
//! Four configurations of the same evaluation:
//!
//! * `baseline`     — the plain STI, no telemetry anywhere;
//! * `attached-off` — a disabled [`Telemetry`] bundle attached. This is
//!   the configuration every production run pays, and it must be free:
//!   the interpreter only consults telemetry on its instrumented
//!   (`PROF = true`) instantiation, so with profiling off the attached
//!   bundle adds no checks to the hot path. Expected within noise of
//!   the baseline (< 1%).
//! * `profile`      — per-rule timers plus all counters;
//! * `trace`        — statement spans into an active tracer.
//!
//! The first two differing by more than noise means the zero-cost claim
//! regressed; profile/trace are allowed to cost, they only run when
//! asked for.

use std::time::{Duration, Instant};
use stir_bench::{best, fmt_dur, fmt_ratio, print_table, reps, scale};
use stir_core::{
    database::{DataMode, Database},
    itree, Engine, InputData, Interpreter, InterpreterConfig, LogLevel, Telemetry,
};
use stir_workloads::spec::Scale;

/// A chain-with-shortcuts edge set: enough fixpoint iterations to make
/// the loop machinery visible, quadratic enough to exercise inserts.
fn tc_source(nodes: usize) -> String {
    let mut src = String::from(
        ".decl edge(x: number, y: number)\n\
         .decl path(x: number, y: number)\n\
         .output path\n\
         path(x, y) :- edge(x, y).\n\
         path(x, z) :- path(x, y), edge(y, z).\n",
    );
    for i in 0..nodes - 1 {
        src.push_str(&format!("edge({}, {}).\n", i, i + 1));
        if i % 7 == 0 && i + 3 < nodes {
            src.push_str(&format!("edge({}, {}).\n", i, i + 3));
        }
    }
    src
}

/// One timed evaluation with an optional telemetry attachment; database
/// construction excluded, tree generation included (paper §5).
fn eval(engine: &Engine, config: InterpreterConfig, tel: Option<&Telemetry>) -> Duration {
    let ram = engine.ram();
    let db = Database::new(ram, DataMode::Specialized);
    db.load_inputs(ram, &InputData::new()).expect("no inputs");
    let started = Instant::now();
    let tree = itree::build(ram, &config);
    let mut interp = Interpreter::new(ram, &db, config);
    if let Some(t) = tel {
        interp.attach_telemetry(t);
    }
    interp.run(&tree).expect("evaluation succeeds");
    started.elapsed()
}

fn main() {
    let nodes = match scale() {
        Scale::Tiny => 60,
        Scale::Small => 160,
        Scale::Medium => 320,
        Scale::Large => 640,
    };
    let engine = Engine::from_source(&tc_source(nodes)).expect("compiles");

    let off = Telemetry::off();
    let tracing = Telemetry::new(true, false, LogLevel::Off);
    let base_cfg = InterpreterConfig::optimized();
    let runs: Vec<(&str, InterpreterConfig, Option<&Telemetry>)> = vec![
        ("baseline", base_cfg, None),
        ("attached-off", base_cfg, Some(&off)),
        ("profile", base_cfg.with_profile(), Some(&off)),
        ("trace", base_cfg.with_trace(), Some(&tracing)),
    ];

    // Warm-up, then interleaved repetitions (cancels drift).
    for (_, cfg, tel) in &runs {
        let _ = eval(&engine, *cfg, *tel);
    }
    let mut times: Vec<Vec<Duration>> = vec![Vec::new(); runs.len()];
    for _ in 0..reps().max(5) {
        for (i, (_, cfg, tel)) in runs.iter().enumerate() {
            times[i].push(eval(&engine, *cfg, *tel));
        }
    }
    let times: Vec<Duration> = times.into_iter().map(best).collect();

    let baseline = times[0];
    let rows: Vec<Vec<String>> = runs
        .iter()
        .zip(&times)
        .map(|((name, _, _), t)| {
            vec![
                name.to_string(),
                fmt_dur(*t),
                fmt_ratio(t.as_secs_f64() / baseline.as_secs_f64()),
            ]
        })
        .collect();
    print_table(
        &format!("Telemetry overhead — TC on a {nodes}-node chain (best of interleaved reps)"),
        &["configuration", "time", "vs baseline"],
        &rows,
    );
    let attached_pct = 100.0 * (times[1].as_secs_f64() / baseline.as_secs_f64() - 1.0);
    println!(
        "\nattached-but-off overhead: {attached_pct:+.2}%   (claim: < 1% — structurally zero, \
         the PROF=false instantiation carries no telemetry checks)"
    );
}
