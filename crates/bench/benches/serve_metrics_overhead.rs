//! **Serving metrics overhead** — cost of the request-path
//! observability added for `stird`.
//!
//! Three configurations of the same request stream against a resident
//! engine, bypassing the network so only the handler path is measured:
//!
//! * `baseline`    — the inert [`RequestCtx`]: metrics off, no slow
//!   threshold, logging off. This is what every run without
//!   `--admin-addr`/`--slow-query-ms`/`--metrics-interval` pays, and
//!   the request path must skip every clock read and histogram bump
//!   (claim: ≤ 5% over PR-5 behaviour, in practice noise).
//! * `metrics-on`  — histograms + request ids recording, as when the
//!   admin endpoint is scraped.
//! * `slow-thresh` — metrics plus a slow-request threshold high enough
//!   to never fire, i.e. the timing without the logging.
//!
//! Each request is a small point query, so the instrumentation is as
//! large a fraction of the work as serving ever sees; fixpoint-heavy
//! updates drown it further.

use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};
use stir::serve::{handle_request, RequestCtx, SessionConfig};
use stir_bench::{best, fmt_ratio, print_table, reps, scale};
use stir_core::{Engine, InputData, InterpreterConfig, ResidentEngine, ServeMetrics};
use stir_workloads::spec::Scale;

/// A short chain: queries touch little data, keeping per-request
/// overhead visible.
fn tc_source(nodes: usize) -> String {
    let mut src = String::from(
        ".decl edge(x: number, y: number)\n\
         .decl path(x: number, y: number)\n\
         .output path\n\
         path(x, y) :- edge(x, y).\n\
         path(x, z) :- path(x, y), edge(y, z).\n",
    );
    for i in 0..nodes - 1 {
        src.push_str(&format!("edge({}, {}).\n", i, i + 1));
    }
    src
}

/// Runs `requests` point queries through the serving handler and
/// returns the elapsed wall time.
fn drive(engine: &RwLock<ResidentEngine>, ctx: &RequestCtx, requests: usize) -> Duration {
    let cfg = SessionConfig::default();
    let mut sink = std::io::sink();
    let started = Instant::now();
    for _ in 0..requests {
        handle_request(engine, "?edge(1, _)", &cfg, ctx, None, &mut sink).expect("handled");
    }
    started.elapsed()
}

fn main() {
    let (nodes, requests) = match scale() {
        Scale::Tiny => (32, 500),
        Scale::Small => (32, 2_000),
        Scale::Medium => (64, 10_000),
        Scale::Large => (64, 40_000),
    };
    let engine = Engine::from_source(&tc_source(nodes)).expect("compiles");
    let resident = ResidentEngine::new(
        engine,
        InterpreterConfig::optimized(),
        &InputData::new(),
        None,
    )
    .expect("resident engine");
    let engine = RwLock::new(resident);

    let configs: Vec<(&str, RequestCtx)> = vec![
        ("baseline", RequestCtx::default()),
        (
            "metrics-on",
            RequestCtx {
                metrics: Arc::new(ServeMetrics::on()),
                ..RequestCtx::default()
            },
        ),
        (
            "slow-thresh",
            RequestCtx {
                metrics: Arc::new(ServeMetrics::on()),
                slow_ms: Some(u64::MAX),
                ..RequestCtx::default()
            },
        ),
    ];

    // Warm-up, then interleaved repetitions (cancels drift).
    for (_, ctx) in &configs {
        let _ = drive(&engine, ctx, requests / 10 + 1);
    }
    let mut times: Vec<Vec<Duration>> = vec![Vec::new(); configs.len()];
    for _ in 0..reps().max(5) {
        for (i, (_, ctx)) in configs.iter().enumerate() {
            times[i].push(drive(&engine, ctx, requests));
        }
    }
    let times: Vec<Duration> = times.into_iter().map(best).collect();

    let baseline = times[0];
    let rows: Vec<Vec<String>> = configs
        .iter()
        .zip(&times)
        .map(|((name, _), t)| {
            vec![
                name.to_string(),
                format!("{}ns", t.as_nanos() / requests as u128),
                fmt_ratio(t.as_secs_f64() / baseline.as_secs_f64()),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Serving metrics overhead — {requests} point queries (best of interleaved reps, \
             per-request time)"
        ),
        &["configuration", "per request", "vs baseline"],
        &rows,
    );
    let on_pct = 100.0 * (times[1].as_secs_f64() / baseline.as_secs_f64() - 1.0);
    println!(
        "\nmetrics-on overhead: {on_pct:+.2}%   (claim: a clock read and a few relaxed \
         atomics per request; without any observability flag the baseline path is taken \
         and stays within 5% of the pre-metrics server)"
    );
}
