//! **Fig. 19** — impact of super-instructions: the STI with
//! `Constant`/`TupleElement` children folded into their parent
//! instructions vs the same interpreter dispatching every child node.
//!
//! Paper's reported shape: 13.75% average speedup, from eliminating
//! 22.01% of dispatches on average.

use stir_bench::{fmt_dur, print_table, scale};
use stir_core::{Engine, InterpreterConfig};
use stir_workloads::{all_suites, instances};

fn main() {
    let scale = scale();
    let without_cfg = InterpreterConfig {
        super_instructions: false,
        ..InterpreterConfig::optimized()
    };
    let mut rows = Vec::new();
    let mut rels = Vec::new();
    let mut dispatch_drops = Vec::new();
    for suite in all_suites() {
        for w in instances(suite, scale) {
            let engine = Engine::from_source(&w.program).expect("compiles");
            let times = stir_bench::interp_times_interleaved(
                &engine,
                &[without_cfg, InterpreterConfig::optimized()],
                &w.inputs,
            );
            let (without, with) = (times[0], times[1]);
            let rel = with.as_secs_f64() / without.as_secs_f64().max(1e-9);
            rels.push(rel);

            // Dispatch counts (profiled, untimed runs).
            let (_, p_with, _) = stir_bench::interp_eval(
                &engine,
                InterpreterConfig::optimized().with_profile(),
                &w.inputs,
            );
            let (_, p_without, _) =
                stir_bench::interp_eval(&engine, without_cfg.with_profile(), &w.inputs);
            let d_with = p_with.expect("profiled").dispatches as f64;
            let d_without = p_without.expect("profiled").dispatches as f64;
            let drop = 1.0 - d_with / d_without.max(1.0);
            dispatch_drops.push(drop);

            rows.push(vec![
                w.name.clone(),
                fmt_dur(without),
                fmt_dur(with),
                format!("{rel:.3}"),
                format!("-{:.1}%", 100.0 * drop),
            ]);
        }
    }
    print_table(
        &format!("Fig. 19 — super-instructions (scale {scale:?}; without = 1.0)"),
        &[
            "benchmark",
            "without",
            "with",
            "relative runtime",
            "dispatches",
        ],
        &rows,
    );
    let avg = rels.iter().sum::<f64>() / rels.len() as f64;
    let avg_drop = dispatch_drops.iter().sum::<f64>() / dispatch_drops.len() as f64;
    println!(
        "\naverage speedup {:.1}%, average dispatch reduction {:.1}%   (paper: 13.75% speedup from 22.01% fewer dispatches)",
        100.0 * (1.0 - avg),
        100.0 * avg_drop
    );
}
