//! **Fig. 15** — execution-time slowdown of the STI relative to the
//! synthesized (compiled) engine, per benchmark instance, plus the legacy
//! interpreter's slowdown (§5.1).
//!
//! Paper's reported shape: STI 1.32–5.67× slower than compiled code
//! across the real-world suites (one short-running outlier higher);
//! legacy interpreter roughly an order of magnitude worse (9.8–43×,
//! with timeouts on the largest inputs).

use stir_bench::{fmt_dur, fmt_ratio, interp_time, print_table, scale, SynthCache};
use stir_core::{Engine, InterpreterConfig};
use stir_workloads::{all_suites, instances};

fn main() {
    let scale = scale();
    let mut cache = SynthCache::new();
    let mut rows = Vec::new();
    let mut sti_ratios = Vec::new();
    let mut legacy_ratios = Vec::new();

    for suite in all_suites() {
        for w in instances(suite, scale) {
            let engine = Engine::from_source(&w.program).expect("workload compiles");
            let (synth_time, synth_outcome) = cache.synth_eval(&w, &engine);
            let sti = interp_time(&engine, InterpreterConfig::optimized(), &w.inputs);

            // Sanity: both engines computed the same fixpoint size.
            let (_, _, interp_size) =
                stir_bench::interp_eval(&engine, InterpreterConfig::optimized(), &w.inputs);
            let synth_size: usize = synth_outcome.outputs.values().map(Vec::len).sum();
            assert_eq!(interp_size, synth_size, "{}: engines disagree", w.name);

            // The legacy interpreter can be orders of magnitude slower;
            // skip it where it would dominate harness time (the paper's
            // timeouts, in miniature).
            let legacy = if sti.as_secs_f64() < 2.0 {
                Some(interp_time(&engine, InterpreterConfig::legacy(), &w.inputs))
            } else {
                None
            };

            let synth_s = synth_time.as_secs_f64().max(1e-9);
            let sti_ratio = sti.as_secs_f64() / synth_s;
            sti_ratios.push(sti_ratio);
            let legacy_cell = match legacy {
                Some(l) => {
                    let r = l.as_secs_f64() / synth_s;
                    legacy_ratios.push(r);
                    fmt_ratio(r)
                }
                None => "(skipped)".to_owned(),
            };
            rows.push(vec![
                w.name.clone(),
                fmt_dur(synth_time),
                fmt_dur(sti),
                fmt_ratio(sti_ratio),
                legacy_cell,
            ]);
        }
    }

    print_table(
        &format!("Fig. 15 — slowdown vs synthesized code (scale {scale:?})"),
        &["benchmark", "synth", "STI", "STI/synth", "legacy/synth"],
        &rows,
    );

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let max = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);
    println!(
        "\nSTI slowdown: min {:.2}x  avg {:.2}x  max {:.2}x   (paper: 1.32–5.67x)",
        min(&sti_ratios),
        avg(&sti_ratios),
        max(&sti_ratios)
    );
    if !legacy_ratios.is_empty() {
        println!(
            "legacy slowdown: min {:.2}x  avg {:.2}x  max {:.2}x   (paper: ~9.8–43x)",
            min(&legacy_ratios),
            avg(&legacy_ratios),
            max(&legacy_ratios)
        );
    }
}
