//! **Fig. 16** — case study of the interpreter/synthesizer performance
//! gap: a histogram (30 bins) of per-rule slowdown ratios in one DDisasm
//! benchmark, with each bin's contribution to the total gap.
//!
//! Paper's reported shape: most rules sit below 2.5× and contribute
//! ~18% of the gap; a handful of outlier rules (10–32× — the
//! `moved_label` family) contribute ~73% of it.

use std::collections::HashMap;
use std::time::Duration;
use stir_bench::{print_table, rules_from_json, scale, SynthCache};
use stir_core::{Engine, InterpreterConfig, Json};
use stir_workloads::spec::Scale;

fn main() {
    let scale = if scale() == Scale::Tiny {
        Scale::Tiny
    } else {
        // The case study wants enough work for stable per-rule times.
        Scale::Medium
    };
    let w = stir_workloads::ddisasm::generate("gamess-like", scale, 404);
    let engine = Engine::from_source(&w.program).expect("compiles");

    // Interpreter per-rule times, via the machine-readable profile the
    // CLI emits (render → parse keeps the emitters load-bearing).
    let doc = stir_bench::profile_json_eval(&engine, InterpreterConfig::optimized(), &w.inputs);
    let doc = Json::parse(&doc.render()).expect("profile JSON round-trips");
    let interp_rules = rules_from_json(&doc);

    // Synthesizer per-rule times (its binary profiles every query).
    let mut cache = SynthCache::new();
    let (_, outcome) = cache.synth_eval(&w, &engine);
    let labels = stir_synth::query_labels(engine.ram());
    let mut synth_rules: HashMap<String, Duration> = HashMap::new();
    for (label, (time, _execs)) in labels.iter().zip(&outcome.profile) {
        let base = match label.find(" [delta #") {
            Some(i) => &label[..i],
            None => label.as_str(),
        };
        *synth_rules.entry(base.to_owned()).or_default() += *time;
    }

    // Per-rule slowdowns; discard rules too fast to measure (the paper
    // discards < 0.01 s — scale-relative here).
    let total_interp: Duration = interp_rules.iter().map(|r| r.time).sum();
    let threshold = (total_interp / 1000).max(Duration::from_micros(20));
    let mut gaps = Vec::new();
    for rule in &interp_rules {
        if rule.time < threshold {
            continue;
        }
        let synth = synth_rules
            .get(&rule.label)
            .copied()
            .unwrap_or(Duration::ZERO)
            .max(Duration::from_nanos(1));
        let slowdown = rule.time.as_secs_f64() / synth.as_secs_f64();
        let gap = rule.time.saturating_sub(synth);
        gaps.push((rule.label.clone(), slowdown, gap));
    }
    let total_gap: f64 = gaps.iter().map(|(_, _, g)| g.as_secs_f64()).sum();

    // 30-bin histogram over the slowdown range.
    let max_slowdown = gaps.iter().map(|(_, s, _)| *s).fold(1.0f64, f64::max);
    const BINS: usize = 30;
    let width = max_slowdown / BINS as f64;
    let mut count = [0usize; BINS];
    let mut contrib = [0.0f64; BINS];
    for (_, s, g) in &gaps {
        let b = ((s / width) as usize).min(BINS - 1);
        count[b] += 1;
        contrib[b] += g.as_secs_f64();
    }
    let rows: Vec<Vec<String>> = (0..BINS)
        .filter(|&b| count[b] > 0)
        .map(|b| {
            vec![
                format!("{:.1}–{:.1}x", b as f64 * width, (b + 1) as f64 * width),
                count[b].to_string(),
                format!("{:.1}%", 100.0 * contrib[b] / total_gap.max(1e-12)),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig. 16 — per-rule slowdown histogram, ddisasm/gamess-like (scale {scale:?}, {} rules measured)",
            gaps.len()
        ),
        &["slowdown bin", "# rules", "share of total gap"],
        &rows,
    );

    // The paper's headline: outliers own the gap.
    let mut sorted = gaps.clone();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nworst rules by slowdown:");
    for (label, s, g) in sorted.iter().take(4) {
        println!(
            "  {s:>6.1}x  gap {:>9.3?}  {}",
            g,
            label.chars().take(70).collect::<String>()
        );
    }
    let outlier_share: f64 = sorted
        .iter()
        .filter(|(_, s, _)| *s >= 10.0)
        .map(|(_, _, g)| g.as_secs_f64())
        .sum::<f64>()
        / total_gap.max(1e-12);
    println!(
        "rules with slowdown >= 10x contribute {:.1}% of the gap   (paper: ~73%)",
        100.0 * outlier_share
    );
}
