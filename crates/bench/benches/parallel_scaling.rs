//! **Parallel fixpoint scaling** — the worker-parallel evaluation core.
//!
//! A warm transitive closure and one generated `vpc` reachability
//! instance are evaluated at `jobs = 1 / 2 / 4` under the optimized STI
//! configuration; the table reports best-of-reps evaluation time per
//! worker count and the resulting speedup over sequential evaluation.
//!
//! The `jobs = 1` column runs the unchanged sequential path (the
//! parallel driver is bypassed entirely), so the 1-vs-N delta is exactly
//! the cost/benefit of partitioned scans + per-worker insert sinks. On a
//! single-core host the speedup column degenerates into a measurement of
//! parallel overhead — the harness prints the core count it saw so the
//! committed numbers can be read in context.

use stir_bench::{fmt_dur, fmt_ratio, interp_times_interleaved, print_table, reps, scale};
use stir_core::{Engine, InputData, InterpreterConfig, Value};
use stir_workloads::spec::{instances, Scale, Suite};

const TC: &str = "\
    .decl edge(x: number, y: number)\n.input edge\n\
    .decl path(x: number, y: number)\n.output path\n\
    path(x, y) :- edge(x, y).\n\
    path(x, z) :- path(x, y), edge(y, z).\n";

/// A chain with periodic forward shortcuts (same shape as the
/// incremental-update bench): deep fixpoint, quadratic closure.
fn chain(nodes: i32) -> Vec<Vec<Value>> {
    let mut edges = Vec::new();
    for i in 0..nodes - 1 {
        edges.push(vec![Value::Number(i), Value::Number(i + 1)]);
        if i % 7 == 0 && i + 3 < nodes {
            edges.push(vec![Value::Number(i), Value::Number(i + 3)]);
        }
    }
    edges
}

fn main() {
    let nodes: i32 = match scale() {
        Scale::Tiny => 120,
        Scale::Small => 400,
        Scale::Medium => 800,
        Scale::Large => 1600,
    };
    let mut tc_inputs = InputData::new();
    tc_inputs.insert("edge".into(), chain(nodes));
    let tc_engine = Engine::from_source(TC).expect("TC compiles");

    let vpc = instances(Suite::Vpc, scale())
        .into_iter()
        .next()
        .expect("vpc instance");
    let vpc_engine = Engine::from_source(&vpc.program).expect("vpc compiles");

    let jobs = [1usize, 2, 4];
    let configs: Vec<InterpreterConfig> = jobs
        .iter()
        .map(|&j| InterpreterConfig::optimized().with_jobs(j))
        .collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, engine, inputs) in [
        (format!("tc/chain-{nodes}"), &tc_engine, &tc_inputs),
        (vpc.name.clone(), &vpc_engine, &vpc.inputs),
    ] {
        let times = interp_times_interleaved(engine, &configs, inputs);
        let base = times[0].as_secs_f64();
        let mut row = vec![name];
        for t in &times {
            row.push(fmt_dur(*t));
        }
        for t in &times[1..] {
            row.push(fmt_ratio(base / t.as_secs_f64()));
        }
        rows.push(row);
    }

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    print_table(
        &format!(
            "Parallel fixpoint scaling — optimized STI, best of {} reps, {cores} core(s) available",
            reps()
        ),
        &[
            "workload",
            "jobs=1",
            "jobs=2",
            "jobs=4",
            "speedup@2",
            "speedup@4",
        ],
        &rows,
    );
    if cores < 4 {
        println!(
            "\nnote: only {cores} core(s) available — speedup columns measure \
             partition/merge overhead, not parallel gain"
        );
    }
}
