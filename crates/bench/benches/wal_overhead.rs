//! **WAL overhead** — what durability costs per acknowledged insert.
//!
//! A warm transitive-closure database absorbs a stream of single-edge
//! insert batches through the resident engine, once per durability
//! level: `off` (no data dir at all — the incremental baseline),
//! `none` (WAL appended, OS-buffered), `batch` (append + flush, the
//! default), and `always` (append + flush + fsync). The table reports
//! the median per-insert latency and the overhead ratio against the
//! non-durable baseline, plus the WAL bytes each accepted batch costs
//! on disk. This backs the EXPERIMENTS.md E13 claim that `batch`
//! durability is effectively free next to evaluation while `always` is
//! dominated by the fsync.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use stir_bench::{fmt_dur, fmt_ratio, median, print_table, reps, scale};
use stir_core::resident::{PersistOptions, ResidentEngine};
use stir_core::wal::Durability;
use stir_core::{Engine, InputData, InterpreterConfig, Value};
use stir_workloads::spec::Scale;

const TC: &str = "\
    .decl edge(x: number, y: number)\n.input edge\n\
    .decl path(x: number, y: number)\n.output path\n\
    path(x, y) :- edge(x, y).\n\
    path(x, z) :- path(x, y), edge(y, z).\n";

fn chain(nodes: i32) -> Vec<Vec<Value>> {
    (0..nodes - 1)
        .map(|i| vec![Value::Number(i), Value::Number(i + 1)])
        .collect()
}

fn inputs_with(edges: Vec<Vec<Value>>) -> InputData {
    let mut inputs = InputData::new();
    inputs.insert("edge".into(), edges);
    inputs
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("stir-wal-bench")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    dir
}

/// Median per-insert latency over `updates` single-edge batches on a
/// warm engine, opened with the given durability (or fully non-durable
/// when `durability` is `None`). Returns the latency and the WAL bytes
/// the whole stream left on disk.
fn run_stream(
    initial: &InputData,
    updates: usize,
    nodes: i32,
    durability: Option<Durability>,
) -> (Duration, u64) {
    let config = InterpreterConfig::optimized();
    let engine = Engine::from_source(TC).expect("compiles");
    let (mut resident, dir) = match durability {
        Some(d) => {
            let dir = fresh_dir(d.as_str());
            let opts = PersistOptions {
                durability: d,
                snapshot_interval: None,
            };
            let (r, _) = ResidentEngine::open(engine, config, initial, &dir, opts, None)
                .expect("durable engine opens");
            (r, Some(dir))
        }
        None => (
            ResidentEngine::new(engine, config, initial, None).expect("warm engine builds"),
            None,
        ),
    };
    let mut times = Vec::with_capacity(updates);
    for k in 0..updates {
        // A fresh back-edge each time: every batch is genuinely new,
        // and the delta wave stays small, so the WAL cost is visible.
        let v = (nodes - 2) - (k as i32 * 13) % (nodes - 8);
        let rows = vec![vec![Value::Number(v), Value::Number(v - 5)]];
        let started = Instant::now();
        resident
            .insert_facts("edge", &rows, None)
            .expect("update succeeds");
        times.push(started.elapsed());
    }
    let wal_bytes = dir
        .as_ref()
        .map(|d| {
            std::fs::metadata(d.join(stir_core::resident::WAL_FILE))
                .map(|m| m.len())
                .unwrap_or(0)
        })
        .unwrap_or(0);
    if let Some(d) = dir {
        let _ = std::fs::remove_dir_all(d);
    }
    (median(times), wal_bytes)
}

fn main() {
    let nodes: i32 = match scale() {
        Scale::Tiny => 120,
        Scale::Small => 400,
        Scale::Medium => 800,
        Scale::Large => 1600,
    };
    let updates = (reps() * 20).clamp(40, 400);
    let initial = inputs_with(chain(nodes));

    let levels: [(&str, Option<Durability>); 4] = [
        ("off", None),
        ("none", Some(Durability::None)),
        ("batch", Some(Durability::Batch)),
        ("always", Some(Durability::Always)),
    ];

    let (baseline, _) = run_stream(&initial, updates, nodes, None);
    let mut rows_out = Vec::new();
    let mut batch_overhead = 0.0;
    for (name, durability) in levels {
        let (lat, wal_bytes) = run_stream(&initial, updates, nodes, durability);
        let overhead = lat.as_secs_f64() / baseline.as_secs_f64();
        if name == "batch" {
            batch_overhead = overhead;
        }
        let per_batch = if durability.is_some() {
            format!("{}", wal_bytes / updates as u64)
        } else {
            "-".into()
        };
        rows_out.push(vec![
            name.to_string(),
            fmt_dur(lat),
            fmt_ratio(overhead),
            per_batch,
        ]);
    }

    print_table(
        &format!(
            "WAL overhead — median single-edge insert latency on a warm \
             {nodes}-node TC chain ({updates} updates per level; \
             overhead vs the non-durable engine)"
        ),
        &["durability", "insert", "overhead", "wal B/batch"],
        &rows_out,
    );
    println!("\nbatch-durability overhead: {batch_overhead:.2}x vs non-durable");
    assert!(
        batch_overhead < 10.0,
        "default (batch) durability should not be 10x the non-durable path"
    );
}
