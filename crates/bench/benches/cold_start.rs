//! **Cold start** — time-to-first-query for the restart paths.
//!
//! A warm transitive-closure database (chain TC, so the derived `path`
//! relation is quadratic in the chain length) restarts four ways:
//!
//! * `fixpoint`   — no data directory: the initial evaluation runs from
//!   scratch (the price every stateless start pays);
//! * `v1 restore` — a mem-backed engine materializes the v1 snapshot
//!   back into its in-memory B-trees (no fixpoint, but O(tuples) index
//!   rebuild);
//! * `v2 mmap`    — a disk-backed engine maps the v2 run file and serves
//!   queries off the paged base runs (no fixpoint, no rebuild);
//! * `v2 +wal`    — same, plus a 32-batch WAL suffix replayed through
//!   the incremental path.
//!
//! This backs EXPERIMENTS.md E17: mapping the snapshot must be at least
//! 10x faster than re-running the fixpoint (the gap grows with scale —
//! the v2 open is O(directory), not O(tuples)).

use std::path::PathBuf;
use std::time::{Duration, Instant};
use stir_bench::{best, fmt_dur, fmt_ratio, print_table, reps, scale};
use stir_core::resident::{PersistOptions, ResidentEngine};
use stir_core::wal::Durability;
use stir_core::{Engine, InputData, InterpreterConfig, StorageBackend, Value};
use stir_workloads::spec::Scale;

const TC: &str = "\
    .decl edge(x: number, y: number)\n.input edge\n\
    .decl path(x: number, y: number)\n.output path\n\
    path(x, y) :- edge(x, y).\n\
    path(x, z) :- path(x, y), edge(y, z).\n";

fn inputs(nodes: i32) -> InputData {
    let edges = (0..nodes - 1)
        .map(|i| vec![Value::Number(i), Value::Number(i + 1)])
        .collect();
    let mut inputs = InputData::new();
    inputs.insert("edge".into(), edges);
    inputs
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("stir-cold-start-bench")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    dir
}

fn opts() -> PersistOptions {
    PersistOptions {
        durability: Durability::Batch,
        snapshot_interval: None,
    }
}

/// Builds a data directory holding a snapshot of the warm database
/// (plus `wal_batches` un-snapshotted single-edge inserts), written by
/// an engine on the given backend.
fn seed_dir(tag: &str, storage: StorageBackend, initial: &InputData, wal_batches: i32) -> PathBuf {
    let dir = fresh_dir(tag);
    let engine = Engine::from_source(TC).expect("compiles");
    let config = InterpreterConfig::optimized().with_storage(storage);
    let (mut r, _) =
        ResidentEngine::open(engine, config, initial, &dir, opts(), None).expect("opens");
    r.snapshot(None).expect("snapshots");
    for k in 0..wal_batches {
        let rows = vec![vec![Value::Number(-1 - k), Value::Number(-100 - k)]];
        r.insert_facts("edge", &rows, None).expect("wal batch");
    }
    dir
}

/// Best time over [`reps`] runs for one restart variant; engine
/// compilation (shared by every variant) stays outside the timer.
/// Returns the time and the restarted database's `path` count, so the
/// caller can check every variant recovered the same state.
fn measure(
    storage: StorageBackend,
    initial: &InputData,
    dir: Option<&PathBuf>,
    expect_replay: u64,
) -> (Duration, usize) {
    let config = InterpreterConfig::optimized().with_storage(storage);
    let mut times = Vec::new();
    let mut size = 0;
    for rep in 0..reps() + 1 {
        let engine = Engine::from_source(TC).expect("compiles");
        let started = Instant::now();
        let r = match dir {
            Some(dir) => {
                let (r, rec) = ResidentEngine::open(engine, config, initial, dir, opts(), None)
                    .expect("reopens");
                assert!(rec.snapshot_loaded, "restart must load the snapshot");
                assert_eq!(rec.replayed_batches, expect_replay, "wal suffix replays");
                r
            }
            None => ResidentEngine::new(engine, config, initial, None).expect("evaluates"),
        };
        let elapsed = started.elapsed();
        size = r.outputs()["path"].len();
        if rep > 0 {
            // First run is the untimed warm-up (page cache, allocator).
            times.push(elapsed);
        }
    }
    (best(times), size)
}

fn main() {
    let nodes: i32 = match scale() {
        Scale::Tiny => 120,
        Scale::Small => 400,
        Scale::Medium => 800,
        Scale::Large => 1600,
    };
    let wal_batches = 32;
    let initial = inputs(nodes);

    let dir_mem = seed_dir("v1", StorageBackend::Mem, &initial, 0);
    let dir_disk = seed_dir("v2", StorageBackend::Disk, &initial, 0);
    let dir_wal = seed_dir("v2-wal", StorageBackend::Disk, &initial, wal_batches);

    let (t_fix, n_fix) = measure(StorageBackend::Mem, &initial, None, 0);
    let (t_v1, n_v1) = measure(StorageBackend::Mem, &initial, Some(&dir_mem), 0);
    let (t_v2, n_v2) = measure(StorageBackend::Disk, &initial, Some(&dir_disk), 0);
    let (t_wal, n_wal) = measure(
        StorageBackend::Disk,
        &initial,
        Some(&dir_wal),
        wal_batches as u64,
    );
    assert_eq!(n_v1, n_fix, "v1 restore must recover the full database");
    assert_eq!(n_v2, n_fix, "v2 mmap must recover the full database");
    assert!(n_wal >= n_fix, "wal replay must recover at least the base");

    let speedup = |t: Duration| t_fix.as_secs_f64() / t.as_secs_f64();
    let rows: Vec<Vec<String>> = [
        ("fixpoint", t_fix),
        ("v1 restore", t_v1),
        ("v2 mmap", t_v2),
        ("v2 +wal32", t_wal),
    ]
    .into_iter()
    .map(|(name, t)| vec![name.to_string(), fmt_dur(t), fmt_ratio(speedup(t))])
    .collect();
    print_table(
        &format!(
            "Cold start — time to a query-ready engine on a warm \
             {nodes}-node TC chain ({n_fix} path tuples; speedup vs \
             from-scratch fixpoint)"
        ),
        &["path", "open", "speedup"],
        &rows,
    );
    let mmap_speedup = speedup(t_v2);
    println!("\nv2 mmap cold start: {mmap_speedup:.1}x faster than the fixpoint");
    assert!(
        mmap_speedup >= 10.0,
        "mapping the v2 snapshot must be at least 10x faster than \
         re-evaluating (got {mmap_speedup:.1}x)"
    );

    for d in [dir_mem, dir_disk, dir_wal] {
        let _ = std::fs::remove_dir_all(d);
    }
}
