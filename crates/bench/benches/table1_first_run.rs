//! **Table 1** — the "first run" ratio: how many times the interpreter
//! can finish a benchmark before the synthesizer completes its first
//! compile-plus-run. Ratios above 1 favour the interpreter.
//!
//! Paper's reported shape: VPC mostly < 1 (tiny program, huge inputs →
//! compile time amortizes), DDisasm 90% ≥ 1 with a large average, DOOP
//! uniformly ≥ 1; overall average 6.46.

use stir_bench::{fmt_dur, interp_time, print_table, scale, SynthCache};
use stir_core::{Engine, InterpreterConfig};
use stir_workloads::{all_suites, instances};

fn main() {
    let scale = scale();
    let mut cache = SynthCache::new();
    let mut rows = Vec::new();
    let mut all_ratios = Vec::new();
    let mut summary = Vec::new();

    for suite in all_suites() {
        let mut ratios = Vec::new();
        for w in instances(suite, scale) {
            let engine = Engine::from_source(&w.program).expect("workload compiles");
            let compile_time = cache.compile_time(suite.name(), &engine);
            let (synth_time, _) = cache.synth_eval(&w, &engine);
            let interp = interp_time(&engine, InterpreterConfig::optimized(), &w.inputs);
            let first_run = compile_time + synth_time;
            let ratio = first_run.as_secs_f64() / interp.as_secs_f64().max(1e-9);
            ratios.push(ratio);
            all_ratios.push(ratio);
            rows.push(vec![
                w.name.clone(),
                fmt_dur(compile_time),
                fmt_dur(synth_time),
                fmt_dur(interp),
                format!("{ratio:.2}"),
            ]);
        }
        let ge1 = 100.0 * ratios.iter().filter(|&&r| r >= 1.0).count() as f64 / ratios.len() as f64;
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().copied().fold(0.0f64, f64::max);
        let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
        summary.push(vec![
            suite.name().to_owned(),
            format!("{ge1:.1}%"),
            format!("{avg:.2}"),
            format!("{max:.2}"),
            format!("{min:.2}"),
        ]);
    }

    print_table(
        &format!("Table 1 (detail) — first-run accounting (scale {scale:?})"),
        &["benchmark", "compile", "synth run", "interp run", "ratio"],
        &rows,
    );
    print_table(
        "Table 1 — runtime ratio with compilation included (higher favours the interpreter)",
        &["suite", "# ratios >= 1", "avg", "max", "min"],
        &summary,
    );
    let overall = all_ratios.iter().sum::<f64>() / all_ratios.len() as f64;
    println!(
        "\noverall average ratio: {overall:.2}   (paper: 6.46; VPC < 1 on the largest inputs)"
    );
    println!(
        "note: ratios shrink as STIR_BENCH_SCALE grows — compile time is constant while run time scales,\n\
         which is exactly the paper's observation about VPC's large inputs."
    );
}
