//! **Disk scan overhead** — what the paged base run costs per operation.
//!
//! One sorted relation is served three ways: from the specialized
//! in-memory B-tree, from a disk-backed index whose page cache is large
//! enough to go resident (`disk warm`), and from one whose budget only
//! fits a handful of pages (`disk cold`, every scan faults and evicts).
//! The table reports full-scan, point-probe, and range-scan times with
//! the overhead ratio against the in-memory B-tree.
//!
//! This backs the EXPERIMENTS.md E17 claim that the de-specialized
//! disk path trades a bounded per-operation overhead for instant cold
//! starts and bounded memory — it is not free, and this bench keeps the
//! price visible.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use stir_bench::{best, fmt_dur, fmt_ratio, print_table, reps, scale};
use stir_der::adapter::BTreeIndex;
use stir_der::disk::{page_tuples, write_run, BaseRun, DiskIndex, RunFile};
use stir_der::iter::VecTupleIter;
use stir_der::{IndexAdapter, Order, RamDomain};
use stir_workloads::spec::Scale;

fn tmpfile(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stir-scan-bench-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{tag}.run"))
}

/// Writes `tuples` (already sorted and deduped, stored order) as a run
/// file and serves it through a [`DiskIndex`] with the given cache
/// budget.
fn disk_index(tag: &str, order: &Order, tuples: &[Vec<RamDomain>], budget: usize) -> DiskIndex {
    let arity = order.arity();
    let per_page = page_tuples(arity);
    let mut flat = Vec::with_capacity(tuples.len() * arity);
    for t in tuples {
        flat.extend_from_slice(t);
    }
    let mut it = VecTupleIter::new(flat, arity);
    let mut buf = Vec::new();
    let fence = write_run(
        &mut buf,
        &mut it,
        tuples.len() as u64,
        arity,
        per_page,
        None,
    )
    .expect("run serializes");
    let path = tmpfile(tag);
    std::fs::write(&path, &buf).expect("run file");
    let file = RunFile::open(&path, budget).expect("run opens");
    let base = BaseRun::new(file, 8, tuples.len(), arity, per_page, fence);
    DiskIndex::with_base(order.clone(), false, base)
}

/// Best time over [`reps`] runs of `op`, after one warm-up run.
fn time<R>(mut op: impl FnMut() -> R) -> (Duration, R) {
    let mut out = op();
    let mut times = Vec::new();
    for _ in 0..reps() {
        let started = Instant::now();
        out = op();
        times.push(started.elapsed());
    }
    (best(times), out)
}

fn main() {
    let n: u32 = match scale() {
        Scale::Tiny => 20_000,
        Scale::Small => 100_000,
        Scale::Medium => 400_000,
        Scale::Large => 1_000_000,
    };
    let order = Order::new(vec![0, 1]);

    // A dense sorted pair relation; stored order == source order.
    let tuples: Vec<Vec<RamDomain>> = (0..n).map(|i| vec![i / 8, i % 971]).collect();
    let mut sorted = tuples.clone();
    sorted.sort_unstable();
    sorted.dedup();

    let mut mem = BTreeIndex::<2>::new(order.clone());
    for t in &sorted {
        mem.insert(t);
    }
    // Warm: everything fits. Cold: ~8 pages resident at a time.
    let warm = disk_index("warm", &order, &sorted, 1 << 30);
    let cold_budget = 8 * page_tuples(2) * 2 * 4;
    let cold = disk_index("cold", &order, &sorted, cold_budget);

    let probes: Vec<[RamDomain; 2]> = (0..2048u32)
        .map(|k| {
            let i = k.wrapping_mul(48271) % n;
            [i / 8, i % 971]
        })
        .collect();
    let ranges: Vec<([RamDomain; 2], [RamDomain; 2])> = (0..64u32)
        .map(|k| {
            let lo = (k * 1543) % (n / 8);
            ([lo, 0], [lo + 40, RamDomain::MAX])
        })
        .collect();

    let scan_of = |idx: &dyn IndexAdapter| {
        let mut count = 0usize;
        let mut it = idx.scan();
        while it.next_tuple().is_some() {
            count += 1;
        }
        count
    };
    let probe_of = |idx: &dyn IndexAdapter| probes.iter().filter(|p| idx.contains(*p)).count();
    let range_of = |idx: &dyn IndexAdapter| {
        let mut count = 0usize;
        for (lo, hi) in &ranges {
            let mut it = idx.range(lo, hi);
            while it.next_tuple().is_some() {
                count += 1;
            }
        }
        count
    };

    let backends: [(&str, &dyn IndexAdapter); 3] = [
        ("mem btree", &mem),
        ("disk warm", &warm),
        ("disk cold", &cold),
    ];
    let mut rows = Vec::new();
    let mut baselines: Option<(Duration, Duration, Duration)> = None;
    let mut counts: Option<(usize, usize, usize)> = None;
    let mut warm_scan_overhead = 1.0;
    for (name, idx) in backends {
        let (t_scan, n_scan) = time(|| scan_of(idx));
        let (t_probe, n_probe) = time(|| probe_of(idx));
        let (t_range, n_range) = time(|| range_of(idx));
        match counts {
            None => counts = Some((n_scan, n_probe, n_range)),
            Some(expect) => assert_eq!(
                (n_scan, n_probe, n_range),
                expect,
                "{name}: backends must agree on every operation"
            ),
        }
        let (b_scan, b_probe, b_range) = *baselines.get_or_insert((t_scan, t_probe, t_range));
        let ratio = |t: Duration, b: Duration| t.as_secs_f64() / b.as_secs_f64();
        if name == "disk warm" {
            warm_scan_overhead = ratio(t_scan, b_scan);
        }
        rows.push(vec![
            name.to_string(),
            fmt_dur(t_scan),
            fmt_ratio(ratio(t_scan, b_scan)),
            fmt_dur(t_probe),
            fmt_ratio(ratio(t_probe, b_probe)),
            fmt_dur(t_range),
            fmt_ratio(ratio(t_range, b_range)),
        ]);
    }
    let (n_scan, _, _) = counts.expect("measured");
    print_table(
        &format!(
            "Disk scan overhead — {n_scan} tuples, full scan / 2048 \
             probes / 64 range scans (overhead vs the in-memory B-tree)"
        ),
        &["backend", "scan", "x", "probe", "x", "range", "x"],
        &rows,
    );
    println!("\nwarm disk full-scan overhead: {warm_scan_overhead:.2}x vs in-memory B-tree");
    assert!(
        warm_scan_overhead < 100.0,
        "a resident page cache must keep scans within two orders of \
         magnitude of the specialized B-tree (got {warm_scan_overhead:.2}x)"
    );
}
