//! **Provenance overhead** — cost of annotated evaluation on a
//! transitive-closure micro-benchmark (mirrors `telemetry_overhead`).
//!
//! Three configurations of the same evaluation:
//!
//! * `baseline` — the plain STI, provenance compiled in but off. The
//!   flag is a runtime branch on the cold insert path (not a const
//!   generic), so with provenance off the evaluation must be within
//!   noise of a build without the subsystem (< 1%).
//! * `provenance` — annotated evaluation: every fresh tuple records its
//!   (rule, height) pair in the relation's side annotation index.
//! * `provenance+explain` — annotated evaluation plus one `.explain` of
//!   the longest-path tuple, pricing proof reconstruction itself.
//!
//! The interesting number is `baseline` vs a historical run: provenance
//! off must be free. The `provenance` ratio is the documented price of
//! turning annotations on (one extra B-tree insert per fresh tuple).

use std::time::{Duration, Instant};
use stir_bench::{best, fmt_dur, fmt_ratio, print_table, reps, scale};
use stir_core::{
    database::{DataMode, Database},
    itree, prov, Engine, ExplainLimits, InputData, Interpreter, InterpreterConfig,
};
use stir_workloads::spec::Scale;

/// Same chain-with-shortcuts edge set as `telemetry_overhead`.
fn tc_source(nodes: usize) -> String {
    let mut src = String::from(
        ".decl edge(x: number, y: number)\n\
         .decl path(x: number, y: number)\n\
         .output path\n\
         path(x, y) :- edge(x, y).\n\
         path(x, z) :- path(x, y), edge(y, z).\n",
    );
    for i in 0..nodes - 1 {
        src.push_str(&format!("edge({}, {}).\n", i, i + 1));
        if i % 7 == 0 && i + 3 < nodes {
            src.push_str(&format!("edge({}, {}).\n", i, i + 3));
        }
    }
    src
}

/// One timed evaluation; database construction excluded, tree generation
/// included (paper §5). With `explain`, one proof reconstruction of the
/// full-chain tuple rides on top.
fn eval(engine: &Engine, config: InterpreterConfig, explain: Option<u32>) -> Duration {
    let ram = engine.ram();
    let db = Database::new_with(ram, DataMode::Specialized, config.provenance);
    db.load_inputs(ram, &InputData::new()).expect("no inputs");
    let started = Instant::now();
    let tree = itree::build(ram, &config);
    let mut interp = Interpreter::new(ram, &db, config);
    interp.run(&tree).expect("evaluation succeeds");
    if let Some(last) = explain {
        let rel = ram.relation_by_name("path").expect("declared").id;
        prov::explain(ram, &db, rel, &[0, last], &ExplainLimits::default())
            .expect("the full chain is derivable");
    }
    started.elapsed()
}

fn main() {
    let nodes = match scale() {
        Scale::Tiny => 60,
        Scale::Small => 160,
        Scale::Medium => 320,
        Scale::Large => 640,
    };
    let engine = Engine::from_source(&tc_source(nodes)).expect("compiles");

    let base_cfg = InterpreterConfig::optimized();
    let runs: Vec<(&str, InterpreterConfig, Option<u32>)> = vec![
        ("baseline", base_cfg, None),
        ("provenance", base_cfg.with_provenance(), None),
        (
            "provenance+explain",
            base_cfg.with_provenance(),
            Some((nodes - 1) as u32),
        ),
    ];

    // Warm-up, then interleaved repetitions (cancels drift).
    for (_, cfg, explain) in &runs {
        let _ = eval(&engine, *cfg, *explain);
    }
    let mut times: Vec<Vec<Duration>> = vec![Vec::new(); runs.len()];
    for _ in 0..reps().max(5) {
        for (i, (_, cfg, explain)) in runs.iter().enumerate() {
            times[i].push(eval(&engine, *cfg, *explain));
        }
    }
    let times: Vec<Duration> = times.into_iter().map(best).collect();

    let baseline = times[0];
    let rows: Vec<Vec<String>> = runs
        .iter()
        .zip(&times)
        .map(|((name, _, _), t)| {
            vec![
                name.to_string(),
                fmt_dur(*t),
                fmt_ratio(t.as_secs_f64() / baseline.as_secs_f64()),
            ]
        })
        .collect();
    print_table(
        &format!("Provenance overhead — TC on a {nodes}-node chain (best of interleaved reps)"),
        &["configuration", "time", "vs baseline"],
        &rows,
    );
    let on_pct = 100.0 * (times[1].as_secs_f64() / baseline.as_secs_f64() - 1.0);
    println!(
        "\nannotated-evaluation overhead: {on_pct:+.2}%   (off-mode is a cold-path runtime \
         branch and must stay at noise level vs a pre-provenance build)"
    );
}
