//! Shared infrastructure for the paper-reproduction benchmark harness.
//!
//! Every table and figure of the paper's evaluation has one bench target
//! (see `benches/`); this library holds what they share: scale/repetition
//! settings, timed interpreter runs that mirror the paper's methodology
//! (interpreter-tree generation included, fact loading excluded), a
//! compile-once cache for synthesized programs, and plain-text table
//! rendering.
//!
//! Environment knobs:
//!
//! * `STIR_BENCH_SCALE` — `tiny` / `small` / `medium` / `large`
//!   (default `small`; the committed reference numbers use `medium`).
//! * `STIR_BENCH_REPS` — repetitions per measurement (default 3; the
//!   minimum is reported — robust against CPU-steal on shared machines).

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use stir_core::{
    database::{DataMode, Database},
    itree, profile_json, Engine, InputData, Interpreter, InterpreterConfig, Json, ProfileReport,
    Telemetry, Value,
};
use stir_synth::{compile, CompiledProgram};
use stir_workloads::spec::Scale;
use stir_workloads::Workload;

/// The benchmark scale from `STIR_BENCH_SCALE`.
pub fn scale() -> Scale {
    match std::env::var("STIR_BENCH_SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        Ok("medium") => Scale::Medium,
        Ok("large") => Scale::Large,
        _ => Scale::Small,
    }
}

/// Repetitions per measurement from `STIR_BENCH_REPS`.
pub fn reps() -> usize {
    std::env::var("STIR_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// The median of a set of durations.
pub fn median(mut times: Vec<Duration>) -> Duration {
    times.sort();
    times[times.len() / 2]
}

/// The minimum of a set of durations — the robust statistic for
/// deterministic workloads on a shared machine, where every disturbance
/// (CPU steal, page cache pressure) only ever *adds* time.
pub fn best(times: Vec<Duration>) -> Duration {
    times.into_iter().min().expect("at least one sample")
}

/// One timed interpreter evaluation: database construction and fact
/// loading excluded, interpreter-tree generation *included* (paper §5).
///
/// # Panics
///
/// Panics on evaluation errors (benchmark programs are known-good).
pub fn interp_eval(
    engine: &Engine,
    config: InterpreterConfig,
    inputs: &InputData,
) -> (Duration, Option<ProfileReport>, usize) {
    let ram = engine.ram();
    let mode = if config.legacy_data {
        DataMode::LegacyDynamic
    } else {
        DataMode::Specialized
    };
    let db = Database::new(ram, mode);
    db.load_inputs(ram, inputs).expect("inputs load");
    let started = Instant::now();
    let tree = itree::build(ram, &config);
    let mut interp = Interpreter::new(ram, &db, config);
    interp.run(&tree).expect("evaluation succeeds");
    let elapsed = started.elapsed();
    let size: usize = ram.outputs().map(|r| db.rd(r.id).len()).sum();
    (elapsed, interp.profile_report(), size)
}

/// One profiled evaluation rendered as the machine-readable profile
/// document — the same JSON `stir --profile-json` writes. Benchmarks
/// that consume per-rule statistics go through this instead of the
/// in-process [`ProfileReport`], so the emitters stay load-bearing.
///
/// # Panics
///
/// Panics on evaluation errors (benchmark programs are known-good).
pub fn profile_json_eval(engine: &Engine, config: InterpreterConfig, inputs: &InputData) -> Json {
    let (elapsed, profile, _) = interp_eval(engine, config.with_profile(), inputs);
    profile_json(engine.ram(), profile.as_ref(), &Telemetry::off(), elapsed)
}

/// One per-rule record parsed back out of a profile JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonRule {
    /// The rule text.
    pub label: String,
    /// Cumulative wall time.
    pub time: Duration,
    /// How many times the rule's query ran.
    pub executions: u64,
    /// Tuples the rule inserted.
    pub tuples: u64,
}

/// The `rule` table of a profile JSON document.
///
/// # Panics
///
/// Panics when the document does not have the `--profile-json` layout.
pub fn rules_from_json(doc: &Json) -> Vec<JsonRule> {
    doc.get("root")
        .and_then(|r| r.get("program"))
        .and_then(|p| p.get("rule"))
        .and_then(Json::entries)
        .expect("profile JSON has root.program.rule")
        .iter()
        .map(|(label, r)| {
            let field = |k: &str| r.get(k).and_then(Json::as_u64).expect("rule field");
            JsonRule {
                label: label.clone(),
                time: Duration::from_nanos(field("time_ns")),
                executions: field("executions"),
                tuples: field("tuples"),
            }
        })
        .collect()
}

/// Best (minimum) interpreter evaluation time over [`reps`] runs, after one
/// untimed warm-up run (first executions pay allocator/page-fault costs
/// that would otherwise bias whichever configuration is measured first).
pub fn interp_time(engine: &Engine, config: InterpreterConfig, inputs: &InputData) -> Duration {
    let _ = interp_eval(engine, config, inputs);
    let times: Vec<Duration> = (0..reps())
        .map(|_| interp_eval(engine, config, inputs).0)
        .collect();
    best(times)
}

/// Best (minimum) times for several configurations measured *interleaved*
/// (config A, B, C, A, B, C, ...), which cancels slow drift (allocator
/// state, CPU frequency) that would bias sequentially measured
/// configurations. One warm-up run per configuration precedes timing.
pub fn interp_times_interleaved(
    engine: &Engine,
    configs: &[InterpreterConfig],
    inputs: &InputData,
) -> Vec<Duration> {
    for &c in configs {
        let _ = interp_eval(engine, c, inputs);
    }
    let mut times: Vec<Vec<Duration>> = vec![Vec::new(); configs.len()];
    for _ in 0..reps() {
        for (i, &c) in configs.iter().enumerate() {
            times[i].push(interp_eval(engine, c, inputs).0);
        }
    }
    times.into_iter().map(best).collect()
}

/// A compile-once cache of synthesized programs plus per-instance fact
/// directories.
#[derive(Debug, Default)]
pub struct SynthCache {
    programs: HashMap<String, CompiledProgram>,
    facts_dirs: HashMap<String, PathBuf>,
}

impl SynthCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn root() -> PathBuf {
        std::env::temp_dir().join("stir-bench")
    }

    /// Compiles (or reuses) the synthesized binary for a program.
    ///
    /// # Panics
    ///
    /// Panics if `rustc` fails — the harness cannot proceed without the
    /// compiled baseline.
    pub fn program(&mut self, key: &str, engine: &Engine) -> CompiledProgram {
        if let Some(p) = self.programs.get(key) {
            return p.clone();
        }
        let source = stir_synth::generate(engine.ram());
        let dir = Self::root().join("build").join(key);
        let program = compile::compile(&source, &dir).expect("rustc compiles synthesized code");
        self.programs.insert(key.to_owned(), program.clone());
        program
    }

    /// Writes (or reuses) the facts directory for a workload instance.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors.
    pub fn facts_dir(&mut self, workload: &Workload) -> PathBuf {
        let key = workload.name.replace('/', "_");
        if let Some(d) = self.facts_dirs.get(&key) {
            return d.clone();
        }
        let dir = Self::root().join("facts").join(&key);
        let facts: HashMap<String, Vec<Vec<String>>> = workload
            .inputs
            .iter()
            .map(|(k, rows)| {
                (
                    k.clone(),
                    rows.iter()
                        .map(|r| r.iter().map(Value::to_string).collect())
                        .collect(),
                )
            })
            .collect();
        compile::write_facts_dir(&dir, &facts).expect("facts written");
        self.facts_dirs.insert(key.clone(), dir.clone());
        dir
    }

    /// Runs the synthesized binary on a workload; returns the best
    /// (minimum) evaluation time and the last run's full outcome.
    ///
    /// # Panics
    ///
    /// Panics if the binary fails.
    pub fn synth_eval(
        &mut self,
        workload: &Workload,
        engine: &Engine,
    ) -> (Duration, stir_synth::RunOutcome) {
        let suite_key = workload.suite.name().to_owned();
        let program = self.program(&suite_key, engine);
        let facts = self.facts_dir(workload);
        let out_dir = Self::root()
            .join("out")
            .join(workload.name.replace('/', "_"));
        // Warm-up run (binary/page-cache effects), then timed reps.
        let _ = compile::run(&program, &facts, &out_dir).expect("synth warmup");
        let mut times = Vec::new();
        let mut last = None;
        for _ in 0..reps() {
            let outcome = compile::run(&program, &facts, &out_dir).expect("synth run");
            times.push(outcome.eval_time);
            last = Some(outcome);
        }
        (best(times), last.expect("at least one rep"))
    }

    /// The cached compile time of a suite's program.
    pub fn compile_time(&mut self, key: &str, engine: &Engine) -> Duration {
        self.program(key, engine).compile_time
    }
}

/// Renders an aligned plain-text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render = |cells: Vec<String>| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        line
    };
    println!(
        "{}",
        render(headers.iter().map(|s| s.to_string()).collect())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", render(row.clone()));
    }
}

/// Formats a duration in engineering style.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 10 {
        format!("{:.1}s", d.as_secs_f64())
    } else if d.as_millis() >= 10 {
        format!("{}ms", d.as_millis())
    } else {
        format!("{}µs", d.as_micros())
    }
}

/// Formats a ratio.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_order_insensitive() {
        let d = |ms: u64| Duration::from_millis(ms);
        assert_eq!(median(vec![d(3), d(1), d(2)]), d(2));
        assert_eq!(median(vec![d(5)]), d(5));
    }

    #[test]
    fn formatting_is_compact() {
        assert_eq!(fmt_dur(Duration::from_micros(150)), "150µs");
        assert_eq!(fmt_dur(Duration::from_millis(42)), "42ms");
        assert_eq!(fmt_dur(Duration::from_secs(12)), "12.0s");
        assert_eq!(fmt_ratio(1.5), "1.50x");
    }

    #[test]
    fn interp_eval_measures_and_counts() {
        let engine = Engine::from_source(
            ".decl e(x: number)\n.decl p(x: number)\n.output p\n\
             e(1). e(2).\np(x) :- e(x).",
        )
        .expect("compiles");
        let (time, profile, size) =
            interp_eval(&engine, InterpreterConfig::optimized(), &InputData::new());
        assert!(time.as_nanos() > 0);
        assert!(profile.is_none());
        assert_eq!(size, 2);
    }

    #[test]
    fn rules_round_trip_through_profile_json() {
        let engine = Engine::from_source(
            ".decl e(x: number)\n.decl p(x: number)\n.output p\n\
             e(1). e(2). e(3).\np(x) :- e(x).",
        )
        .expect("compiles");
        let doc = profile_json_eval(&engine, InterpreterConfig::optimized(), &InputData::new());
        let reparsed = Json::parse(&doc.render()).expect("round-trips");
        let rules = rules_from_json(&reparsed);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].label, "p(x) :- e(x).");
        assert_eq!(rules[0].tuples, 3);
        assert!(rules[0].executions >= 1);
    }
}
