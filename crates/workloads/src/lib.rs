//! Benchmark workloads: synthetic analogues of the paper's three suites.
//!
//! The paper evaluates the STI on three real-world applications whose
//! Datalog programs and inputs are not publicly redistributable (Amazon's
//! VPC reachability programs, DDisasm's rule base over SPEC CPU2006
//! binaries, DOOP over DaCapo). This crate builds, per suite, a Datalog
//! program of the same *shape* plus a seeded synthetic input generator:
//!
//! * [`vpc`] — cloud-network reachability: transitive closure over typed
//!   topology with ACL filters; dominated by a large recursive stratum
//!   (long-running on large inputs, reproducing Table 1's `< 1` ratios).
//! * [`ddisasm`] — binary-analysis-shaped rules over synthetic
//!   instruction streams; includes `moved_label`-style rules whose inner
//!   loops carry arithmetic-heavy filters (the §5.2 outlier pattern).
//! * [`doop`] — context-insensitive Andersen-style points-to with fields,
//!   virtual calls, and a shared "standard library" fact base
//!   (reproducing DOOP's uniform cross-benchmark ratios).
//!
//! Every measured quantity in the paper's evaluation — dispatch counts,
//! index operations, loop-nest shapes, compile-vs-run trade-offs — is a
//! function of rule shape and input scale, which these generators
//! preserve; application semantics are not.

#![warn(missing_docs)]

pub mod ddisasm;
pub mod doop;
pub mod rng;
pub mod spec;
pub mod vpc;
pub mod zipf;

pub use spec::{all_suites, instances, Suite, Workload};
