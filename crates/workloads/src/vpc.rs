//! The VPC analogue: cloud-network reachability reasoning.
//!
//! Shape: a mid-sized rule set whose cost is dominated by one large
//! recursive stratum (subnet-level reachability — a transitive closure
//! over routes and VPC peerings), followed by joins against instance,
//! listener, and ACL tables and a negation-guarded violation check.
//! Compile time is constant per program while run time scales with the
//! topology, which is exactly the trade-off behind the VPC rows of
//! Table 1.

use crate::rng::SmallRng;
use crate::spec::{Scale, Suite, Workload};
use stir_core::{InputData, Value};

/// The Datalog program (fixed; instances differ in facts).
pub const PROGRAM: &str = r#"
// Topology
.decl vpc(v: number)
.decl subnet(s: number, v: number)
.decl instance(i: number, s: number)
.decl route(a: number, b: number)
.decl peering(va: number, vb: number)
.decl acl_allow(sa: number, sb: number, port: number)
.decl listens(i: number, port: number)
.decl sensitive_port(port: number)
.decl trusted(i: number)
.decl gateway(s: number)
.input vpc
.input subnet
.input instance
.input route
.input peering
.input acl_allow
.input listens
.input sensitive_port
.input trusted
.input gateway

// Symmetric peering
.decl peer(va: number, vb: number)
peer(a, b) :- peering(a, b).
peer(a, b) :- peering(b, a).

// Subnet-level reachability: routes within a VPC, hops across peered VPCs.
.decl subnet_reach(a: number, b: number)
subnet_reach(s, s) :- subnet(s, _).
subnet_reach(a, c) :- subnet_reach(a, b), route(b, c).
subnet_reach(a, c) :- subnet_reach(a, b), subnet(b, vb), peer(vb, vc), subnet(c, vc), route(b, c).

// Instance connectivity through ACLs.
.decl conn(i: number, j: number, port: number)
conn(i, j, p) :- instance(i, si), instance(j, sj), subnet_reach(si, sj),
                 acl_allow(si, sj, p), listens(j, p), i != j.

// Internet exposure through gateways.
.decl exposed(j: number, port: number)
exposed(j, p) :- gateway(g), instance(j, sj), subnet_reach(g, sj),
                 acl_allow(g, sj, p), listens(j, p).

// Violations: sensitive services reachable from untrusted instances.
.decl violation(i: number, j: number, port: number)
violation(i, j, p) :- conn(i, j, p), sensitive_port(p), !trusted(i).

// Subnets of the same VPC form equivalence classes (eqrel-backed).
.decl same_vpc(a: number, b: number) eqrel
same_vpc(a, b) :- subnet(a, v), subnet(b, v).

// Cross-VPC connections are the interesting ones for audit.
.decl cross_vpc_conn(i: number, j: number, port: number)
cross_vpc_conn(i, j, p) :- conn(i, j, p), instance(i, si), instance(j, sj),
                           !same_vpc(si, sj).

.decl exposure_count(n: number)
exposure_count(n) :- n = count : { exposed(_, _) }.

.output conn
.output exposed
.output violation
.output cross_vpc_conn
.output exposure_count
"#;

/// Generates one VPC topology instance.
pub fn generate(name: &str, scale: Scale, seed: u64) -> Workload {
    let (vpcs, subnets_per_vpc, instances_per_subnet, routes_per_subnet) = match scale {
        Scale::Tiny => (2, 3, 2, 2),
        Scale::Small => (4, 10, 4, 3),
        Scale::Medium => (6, 24, 6, 3),
        Scale::Large => (8, 48, 8, 3),
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut inputs = InputData::new();
    let n = |v: i64| Value::Number(v as i32);

    let total_subnets = vpcs * subnets_per_vpc;
    let mut vpc_rows = Vec::new();
    let mut subnet_rows = Vec::new();
    let mut instance_rows = Vec::new();
    for v in 0..vpcs {
        vpc_rows.push(vec![n(v)]);
        for k in 0..subnets_per_vpc {
            let s = v * subnets_per_vpc + k;
            subnet_rows.push(vec![n(s), n(v)]);
            for m in 0..instances_per_subnet {
                let i = s * instances_per_subnet + m;
                instance_rows.push(vec![n(i), n(s)]);
            }
        }
    }

    // Routes: mostly intra-VPC rings plus random shortcuts.
    let mut route_rows = Vec::new();
    for v in 0..vpcs {
        let base = v * subnets_per_vpc;
        for k in 0..subnets_per_vpc {
            route_rows.push(vec![n(base + k), n(base + (k + 1) % subnets_per_vpc)]);
            for _ in 1..routes_per_subnet {
                let to = base + rng.gen_range(0..subnets_per_vpc);
                route_rows.push(vec![n(base + k), n(to)]);
            }
        }
    }
    // A few cross-VPC routes (only usable when peered).
    for _ in 0..(vpcs * 2) {
        let a = rng.gen_range(0..total_subnets);
        let b = rng.gen_range(0..total_subnets);
        route_rows.push(vec![n(a), n(b)]);
    }

    let peering_rows: Vec<Vec<Value>> = (0..vpcs - 1)
        .filter(|_| rng.gen_bool(0.7))
        .map(|v| vec![n(v), n(v + 1)])
        .collect();

    let ports = [22i64, 80, 443, 5432, 6379, 8080];
    let mut acl_rows = Vec::new();
    for _ in 0..(total_subnets * 6) {
        let a = rng.gen_range(0..total_subnets);
        let b = rng.gen_range(0..total_subnets);
        let p = ports[rng.gen_range(0..ports.len())];
        acl_rows.push(vec![n(a), n(b), n(p)]);
    }

    let total_instances = total_subnets * instances_per_subnet;
    let mut listen_rows = Vec::new();
    for i in 0..total_instances {
        let np = rng.gen_range(1..3);
        for _ in 0..np {
            listen_rows.push(vec![n(i), n(ports[rng.gen_range(0..ports.len())])]);
        }
    }

    let trusted_rows: Vec<Vec<Value>> = (0..total_instances)
        .filter(|_| rng.gen_bool(0.6))
        .map(|i| vec![n(i)])
        .collect();
    let gateway_rows: Vec<Vec<Value>> = (0..vpcs).map(|v| vec![n(v * subnets_per_vpc)]).collect();

    inputs.insert("vpc".into(), vpc_rows);
    inputs.insert("subnet".into(), subnet_rows);
    inputs.insert("instance".into(), instance_rows);
    inputs.insert("route".into(), route_rows);
    inputs.insert("peering".into(), peering_rows);
    inputs.insert("acl_allow".into(), acl_rows);
    inputs.insert("listens".into(), listen_rows);
    inputs.insert(
        "sensitive_port".into(),
        vec![vec![n(22)], vec![n(5432)], vec![n(6379)]],
    );
    inputs.insert("trusted".into(), trusted_rows);
    inputs.insert("gateway".into(), gateway_rows);

    Workload {
        name: format!("vpc/{name}"),
        suite: Suite::Vpc,
        program: PROGRAM.to_owned(),
        inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_core::{Engine, InterpreterConfig};

    #[test]
    fn tiny_instance_evaluates_consistently() {
        let w = generate("t", Scale::Tiny, 5);
        let engine = Engine::from_source(&w.program).expect("compiles");
        let a = engine
            .run(InterpreterConfig::optimized(), &w.inputs)
            .expect("runs");
        let b = engine
            .run(InterpreterConfig::unoptimized(), &w.inputs)
            .expect("runs");
        assert_eq!(a.outputs, b.outputs);
        assert!(!a.outputs["conn"].is_empty(), "topology is connected");
        assert_eq!(a.outputs["exposure_count"].len(), 1);
    }
}
