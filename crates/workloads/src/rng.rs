//! A tiny deterministic PRNG used by the synthetic workload generators.
//!
//! The build must work without any external registry, so this replaces
//! the `rand` crate with the minimal surface the generators need: a
//! seedable generator and uniform sampling from integer ranges. The
//! core is splitmix64 — statistically fine for workload synthesis and
//! stable across platforms, which keeps generated fact sets reproducible.

use std::ops::Range;

/// A seedable splitmix64 generator (drop-in for `rand::rngs::SmallRng`
/// in the generators' usage).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// The next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// A uniform float in `[0, 1)`.
    pub fn gen(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen() < p
    }
}

/// Integer types [`SmallRng::gen_range`] can sample.
pub trait SampleRange: Copy {
    /// Uniform value in `range` (modulo reduction; the tiny bias is
    /// irrelevant for workload synthesis).
    fn sample(rng: &mut SmallRng, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut SmallRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as Self
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&v));
        }
    }
}
