//! A Zipf-skewed edge workload for parallel-balance experiments.
//!
//! EXPERIMENTS E12 needs an input on which static contiguous
//! partitioning of the outer scan is provably unbalanced while
//! morsel-driven work stealing is not. This generator builds a directed
//! graph whose out-degrees follow a Zipf law *clustered at low node
//! ids*: node `i` has out-degree proportional to `1 / (i + 1)^s`, so a
//! contiguous count-equal split of the node table hands nearly all join
//! work (the edge fan-out) to the worker that draws the first slice.
//! The degree sequence is computed deterministically from `(n, s,
//! total_edges)` — no sampling noise — and only the *targets* of each
//! edge are drawn from the seeded [`SmallRng`], so the skew profile is
//! exact and reproducible.

use crate::rng::SmallRng;

/// A deterministic Zipf-skewed graph: `nodes` vertices, edge list with
/// out-degrees following a Zipf law over the source id.
#[derive(Debug, Clone)]
pub struct ZipfGraph {
    /// Number of vertices; vertex ids are `0..nodes`.
    pub nodes: u32,
    /// Directed edges `(src, dst)`, grouped by source in id order.
    pub edges: Vec<(u32, u32)>,
    /// Out-degree of each vertex (index = vertex id).
    pub degrees: Vec<u32>,
}

impl ZipfGraph {
    /// Builds a graph over `nodes` vertices with roughly `total_edges`
    /// edges whose out-degrees follow a Zipf law with exponent `s`
    /// (`s = 0` is uniform; `s ≈ 1` is the classic heavy head). Edge
    /// targets are drawn uniformly from the seeded generator.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn generate(nodes: u32, total_edges: u64, s: f64, seed: u64) -> ZipfGraph {
        assert!(nodes > 0, "empty graph");
        // Normalize the Zipf weights to the requested edge budget. The
        // per-node degree is rounded, so the realized edge count can
        // differ from `total_edges` by at most `nodes / 2`.
        let h: f64 = (0..nodes).map(|i| 1.0 / f64::from(i + 1).powf(s)).sum();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        let mut degrees = Vec::with_capacity(nodes as usize);
        for i in 0..nodes {
            let w = 1.0 / f64::from(i + 1).powf(s) / h;
            let deg = (w * total_edges as f64).round() as u32;
            degrees.push(deg);
            for _ in 0..deg {
                edges.push((i, rng.gen_range(0..nodes)));
            }
        }
        ZipfGraph {
            nodes,
            edges,
            degrees,
        }
    }

    /// Edge work assigned to each of `jobs` contiguous count-equal
    /// slices of the node table — the split the old static partitioner
    /// produced. The ratio `max / min` of this vector is the analytic
    /// imbalance a static scheme cannot avoid on this input.
    pub fn static_partition_work(&self, jobs: usize) -> Vec<u64> {
        let jobs = jobs.max(1);
        let n = self.nodes as usize;
        let base = n / jobs;
        let extra = n % jobs;
        let mut work = Vec::with_capacity(jobs);
        let mut at = 0usize;
        for w in 0..jobs {
            let len = base + usize::from(w < extra);
            let sum: u64 = self.degrees[at..at + len]
                .iter()
                .map(|&d| u64::from(d))
                .sum();
            work.push(sum);
            at += len;
        }
        work
    }

    /// Renders the graph as Datalog facts for the given relation names
    /// (`node(i).` per vertex, `edge(src, dst).` per edge).
    pub fn to_facts(&self, node_rel: &str, edge_rel: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for i in 0..self.nodes {
            let _ = writeln!(out, "{node_rel}({i}).");
        }
        for (s, d) in &self.edges {
            let _ = writeln!(out, "{edge_rel}({s}, {d}).");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_are_deterministic_and_skewed() {
        let a = ZipfGraph::generate(100, 10_000, 1.0, 42);
        let b = ZipfGraph::generate(100, 10_000, 1.0, 42);
        assert_eq!(a.edges, b.edges, "same seed, same graph");
        assert!(a.degrees[0] > a.degrees[50] * 10, "heavy head");
        let total: u64 = a.degrees.iter().map(|&d| u64::from(d)).sum();
        assert!(total.abs_diff(10_000) < 100, "edge budget honored: {total}");
    }

    #[test]
    fn static_partition_work_is_unbalanced_under_skew() {
        let g = ZipfGraph::generate(1000, 100_000, 1.0, 7);
        let work = g.static_partition_work(4);
        let max = *work.iter().max().unwrap();
        let min = *work.iter().min().unwrap().max(&1);
        assert!(
            max / min > 10,
            "contiguous split should be badly skewed: {work:?}"
        );
    }

    #[test]
    fn uniform_exponent_is_balanced() {
        let g = ZipfGraph::generate(1000, 100_000, 0.0, 7);
        let work = g.static_partition_work(4);
        let max = *work.iter().max().unwrap();
        let min = *work.iter().min().unwrap();
        assert!(max <= min + min / 4, "s = 0 is near-uniform: {work:?}");
    }

    #[test]
    fn facts_render_both_relations() {
        let g = ZipfGraph::generate(3, 6, 0.5, 1);
        let facts = g.to_facts("node", "edge");
        assert!(facts.contains("node(0)."));
        assert!(facts.contains("node(2)."));
        assert!(facts.matches("edge(").count() >= 3);
    }
}
