//! The DDisasm analogue: disassembly-shaped analysis.
//!
//! Shape: many small relations over a synthetic instruction stream —
//! reachable-code inference, basic-block assignment — plus the paper's
//! §5.2 outlier pattern: rules like `moved_label` whose depth-2 loop nest
//! carries an arithmetic-heavy inner filter (a dozen-plus dispatches per
//! inner iteration, amplified by a non-equality join that defeats index
//! selection). These rules dominate the interpreter/synthesizer gap
//! exactly as Figs. 16–17 describe.

use crate::rng::SmallRng;
use crate::spec::{Scale, Suite, Workload};
use stir_core::{InputData, Value};

/// The Datalog program (fixed; instances differ in facts).
pub const PROGRAM: &str = r#"
// Raw disassembly facts
.decl instr(a: number, size: number, op: number) brie
.decl next(a: number, b: number) brie
.decl direct_jump(a: number, t: number)
.decl direct_call(a: number, t: number)
.decl ret(a: number)
.decl entry(a: number)
.decl sym_value(a: number, v: number)
.decl candidate(c: number, kind: number)
.input instr
.input next
.input direct_jump
.input direct_call
.input ret
.input entry
.input sym_value
.input candidate

// Reachable code inference (recursive).
.decl code(a: number)
code(a) :- entry(a).
code(b) :- code(a), next(a, b), !ret(a).
code(t) :- code(a), direct_jump(a, t).
code(t) :- code(a), direct_call(a, t).

// Basic-block boundaries and membership.
.decl block_start(a: number)
block_start(a) :- entry(a).
block_start(t) :- direct_jump(_, t), code(t).
block_start(t) :- direct_call(_, t), code(t).
block_start(b) :- direct_jump(a, _), next(a, b), code(b).
block_start(b) :- ret(a), next(a, b), code(b).

.decl in_block(a: number, s: number)
in_block(s, s) :- block_start(s).
in_block(b, s) :- in_block(a, s), next(a, b), code(b), !block_start(b).

// Function extents: call targets start functions.
.decl func_start(a: number)
func_start(a) :- entry(a).
func_start(t) :- direct_call(_, t), code(t).

// The moved_label analogue (paper Fig. 17): a depth-2 loop nest whose
// inner filter is a pile of low-level arithmetic — a non-equality join,
// so the inner relation is fully scanned per outer tuple.
.decl moved_label(a: number, v: number, d: number)
moved_label(a, v, d) :- sym_value(a, v), candidate(c, k),
    v >= c - 4096, v <= c + 4096,
    (v band 4095) != 0,
    d = v - c,
    d != 0,
    d % 8 = 0,
    (v bxor k) band 7 != 3,
    v * 2 - c > 16.

// A second outlier of the same shape on different tables.
.decl moved_data(a: number, c: number)
moved_data(a, c) :- sym_value(a, v), candidate(c, k),
    c >= v - 512, c <= v + 512,
    (c band 15) = (v band 15),
    (k + v - c) % 4 != 1.

// Summary statistics.
.decl code_size(n: number)
code_size(n) :- n = count : { code(_) }.

.output code
.output in_block
.output func_start
.output moved_label
.output moved_data
.output code_size
"#;

/// Generates one synthetic binary instance with the default relocation
/// density.
pub fn generate(name: &str, scale: Scale, seed: u64) -> Workload {
    generate_with_density(name, scale, seed, 1.0)
}

/// Generates one instance; `density` scales the symbol/candidate tables
/// that feed the quadratic `moved_label`-style rules. Real binaries vary
/// widely here — it is what spreads the paper's per-benchmark slowdowns
/// (most below 5.7x, one `gcc`-like outlier far above).
pub fn generate_with_density(name: &str, scale: Scale, seed: u64, density: f64) -> Workload {
    let (n_instrs, base_syms, base_cands) = match scale {
        Scale::Tiny => (400, 60, 60),
        Scale::Small => (8_000, 500, 500),
        Scale::Medium => (40_000, 1_600, 1_600),
        Scale::Large => (120_000, 4_000, 4_000),
    };
    let n_syms = ((base_syms as f64 * density) as usize).max(8);
    let n_cands = ((base_cands as f64 * density) as usize).max(8);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut inputs = InputData::new();
    let n = |v: i64| Value::Number(v as i32);

    // A linear instruction stream with jumps/calls/returns sprinkled in.
    let mut instr_rows = Vec::new();
    let mut next_rows = Vec::new();
    let mut jump_rows = Vec::new();
    let mut call_rows = Vec::new();
    let mut ret_rows = Vec::new();
    let mut addr: i64 = 0x1000;
    let mut addrs = Vec::with_capacity(n_instrs);
    for _ in 0..n_instrs {
        let size = [1i64, 2, 3, 4, 4, 8][rng.gen_range(0..6)];
        addrs.push(addr);
        instr_rows.push(vec![n(addr), n(size), n(rng.gen_range(0..128))]);
        addr += size;
    }
    for w in addrs.windows(2) {
        next_rows.push(vec![n(w[0]), n(w[1])]);
    }
    for &a in &addrs {
        let roll: f64 = rng.gen();
        if roll < 0.08 {
            jump_rows.push(vec![n(a), n(addrs[rng.gen_range(0..addrs.len())])]);
        } else if roll < 0.12 {
            call_rows.push(vec![n(a), n(addrs[rng.gen_range(0..addrs.len())])]);
        } else if roll < 0.15 {
            ret_rows.push(vec![n(a)]);
        }
    }
    // Entry points: exported function symbols sprinkled through the
    // binary, so code reachability explores real extents.
    let entry_rows: Vec<Vec<Value>> = addrs
        .iter()
        .step_by((addrs.len() / 16).max(1))
        .map(|&a| vec![n(a)])
        .collect();

    // Symbol values and relocation candidates clustered so the ±4096
    // windows are densely populated (lots of inner-filter work).
    let hub = 0x40_0000i64;
    let sym_rows: Vec<Vec<Value>> = (0..n_syms)
        .map(|i| {
            let v = hub + rng.gen_range(-6000..6000);
            vec![n(addrs[i % addrs.len()]), n(v)]
        })
        .collect();
    let cand_rows: Vec<Vec<Value>> = (0..n_cands)
        .map(|_| {
            let c = hub + rng.gen_range(-6000..6000);
            vec![n(c), n(rng.gen_range(0..16))]
        })
        .collect();

    inputs.insert("instr".into(), instr_rows);
    inputs.insert("next".into(), next_rows);
    inputs.insert("direct_jump".into(), jump_rows);
    inputs.insert("direct_call".into(), call_rows);
    inputs.insert("ret".into(), ret_rows);
    inputs.insert("entry".into(), entry_rows);
    inputs.insert("sym_value".into(), sym_rows);
    inputs.insert("candidate".into(), cand_rows);

    Workload {
        name: format!("ddisasm/{name}"),
        suite: Suite::DDisasm,
        program: PROGRAM.to_owned(),
        inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_core::{Engine, InterpreterConfig};

    #[test]
    fn tiny_instance_evaluates_consistently() {
        let w = generate("t", Scale::Tiny, 9);
        let engine = Engine::from_source(&w.program).expect("compiles");
        let a = engine
            .run(InterpreterConfig::optimized(), &w.inputs)
            .expect("runs");
        let b = engine
            .run(InterpreterConfig::dynamic_adapter(), &w.inputs)
            .expect("runs");
        assert_eq!(a.outputs, b.outputs);
        assert!(!a.outputs["code"].is_empty());
        assert!(!a.outputs["in_block"].is_empty());
        assert!(
            !a.outputs["moved_label"].is_empty(),
            "clustered symbols produce moved labels"
        );
    }

    #[test]
    fn moved_label_filter_is_dispatch_heavy() {
        // The §5.2 claim: the inner filter needs double-digit dispatches.
        let w = generate("t", Scale::Tiny, 9);
        let engine = Engine::from_source(&w.program).expect("compiles");
        let out = engine
            .run(InterpreterConfig::optimized().with_profile(), &w.inputs)
            .expect("runs");
        let profile = out.profile.expect("profiled");
        assert!(profile.dispatches > 0);
    }
}
