//! Workload descriptors and the instance registry.

use stir_core::InputData;

/// The benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Cloud-network reachability (VPC analogue).
    Vpc,
    /// Binary-analysis rules (DDisasm analogue).
    DDisasm,
    /// Points-to analysis (DOOP analogue).
    Doop,
}

impl Suite {
    /// The suite's display name.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Vpc => "vpc",
            Suite::DDisasm => "ddisasm",
            Suite::Doop => "doop",
        }
    }
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A ready-to-run benchmark: program text plus generated input facts.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Instance name, e.g. `vpc/prod-east`.
    pub name: String,
    /// The suite.
    pub suite: Suite,
    /// Datalog source.
    pub program: String,
    /// Generated `.input` facts.
    pub inputs: InputData,
}

/// Relative size of a generated instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scale {
    /// Milliseconds-level runs (tests).
    Tiny,
    /// Sub-second runs.
    Small,
    /// Seconds-level runs (default benchmarking scale).
    Medium,
    /// Tens-of-seconds runs.
    Large,
}

/// The benchmark instances of a suite at a given scale — several seeds per
/// suite, mirroring the paper's multiple benchmarks per application.
pub fn instances(suite: Suite, scale: Scale) -> Vec<Workload> {
    match suite {
        Suite::Vpc => ["prod-east", "prod-west", "staging", "dev", "shared-svc"]
            .iter()
            .enumerate()
            .map(|(i, n)| crate::vpc::generate(n, scale, 101 + i as u64))
            .collect(),
        Suite::DDisasm => {
            // Relocation-table density varies per binary, spreading the
            // outlier-rule weight the way the paper's per-benchmark
            // slowdowns spread (one gcc-like worst case).
            let instances: [(&str, f64); 6] = [
                ("gzip2", 0.2),
                ("mcf2", 0.35),
                ("milc2", 0.5),
                ("namd2", 0.65),
                ("sjeng2", 0.8),
                ("gcc2", 1.25),
            ];
            instances
                .iter()
                .enumerate()
                .map(|(i, (n, density))| {
                    crate::ddisasm::generate_with_density(n, scale, 211 + i as u64, *density)
                })
                .collect()
        }
        Suite::Doop => ["avrora2", "batik2", "fop2", "luindex2", "pmd2"]
            .iter()
            .enumerate()
            .map(|(i, n)| crate::doop::generate(n, scale, 307 + i as u64))
            .collect(),
    }
}

/// All three suites.
pub fn all_suites() -> [Suite; 3] {
    [Suite::Vpc, Suite::DDisasm, Suite::Doop]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_produces_named_instances() {
        for suite in all_suites() {
            let list = instances(suite, Scale::Tiny);
            assert!(list.len() >= 5, "{suite} has several instances");
            for w in &list {
                assert!(w.name.starts_with(suite.name()));
                assert!(!w.program.is_empty());
                assert!(!w.inputs.is_empty());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = instances(Suite::Vpc, Scale::Tiny);
        let b = instances(Suite::Vpc, Scale::Tiny);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            for (rel, rows) in &x.inputs {
                assert_eq!(rows, &y.inputs[rel], "{rel} differs between runs");
            }
        }
    }
}
