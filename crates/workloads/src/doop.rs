//! The DOOP analogue: context-insensitive points-to analysis.
//!
//! Shape: the classic Andersen-style mutually recursive core —
//! `var_points_to` / field points-to / `call_graph` / `reachable` — over
//! synthetic object-oriented programs. Every instance shares a common
//! "standard library" fact base (generated from a fixed seed) plus
//! app-specific methods, mirroring how DaCapo benchmarks share the JDK
//! and therefore show similar performance profiles (Table 1's uniform
//! DOOP ratios).

use crate::rng::SmallRng;
use crate::spec::{Scale, Suite, Workload};
use stir_core::{InputData, Value};

/// The Datalog program (fixed; instances differ in facts).
pub const PROGRAM: &str = r#"
// Program facts
.decl alloc(v: number, o: number, m: number)        // v = new O() in method m
.decl move(to: number, from: number)                // to = from
.decl load(to: number, base: number, f: number)     // to = base.f
.decl store(base: number, f: number, from: number)  // base.f = from
.decl vcall(base: number, sig: number, invo: number, inmeth: number)
.decl formal(m: number, i: number, v: number)
.decl actual(invo: number, i: number, v: number)
.decl ret_var(m: number, v: number)
.decl assign_ret(invo: number, v: number)
.decl method_impl(t: number, sig: number, m: number)
.decl obj_type(o: number, t: number)
.decl entry_method(m: number)
.input alloc
.input move
.input load
.input store
.input vcall
.input formal
.input actual
.input ret_var
.input assign_ret
.input method_impl
.input obj_type
.input entry_method

// The mutually recursive Andersen core.
.decl reachable(m: number)
.decl var_points_to(v: number, o: number)
.decl fld_points_to(o: number, f: number, q: number)
.decl call_graph(invo: number, m: number)

reachable(m) :- entry_method(m).
reachable(m) :- call_graph(_, m).

var_points_to(v, o) :- reachable(m), alloc(v, o, m).
var_points_to(t, o) :- move(t, f), var_points_to(f, o).
var_points_to(t, q) :- load(t, b, f), var_points_to(b, o), fld_points_to(o, f, q).
fld_points_to(o, f, q) :- store(b, f, from), var_points_to(b, o), var_points_to(from, q).

call_graph(i, m) :- vcall(b, sig, i, inm), reachable(inm),
                    var_points_to(b, o), obj_type(o, t), method_impl(t, sig, m).

// Inter-procedural assignments induced by the call graph.
var_points_to(fp, o) :- call_graph(i, m), formal(m, k, fp), actual(i, k, av),
                        var_points_to(av, o).
var_points_to(rv, o) :- call_graph(i, m), assign_ret(i, rv), ret_var(m, mv),
                        var_points_to(mv, o).

// Derived reports.
.decl polymorphic_site(i: number)
polymorphic_site(i) :- call_graph(i, m1), call_graph(i, m2), m1 != m2.

.decl reachable_count(n: number)
reachable_count(n) :- n = count : { reachable(_) }.

.output var_points_to
.output call_graph
.output polymorphic_site
.output reachable_count
"#;

/// Parameters of the synthetic object-oriented program.
struct Shape {
    lib_methods: usize,
    app_methods: usize,
    vars_per_method: usize,
    types: usize,
    sigs: usize,
}

/// Generates one points-to instance. The library portion uses a fixed
/// seed so all instances share it, like DaCapo programs share the JDK.
pub fn generate(name: &str, scale: Scale, seed: u64) -> Workload {
    let shape = match scale {
        Scale::Tiny => Shape {
            lib_methods: 30,
            app_methods: 15,
            vars_per_method: 5,
            types: 8,
            sigs: 10,
        },
        Scale::Small => Shape {
            lib_methods: 600,
            app_methods: 250,
            vars_per_method: 8,
            types: 40,
            sigs: 60,
        },
        Scale::Medium => Shape {
            lib_methods: 2_500,
            app_methods: 1_000,
            vars_per_method: 10,
            types: 120,
            sigs: 160,
        },
        Scale::Large => Shape {
            lib_methods: 6_000,
            app_methods: 2_500,
            vars_per_method: 12,
            types: 250,
            sigs: 320,
        },
    };
    let mut inputs = InputData::new();
    for rel in [
        "alloc",
        "move",
        "load",
        "store",
        "vcall",
        "formal",
        "actual",
        "ret_var",
        "assign_ret",
        "method_impl",
        "obj_type",
        "entry_method",
    ] {
        inputs.insert(rel.into(), Vec::new());
    }

    // Shared library: fixed seed across all instances.
    let mut lib_rng = SmallRng::seed_from_u64(0xD00D);
    emit_methods(&mut inputs, &shape, 0, shape.lib_methods, &mut lib_rng);
    // Application part: instance seed.
    let mut app_rng = SmallRng::seed_from_u64(seed);
    emit_methods(
        &mut inputs,
        &shape,
        shape.lib_methods,
        shape.app_methods,
        &mut app_rng,
    );

    // Entry points: several app methods (enough that the reachability
    // cascade never starves on unlucky dispatch dice).
    let entries: Vec<Vec<Value>> = (0..8)
        .map(|k| vec![Value::Number((shape.lib_methods + k) as i32)])
        .collect();
    inputs.insert("entry_method".into(), entries);

    Workload {
        name: format!("doop/{name}"),
        suite: Suite::Doop,
        program: PROGRAM.to_owned(),
        inputs,
    }
}

/// Emits `count` methods starting at id `base` into the fact tables.
fn emit_methods(
    inputs: &mut InputData,
    shape: &Shape,
    base: usize,
    count: usize,
    rng: &mut SmallRng,
) {
    let n = |v: usize| Value::Number(v as i32);
    let var = |m: usize, k: usize, shape: &Shape| m * shape.vars_per_method + k;
    let fields = 12usize;
    let total_methods = base + count; // ids below this exist so far

    for m in base..base + count {
        // Each method: one formal, one return var, allocations, moves,
        // loads/stores, and virtual calls.
        let v0 = var(m, 0, shape);
        push(inputs, "formal", vec![n(m), n(0), n(v0)]);
        let ret = var(m, 1, shape);
        push(inputs, "ret_var", vec![n(m), n(ret)]);

        // Every method starts with a guaranteed allocation so call
        // receivers always have something to point to.
        let mut allocated: Vec<usize> = Vec::new();
        {
            let v = var(m, 2, shape);
            push(inputs, "alloc", vec![n(v), n(v), n(m)]);
            push(
                inputs,
                "obj_type",
                vec![n(v), n(rng.gen_range(0..shape.types))],
            );
            allocated.push(v);
        }
        for k in 3..shape.vars_per_method {
            let v = var(m, k, shape);
            let roll: f64 = rng.gen();
            if roll < 0.3 {
                // Allocation with a fresh object id (shares the var id
                // space; the two uses never meet).
                push(inputs, "alloc", vec![n(v), n(v), n(m)]);
                push(
                    inputs,
                    "obj_type",
                    vec![n(v), n(rng.gen_range(0..shape.types))],
                );
                allocated.push(v);
            } else if roll < 0.55 {
                let from = var(m, rng.gen_range(0..k), shape);
                push(inputs, "move", vec![n(v), n(from)]);
            } else if roll < 0.68 {
                let b = allocated[rng.gen_range(0..allocated.len())];
                push(
                    inputs,
                    "load",
                    vec![n(v), n(b), n(rng.gen_range(0..fields))],
                );
            } else if roll < 0.82 {
                let b = allocated[rng.gen_range(0..allocated.len())];
                let from = var(m, rng.gen_range(0..k), shape);
                push(
                    inputs,
                    "store",
                    vec![n(b), n(rng.gen_range(0..fields)), n(from)],
                );
            } else {
                // Virtual call on an allocated receiver. Invocation ids
                // live in their own id space (offset by 1M).
                let recv = allocated[rng.gen_range(0..allocated.len())];
                let sig = rng.gen_range(0..shape.sigs);
                let invo = 1_000_000 + var(m, k, shape);
                push(inputs, "vcall", vec![n(recv), n(sig), n(invo), n(m)]);
                let arg = var(m, rng.gen_range(0..k), shape);
                push(inputs, "actual", vec![n(invo), n(0), n(arg)]);
                push(inputs, "assign_ret", vec![n(invo), n(v)]);
            }
        }
        // Every method ends with a guaranteed virtual call, so the
        // call-graph cascade never starves regardless of the dice above.
        {
            let recv = allocated[rng.gen_range(0..allocated.len())];
            let sig = rng.gen_range(0..shape.sigs);
            let invo = 2_000_000 + m;
            push(inputs, "vcall", vec![n(recv), n(sig), n(invo), n(m)]);
            push(inputs, "actual", vec![n(invo), n(0), n(recv)]);
        }
        // Ensure the return var is defined: move from some var.
        let from = var(m, rng.gen_range(2..shape.vars_per_method), shape);
        push(inputs, "move", vec![n(ret), n(from)]);

        // Method implementations: every (type, signature) pair the method
        // might be dispatched through. Dense enough that calls resolve.
        for _ in 0..3 {
            push(
                inputs,
                "method_impl",
                vec![
                    n(rng.gen_range(0..shape.types)),
                    n(rng.gen_range(0..shape.sigs)),
                    n(rng.gen_range(0..total_methods)),
                ],
            );
        }
    }
}

fn push(inputs: &mut InputData, rel: &str, row: Vec<Value>) {
    inputs.get_mut(rel).expect("relation registered").push(row);
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_core::{Engine, InterpreterConfig};

    #[test]
    fn tiny_instance_evaluates_consistently() {
        let w = generate("t", Scale::Tiny, 3);
        let engine = Engine::from_source(&w.program).expect("compiles");
        let a = engine
            .run(InterpreterConfig::optimized(), &w.inputs)
            .expect("runs");
        let b = engine
            .run(InterpreterConfig::legacy(), &w.inputs)
            .expect("runs");
        assert_eq!(a.outputs, b.outputs);
        assert!(!a.outputs["var_points_to"].is_empty());
        assert!(!a.outputs["call_graph"].is_empty());
        assert_eq!(a.outputs["reachable_count"].len(), 1);
    }

    #[test]
    fn instances_share_the_library() {
        let a = generate("x", Scale::Tiny, 1);
        let b = generate("y", Scale::Tiny, 2);
        // The first library alloc rows coincide; the app tails differ.
        let a_alloc = &a.inputs["alloc"];
        let b_alloc = &b.inputs["alloc"];
        assert_eq!(a_alloc[0], b_alloc[0]);
        assert_ne!(a_alloc, b_alloc);
    }
}
