//! Object-safe tuple iteration, with the paper's buffering mechanism.
//!
//! The dynamic adapter layer (see [`crate::adapter`]) must expose iteration
//! through a virtual interface. A naive virtual call per `next` is the
//! dominant cost of a dynamic interpreter — a Datalog run performs billions
//! of iterator operations — so the paper amortizes it by buffering
//! [`BUFFER_SIZE`] tuples per virtual call (§3): the concrete iterator
//! implements a *monomorphic* bulk [`TupleIter::fill`], and the
//! [`BufferedTupleIter`] wrapper serves single tuples out of the buffer.

use crate::order::Order;
use crate::tuple::RamDomain;

/// Number of tuples fetched per virtual call by [`BufferedTupleIter`].
///
/// The paper picks 128 (arbitrarily); we keep the same constant so the
/// amortization factor matches.
pub const BUFFER_SIZE: usize = 128;

/// An object-safe, lending iterator over tuples of one fixed arity.
///
/// Tuples are yielded in the *stored* (index) order of the producing
/// index; callers that need source order apply [`DecodingIter`] or — in the
/// optimized interpreter — rewrite accesses statically instead
/// (paper §4.2).
pub trait TupleIter {
    /// The arity of yielded tuples.
    fn arity(&self) -> usize;

    /// Yields the next tuple, or `None` when exhausted.
    fn next_tuple(&mut self) -> Option<&[RamDomain]>;

    /// Appends up to `max` tuples, flattened, onto `out`; returns how many
    /// tuples were appended.
    ///
    /// Implementations run a monomorphic loop so that a single virtual
    /// `fill` call replaces `max` virtual `next_tuple` calls.
    fn fill(&mut self, out: &mut Vec<RamDomain>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.next_tuple() {
                Some(t) => {
                    out.extend_from_slice(t);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Drains the iterator into owned tuples (testing/IO convenience).
    fn collect_tuples(&mut self) -> Vec<Vec<RamDomain>>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        while let Some(t) = self.next_tuple() {
            out.push(t.to_vec());
        }
        out
    }

    /// Counts the remaining tuples.
    fn count_tuples(&mut self) -> usize {
        let mut n = 0;
        while self.next_tuple().is_some() {
            n += 1;
        }
        n
    }
}

impl TupleIter for Box<dyn TupleIter + '_> {
    fn arity(&self) -> usize {
        (**self).arity()
    }
    fn next_tuple(&mut self) -> Option<&[RamDomain]> {
        (**self).next_tuple()
    }
    fn fill(&mut self, out: &mut Vec<RamDomain>, max: usize) -> usize {
        (**self).fill(out, max)
    }
}

impl TupleIter for Box<dyn TupleIter + Send + '_> {
    fn arity(&self) -> usize {
        (**self).arity()
    }
    fn next_tuple(&mut self) -> Option<&[RamDomain]> {
        (**self).next_tuple()
    }
    fn fill(&mut self, out: &mut Vec<RamDomain>, max: usize) -> usize {
        (**self).fill(out, max)
    }
}

/// Adapts any `Iterator` over fixed-arity tuples into a [`TupleIter`].
///
/// The generic parameter keeps `fill` monomorphic: the inner loop compiles
/// down to direct calls into the concrete iterator.
#[derive(Debug)]
pub struct AdaptedIter<I, const N: usize> {
    inner: I,
    current: [RamDomain; N],
}

impl<I, const N: usize> AdaptedIter<I, N> {
    /// Wraps a concrete tuple iterator.
    pub fn new(inner: I) -> Self {
        AdaptedIter {
            inner,
            current: [0; N],
        }
    }
}

impl<I, const N: usize> TupleIter for AdaptedIter<I, N>
where
    I: Iterator<Item = [RamDomain; N]>,
{
    fn arity(&self) -> usize {
        N
    }

    fn next_tuple(&mut self) -> Option<&[RamDomain]> {
        self.current = self.inner.next()?;
        Some(&self.current)
    }

    fn fill(&mut self, out: &mut Vec<RamDomain>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.inner.next() {
                Some(t) => {
                    out.extend_from_slice(&t);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

/// A [`TupleIter`] over an owned, flattened tuple buffer.
#[derive(Debug)]
pub struct VecTupleIter {
    data: Vec<RamDomain>,
    arity: usize,
    pos: usize,
}

impl VecTupleIter {
    /// Creates an iterator over `data`, which must hold whole tuples.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `arity`.
    pub fn new(data: Vec<RamDomain>, arity: usize) -> Self {
        assert!(
            arity > 0 && data.len().is_multiple_of(arity),
            "ragged tuple buffer"
        );
        VecTupleIter {
            data,
            arity,
            pos: 0,
        }
    }

    /// Creates an iterator from unflattened tuples.
    pub fn from_tuples(tuples: Vec<[RamDomain; 2]>) -> Self {
        let mut data = Vec::with_capacity(tuples.len() * 2);
        for t in tuples {
            data.extend_from_slice(&t);
        }
        VecTupleIter {
            data,
            arity: 2,
            pos: 0,
        }
    }
}

impl TupleIter for VecTupleIter {
    fn arity(&self) -> usize {
        self.arity
    }

    fn next_tuple(&mut self) -> Option<&[RamDomain]> {
        if self.pos >= self.data.len() {
            return None;
        }
        let t = &self.data[self.pos..self.pos + self.arity];
        self.pos += self.arity;
        Some(t)
    }

    fn fill(&mut self, out: &mut Vec<RamDomain>, max: usize) -> usize {
        let avail = (self.data.len() - self.pos) / self.arity;
        let n = avail.min(max);
        out.extend_from_slice(&self.data[self.pos..self.pos + n * self.arity]);
        self.pos += n * self.arity;
        n
    }
}

/// The paper's buffering adapter: turns one virtual call per tuple into one
/// virtual call per [`BUFFER_SIZE`] tuples.
pub struct BufferedTupleIter<'a> {
    inner: Box<dyn TupleIter + 'a>,
    buf: Vec<RamDomain>,
    arity: usize,
    pos: usize,
    exhausted: bool,
}

impl std::fmt::Debug for BufferedTupleIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferedTupleIter")
            .field("arity", &self.arity)
            .field("buffered", &(self.buf.len() / self.arity.max(1)))
            .field("pos", &self.pos)
            .finish()
    }
}

impl<'a> BufferedTupleIter<'a> {
    /// Wraps a virtualized iterator with a [`BUFFER_SIZE`]-tuple buffer.
    pub fn new(inner: Box<dyn TupleIter + 'a>) -> Self {
        let arity = inner.arity();
        BufferedTupleIter {
            inner,
            buf: Vec::with_capacity(BUFFER_SIZE * arity),
            arity,
            pos: 0,
            exhausted: false,
        }
    }
}

impl TupleIter for BufferedTupleIter<'_> {
    fn arity(&self) -> usize {
        self.arity
    }

    fn next_tuple(&mut self) -> Option<&[RamDomain]> {
        if self.pos >= self.buf.len() {
            if self.exhausted {
                return None;
            }
            self.buf.clear();
            self.pos = 0;
            let got = self.inner.fill(&mut self.buf, BUFFER_SIZE);
            if got < BUFFER_SIZE {
                self.exhausted = true;
            }
            if got == 0 {
                return None;
            }
        }
        let t = &self.buf[self.pos..self.pos + self.arity];
        self.pos += self.arity;
        Some(t)
    }
}

/// Decodes stored-order tuples back to source order on the fly.
///
/// This is the runtime-reordering cost that the optimized interpreter
/// removes via static tuple reordering (paper §4.2); the legacy paths keep
/// it.
pub struct DecodingIter<'a> {
    inner: Box<dyn TupleIter + 'a>,
    order: Order,
    out: Vec<RamDomain>,
}

impl std::fmt::Debug for DecodingIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodingIter")
            .field("order", &self.order)
            .finish()
    }
}

impl<'a> DecodingIter<'a> {
    /// Wraps `inner`, decoding each tuple through `order`.
    pub fn new(inner: Box<dyn TupleIter + 'a>, order: Order) -> Self {
        let arity = order.arity();
        DecodingIter {
            inner,
            order,
            out: vec![0; arity],
        }
    }
}

impl TupleIter for DecodingIter<'_> {
    fn arity(&self) -> usize {
        self.order.arity()
    }

    fn next_tuple(&mut self) -> Option<&[RamDomain]> {
        let stored = self.inner.next_tuple()?;
        self.order.decode(stored, &mut self.out);
        Some(&self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u32) -> VecTupleIter {
        let mut data = Vec::new();
        for i in 0..n {
            data.extend_from_slice(&[i, i * 10]);
        }
        VecTupleIter::new(data, 2)
    }

    #[test]
    fn vec_iter_yields_in_order() {
        let mut it = sample(3);
        assert_eq!(it.next_tuple(), Some(&[0, 0][..]));
        assert_eq!(it.next_tuple(), Some(&[1, 10][..]));
        assert_eq!(it.next_tuple(), Some(&[2, 20][..]));
        assert_eq!(it.next_tuple(), None);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_buffer_rejected() {
        VecTupleIter::new(vec![1, 2, 3], 2);
    }

    #[test]
    fn fill_respects_max() {
        let mut it = sample(10);
        let mut out = Vec::new();
        assert_eq!(it.fill(&mut out, 4), 4);
        assert_eq!(out.len(), 8);
        assert_eq!(it.fill(&mut out, 100), 6);
    }

    #[test]
    fn buffered_iter_is_transparent() {
        for n in [0u32, 1, 127, 128, 129, 300] {
            let plain: Vec<_> = sample(n).collect_tuples();
            let buffered: Vec<_> = BufferedTupleIter::new(Box::new(sample(n))).collect_tuples();
            assert_eq!(plain, buffered, "n = {n}");
        }
    }

    #[test]
    fn decoding_iter_restores_source_order() {
        let order = Order::new(vec![1, 0]);
        // stored tuples are (b, a); decoding gives (a, b)
        let stored = VecTupleIter::new(vec![10, 1, 20, 2], 2);
        let mut it = DecodingIter::new(Box::new(stored), order);
        assert_eq!(it.next_tuple(), Some(&[1, 10][..]));
        assert_eq!(it.next_tuple(), Some(&[2, 20][..]));
        assert_eq!(it.next_tuple(), None);
    }

    #[test]
    fn adapted_iter_wraps_concrete_iterators() {
        let tuples = vec![[1u32, 2], [3, 4]];
        let mut it = AdaptedIter::<_, 2>::new(tuples.into_iter());
        assert_eq!(it.arity(), 2);
        assert_eq!(it.collect_tuples(), vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn count_tuples_counts() {
        assert_eq!(sample(17).count_tuples(), 17);
    }
}
