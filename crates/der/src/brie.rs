//! A Brie: a trie-based set for fixed-arity tuples.
//!
//! The Brie (the paper's reference 29) stores tuples level-by-level: one trie level per
//! tuple column, so tuples sharing prefixes share paths. Prefix queries —
//! the common primitive-search pattern — become a single descent followed
//! by an in-order traversal of a subtree, and dense key spaces compress
//! well. Like [`crate::btree::BTreeIndexSet`], it supports only the natural
//! lexicographic order and raw `u32` elements.
//!
//! Inner levels keep their edges in sorted vectors (binary-searched), and
//! the final level is a sorted vector of values; this favours the
//! insert-then-scan-heavy access pattern of semi-naive evaluation.

use crate::tuple::{cmp_tuples, RamDomain, Tuple};
use std::cmp::Ordering;

/// One trie level.
#[derive(Debug, Clone)]
enum TrieNode {
    /// An inner level: sorted edges labelled by column values.
    Inner(Vec<(RamDomain, TrieNode)>),
    /// The last level: a sorted set of column values.
    Leaf(Vec<RamDomain>),
}

impl TrieNode {
    fn new(depth_remaining: usize) -> Self {
        if depth_remaining <= 1 {
            TrieNode::Leaf(Vec::new())
        } else {
            TrieNode::Inner(Vec::new())
        }
    }
}

/// A set of fixed-arity tuples stored as a trie with one level per column.
///
/// # Example
///
/// ```
/// use stir_der::brie::Brie;
///
/// let mut set = Brie::<2>::new();
/// set.insert([1, 2]);
/// set.insert([1, 3]);
/// set.insert([2, 9]);
/// // prefix query: all tuples starting with 1
/// let hits: Vec<_> = set.range(&[1, 0], &[1, u32::MAX]).collect();
/// assert_eq!(hits, vec![[1, 2], [1, 3]]);
/// ```
#[derive(Debug, Clone)]
pub struct Brie<const N: usize> {
    root: TrieNode,
    len: usize,
}

impl<const N: usize> Brie<N> {
    /// Creates an empty set.
    ///
    /// # Panics
    ///
    /// Panics if `N == 0`; nullary relations are represented at the RAM
    /// level, not by indexes.
    pub fn new() -> Self {
        assert!(N > 0, "Brie requires arity >= 1");
        Brie {
            root: TrieNode::new(N),
            len: 0,
        }
    }

    /// Number of tuples stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all tuples.
    pub fn clear(&mut self) {
        self.root = TrieNode::new(N);
        self.len = 0;
    }

    /// Number of allocated trie nodes, including the root.
    pub fn node_count(&self) -> usize {
        fn walk(n: &TrieNode) -> usize {
            match n {
                TrieNode::Leaf(_) => 1,
                TrieNode::Inner(edges) => 1 + edges.iter().map(|(_, c)| walk(c)).sum::<usize>(),
            }
        }
        walk(&self.root)
    }

    /// Estimated heap bytes held by the trie, counted at allocated
    /// capacity.
    pub fn estimated_bytes(&self) -> usize {
        use std::mem::size_of;
        fn walk(n: &TrieNode) -> usize {
            match n {
                TrieNode::Leaf(vals) => vals.capacity() * size_of::<RamDomain>(),
                TrieNode::Inner(edges) => {
                    edges.capacity() * size_of::<(RamDomain, TrieNode)>()
                        + edges.iter().map(|(_, c)| walk(c)).sum::<usize>()
                }
            }
        }
        size_of::<TrieNode>() + walk(&self.root)
    }

    /// Inserts a tuple, returning `true` if it was not already present.
    pub fn insert(&mut self, key: Tuple<N>) -> bool {
        let mut node = &mut self.root;
        for (level, &v) in key.iter().enumerate().take(N - 1) {
            let TrieNode::Inner(edges) = node else {
                unreachable!("inner level {level} of arity {N}");
            };
            let idx = match edges.binary_search_by_key(&v, |(val, _)| *val) {
                Ok(i) => i,
                Err(i) => {
                    edges.insert(i, (v, TrieNode::new(N - level - 1)));
                    i
                }
            };
            node = &mut edges[idx].1;
        }
        let TrieNode::Leaf(values) = node else {
            unreachable!("last level of arity {N}");
        };
        match values.binary_search(&key[N - 1]) {
            Ok(_) => false,
            Err(i) => {
                values.insert(i, key[N - 1]);
                self.len += 1;
                true
            }
        }
    }

    /// Removes a tuple, returning `true` if it was present. Emptied
    /// trie paths are pruned on the way back up, so the node count
    /// tracks the live population.
    pub fn remove(&mut self, key: &Tuple<N>) -> bool {
        fn remove_rec(node: &mut TrieNode, key: &[RamDomain]) -> bool {
            match node {
                TrieNode::Leaf(values) => match values.binary_search(&key[0]) {
                    Ok(i) => {
                        values.remove(i);
                        true
                    }
                    Err(_) => false,
                },
                TrieNode::Inner(edges) => {
                    let Ok(i) = edges.binary_search_by_key(&key[0], |(v, _)| *v) else {
                        return false;
                    };
                    let removed = remove_rec(&mut edges[i].1, &key[1..]);
                    if removed {
                        let empty = match &edges[i].1 {
                            TrieNode::Leaf(values) => values.is_empty(),
                            TrieNode::Inner(children) => children.is_empty(),
                        };
                        if empty {
                            edges.remove(i);
                        }
                    }
                    removed
                }
            }
        }
        let removed = remove_rec(&mut self.root, &key[..]);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Membership test.
    pub fn contains(&self, key: &Tuple<N>) -> bool {
        let mut node = &self.root;
        for &v in key.iter().take(N - 1) {
            let TrieNode::Inner(edges) = node else {
                unreachable!();
            };
            match edges.binary_search_by_key(&v, |(v, _)| *v) {
                Ok(i) => node = &edges[i].1,
                Err(_) => return false,
            }
        }
        let TrieNode::Leaf(values) = node else {
            unreachable!();
        };
        values.binary_search(&key[N - 1]).is_ok()
    }

    /// Iterates over all tuples in lexicographic order.
    pub fn iter(&self) -> BrieIter<'_, N> {
        self.range(&[0; N], &[RamDomain::MAX; N])
    }

    /// Iterates over tuples `t` with `lo <= t <= hi` in lexicographic order.
    ///
    /// Bounds are full lexicographic bounds, matching
    /// [`crate::btree::BTreeIndexSet::range`]; prefix queries are the
    /// special case where `lo` and `hi` agree on the first `k` columns.
    pub fn range(&self, lo: &Tuple<N>, hi: &Tuple<N>) -> BrieIter<'_, N> {
        let mut iter = BrieIter {
            frames: Vec::new(),
            current: [0; N],
            lo: *lo,
            hi: *hi,
        };
        if self.len > 0 && cmp_tuples(lo, hi) != Ordering::Greater {
            iter.enter(&self.root, 0, true, true);
        }
        iter
    }

    /// Splits the inclusive window `[lo, hi]` into at most `n` disjoint
    /// sub-iterators that together yield exactly `range(lo, hi)`.
    ///
    /// Split points are drawn from the root level's edge values, so
    /// partitions fall on first-column boundaries: partition `j` covers
    /// `[(s_j, 0, ..), (s_{j+1}-1, MAX, ..)]`. Concatenating the parts in
    /// order reproduces the sequential range scan.
    pub fn partition_range(&self, lo: &Tuple<N>, hi: &Tuple<N>, n: usize) -> Vec<BrieIter<'_, N>> {
        if n <= 1 || self.len == 0 || cmp_tuples(lo, hi) == Ordering::Greater {
            return vec![self.range(lo, hi)];
        }
        // Candidate splits: first-column values strictly inside the
        // window (a split equal to `lo[0]` would empty the first part).
        let cands: Vec<RamDomain> = match &self.root {
            TrieNode::Inner(edges) => edges
                .iter()
                .map(|(v, _)| *v)
                .filter(|v| *v > lo[0] && *v <= hi[0])
                .collect(),
            TrieNode::Leaf(values) => values
                .iter()
                .copied()
                .filter(|v| *v > lo[0] && *v <= hi[0])
                .collect(),
        };
        if cands.is_empty() {
            return vec![self.range(lo, hi)];
        }
        let k = (n - 1).min(cands.len());
        let splits: Vec<RamDomain> = if cands.len() == k {
            cands
        } else {
            (0..k)
                .map(|j| cands[(j + 1) * cands.len() / (k + 1)])
                .collect()
        };
        let mut parts = Vec::with_capacity(splits.len() + 1);
        let mut start = *lo;
        for &s in &splits {
            let mut end = [RamDomain::MAX; N];
            end[0] = s - 1;
            parts.push(self.range(&start, &end));
            start = [0; N];
            start[0] = s;
        }
        parts.push(self.range(&start, hi));
        parts
    }

    /// Splits the full scan into at most `n` disjoint sub-iterators (see
    /// [`Brie::partition_range`]).
    pub fn partition(&self, n: usize) -> Vec<BrieIter<'_, N>> {
        self.partition_range(&[0; N], &[RamDomain::MAX; N], n)
    }
}

impl<const N: usize> Default for Brie<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> Extend<Tuple<N>> for Brie<N> {
    fn extend<I: IntoIterator<Item = Tuple<N>>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl<const N: usize> FromIterator<Tuple<N>> for Brie<N> {
    fn from_iter<I: IntoIterator<Item = Tuple<N>>>(iter: I) -> Self {
        let mut set = Self::new();
        set.extend(iter);
        set
    }
}

/// One traversal frame: a node plus the index of the next edge/value to
/// visit, and whether this subtree lies on the lower/upper boundary path
/// (only boundary subtrees need bound comparisons).
#[derive(Debug)]
struct Frame<'a> {
    node: &'a TrieNode,
    next: usize,
    on_lo: bool,
    on_hi: bool,
}

/// Bounded in-order iterator over a [`Brie`].
#[derive(Debug)]
pub struct BrieIter<'a, const N: usize> {
    frames: Vec<Frame<'a>>,
    current: Tuple<N>,
    lo: Tuple<N>,
    hi: Tuple<N>,
}

impl<'a, const N: usize> BrieIter<'a, N> {
    /// Pushes a frame for `node` at trie `level`, positioned at the first
    /// edge/value within bounds.
    fn enter(&mut self, node: &'a TrieNode, level: usize, on_lo: bool, on_hi: bool) {
        let start = if on_lo {
            let target = self.lo[level];
            match node {
                TrieNode::Inner(edges) => edges
                    .binary_search_by_key(&target, |(v, _)| *v)
                    .unwrap_or_else(|i| i),
                TrieNode::Leaf(values) => values.binary_search(&target).unwrap_or_else(|i| i),
            }
        } else {
            0
        };
        self.frames.push(Frame {
            node,
            next: start,
            on_lo,
            on_hi,
        });
    }
}

impl<'a, const N: usize> Iterator for BrieIter<'a, N> {
    type Item = Tuple<N>;

    fn next(&mut self) -> Option<Tuple<N>> {
        loop {
            let level = self.frames.len().checked_sub(1)?;
            let frame = self.frames.last_mut().expect("non-empty");
            match frame.node {
                TrieNode::Leaf(values) => {
                    if frame.next >= values.len() {
                        self.frames.pop();
                        continue;
                    }
                    let v = values[frame.next];
                    if frame.on_hi && v > self.hi[level] {
                        self.frames.pop();
                        continue;
                    }
                    frame.next += 1;
                    self.current[level] = v;
                    return Some(self.current);
                }
                TrieNode::Inner(edges) => {
                    if frame.next >= edges.len() {
                        self.frames.pop();
                        continue;
                    }
                    let (v, child) = &edges[frame.next];
                    let v = *v;
                    if frame.on_hi && v > self.hi[level] {
                        self.frames.pop();
                        continue;
                    }
                    // The child stays on a boundary path only if its edge
                    // value equals the bound at this level.
                    let child_on_lo = frame.on_lo && v == self.lo[level];
                    let child_on_hi = frame.on_hi && v == self.hi[level];
                    frame.next += 1;
                    self.current[level] = v;
                    self.enter(child, level + 1, child_on_lo, child_on_hi);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_brie_behaves() {
        let set = Brie::<3>::new();
        assert!(set.is_empty());
        assert!(!set.contains(&[1, 2, 3]));
        assert_eq!(set.iter().count(), 0);
    }

    #[test]
    fn insert_contains_and_dedupe() {
        let mut set = Brie::<2>::new();
        assert!(set.insert([1, 2]));
        assert!(!set.insert([1, 2]));
        assert!(set.insert([1, 3]));
        assert!(set.contains(&[1, 2]));
        assert!(!set.contains(&[2, 2]));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn arity_one_works() {
        let mut set = Brie::<1>::new();
        for v in [5u32, 1, 3, 3, 9] {
            set.insert([v]);
        }
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![[1], [3], [5], [9]]);
        assert_eq!(set.range(&[2], &[5]).collect::<Vec<_>>(), vec![[3], [5]]);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut set = Brie::<3>::new();
        let mut key = 7u32;
        for _ in 0..2000 {
            key = key.wrapping_mul(48271) % 0x7fff_ffff;
            set.insert([key % 13, key % 17, key % 19]);
        }
        let all: Vec<_> = set.iter().collect();
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(all, sorted);
        assert_eq!(all.len(), set.len());
    }

    #[test]
    fn prefix_range_matches_filter() {
        let mut set = Brie::<3>::new();
        for a in 0..5 {
            for b in 0..5 {
                for c in 0..5 {
                    set.insert([a, b, c]);
                }
            }
        }
        let hits: Vec<_> = set.range(&[2, 3, 0], &[2, 3, u32::MAX]).collect();
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|t| t[0] == 2 && t[1] == 3));
    }

    #[test]
    fn general_range_matches_filter() {
        let mut set = Brie::<2>::new();
        for a in 0..8 {
            for b in 0..8 {
                set.insert([a, b]);
            }
        }
        let lo = [3, 5];
        let hi = [5, 1];
        let got: Vec<_> = set.range(&lo, &hi).collect();
        let want: Vec<_> = set.iter().filter(|t| *t >= lo && *t <= hi).collect();
        assert_eq!(got, want);
        assert_eq!(got.first(), Some(&[3, 5]));
        assert_eq!(got.last(), Some(&[5, 1]));
    }

    #[test]
    fn clear_resets() {
        let mut set = Brie::<2>::new();
        set.insert([1, 1]);
        set.clear();
        assert!(set.is_empty());
        assert!(!set.contains(&[1, 1]));
    }

    #[test]
    fn remove_matches_std_btreeset_oracle() {
        let mut set = Brie::<3>::new();
        let mut oracle = std::collections::BTreeSet::new();
        let mut key = 5u32;
        for step in 0..15_000u32 {
            key = key.wrapping_mul(48271) % 0x7fff_ffff;
            let t = [key % 11, key % 13, key % 17];
            if step % 3 == 0 {
                assert_eq!(set.remove(&t), oracle.remove(&t), "step {step}");
            } else {
                assert_eq!(set.insert(t), oracle.insert(t), "step {step}");
            }
            assert_eq!(set.len(), oracle.len(), "step {step}");
        }
        let got: Vec<_> = set.iter().collect();
        let want: Vec<Tuple<3>> = oracle.iter().copied().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn remove_prunes_empty_paths() {
        let mut set = Brie::<3>::new();
        set.insert([1, 2, 3]);
        set.insert([1, 2, 4]);
        set.insert([5, 6, 7]);
        let nodes_before = set.node_count();
        assert!(set.remove(&[5, 6, 7]));
        assert!(!set.remove(&[5, 6, 7]));
        assert!(!set.contains(&[5, 6, 7]));
        assert!(
            set.node_count() < nodes_before,
            "emptied branch should be pruned"
        );
        assert!(set.remove(&[1, 2, 3]));
        assert!(set.remove(&[1, 2, 4]));
        assert!(set.is_empty());
        assert_eq!(set.iter().count(), 0);
        // The drained trie is reusable.
        assert!(set.insert([9, 9, 9]));
        assert!(set.contains(&[9, 9, 9]));
    }

    #[test]
    fn partitions_cover_the_scan_disjointly() {
        let mut set = Brie::<2>::new();
        let mut key = 11u32;
        for _ in 0..3000 {
            key = key.wrapping_mul(48271) % 0x7fff_ffff;
            set.insert([key % 97, key % 53]);
        }
        let expected: Vec<_> = set.iter().collect();
        for n in [1usize, 2, 4, 8, 16] {
            let parts = set.partition(n);
            assert!(parts.len() <= n.max(1));
            let joined: Vec<_> = parts.into_iter().flatten().collect();
            assert_eq!(joined, expected, "n = {n}");
        }
    }

    #[test]
    fn partition_range_matches_range() {
        let mut set = Brie::<2>::new();
        for a in 0..30u32 {
            for b in 0..10u32 {
                set.insert([a, b]);
            }
        }
        let lo = [4u32, 6];
        let hi = [22u32, 3];
        let expected: Vec<_> = set.range(&lo, &hi).collect();
        for n in [2usize, 3, 4, 9] {
            let joined: Vec<_> = set
                .partition_range(&lo, &hi, n)
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(joined, expected, "n = {n}");
        }
        // A window inside one first-column value cannot split.
        assert_eq!(set.partition_range(&[5, 0], &[5, 9], 4).len(), 1);
    }
}
