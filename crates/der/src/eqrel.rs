//! An equivalence relation over `u32` values, backed by a union-find.
//!
//! Soufflé's `eqrel` representation (the paper's reference 40) stores a binary relation
//! that is closed under reflexivity, symmetry, and transitivity in
//! union-find form: inserting `(a, b)` unions the classes of `a` and `b`,
//! and the relation *logically* contains every pair `(x, y)` with `x` and
//! `y` in the same class. Space drops from quadratic to linear while
//! membership tests stay near-constant.
//!
//! Iteration materializes pairs on the fly in sorted order so that the
//! structure is observationally equivalent to a B-tree holding the closure.

use crate::tuple::RamDomain;
use std::collections::HashMap;

/// A binary relation maintained as its reflexive-symmetric-transitive
/// closure.
///
/// # Example
///
/// ```
/// use stir_der::eqrel::EquivalenceRelation;
///
/// let mut rel = EquivalenceRelation::new();
/// rel.insert(1, 2);
/// rel.insert(2, 3);
/// assert!(rel.contains(1, 3)); // transitivity
/// assert!(rel.contains(3, 1)); // symmetry
/// assert!(rel.contains(2, 2)); // reflexivity
/// assert_eq!(rel.len(), 9);    // {1,2,3} x {1,2,3}
/// ```
#[derive(Debug, Clone, Default)]
pub struct EquivalenceRelation {
    /// Maps a domain value to its dense node id.
    ids: HashMap<RamDomain, usize>,
    /// Union-find parent pointers over dense ids.
    parent: Vec<usize>,
    /// Members of each class, stored at the class root (empty elsewhere).
    members: Vec<Vec<RamDomain>>,
    /// Total number of logical pairs, i.e. sum of |class|^2.
    pairs: usize,
}

impl EquivalenceRelation {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of *logical* pairs in the closure.
    pub fn len(&self) -> usize {
        self.pairs
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs == 0
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.parent.clear();
        self.members.clear();
        self.pairs = 0;
    }

    fn node(&mut self, v: RamDomain) -> usize {
        if let Some(&id) = self.ids.get(&v) {
            return id;
        }
        let id = self.parent.len();
        self.ids.insert(v, id);
        self.parent.push(id);
        self.members.push(vec![v]);
        self.pairs += 1; // the reflexive pair (v, v)
        id
    }

    /// Root lookup without path mutation, usable from `&self`.
    fn find(&self, mut id: usize) -> usize {
        while self.parent[id] != id {
            id = self.parent[id];
        }
        id
    }

    /// Root lookup with full path compression.
    fn find_mut(&mut self, id: usize) -> usize {
        let root = self.find(id);
        let mut cur = id;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Number of distinct equivalence classes.
    pub fn class_count(&self) -> usize {
        self.members.iter().filter(|m| !m.is_empty()).count()
    }

    /// Estimated heap bytes held by the id map, the union-find arrays and
    /// the per-class member lists, counted at allocated capacity.
    pub fn estimated_bytes(&self) -> usize {
        use std::mem::size_of;
        let ids = self.ids.capacity() * (size_of::<RamDomain>() + 2 * size_of::<usize>());
        let parent = self.parent.capacity() * size_of::<usize>();
        let members: usize = self
            .members
            .iter()
            .map(|m| size_of::<Vec<RamDomain>>() + m.capacity() * size_of::<RamDomain>())
            .sum();
        ids + parent + members
    }

    /// Inserts the pair `(a, b)`, closing the relation under equivalence.
    ///
    /// Returns `true` if the closure grew (i.e. `a` and `b` were not
    /// already related).
    pub fn insert(&mut self, a: RamDomain, b: RamDomain) -> bool {
        let ia = self.node(a);
        let ib = self.node(b);
        let ra = self.find_mut(ia);
        let rb = self.find_mut(ib);
        if ra == rb {
            return false;
        }
        // Union by size: splice the smaller member list into the larger.
        let (big, small) = if self.members[ra].len() >= self.members[rb].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let moved = std::mem::take(&mut self.members[small]);
        self.pairs += 2 * moved.len() * self.members[big].len();
        self.members[big].extend(moved);
        self.parent[small] = big;
        true
    }

    /// Removes the pair `(a, b)` (and its symmetric twin) and rebuilds
    /// the union-find as the closure of the surviving pairs. Returns
    /// `true` if the logical pair count shrank.
    ///
    /// This is a *conservative* erase: the structure stores classes, not
    /// the generator pairs that produced them, so the survivors of a
    /// class of three or more still connect `a` and `b` transitively and
    /// the erase is a no-op on the closure. Callers that need
    /// generator-accurate deletion (the resident engine's retraction
    /// path) must instead rebuild the relation from the surviving
    /// *input* pairs.
    pub fn erase(&mut self, a: RamDomain, b: RamDomain) -> bool {
        if !self.contains(a, b) {
            return false;
        }
        let survivors: Vec<[RamDomain; 2]> = self
            .iter_pairs()
            .into_iter()
            .filter(|&[x, y]| !(x == a && y == b || x == b && y == a))
            .collect();
        let before = self.pairs;
        self.clear();
        for [x, y] in survivors {
            self.insert(x, y);
        }
        self.pairs < before
    }

    /// Whether `a` and `b` are in the same class.
    pub fn contains(&self, a: RamDomain, b: RamDomain) -> bool {
        match (self.ids.get(&a), self.ids.get(&b)) {
            (Some(&ia), Some(&ib)) => self.find(ia) == self.find(ib),
            _ => false,
        }
    }

    /// The members of `a`'s class in sorted order (empty if `a` is
    /// unknown).
    pub fn class_of(&self, a: RamDomain) -> Vec<RamDomain> {
        let Some(&ia) = self.ids.get(&a) else {
            return Vec::new();
        };
        let mut out = self.members[self.find(ia)].clone();
        out.sort_unstable();
        out
    }

    /// All logical pairs `(x, y)` in sorted order.
    pub fn iter_pairs(&self) -> Vec<[RamDomain; 2]> {
        let mut firsts: Vec<RamDomain> = self.ids.keys().copied().collect();
        firsts.sort_unstable();
        let mut out = Vec::with_capacity(self.pairs);
        for x in firsts {
            for y in self.class_of(x) {
                out.push([x, y]);
            }
        }
        out
    }

    /// Logical pairs within the inclusive bounds, in sorted order.
    ///
    /// Mirrors the B-tree's primitive search; the common case is
    /// `lo = [a, 0]`, `hi = [a, MAX]`, which enumerates `a`'s class.
    pub fn range_pairs(&self, lo: [RamDomain; 2], hi: [RamDomain; 2]) -> Vec<[RamDomain; 2]> {
        if lo > hi {
            return Vec::new();
        }
        let mut firsts: Vec<RamDomain> = self
            .ids
            .keys()
            .copied()
            .filter(|&x| x >= lo[0] && x <= hi[0])
            .collect();
        firsts.sort_unstable();
        let mut out = Vec::new();
        for x in firsts {
            for y in self.class_of(x) {
                let pair = [x, y];
                if pair >= lo && pair <= hi {
                    out.push(pair);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_relation_behaves() {
        let rel = EquivalenceRelation::new();
        assert!(rel.is_empty());
        assert!(!rel.contains(1, 1));
        assert!(rel.iter_pairs().is_empty());
    }

    #[test]
    fn closure_properties_hold() {
        let mut rel = EquivalenceRelation::new();
        assert!(rel.insert(1, 2));
        assert!(rel.contains(1, 1));
        assert!(rel.contains(2, 1));
        assert!(!rel.contains(1, 3));
        assert!(rel.insert(3, 4));
        assert!(rel.insert(2, 3)); // merges {1,2} and {3,4}
        assert!(rel.contains(1, 4));
        assert!(!rel.insert(4, 1)); // already related
    }

    #[test]
    fn pair_count_is_sum_of_squares() {
        let mut rel = EquivalenceRelation::new();
        rel.insert(1, 2);
        rel.insert(3, 3);
        assert_eq!(rel.len(), 4 + 1);
        rel.insert(2, 3);
        assert_eq!(rel.len(), 9);
        assert_eq!(rel.iter_pairs().len(), 9);
    }

    #[test]
    fn iteration_is_sorted_and_closed() {
        let mut rel = EquivalenceRelation::new();
        rel.insert(5, 1);
        rel.insert(9, 9);
        rel.insert(1, 7);
        let pairs = rel.iter_pairs();
        let mut sorted = pairs.clone();
        sorted.sort();
        assert_eq!(pairs, sorted);
        assert!(pairs.contains(&[7, 5]));
        assert!(pairs.contains(&[9, 9]));
        assert_eq!(pairs.len(), 9 + 1);
    }

    #[test]
    fn range_enumerates_one_class() {
        let mut rel = EquivalenceRelation::new();
        rel.insert(1, 2);
        rel.insert(2, 9);
        rel.insert(4, 5);
        let hits = rel.range_pairs([2, 0], [2, u32::MAX]);
        assert_eq!(hits, vec![[2, 1], [2, 2], [2, 9]]);
        assert!(rel.range_pairs([3, 0], [3, u32::MAX]).is_empty());
    }

    #[test]
    fn large_unions_stay_consistent() {
        let mut rel = EquivalenceRelation::new();
        // Chain 0-1-2-...-199 => one class of 200.
        for v in 0..199u32 {
            rel.insert(v, v + 1);
        }
        assert_eq!(rel.len(), 200 * 200);
        assert!(rel.contains(0, 199));
        assert_eq!(rel.class_of(57).len(), 200);
    }

    #[test]
    fn clear_resets() {
        let mut rel = EquivalenceRelation::new();
        rel.insert(1, 2);
        rel.clear();
        assert!(rel.is_empty());
        assert!(!rel.contains(1, 2));
    }

    #[test]
    fn erase_splits_a_pair_class() {
        let mut rel = EquivalenceRelation::new();
        rel.insert(1, 2);
        rel.insert(4, 5);
        assert_eq!(rel.len(), 8);
        assert!(rel.erase(1, 2));
        assert!(!rel.contains(1, 2));
        assert!(!rel.contains(2, 1));
        assert!(rel.contains(1, 1), "reflexive survivors stay");
        assert!(rel.contains(2, 2));
        assert!(rel.contains(4, 5), "other classes untouched");
        assert_eq!(rel.len(), 6);
        assert!(!rel.erase(1, 2), "already gone");
        assert!(!rel.erase(7, 8), "unknown pair");
    }

    #[test]
    fn erase_is_conservative_on_larger_classes() {
        // {1,2,3}: the survivors (1,3),(3,2) re-derive (1,2) in the
        // closure, so the erase is a documented no-op.
        let mut rel = EquivalenceRelation::new();
        rel.insert(1, 2);
        rel.insert(2, 3);
        assert!(!rel.erase(1, 2));
        assert!(rel.contains(1, 2));
        assert_eq!(rel.len(), 9);
    }

    #[test]
    fn erase_reflexive_pair_drops_a_singleton() {
        let mut rel = EquivalenceRelation::new();
        rel.insert(7, 7);
        rel.insert(1, 2);
        assert!(rel.erase(7, 7));
        assert!(!rel.contains(7, 7));
        assert_eq!(rel.len(), 4);
    }
}
