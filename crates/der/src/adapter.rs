//! The dynamic index adapter: de-specialized DER structures behind an
//! object-safe interface.
//!
//! This mirrors the paper's `IndexAdapter` base class (Fig. 7): a thin
//! virtual layer over the statically-typed structures, performing the
//! dynamic tuple reordering of de-specialization step 1 on the way in.
//! The optimized interpreter bypasses most of this interface by
//! downcasting ([`IndexAdapter::as_any`]) to the concrete monomorphized
//! type — the Rust analogue of the paper's static instruction generation
//! (§4.1) — while the legacy paths and the Fig. 18 ablation stay fully
//! virtual.

use crate::brie::Brie;
use crate::btree::BTreeIndexSet;
use crate::eqrel::EquivalenceRelation;
use crate::iter::{AdaptedIter, TupleIter, VecTupleIter};
use crate::order::Order;
use crate::tuple::{tuple_from_slice, RamDomain, Tuple};
use std::any::Any;
use std::fmt::Debug;

/// Structural statistics of one index, passively sampled for
/// observability (the engine's metrics registry and JSON profile).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of stored tuples (logical, after set semantics).
    pub tuples: usize,
    /// Allocated tree/trie nodes (or equivalence classes for eqrel).
    pub nodes: usize,
    /// Estimated heap footprint in bytes (capacities, not lengths).
    pub bytes: usize,
}

/// Object-safe interface to a single index of a relation.
///
/// Tuples passed to [`insert`](Self::insert) and
/// [`contains`](Self::contains) are in *source* order; the adapter encodes
/// them through its [`Order`]. Range bounds and yielded tuples are in
/// *stored* order (patterns permute component-wise, so callers encode
/// bounds with [`IndexAdapter::order`] — or build them directly in stored
/// order, as the optimized interpreter does).
pub trait IndexAdapter: Debug + Send + Sync {
    /// The lexicographic order realized by this index.
    fn order(&self) -> &Order;

    /// Tuple arity.
    fn arity(&self) -> usize;

    /// Number of stored tuples.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structural statistics: tuple count, node count, estimated bytes.
    ///
    /// A read-only walk of the structure; safe to call at any point of a
    /// run.
    fn stats(&self) -> IndexStats;

    /// Removes all tuples.
    fn clear(&mut self);

    /// Inserts a source-order tuple; `true` if it was new.
    fn insert(&mut self, t: &[RamDomain]) -> bool;

    /// Removes a source-order tuple; `true` if it was present and the
    /// structure shrank. Best-effort on structures that do not store
    /// tuples explicitly: [`EqRelIndex`] can only drop a pair the
    /// closure of the survivors does not re-derive (see
    /// [`crate::eqrel::EquivalenceRelation::erase`]), so callers
    /// needing generator-accurate eqrel deletion must rebuild from the
    /// surviving input pairs instead.
    fn erase(&mut self, t: &[RamDomain]) -> bool;

    /// Removes every tuple whose first `prefix.len()` *stored-order*
    /// columns equal `prefix` (the prefix special case of the bound
    /// convention of [`range`](Self::range)); returns how many tuples
    /// were removed.
    fn erase_prefix(&mut self, prefix: &[RamDomain]) -> usize;

    /// Membership test for a source-order tuple.
    fn contains(&self, t: &[RamDomain]) -> bool;

    /// Membership test for a stored-order tuple (no encoding).
    fn contains_stored(&self, t: &[RamDomain]) -> bool;

    /// Whether tuples are kept un-permuted, so "stored" order coincides
    /// with source order regardless of [`order`](Self::order). The
    /// comparator-based legacy index works this way; consumers that
    /// decode stored-order scans back into source order must skip the
    /// decode for such indexes.
    fn stores_source_order(&self) -> bool {
        false
    }

    /// Full scan in stored order. The iterator is `Send` so parallel
    /// workers can drive it (all implementations borrow `&self`, which is
    /// `Sync`).
    fn scan(&self) -> Box<dyn TupleIter + Send + '_>;

    /// Inclusive range scan with stored-order bounds, yielding stored-order
    /// tuples.
    fn range(&self, lo: &[RamDomain], hi: &[RamDomain]) -> Box<dyn TupleIter + Send + '_>;

    /// Splits the full scan into disjoint morsels of roughly `target`
    /// tuples each — the work-stealing parallel-evaluation primitive.
    /// Concatenating every morsel in order yields exactly
    /// [`scan`](Self::scan).
    ///
    /// The default streams the ordinary scan cursor: workers share it and
    /// drain `target`-sized batches under a lock, so representations
    /// without a structural split never materialize per-chunk copies (the
    /// comparator-based legacy index and eqrel take this path — their
    /// scans build one flat buffer which is then handed out in
    /// size-bounded batches). Tree-backed adapters override this with
    /// structural zero-copy chunks.
    fn morsels(&self, target: usize) -> Morsels<'_> {
        let _ = target;
        Morsels::Stream(self.scan())
    }

    /// Splits an inclusive range scan into disjoint morsels (see
    /// [`morsels`](Self::morsels)). Bounds follow the same convention as
    /// [`range`](Self::range) for this adapter.
    fn morsels_range(&self, lo: &[RamDomain], hi: &[RamDomain], target: usize) -> Morsels<'_> {
        let _ = target;
        Morsels::Stream(self.range(lo, hi))
    }

    /// Downcast support for the static instruction paths.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Disjoint work units of one index scan, sized for morsel-driven
/// parallel evaluation (see [`IndexAdapter::morsels`]).
pub enum Morsels<'a> {
    /// Structural zero-copy chunks: disjoint sub-iterators whose in-order
    /// concatenation equals the full scan. Tree-backed indexes derive
    /// them from node-level split keys, so each chunk is a window into
    /// the existing structure.
    Chunks(Vec<Box<dyn TupleIter + Send + 'a>>),
    /// Streaming fallback for representations without a structural split:
    /// one shared cursor that workers drain in size-bounded batches under
    /// a lock.
    Stream(Box<dyn TupleIter + Send + 'a>),
}

impl Debug for Morsels<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Morsels::Chunks(c) => write!(f, "Morsels::Chunks({})", c.len()),
            Morsels::Stream(_) => write!(f, "Morsels::Stream"),
        }
    }
}

/// How many structural chunks to request so each holds roughly `target`
/// tuples. Tree partitioning treats the result as an upper bound (split
/// candidates come from the top node levels), so over-asking only makes
/// chunks finer, never unbalanced.
fn chunk_count(len: usize, target: usize) -> usize {
    len.div_ceil(target.max(1)).max(1)
}

/// A B-tree index: [`BTreeIndexSet`] plus an insertion-time reordering.
///
/// The paper's `BTreeIndex<Arity>` adapter (Fig. 7).
#[derive(Debug, Clone)]
pub struct BTreeIndex<const N: usize> {
    set: BTreeIndexSet<N>,
    order: Order,
    natural: bool,
}

impl<const N: usize> BTreeIndex<N> {
    /// Creates an empty index realizing `order`.
    ///
    /// # Panics
    ///
    /// Panics if `order.arity() != N`.
    pub fn new(order: Order) -> Self {
        assert_eq!(order.arity(), N, "order arity must match index arity");
        let natural = order.is_natural();
        BTreeIndex {
            set: BTreeIndexSet::new(),
            order,
            natural,
        }
    }

    /// Direct access to the monomorphized set (static instruction paths).
    pub fn raw(&self) -> &BTreeIndexSet<N> {
        &self.set
    }

    /// Mutable access to the monomorphized set.
    pub fn raw_mut(&mut self) -> &mut BTreeIndexSet<N> {
        &mut self.set
    }

    /// Encodes a source-order slice into a stored-order tuple.
    #[inline]
    pub fn encode(&self, t: &[RamDomain]) -> Tuple<N> {
        if self.natural {
            tuple_from_slice(t)
        } else {
            let mut out = [0; N];
            self.order.encode(t, &mut out);
            out
        }
    }
}

impl<const N: usize> IndexAdapter for BTreeIndex<N> {
    fn order(&self) -> &Order {
        &self.order
    }

    fn arity(&self) -> usize {
        N
    }

    fn len(&self) -> usize {
        self.set.len()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            tuples: self.set.len(),
            nodes: self.set.node_count(),
            bytes: self.set.estimated_bytes(),
        }
    }

    fn clear(&mut self) {
        self.set.clear();
    }

    fn insert(&mut self, t: &[RamDomain]) -> bool {
        let enc = self.encode(t);
        self.set.insert(enc)
    }

    fn erase(&mut self, t: &[RamDomain]) -> bool {
        let enc = self.encode(t);
        self.set.remove(&enc)
    }

    fn erase_prefix(&mut self, prefix: &[RamDomain]) -> usize {
        debug_assert!(prefix.len() <= N);
        let mut lo = [0; N];
        let mut hi = [RamDomain::MAX; N];
        lo[..prefix.len()].copy_from_slice(prefix);
        hi[..prefix.len()].copy_from_slice(prefix);
        let doomed: Vec<Tuple<N>> = self.set.range(&lo, &hi).copied().collect();
        for t in &doomed {
            self.set.remove(t);
        }
        doomed.len()
    }

    fn contains(&self, t: &[RamDomain]) -> bool {
        let enc = self.encode(t);
        self.set.contains(&enc)
    }

    fn contains_stored(&self, t: &[RamDomain]) -> bool {
        self.set.contains(&tuple_from_slice(t))
    }

    fn scan(&self) -> Box<dyn TupleIter + Send + '_> {
        Box::new(AdaptedIter::<_, N>::new(self.set.iter().copied()))
    }

    fn range(&self, lo: &[RamDomain], hi: &[RamDomain]) -> Box<dyn TupleIter + Send + '_> {
        let lo: Tuple<N> = tuple_from_slice(lo);
        let hi: Tuple<N> = tuple_from_slice(hi);
        Box::new(AdaptedIter::<_, N>::new(self.set.range(&lo, &hi).copied()))
    }

    fn morsels(&self, target: usize) -> Morsels<'_> {
        Morsels::Chunks(
            self.set
                .partition(chunk_count(self.set.len(), target))
                .into_iter()
                .map(|p| {
                    Box::new(AdaptedIter::<_, N>::new(p.copied())) as Box<dyn TupleIter + Send>
                })
                .collect(),
        )
    }

    fn morsels_range(&self, lo: &[RamDomain], hi: &[RamDomain], target: usize) -> Morsels<'_> {
        let lo: Tuple<N> = tuple_from_slice(lo);
        let hi: Tuple<N> = tuple_from_slice(hi);
        Morsels::Chunks(
            self.set
                .partition_range(&lo, &hi, chunk_count(self.set.len(), target))
                .into_iter()
                .map(|p| {
                    Box::new(AdaptedIter::<_, N>::new(p.copied())) as Box<dyn TupleIter + Send>
                })
                .collect(),
        )
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A Brie (trie) index.
#[derive(Debug, Clone)]
pub struct BrieIndex<const N: usize> {
    set: Brie<N>,
    order: Order,
    natural: bool,
}

impl<const N: usize> BrieIndex<N> {
    /// Creates an empty index realizing `order`.
    ///
    /// # Panics
    ///
    /// Panics if `order.arity() != N`.
    pub fn new(order: Order) -> Self {
        assert_eq!(order.arity(), N, "order arity must match index arity");
        let natural = order.is_natural();
        BrieIndex {
            set: Brie::new(),
            order,
            natural,
        }
    }

    /// Direct access to the monomorphized trie (static instruction paths).
    pub fn raw(&self) -> &Brie<N> {
        &self.set
    }

    /// Mutable access to the monomorphized trie.
    pub fn raw_mut(&mut self) -> &mut Brie<N> {
        &mut self.set
    }

    /// Encodes a source-order slice into a stored-order tuple.
    #[inline]
    pub fn encode(&self, t: &[RamDomain]) -> Tuple<N> {
        if self.natural {
            tuple_from_slice(t)
        } else {
            let mut out = [0; N];
            self.order.encode(t, &mut out);
            out
        }
    }
}

impl<const N: usize> IndexAdapter for BrieIndex<N> {
    fn order(&self) -> &Order {
        &self.order
    }

    fn arity(&self) -> usize {
        N
    }

    fn len(&self) -> usize {
        self.set.len()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            tuples: self.set.len(),
            nodes: self.set.node_count(),
            bytes: self.set.estimated_bytes(),
        }
    }

    fn clear(&mut self) {
        self.set.clear();
    }

    fn insert(&mut self, t: &[RamDomain]) -> bool {
        let enc = self.encode(t);
        self.set.insert(enc)
    }

    fn erase(&mut self, t: &[RamDomain]) -> bool {
        let enc = self.encode(t);
        self.set.remove(&enc)
    }

    fn erase_prefix(&mut self, prefix: &[RamDomain]) -> usize {
        debug_assert!(prefix.len() <= N);
        let mut lo = [0; N];
        let mut hi = [RamDomain::MAX; N];
        lo[..prefix.len()].copy_from_slice(prefix);
        hi[..prefix.len()].copy_from_slice(prefix);
        let doomed: Vec<Tuple<N>> = self.set.range(&lo, &hi).collect();
        for t in &doomed {
            self.set.remove(t);
        }
        doomed.len()
    }

    fn contains(&self, t: &[RamDomain]) -> bool {
        let enc = self.encode(t);
        self.set.contains(&enc)
    }

    fn contains_stored(&self, t: &[RamDomain]) -> bool {
        self.set.contains(&tuple_from_slice(t))
    }

    fn scan(&self) -> Box<dyn TupleIter + Send + '_> {
        Box::new(AdaptedIter::<_, N>::new(self.set.iter()))
    }

    fn range(&self, lo: &[RamDomain], hi: &[RamDomain]) -> Box<dyn TupleIter + Send + '_> {
        let lo: Tuple<N> = tuple_from_slice(lo);
        let hi: Tuple<N> = tuple_from_slice(hi);
        Box::new(AdaptedIter::<_, N>::new(self.set.range(&lo, &hi)))
    }

    fn morsels(&self, target: usize) -> Morsels<'_> {
        Morsels::Chunks(
            self.set
                .partition(chunk_count(self.set.len(), target))
                .into_iter()
                .map(|p| Box::new(AdaptedIter::<_, N>::new(p)) as Box<dyn TupleIter + Send>)
                .collect(),
        )
    }

    fn morsels_range(&self, lo: &[RamDomain], hi: &[RamDomain], target: usize) -> Morsels<'_> {
        let lo: Tuple<N> = tuple_from_slice(lo);
        let hi: Tuple<N> = tuple_from_slice(hi);
        Morsels::Chunks(
            self.set
                .partition_range(&lo, &hi, chunk_count(self.set.len(), target))
                .into_iter()
                .map(|p| Box::new(AdaptedIter::<_, N>::new(p)) as Box<dyn TupleIter + Send>)
                .collect(),
        )
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An equivalence-relation index (always binary, always natural order —
/// the relation is symmetric, so column order carries no information).
#[derive(Debug, Clone)]
pub struct EqRelIndex {
    rel: EquivalenceRelation,
    order: Order,
}

impl Default for EqRelIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl EqRelIndex {
    /// Creates an empty equivalence-relation index.
    pub fn new() -> Self {
        EqRelIndex {
            rel: EquivalenceRelation::new(),
            order: Order::natural(2),
        }
    }

    /// Direct access to the union-find (static instruction paths).
    pub fn raw(&self) -> &EquivalenceRelation {
        &self.rel
    }

    /// Mutable access to the union-find.
    pub fn raw_mut(&mut self) -> &mut EquivalenceRelation {
        &mut self.rel
    }
}

impl IndexAdapter for EqRelIndex {
    fn order(&self) -> &Order {
        &self.order
    }

    fn arity(&self) -> usize {
        2
    }

    fn len(&self) -> usize {
        self.rel.len()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            tuples: self.rel.len(),
            nodes: self.rel.class_count(),
            bytes: self.rel.estimated_bytes(),
        }
    }

    fn clear(&mut self) {
        self.rel.clear();
    }

    fn insert(&mut self, t: &[RamDomain]) -> bool {
        debug_assert_eq!(t.len(), 2);
        self.rel.insert(t[0], t[1])
    }

    fn erase(&mut self, t: &[RamDomain]) -> bool {
        debug_assert_eq!(t.len(), 2);
        self.rel.erase(t[0], t[1])
    }

    fn erase_prefix(&mut self, prefix: &[RamDomain]) -> usize {
        debug_assert!(prefix.len() <= 2);
        let mut lo = [0; 2];
        let mut hi = [RamDomain::MAX; 2];
        lo[..prefix.len()].copy_from_slice(prefix);
        hi[..prefix.len()].copy_from_slice(prefix);
        let mut erased = 0;
        for [a, b] in self.rel.range_pairs(lo, hi) {
            if self.rel.erase(a, b) {
                erased += 1;
            }
        }
        erased
    }

    fn contains(&self, t: &[RamDomain]) -> bool {
        debug_assert_eq!(t.len(), 2);
        self.rel.contains(t[0], t[1])
    }

    fn contains_stored(&self, t: &[RamDomain]) -> bool {
        self.contains(t)
    }

    fn scan(&self) -> Box<dyn TupleIter + Send + '_> {
        Box::new(VecTupleIter::from_tuples(self.rel.iter_pairs()))
    }

    fn range(&self, lo: &[RamDomain], hi: &[RamDomain]) -> Box<dyn TupleIter + Send + '_> {
        debug_assert_eq!(lo.len(), 2);
        debug_assert_eq!(hi.len(), 2);
        Box::new(VecTupleIter::from_tuples(
            self.rel.range_pairs([lo[0], lo[1]], [hi[0], hi[1]]),
        ))
    }

    // `morsels`/`morsels_range` stay on the streaming default: the
    // union-find enumerates its closure into one flat pair buffer, which
    // workers then drain in size-bounded batches — no per-chunk copies.

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btree_adapter_reorders_on_insert() {
        // Order [1,0]: stored tuples are (second, first).
        let mut idx = BTreeIndex::<2>::new(Order::new(vec![1, 0]));
        idx.insert(&[1, 50]);
        idx.insert(&[2, 40]);
        idx.insert(&[3, 40]);
        assert!(idx.contains(&[1, 50]));
        assert!(!idx.contains(&[50, 1]));
        // Stored order sorts by source column 1 first.
        let stored = idx.scan().collect_tuples();
        assert_eq!(stored, vec![vec![40, 2], vec![40, 3], vec![50, 1]]);
        // Prefix search on stored order: all tuples with source column 1 == 40.
        let hits = idx.range(&[40, 0], &[40, u32::MAX]).collect_tuples();
        assert_eq!(hits, vec![vec![40, 2], vec![40, 3]]);
    }

    #[test]
    fn btree_adapter_natural_order_is_identity() {
        let mut idx = BTreeIndex::<3>::new(Order::natural(3));
        idx.insert(&[3, 2, 1]);
        assert_eq!(idx.scan().collect_tuples(), vec![vec![3, 2, 1]]);
        assert!(idx.contains_stored(&[3, 2, 1]));
    }

    #[test]
    fn brie_adapter_matches_btree_adapter() {
        let order = Order::new(vec![2, 0, 1]);
        let mut bt = BTreeIndex::<3>::new(order.clone());
        let mut br = BrieIndex::<3>::new(order);
        let mut seed = 11u32;
        for _ in 0..500 {
            seed = seed.wrapping_mul(48271) % 0x7fff_ffff;
            let t = [seed % 7, seed % 11, seed % 5];
            assert_eq!(bt.insert(&t), br.insert(&t));
        }
        assert_eq!(bt.len(), br.len());
        assert_eq!(bt.scan().collect_tuples(), br.scan().collect_tuples());
        let lo = [2, 0, 0];
        let hi = [2, u32::MAX, u32::MAX];
        assert_eq!(
            bt.range(&lo, &hi).collect_tuples(),
            br.range(&lo, &hi).collect_tuples()
        );
    }

    #[test]
    fn eqrel_adapter_closes_pairs() {
        let mut idx = EqRelIndex::new();
        assert!(idx.insert(&[1, 2]));
        assert!(idx.contains(&[2, 1]));
        assert!(idx.contains(&[1, 1]));
        assert_eq!(idx.len(), 4);
        let hits = idx.range(&[1, 0], &[1, u32::MAX]).collect_tuples();
        assert_eq!(hits, vec![vec![1, 1], vec![1, 2]]);
    }

    #[test]
    fn adapter_stats_track_structure() {
        let mut bt = BTreeIndex::<2>::new(Order::natural(2));
        let mut br = BrieIndex::<2>::new(Order::natural(2));
        let mut eq = EqRelIndex::new();
        for i in 0..100u32 {
            bt.insert(&[i, i + 1]);
            br.insert(&[i, i + 1]);
        }
        eq.insert(&[1, 2]);
        eq.insert(&[3, 4]);
        for idx in [&bt as &dyn IndexAdapter, &br as &dyn IndexAdapter] {
            let s = idx.stats();
            assert_eq!(s.tuples, 100);
            assert!(s.nodes >= 1, "{s:?}");
            assert!(
                s.bytes >= 100 * 2 * std::mem::size_of::<RamDomain>(),
                "{s:?}"
            );
        }
        let s = eq.stats();
        assert_eq!(s.tuples, 8); // two classes of 2 => 2 * 2^2 pairs
        assert_eq!(s.nodes, 2); // two equivalence classes
        assert!(s.bytes > 0);
    }

    /// Drains every morsel in order into owned tuples.
    fn drain(m: Morsels<'_>) -> Vec<Vec<RamDomain>> {
        match m {
            Morsels::Chunks(chunks) => {
                let mut out = Vec::new();
                for mut c in chunks {
                    out.extend(c.collect_tuples());
                }
                out
            }
            Morsels::Stream(mut it) => it.collect_tuples(),
        }
    }

    #[test]
    fn morsels_concatenate_to_sequential_scans() {
        let order = Order::new(vec![1, 0]);
        let mut bt = BTreeIndex::<2>::new(order.clone());
        let mut br = BrieIndex::<2>::new(order);
        let mut eq = EqRelIndex::new();
        let mut seed = 3u32;
        for _ in 0..800 {
            seed = seed.wrapping_mul(48271) % 0x7fff_ffff;
            let t = [seed % 41, seed % 23];
            bt.insert(&t);
            br.insert(&t);
            eq.insert(&[seed % 19, seed % 13]);
        }
        for idx in [
            &bt as &dyn IndexAdapter,
            &br as &dyn IndexAdapter,
            &eq as &dyn IndexAdapter,
        ] {
            let expected = idx.scan().collect_tuples();
            for target in [1usize, 7, 64, usize::MAX] {
                assert_eq!(
                    drain(idx.morsels(target)),
                    expected,
                    "scan, target {target}"
                );
            }
            let (lo, hi) = ([3u32, 0], [17u32, u32::MAX]);
            let expected = idx.range(&lo, &hi).collect_tuples();
            for target in [1usize, 16, usize::MAX] {
                assert_eq!(
                    drain(idx.morsels_range(&lo, &hi, target)),
                    expected,
                    "range, target {target}"
                );
            }
        }
    }

    #[test]
    fn tree_morsels_are_structural_and_size_bounded() {
        let mut bt = BTreeIndex::<2>::new(Order::natural(2));
        for i in 0..4000u32 {
            bt.insert(&[i / 10, i % 97]);
        }
        // Small targets yield many chunks; a target at least the size of
        // the index yields one.
        match bt.morsels(64) {
            Morsels::Chunks(chunks) => assert!(chunks.len() > 4, "{}", chunks.len()),
            Morsels::Stream(_) => panic!("b-tree should chunk structurally"),
        }
        match bt.morsels(usize::MAX) {
            Morsels::Chunks(chunks) => assert_eq!(chunks.len(), 1),
            Morsels::Stream(_) => panic!("b-tree should chunk structurally"),
        };
    }

    #[test]
    fn empty_and_tiny_adapters_morselize() {
        let bt = BTreeIndex::<2>::new(Order::natural(2));
        assert_eq!(drain(bt.morsels(4)), Vec::<Vec<u32>>::new());
        let mut one = BTreeIndex::<1>::new(Order::natural(1));
        one.insert(&[9]);
        assert_eq!(drain(one.morsels(1024)), vec![vec![9]]);
        assert_eq!(drain(one.morsels(1)), vec![vec![9]]);
        let eq = EqRelIndex::new();
        assert_eq!(drain(eq.morsels(8)), Vec::<Vec<u32>>::new());
    }

    #[test]
    fn erase_through_every_adapter() {
        let order = Order::new(vec![1, 0]);
        let mut bt = BTreeIndex::<2>::new(order.clone());
        let mut br = BrieIndex::<2>::new(order);
        for idx in [&mut bt as &mut dyn IndexAdapter, &mut br] {
            idx.insert(&[1, 50]);
            idx.insert(&[2, 40]);
            idx.insert(&[3, 40]);
            assert!(idx.erase(&[1, 50]), "source-order erase encodes");
            assert!(!idx.erase(&[1, 50]));
            assert!(!idx.contains(&[1, 50]));
            assert_eq!(idx.len(), 2);
            // Stored-order prefix: source column 1 == 40.
            assert_eq!(idx.erase_prefix(&[40]), 2);
            assert!(idx.is_empty());
            assert_eq!(idx.scan().collect_tuples(), Vec::<Vec<u32>>::new());
        }

        let mut eq = EqRelIndex::new();
        eq.insert(&[1, 2]);
        assert!(eq.erase(&[1, 2]), "pair class splits");
        assert!(!eq.contains(&[1, 2]));
        assert!(eq.contains(&[1, 1]), "reflexive survivors remain");
        assert!(eq.erase_prefix(&[1]) > 0, "prefix erase drops 1's row");
    }

    #[test]
    fn adapters_downcast_to_concrete_types() {
        let idx: Box<dyn IndexAdapter> = Box::new(BTreeIndex::<2>::new(Order::natural(2)));
        assert!(idx.as_any().downcast_ref::<BTreeIndex<2>>().is_some());
        assert!(idx.as_any().downcast_ref::<BTreeIndex<3>>().is_none());
        assert!(idx.as_any().downcast_ref::<BrieIndex<2>>().is_none());
    }
}
