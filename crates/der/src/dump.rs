//! Tuple-level binary serialization of relations.
//!
//! The durability layer (snapshots in `stir_core::wal`) persists whole
//! relations; the der crate owns the byte format because only it knows
//! how to enumerate tuples independently of the index layout. The format
//! is deliberately layout-free: tuples are written in *source* order
//! (via [`Relation::to_sorted_tuples`]), so a dump taken from one index
//! configuration or representation loads cleanly into any other — a
//! snapshot written by the STI mode restores into the legacy mode and
//! vice versa.
//!
//! Wire format (all integers little-endian):
//!
//! ```text
//! [u64 tuple_count] then tuple_count × arity × [u32 value]
//! ```
//!
//! Nullary relations encode their presence flag as a count of 0 or 1
//! with zero payload bytes per tuple. Integrity (checksums, lengths) is
//! the *container's* job — the snapshot file wraps these sections in a
//! CRC — so this module only validates structural well-formedness
//! (truncation).

use crate::relation::Relation;
use crate::tuple::RamDomain;
use std::io::{Read, Write};

/// Writes all tuples of `rel` (source order, sorted) to `w`.
///
/// Returns the number of tuples written.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_tuples(w: &mut dyn Write, rel: &Relation) -> std::io::Result<u64> {
    let tuples = rel.to_sorted_tuples();
    let count = tuples.len() as u64;
    w.write_all(&count.to_le_bytes())?;
    for t in &tuples {
        for &v in t {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(count)
}

/// Reads a tuple section written by [`write_tuples`] for a relation of
/// the given arity, returning the decoded tuples.
///
/// # Errors
///
/// Fails on I/O errors and on truncated input (`UnexpectedEof`).
pub fn read_tuples(r: &mut dyn Read, arity: usize) -> std::io::Result<Vec<Vec<RamDomain>>> {
    let mut count8 = [0u8; 8];
    r.read_exact(&mut count8)?;
    let count = u64::from_le_bytes(count8);
    let mut tuples = Vec::new();
    let mut word = [0u8; 4];
    for _ in 0..count {
        let mut t = Vec::with_capacity(arity);
        for _ in 0..arity {
            r.read_exact(&mut word)?;
            t.push(RamDomain::from_le_bytes(word));
        }
        tuples.push(t);
    }
    Ok(tuples)
}

/// Reads a tuple section and inserts every tuple into `rel` (all
/// indexes). Duplicates already present are absorbed, so loading is
/// idempotent.
///
/// Returns the number of tuples read (not the number freshly inserted).
///
/// # Errors
///
/// Fails on I/O errors and truncated input.
pub fn load_tuples(rel: &mut Relation, r: &mut dyn Read) -> std::io::Result<u64> {
    let tuples = read_tuples(r, rel.arity())?;
    let n = tuples.len() as u64;
    for t in &tuples {
        rel.insert(t);
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynindex::DynBTreeIndex;
    use crate::factory::{IndexSpec, Representation};
    use crate::order::Order;
    use crate::IndexAdapter;

    fn sample() -> Relation {
        let mut rel = Relation::new(
            "edge",
            2,
            vec![
                IndexSpec::btree_natural(2),
                IndexSpec::new(Representation::BTree, Order::new(vec![1, 0])),
            ],
        );
        rel.insert(&[1, 9]);
        rel.insert(&[2, 8]);
        rel.insert(&[3, 7]);
        rel
    }

    #[test]
    fn round_trips_through_bytes() {
        let src = sample();
        let mut buf = Vec::new();
        assert_eq!(write_tuples(&mut buf, &src).expect("writes"), 3);
        assert_eq!(buf.len(), 8 + 3 * 2 * 4);

        let mut dst = sample();
        dst.clear();
        let mut cursor = buf.as_slice();
        assert_eq!(load_tuples(&mut dst, &mut cursor).expect("loads"), 3);
        assert!(cursor.is_empty(), "section is self-delimiting");
        assert_eq!(dst.to_sorted_tuples(), src.to_sorted_tuples());
        // Secondary index is rebuilt too.
        assert_eq!(dst.index(1).len(), 3);
    }

    #[test]
    fn loads_across_different_layouts() {
        // A dump from a permuted-primary STI relation restores into a
        // legacy comparator relation (and back) because the bytes are
        // source-order tuples, not index storage.
        let src = sample();
        let mut buf = Vec::new();
        write_tuples(&mut buf, &src).expect("writes");

        let mut legacy = Relation::from_adapters(
            "edge",
            2,
            vec![Box::new(DynBTreeIndex::new(Order::new(vec![1, 0]))) as Box<dyn IndexAdapter>],
        );
        load_tuples(&mut legacy, &mut buf.as_slice()).expect("loads");
        assert_eq!(legacy.to_sorted_tuples(), src.to_sorted_tuples());

        let mut back = Vec::new();
        write_tuples(&mut back, &legacy).expect("writes");
        assert_eq!(back, buf, "dump is layout-independent");
    }

    #[test]
    fn load_is_idempotent() {
        let src = sample();
        let mut buf = Vec::new();
        write_tuples(&mut buf, &src).expect("writes");
        let mut dst = sample();
        load_tuples(&mut dst, &mut buf.as_slice()).expect("loads");
        assert_eq!(dst.len(), 3, "duplicates absorbed");
    }

    #[test]
    fn nullary_relations_round_trip() {
        let mut flag = Relation::new("flag", 0, vec![]);
        let mut buf = Vec::new();
        assert_eq!(write_tuples(&mut buf, &flag).expect("writes"), 0);
        flag.insert(&[]);
        let mut buf = Vec::new();
        assert_eq!(write_tuples(&mut buf, &flag).expect("writes"), 1);
        assert_eq!(buf.len(), 8);

        let mut restored = Relation::new("flag", 0, vec![]);
        load_tuples(&mut restored, &mut buf.as_slice()).expect("loads");
        assert_eq!(restored.len(), 1);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let src = sample();
        let mut buf = Vec::new();
        write_tuples(&mut buf, &src).expect("writes");
        buf.truncate(buf.len() - 2);
        let mut dst = sample();
        dst.clear();
        let err = load_tuples(&mut dst, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn eqrel_dumps_its_closure() {
        let mut rel = Relation::new(
            "eq",
            2,
            vec![IndexSpec::new(Representation::EqRel, Order::natural(2))],
        );
        rel.insert(&[1, 2]);
        let mut buf = Vec::new();
        // The closure (1,1) (1,2) (2,1) (2,2) is what gets persisted;
        // reloading closed pairs is idempotent.
        assert_eq!(write_tuples(&mut buf, &rel).expect("writes"), 4);
        let mut restored = Relation::new(
            "eq",
            2,
            vec![IndexSpec::new(Representation::EqRel, Order::natural(2))],
        );
        load_tuples(&mut restored, &mut buf.as_slice()).expect("loads");
        assert_eq!(restored.to_sorted_tuples(), rel.to_sorted_tuples());
    }
}
