//! Tuple-level binary serialization of relations.
//!
//! The durability layer (snapshots in `stir_core::wal`) persists whole
//! relations; the der crate owns the byte format because only it knows
//! how to enumerate tuples independently of the index layout. The format
//! is deliberately layout-free: tuples are written in *source* order
//! (via [`Relation::to_sorted_tuples`]), so a dump taken from one index
//! configuration or representation loads cleanly into any other — a
//! snapshot written by the STI mode restores into the legacy mode and
//! vice versa.
//!
//! Wire format (all integers little-endian):
//!
//! ```text
//! [4 bytes magic "STDT"] [u16 version = 1] [u16 arity]
//! [u64 tuple_count] then tuple_count × arity × [u32 value]
//! ```
//!
//! The header makes a section self-describing: a reader can reject an
//! arity mismatch up front (previously a mismatch silently re-framed the
//! payload into garbage tuples) and truncation errors can name the exact
//! byte offset. Sections written before the header existed started
//! directly with the `u64` count; [`read_tuples`] still accepts those —
//! the magic cannot collide with a realistic count because it decodes to
//! a count above 10^18.
//!
//! Nullary relations encode their presence flag as a count of 0 or 1
//! with zero payload bytes per tuple. Integrity (checksums) is the
//! *container's* job — the snapshot file wraps these sections in a CRC —
//! so this module only validates structural well-formedness.

use crate::relation::Relation;
use crate::tuple::RamDomain;
use std::io::{Error, ErrorKind, Read, Write};

/// Magic bytes opening a headered tuple section.
pub const SECTION_MAGIC: [u8; 4] = *b"STDT";

/// Current tuple-section format version.
pub const SECTION_VERSION: u16 = 1;

/// Writes all tuples of `rel` (source order, sorted) to `w`.
///
/// Returns the number of tuples written.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_tuples(w: &mut dyn Write, rel: &Relation) -> std::io::Result<u64> {
    let tuples = rel.to_sorted_tuples();
    let count = tuples.len() as u64;
    w.write_all(&SECTION_MAGIC)?;
    w.write_all(&SECTION_VERSION.to_le_bytes())?;
    w.write_all(&(rel.arity() as u16).to_le_bytes())?;
    w.write_all(&count.to_le_bytes())?;
    for t in &tuples {
        for &v in t {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(count)
}

/// Reads exactly `buf.len()` bytes, turning a short read into an error
/// naming the byte offset (relative to the section start) where input
/// ran out.
fn read_at(r: &mut dyn Read, buf: &mut [u8], off: u64, what: &str) -> std::io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            Error::new(
                ErrorKind::UnexpectedEof,
                format!("truncated tuple section: {what} at byte offset {off}"),
            )
        } else {
            e
        }
    })
}

/// Reads a tuple section written by [`write_tuples`] for a relation of
/// the given arity, returning the decoded tuples. Headerless sections
/// written by older versions (starting directly with the `u64` count)
/// are accepted too.
///
/// # Errors
///
/// Fails on I/O errors, on truncated input (`UnexpectedEof`, naming the
/// byte offset where the data ran out), on an unsupported section
/// version, and on an arity mismatch between the header and `arity`
/// (`InvalidData`, naming the offending offset).
pub fn read_tuples(r: &mut dyn Read, arity: usize) -> std::io::Result<Vec<Vec<RamDomain>>> {
    // Both forms start with at least 8 bytes: magic+version+arity for the
    // headered format, the u64 count for the legacy one.
    let mut head = [0u8; 8];
    read_at(r, &mut head, 0, "section header")?;
    let mut off: u64 = 8;
    let count = if head[..4] == SECTION_MAGIC {
        let version = u16::from_le_bytes([head[4], head[5]]);
        if version != SECTION_VERSION {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!(
                    "unsupported tuple section version {version} at byte offset 4 \
                     (expected {SECTION_VERSION})"
                ),
            ));
        }
        let section_arity = u16::from_le_bytes([head[6], head[7]]) as usize;
        if section_arity != arity {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!(
                    "tuple section arity mismatch at byte offset 6: \
                     section holds arity-{section_arity} tuples, reader expected arity {arity}"
                ),
            ));
        }
        let mut count8 = [0u8; 8];
        read_at(r, &mut count8, off, "tuple count")?;
        off += 8;
        u64::from_le_bytes(count8)
    } else {
        // Legacy headerless section: the 8 bytes were the count.
        u64::from_le_bytes(head)
    };
    let mut tuples = Vec::new();
    let mut word = [0u8; 4];
    for i in 0..count {
        let mut t = Vec::with_capacity(arity);
        for _ in 0..arity {
            read_at(
                r,
                &mut word,
                off,
                &format!("tuple {i} of {count} (arity {arity})"),
            )?;
            off += 4;
            t.push(RamDomain::from_le_bytes(word));
        }
        tuples.push(t);
    }
    Ok(tuples)
}

/// Reads a tuple section and inserts every tuple into `rel` (all
/// indexes). Duplicates already present are absorbed, so loading is
/// idempotent.
///
/// Returns the number of tuples read (not the number freshly inserted).
///
/// # Errors
///
/// Fails on I/O errors, truncated input, and arity mismatches (see
/// [`read_tuples`]).
pub fn load_tuples(rel: &mut Relation, r: &mut dyn Read) -> std::io::Result<u64> {
    let tuples = read_tuples(r, rel.arity())?;
    let n = tuples.len() as u64;
    for t in &tuples {
        rel.insert(t);
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynindex::DynBTreeIndex;
    use crate::factory::{IndexSpec, Representation};
    use crate::order::Order;
    use crate::IndexAdapter;

    fn sample() -> Relation {
        let mut rel = Relation::new(
            "edge",
            2,
            vec![
                IndexSpec::btree_natural(2),
                IndexSpec::new(Representation::BTree, Order::new(vec![1, 0])),
            ],
        );
        rel.insert(&[1, 9]);
        rel.insert(&[2, 8]);
        rel.insert(&[3, 7]);
        rel
    }

    #[test]
    fn round_trips_through_bytes() {
        let src = sample();
        let mut buf = Vec::new();
        assert_eq!(write_tuples(&mut buf, &src).expect("writes"), 3);
        // magic(4) + version(2) + arity(2) + count(8) + payload
        assert_eq!(buf.len(), 16 + 3 * 2 * 4);
        assert_eq!(&buf[..4], b"STDT");

        let mut dst = sample();
        dst.clear();
        let mut cursor = buf.as_slice();
        assert_eq!(load_tuples(&mut dst, &mut cursor).expect("loads"), 3);
        assert!(cursor.is_empty(), "section is self-delimiting");
        assert_eq!(dst.to_sorted_tuples(), src.to_sorted_tuples());
        // Secondary index is rebuilt too.
        assert_eq!(dst.index(1).len(), 3);
    }

    #[test]
    fn loads_across_different_layouts() {
        // A dump from a permuted-primary STI relation restores into a
        // legacy comparator relation (and back) because the bytes are
        // source-order tuples, not index storage.
        let src = sample();
        let mut buf = Vec::new();
        write_tuples(&mut buf, &src).expect("writes");

        let mut legacy = Relation::from_adapters(
            "edge",
            2,
            vec![Box::new(DynBTreeIndex::new(Order::new(vec![1, 0]))) as Box<dyn IndexAdapter>],
        );
        load_tuples(&mut legacy, &mut buf.as_slice()).expect("loads");
        assert_eq!(legacy.to_sorted_tuples(), src.to_sorted_tuples());

        let mut back = Vec::new();
        write_tuples(&mut back, &legacy).expect("writes");
        assert_eq!(back, buf, "dump is layout-independent");
    }

    #[test]
    fn load_is_idempotent() {
        let src = sample();
        let mut buf = Vec::new();
        write_tuples(&mut buf, &src).expect("writes");
        let mut dst = sample();
        load_tuples(&mut dst, &mut buf.as_slice()).expect("loads");
        assert_eq!(dst.len(), 3, "duplicates absorbed");
    }

    #[test]
    fn nullary_relations_round_trip() {
        let mut flag = Relation::new("flag", 0, vec![]);
        let mut buf = Vec::new();
        assert_eq!(write_tuples(&mut buf, &flag).expect("writes"), 0);
        flag.insert(&[]);
        let mut buf = Vec::new();
        assert_eq!(write_tuples(&mut buf, &flag).expect("writes"), 1);
        assert_eq!(buf.len(), 16);

        let mut restored = Relation::new("flag", 0, vec![]);
        load_tuples(&mut restored, &mut buf.as_slice()).expect("loads");
        assert_eq!(restored.len(), 1);
    }

    #[test]
    fn legacy_headerless_sections_still_load() {
        // The pre-header format: bare u64 count then packed tuples.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u64.to_le_bytes());
        for v in [1u32, 9, 2, 8] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let mut dst = sample();
        dst.clear();
        assert_eq!(
            load_tuples(&mut dst, &mut buf.as_slice()).expect("loads"),
            2
        );
        assert_eq!(dst.to_sorted_tuples(), vec![vec![1, 9], vec![2, 8]]);
    }

    #[test]
    fn truncated_input_is_an_error_naming_the_offset() {
        let src = sample();
        let mut buf = Vec::new();
        write_tuples(&mut buf, &src).expect("writes");
        buf.truncate(buf.len() - 2);
        let mut dst = sample();
        dst.clear();
        let err = load_tuples(&mut dst, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        // Payload starts at 16; tuple 2's second word sits at 16 + 5*4.
        assert!(
            err.to_string().contains("byte offset 36"),
            "error names the failing offset: {err}"
        );
        assert!(err.to_string().contains("tuple 2 of 3"), "{err}");
    }

    #[test]
    fn arity_mismatch_is_rejected_up_front() {
        let src = sample();
        let mut buf = Vec::new();
        write_tuples(&mut buf, &src).expect("writes");
        let err = read_tuples(&mut buf.as_slice(), 3).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("arity mismatch"), "{err}");
        assert!(err.to_string().contains("byte offset 6"), "{err}");
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let src = sample();
        let mut buf = Vec::new();
        write_tuples(&mut buf, &src).expect("writes");
        buf[4] = 99;
        let err = read_tuples(&mut buf.as_slice(), 2).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn eqrel_dumps_its_closure() {
        let mut rel = Relation::new(
            "eq",
            2,
            vec![IndexSpec::new(Representation::EqRel, Order::natural(2))],
        );
        rel.insert(&[1, 2]);
        let mut buf = Vec::new();
        // The closure (1,1) (1,2) (2,1) (2,2) is what gets persisted;
        // reloading closed pairs is idempotent.
        assert_eq!(write_tuples(&mut buf, &rel).expect("writes"), 4);
        let mut restored = Relation::new(
            "eq",
            2,
            vec![IndexSpec::new(Representation::EqRel, Order::natural(2))],
        );
        load_tuples(&mut restored, &mut buf.as_slice()).expect("loads");
        assert_eq!(restored.to_sorted_tuples(), rel.to_sorted_tuples());
    }
}
