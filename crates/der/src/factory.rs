//! Pre-instantiation of every de-specialized index type.
//!
//! After de-specialization, an index is identified by its representation
//! and its arity alone — a parameter space small enough to pre-compile in
//! full (paper §3). The `for_each_arity!` macro is the Rust analogue of
//! the paper's `FOR_EACH`/`FOR_EACH_BTREE` C-macros (Figs. 8–9): it stamps
//! out one monomorphized instantiation per arity `1..=16`, and
//! [`new_index`] is the runtime factory selecting among them.

use crate::adapter::{BTreeIndex, BrieIndex, EqRelIndex, IndexAdapter};
use crate::order::Order;
use crate::tuple::MAX_ARITY;

/// The available index representations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Representation {
    /// The fixed-arity B-tree — the general-purpose default.
    BTree,
    /// The Brie (trie) — favours dense, prefix-shared key spaces.
    Brie,
    /// The union-find equivalence relation — binary relations closed under
    /// equivalence.
    EqRel,
}

impl Representation {
    /// Stable lowercase name, used as a metrics/JSON key.
    pub fn name(&self) -> &'static str {
        match self {
            Representation::BTree => "btree",
            Representation::Brie => "brie",
            Representation::EqRel => "eqrel",
        }
    }
}

impl std::fmt::Display for Representation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Representation::BTree => write!(f, "btree"),
            Representation::Brie => write!(f, "brie"),
            Representation::EqRel => write!(f, "eqrel"),
        }
    }
}

/// A complete description of one index: representation + lexicographic
/// order (which fixes the arity).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexSpec {
    /// The data-structure implementation.
    pub repr: Representation,
    /// The realized lexicographic order.
    pub order: Order,
}

impl IndexSpec {
    /// Creates a spec.
    pub fn new(repr: Representation, order: Order) -> Self {
        IndexSpec { repr, order }
    }

    /// A B-tree in natural order — the default primary index.
    pub fn btree_natural(arity: usize) -> Self {
        IndexSpec::new(Representation::BTree, Order::natural(arity))
    }

    /// The tuple arity.
    pub fn arity(&self) -> usize {
        self.order.arity()
    }
}

impl std::fmt::Display for IndexSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.repr, self.order)
    }
}

/// Invokes `$mac!(arity)` for every pre-instantiated arity `1..=16`.
///
/// Exported so the interpreter crate can stamp out its statically-dispatched
/// instruction bodies over the same arity space (paper §4.1).
#[macro_export]
macro_rules! for_each_arity {
    ($mac:ident) => {
        $mac!(1);
        $mac!(2);
        $mac!(3);
        $mac!(4);
        $mac!(5);
        $mac!(6);
        $mac!(7);
        $mac!(8);
        $mac!(9);
        $mac!(10);
        $mac!(11);
        $mac!(12);
        $mac!(13);
        $mac!(14);
        $mac!(15);
        $mac!(16);
    };
}

/// Builds an index for `spec`.
///
/// This is the paper's `BTreeIndexFactory` (Fig. 7), generalized over
/// representations: a `match` over `(repr, arity)` whose arms construct the
/// statically-typed structure behind the dynamic [`IndexAdapter`] facade.
///
/// # Panics
///
/// Panics if the arity is `0` or exceeds [`MAX_ARITY`], or if an `EqRel`
/// index is requested with arity other than 2 — all of which indicate bugs
/// in the RAM-level index selection, not user errors.
pub fn new_index(spec: &IndexSpec) -> Box<dyn IndexAdapter> {
    let arity = spec.arity();
    assert!(
        (1..=MAX_ARITY).contains(&arity),
        "arity {arity} not supported (pre-instantiated range is 1..={MAX_ARITY})"
    );
    match spec.repr {
        Representation::BTree => {
            macro_rules! arm {
                ($($n:literal),*) => {
                    match arity {
                        $( $n => Box::new(BTreeIndex::<$n>::new(spec.order.clone()))
                            as Box<dyn IndexAdapter>, )*
                        _ => unreachable!(),
                    }
                };
            }
            arm!(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)
        }
        Representation::Brie => {
            macro_rules! arm {
                ($($n:literal),*) => {
                    match arity {
                        $( $n => Box::new(BrieIndex::<$n>::new(spec.order.clone()))
                            as Box<dyn IndexAdapter>, )*
                        _ => unreachable!(),
                    }
                };
            }
            arm!(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)
        }
        Representation::EqRel => {
            assert_eq!(arity, 2, "eqrel indexes are binary");
            Box::new(EqRelIndex::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_covers_all_arities() {
        for arity in 1..=MAX_ARITY {
            for repr in [Representation::BTree, Representation::Brie] {
                let idx = new_index(&IndexSpec::new(repr, Order::natural(arity)));
                assert_eq!(idx.arity(), arity, "{repr} arity {arity}");
                assert!(idx.is_empty());
            }
        }
        let eq = new_index(&IndexSpec::new(Representation::EqRel, Order::natural(2)));
        assert_eq!(eq.arity(), 2);
    }

    #[test]
    fn factory_produces_working_indexes() {
        let mut idx = new_index(&IndexSpec::new(
            Representation::BTree,
            Order::new(vec![1, 0, 2]),
        ));
        assert!(idx.insert(&[1, 2, 3]));
        assert!(!idx.insert(&[1, 2, 3]));
        assert!(idx.contains(&[1, 2, 3]));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn factory_rejects_oversized_arity() {
        new_index(&IndexSpec::btree_natural(17));
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn factory_rejects_nullary() {
        new_index(&IndexSpec::btree_natural(0));
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn factory_rejects_nonbinary_eqrel() {
        new_index(&IndexSpec::new(Representation::EqRel, Order::natural(3)));
    }

    #[test]
    fn spec_display_is_informative() {
        let spec = IndexSpec::new(Representation::BTree, Order::new(vec![1, 0]));
        assert_eq!(spec.to_string(), "btree[1,0]");
    }
}
