//! Lexicographic orders as tuple permutations.
//!
//! The first de-specialization step of the paper reduces the set of all
//! lexicographic orders to the single *natural* one by permuting tuples on
//! their way in and out of an index (paper Fig. 6). An [`Order`] is that
//! permutation: `order.columns()[i]` names the source column stored at
//! index position `i`.

use crate::tuple::RamDomain;

/// A lexicographic order for an index, represented as a permutation of the
/// tuple columns.
///
/// `columns[i] = c` means: position `i` of the *stored* (encoded) tuple
/// holds column `c` of the *source* tuple. An index with this order
/// therefore sorts first by source column `columns[0]`, then `columns[1]`,
/// and so on — exactly the paper's `Comparator<c0, c1, ...>` template
/// parameter, moved from compile time into the insertion path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Order {
    columns: Vec<usize>,
}

impl Order {
    /// Creates an order from a permutation of `0..columns.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is not a permutation (duplicate or out-of-range
    /// entries), since a non-permutation would silently drop tuple data.
    pub fn new(columns: Vec<usize>) -> Self {
        let n = columns.len();
        let mut seen = vec![false; n];
        for &c in &columns {
            assert!(c < n, "order column {c} out of range for arity {n}");
            assert!(!seen[c], "order column {c} repeated");
            seen[c] = true;
        }
        Order { columns }
    }

    /// The identity permutation of the given arity: the natural order.
    pub fn natural(arity: usize) -> Self {
        Order {
            columns: (0..arity).collect(),
        }
    }

    /// The arity of tuples this order applies to.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Whether this order is the identity permutation.
    ///
    /// Encoding/decoding can be skipped entirely for natural orders, which
    /// the RAM index-selection pass produces for most relations.
    pub fn is_natural(&self) -> bool {
        self.columns.iter().enumerate().all(|(i, &c)| i == c)
    }

    /// The underlying permutation, stored-position → source-column.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Permutes a source tuple into index storage order.
    #[inline]
    pub fn encode(&self, source: &[RamDomain], out: &mut [RamDomain]) {
        debug_assert_eq!(source.len(), self.columns.len());
        debug_assert_eq!(out.len(), self.columns.len());
        for (i, &c) in self.columns.iter().enumerate() {
            out[i] = source[c];
        }
    }

    /// Permutes a stored tuple back into source order.
    #[inline]
    pub fn decode(&self, stored: &[RamDomain], out: &mut [RamDomain]) {
        debug_assert_eq!(stored.len(), self.columns.len());
        debug_assert_eq!(out.len(), self.columns.len());
        for (i, &c) in self.columns.iter().enumerate() {
            out[c] = stored[i];
        }
    }

    /// Convenience wrapper around [`Order::encode`] that allocates.
    pub fn encode_vec(&self, source: &[RamDomain]) -> Vec<RamDomain> {
        let mut out = vec![0; source.len()];
        self.encode(source, &mut out);
        out
    }

    /// Convenience wrapper around [`Order::decode`] that allocates.
    pub fn decode_vec(&self, stored: &[RamDomain]) -> Vec<RamDomain> {
        let mut out = vec![0; stored.len()];
        self.decode(stored, &mut out);
        out
    }

    /// Maps a *source* column to its *stored* position.
    ///
    /// Used by the interpreter's static-reordering pass (paper §4.2) to
    /// rewrite `TupleElement` accesses so scanned tuples never need to be
    /// decoded at runtime.
    pub fn stored_position_of(&self, source_column: usize) -> usize {
        self.columns
            .iter()
            .position(|&c| c == source_column)
            .expect("source column out of range")
    }
}

impl std::fmt::Display for Order {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_order_is_identity() {
        let o = Order::natural(3);
        assert!(o.is_natural());
        assert_eq!(o.encode_vec(&[10, 20, 30]), vec![10, 20, 30]);
        assert_eq!(o.decode_vec(&[10, 20, 30]), vec![10, 20, 30]);
    }

    #[test]
    fn encode_then_decode_round_trips() {
        let o = Order::new(vec![2, 0, 1]);
        assert!(!o.is_natural());
        let enc = o.encode_vec(&[10, 20, 30]);
        assert_eq!(enc, vec![30, 10, 20]);
        assert_eq!(o.decode_vec(&enc), vec![10, 20, 30]);
    }

    #[test]
    fn stored_position_inverts_columns() {
        let o = Order::new(vec![2, 0, 1]);
        assert_eq!(o.stored_position_of(2), 0);
        assert_eq!(o.stored_position_of(0), 1);
        assert_eq!(o.stored_position_of(1), 2);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn duplicate_columns_are_rejected() {
        Order::new(vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_columns_are_rejected() {
        Order::new(vec![0, 2]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Order::new(vec![1, 0]).to_string(), "[1,0]");
    }
}
