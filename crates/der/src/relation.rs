//! A relation: a named tuple set maintained under one or more indexes.
//!
//! Index selection at the RAM level assigns each relation a set of
//! [`IndexSpec`]s — one *primary* index (position 0) plus one secondary
//! index per additional lexicographic order required by the program's
//! primitive searches. Every insert goes to all indexes; queries pick the
//! index whose order matches their search columns.
//!
//! Nullary relations (arity 0) — Datalog predicates with no arguments —
//! are represented directly by a presence flag, as in Soufflé.

use crate::adapter::{IndexAdapter, IndexStats};
use crate::dynindex::DynBTreeIndex;
use crate::factory::{new_index, IndexSpec};
use crate::iter::{DecodingIter, TupleIter, VecTupleIter};
use crate::order::Order;
use crate::tuple::RamDomain;

/// A named, indexed set of tuples.
///
/// # Example
///
/// ```
/// use stir_der::relation::Relation;
/// use stir_der::factory::IndexSpec;
///
/// let mut edge = Relation::new("edge", 2, vec![IndexSpec::btree_natural(2)]);
/// edge.insert(&[1, 2]);
/// edge.insert(&[2, 3]);
/// assert_eq!(edge.len(), 2);
/// assert!(edge.contains(&[1, 2]));
/// ```
#[derive(Debug)]
pub struct Relation {
    name: String,
    arity: usize,
    indexes: Vec<Box<dyn IndexAdapter>>,
    /// Presence flag for nullary relations (`arity == 0`).
    nullary_present: bool,
    /// Provenance annotations, when enabled: widened tuples
    /// `(t..., height, rule)` — the two de-specialized annotation columns —
    /// held in one extra natural-order index that is excluded from the
    /// queryable index set, so it never participates in logical
    /// ordering/dedup/set-semantics. The natural lexicographic order makes
    /// a prefix lookup on `t` yield the *minimum-height* row first.
    annotations: Option<Box<DynBTreeIndex>>,
}

impl Relation {
    /// Creates a relation with the given index specs; `specs[0]` is the
    /// primary index.
    ///
    /// # Panics
    ///
    /// Panics if a positive-arity relation has no index, if any spec's
    /// arity disagrees with `arity`, or if a nullary relation is given
    /// indexes.
    pub fn new(name: impl Into<String>, arity: usize, specs: Vec<IndexSpec>) -> Self {
        if arity == 0 {
            assert!(specs.is_empty(), "nullary relations take no indexes");
            return Relation {
                name: name.into(),
                arity,
                indexes: Vec::new(),
                nullary_present: false,
                annotations: None,
            };
        }
        assert!(!specs.is_empty(), "relations need at least a primary index");
        for s in &specs {
            assert_eq!(s.arity(), arity, "index spec arity mismatch");
        }
        Relation {
            name: name.into(),
            arity,
            indexes: specs.iter().map(new_index).collect(),
            nullary_present: false,
            annotations: None,
        }
    }

    /// Creates a relation from pre-built indexes (used by the legacy
    /// interpreter, whose indexes are fully dynamic
    /// [`crate::dynindex::DynBTreeIndex`]es rather than factory products).
    ///
    /// # Panics
    ///
    /// Panics if any index disagrees with `arity`, or if indexes are given
    /// for a nullary relation.
    pub fn from_adapters(
        name: impl Into<String>,
        arity: usize,
        indexes: Vec<Box<dyn IndexAdapter>>,
    ) -> Self {
        if arity == 0 {
            assert!(indexes.is_empty(), "nullary relations take no indexes");
        } else {
            assert!(
                !indexes.is_empty(),
                "relations need at least a primary index"
            );
            for idx in &indexes {
                assert_eq!(idx.arity(), arity, "index arity mismatch");
            }
        }
        Relation {
            name: name.into(),
            arity,
            indexes,
            nullary_present: false,
            annotations: None,
        }
    }

    /// Turns on annotation tracking: every tuple may carry a
    /// `(height, rule)` annotation pair recorded by the evaluator. Off by
    /// default; the store costs nothing until enabled.
    pub fn enable_annotations(&mut self) {
        if self.annotations.is_none() {
            self.annotations = Some(Box::new(DynBTreeIndex::new(Order::natural(self.arity + 2))));
        }
    }

    /// Whether annotation tracking is enabled.
    pub fn annotations_enabled(&self) -> bool {
        self.annotations.is_some()
    }

    /// Records the `(height, rule)` annotation of a source-order tuple.
    /// Callers record on *fresh* logical inserts only, which makes the
    /// first (minimum-height) derivation win; even on a duplicate record,
    /// lookups return the minimum-height row because the widened tuples
    /// sort by `(t..., height, rule)`. A no-op when annotations are off.
    pub fn record_annotation(&mut self, t: &[RamDomain], height: RamDomain, rule: RamDomain) {
        debug_assert_eq!(t.len(), self.arity, "annotation arity mismatch");
        if let Some(store) = &mut self.annotations {
            let mut widened = Vec::with_capacity(t.len() + 2);
            widened.extend_from_slice(t);
            widened.push(height);
            widened.push(rule);
            store.insert(&widened);
        }
    }

    /// Looks up the minimum-height `(height, rule)` annotation of a
    /// source-order tuple, if one was recorded.
    pub fn annotation(&self, t: &[RamDomain]) -> Option<(RamDomain, RamDomain)> {
        debug_assert_eq!(t.len(), self.arity, "annotation arity mismatch");
        let store = self.annotations.as_ref()?;
        let mut lo = Vec::with_capacity(t.len() + 2);
        lo.extend_from_slice(t);
        lo.push(0);
        lo.push(0);
        let mut hi = Vec::with_capacity(t.len() + 2);
        hi.extend_from_slice(t);
        hi.push(RamDomain::MAX);
        hi.push(RamDomain::MAX);
        let mut it = store.range(&lo, &hi);
        it.next_tuple().map(|w| (w[self.arity], w[self.arity + 1]))
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tuple arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of indexes maintained.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// The `k`-th index (0 is primary).
    ///
    /// Not `std::ops::Index`: the call sites spell `.index(k)` without
    /// importing the trait, and the return type is unsized.
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, k: usize) -> &dyn IndexAdapter {
        &*self.indexes[k]
    }

    /// Mutable access to the `k`-th index.
    #[allow(clippy::should_implement_trait)]
    pub fn index_mut(&mut self, k: usize) -> &mut dyn IndexAdapter {
        &mut *self.indexes[k]
    }

    /// Structural statistics for every index, in index order (empty for
    /// nullary relations, which keep no indexes).
    pub fn index_stats(&self) -> Vec<IndexStats> {
        self.indexes.iter().map(|i| i.stats()).collect()
    }

    /// Number of tuples (primary index size).
    pub fn len(&self) -> usize {
        if self.arity == 0 {
            return usize::from(self.nullary_present);
        }
        self.indexes[0].len()
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all tuples from all indexes (and their annotations).
    pub fn clear(&mut self) {
        self.nullary_present = false;
        for idx in &mut self.indexes {
            idx.clear();
        }
        if let Some(store) = &mut self.annotations {
            store.clear();
        }
    }

    /// Inserts a source-order tuple into every index; `true` if new.
    pub fn insert(&mut self, t: &[RamDomain]) -> bool {
        debug_assert_eq!(t.len(), self.arity, "tuple arity mismatch");
        if self.arity == 0 {
            let fresh = !self.nullary_present;
            self.nullary_present = true;
            return fresh;
        }
        let (primary, rest) = self.indexes.split_first_mut().expect("has primary");
        if !primary.insert(t) {
            return false;
        }
        for idx in rest {
            idx.insert(t);
        }
        true
    }

    /// Removes a source-order tuple from every index, along with all of
    /// its annotation rows; `true` if it was present.
    ///
    /// The primary index decides presence, exactly mirroring
    /// [`Relation::insert`]. An eqrel-backed relation erases only what
    /// the closure of the survivors does not re-derive (see
    /// [`crate::eqrel::EquivalenceRelation::erase`]); callers needing
    /// generator-accurate eqrel deletion rebuild from surviving inputs.
    pub fn erase(&mut self, t: &[RamDomain]) -> bool {
        debug_assert_eq!(t.len(), self.arity, "tuple arity mismatch");
        if self.arity == 0 {
            let was_present = self.nullary_present;
            self.nullary_present = false;
            if was_present {
                if let Some(store) = &mut self.annotations {
                    store.clear();
                }
            }
            return was_present;
        }
        let (primary, rest) = self.indexes.split_first_mut().expect("has primary");
        if !primary.erase(t) {
            return false;
        }
        for idx in rest {
            idx.erase(t);
        }
        if let Some(store) = &mut self.annotations {
            // The annotation store is natural-order over (t..., h, r), so
            // a prefix erase on t drops every recorded derivation.
            store.erase_prefix(t);
        }
        true
    }

    /// Membership test via the primary index.
    pub fn contains(&self, t: &[RamDomain]) -> bool {
        debug_assert_eq!(t.len(), self.arity);
        if self.arity == 0 {
            return self.nullary_present;
        }
        self.indexes[0].contains(t)
    }

    /// Scans all tuples in *source* order (decoding the primary index's
    /// order if it is not natural).
    pub fn scan_source(&self) -> Box<dyn TupleIter + '_> {
        if self.arity == 0 {
            // A nullary relation contributes zero or one empty tuple; model
            // it as an empty buffer of arity 1 rows (callers special-case
            // nullaries before scanning).
            return Box::new(VecTupleIter::new(Vec::new(), 1));
        }
        let primary = &self.indexes[0];
        let scan = primary.scan();
        if primary.order().is_natural() || primary.stores_source_order() {
            scan
        } else {
            Box::new(DecodingIter::new(scan, primary.order().clone()))
        }
    }

    /// Moves all tuples of `other` into `self` (the RAM `MERGE`).
    ///
    /// # Panics
    ///
    /// Panics if arities differ.
    pub fn merge_from(&mut self, other: &Relation) {
        assert_eq!(self.arity, other.arity, "merge arity mismatch");
        let copy_annotations = self.annotations.is_some() && other.annotations.is_some();
        if self.arity == 0 {
            let fresh = !self.nullary_present && other.nullary_present;
            self.nullary_present |= other.nullary_present;
            if fresh && copy_annotations {
                if let Some((h, r)) = other.annotation(&[]) {
                    self.record_annotation(&[], h, r);
                }
            }
            return;
        }
        let mut moved: Vec<Vec<RamDomain>> = Vec::new();
        let mut it = other.scan_source();
        while let Some(t) = it.next_tuple() {
            if self.insert(t) && copy_annotations {
                moved.push(t.to_vec());
            }
        }
        // Annotations follow freshly merged tuples, preserving their
        // original derivation heights (the keep-first/min-height rule).
        for t in moved {
            if let Some((h, r)) = other.annotation(&t) {
                self.record_annotation(&t, h, r);
            }
        }
    }

    /// Swaps the *contents* of two relations (the RAM `SWAP`), leaving
    /// names in place.
    ///
    /// # Panics
    ///
    /// Panics if the relations have different arities or index layouts.
    pub fn swap_data(&mut self, other: &mut Relation) {
        assert_eq!(self.arity, other.arity, "swap arity mismatch");
        assert_eq!(
            self.indexes.len(),
            other.indexes.len(),
            "swap index layout mismatch"
        );
        std::mem::swap(&mut self.indexes, &mut other.indexes);
        std::mem::swap(&mut self.nullary_present, &mut other.nullary_present);
        std::mem::swap(&mut self.annotations, &mut other.annotations);
    }

    /// Collects all tuples, in source order, as owned vectors (IO/tests).
    pub fn to_sorted_tuples(&self) -> Vec<Vec<RamDomain>> {
        if self.arity == 0 {
            return if self.nullary_present {
                vec![Vec::new()]
            } else {
                Vec::new()
            };
        }
        let mut out = self.scan_source().collect_tuples();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::Representation;
    use crate::order::Order;

    fn two_index_relation() -> Relation {
        Relation::new(
            "edge",
            2,
            vec![
                IndexSpec::btree_natural(2),
                IndexSpec::new(Representation::BTree, Order::new(vec![1, 0])),
            ],
        )
    }

    #[test]
    fn insert_reaches_all_indexes() {
        let mut rel = two_index_relation();
        assert!(rel.insert(&[1, 9]));
        assert!(rel.insert(&[2, 8]));
        assert!(!rel.insert(&[1, 9]));
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.index(0).len(), 2);
        assert_eq!(rel.index(1).len(), 2);
        // The secondary is sorted by column 1 first.
        let sec = rel.index(1).scan().collect_tuples();
        assert_eq!(sec, vec![vec![8, 2], vec![9, 1]]);
    }

    #[test]
    fn scan_source_decodes_secondary_orders() {
        let mut rel = Relation::new(
            "r",
            2,
            vec![IndexSpec::new(
                Representation::BTree,
                Order::new(vec![1, 0]),
            )],
        );
        rel.insert(&[1, 9]);
        rel.insert(&[2, 8]);
        let all = rel.scan_source().collect_tuples();
        assert_eq!(all, vec![vec![2, 8], vec![1, 9]]); // sorted by col 1
    }

    #[test]
    fn scan_source_trusts_source_layout_adapters() {
        use crate::dynindex::DynBTreeIndex;
        // A comparator-based (legacy) primary with a non-natural order
        // keeps tuples un-permuted, so scan_source must NOT decode them.
        let indexes: Vec<Box<dyn IndexAdapter>> =
            vec![Box::new(DynBTreeIndex::new(Order::new(vec![1, 0])))];
        let mut rel = Relation::from_adapters("r", 2, indexes);
        rel.insert(&[1, 9]);
        rel.insert(&[2, 8]);
        assert_eq!(
            rel.scan_source().collect_tuples(),
            vec![vec![2, 8], vec![1, 9]] // comparator order, source layout
        );
        assert_eq!(rel.to_sorted_tuples(), vec![vec![1, 9], vec![2, 8]]);

        let mut dst = Relation::from_adapters(
            "dst",
            2,
            vec![Box::new(DynBTreeIndex::new(Order::new(vec![1, 0]))) as Box<dyn IndexAdapter>],
        );
        dst.merge_from(&rel);
        assert!(dst.contains(&[1, 9]) && dst.contains(&[2, 8]));
    }

    #[test]
    fn merge_and_swap_model_ram_statements() {
        let mut full = two_index_relation();
        let mut delta = two_index_relation();
        delta.insert(&[1, 2]);
        delta.insert(&[3, 4]);
        full.insert(&[1, 2]);
        full.merge_from(&delta);
        assert_eq!(full.len(), 2);
        assert!(full.contains(&[3, 4]));

        let mut new = two_index_relation();
        new.insert(&[5, 6]);
        delta.swap_data(&mut new);
        assert_eq!(delta.len(), 1);
        assert!(delta.contains(&[5, 6]));
        assert_eq!(new.len(), 2);
    }

    fn heterogeneous_relation() -> Relation {
        // B-tree primary in natural order, Brie secondary on (col1, col0):
        // the mixed-representation layout index selection can produce.
        Relation::new(
            "mixed",
            2,
            vec![
                IndexSpec::btree_natural(2),
                IndexSpec::new(Representation::Brie, Order::new(vec![1, 0])),
            ],
        )
    }

    #[test]
    fn merge_from_keeps_heterogeneous_indexes_consistent() {
        let mut dst = heterogeneous_relation();
        let mut src = heterogeneous_relation();
        dst.insert(&[1, 9]);
        src.insert(&[1, 9]); // duplicate across relations
        src.insert(&[2, 8]);
        src.insert(&[3, 7]);
        dst.merge_from(&src);
        assert_eq!(dst.len(), 3);
        assert_eq!(dst.index(0).len(), dst.index(1).len(), "indexes agree");
        // The Brie secondary is sorted by source column 1 first.
        assert_eq!(
            dst.index(1).scan().collect_tuples(),
            vec![vec![7, 3], vec![8, 2], vec![9, 1]]
        );
        // Source relation is unchanged by the merge.
        assert_eq!(src.len(), 3);
    }

    #[test]
    fn merge_from_decodes_across_different_primary_orders() {
        // Source primary stores (col1, col0); destination primary is
        // natural. merge_from must decode through the source order.
        let mut src = Relation::new(
            "src",
            2,
            vec![IndexSpec::new(
                Representation::BTree,
                Order::new(vec![1, 0]),
            )],
        );
        src.insert(&[1, 9]);
        src.insert(&[2, 8]);
        let mut dst = heterogeneous_relation();
        dst.merge_from(&src);
        assert!(dst.contains(&[1, 9]) && dst.contains(&[2, 8]));
        assert_eq!(dst.index(0).scan().collect_tuples()[0], vec![1, 9]);

        // Contrast: a source-layout (legacy) primary with the same order
        // must NOT be decoded — the stores_source_order distinction.
        use crate::dynindex::DynBTreeIndex;
        let mut legacy_src = Relation::from_adapters(
            "legacy",
            2,
            vec![Box::new(DynBTreeIndex::new(Order::new(vec![1, 0]))) as Box<dyn IndexAdapter>],
        );
        assert!(legacy_src.index(0).stores_source_order());
        legacy_src.insert(&[4, 6]);
        legacy_src.insert(&[5, 5]);
        let mut dst2 = heterogeneous_relation();
        dst2.merge_from(&legacy_src);
        assert!(dst2.contains(&[4, 6]) && dst2.contains(&[5, 5]));
        assert!(!dst2.contains(&[6, 4]), "no spurious decode");
    }

    #[test]
    fn swap_data_exchanges_heterogeneous_contents() {
        let mut a = heterogeneous_relation();
        let mut b = heterogeneous_relation();
        a.insert(&[1, 2]);
        a.insert(&[3, 4]);
        b.insert(&[9, 9]);
        a.swap_data(&mut b);
        assert_eq!(a.len(), 1);
        assert!(a.contains(&[9, 9]));
        assert_eq!(b.len(), 2);
        assert!(b.contains(&[1, 2]) && b.contains(&[3, 4]));
        // Both indexes of both relations moved together.
        assert_eq!(a.index(1).scan().collect_tuples(), vec![vec![9, 9]]);
        assert_eq!(
            b.index(1).scan().collect_tuples(),
            vec![vec![2, 1], vec![4, 3]]
        );
        assert_eq!(a.name(), "mixed", "names stay in place");
    }

    #[test]
    #[should_panic(expected = "index layout mismatch")]
    fn swap_data_rejects_different_index_layouts() {
        let mut a = heterogeneous_relation();
        let mut b = Relation::new("single", 2, vec![IndexSpec::btree_natural(2)]);
        a.swap_data(&mut b);
    }

    #[test]
    fn nullary_relations_are_flags() {
        let mut flag = Relation::new("flag", 0, vec![]);
        assert!(flag.is_empty());
        assert!(!flag.contains(&[]));
        assert!(flag.insert(&[]));
        assert!(!flag.insert(&[]));
        assert_eq!(flag.len(), 1);
        assert!(flag.contains(&[]));
        assert_eq!(flag.to_sorted_tuples(), vec![Vec::<RamDomain>::new()]);
        flag.clear();
        assert!(flag.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least a primary")]
    fn positive_arity_requires_an_index() {
        Relation::new("r", 2, vec![]);
    }

    #[test]
    fn annotations_follow_merge_swap_and_clear() {
        let mut new = two_index_relation();
        new.enable_annotations();
        assert!(new.annotations_enabled());
        assert!(new.insert(&[1, 2]));
        new.record_annotation(&[1, 2], 3, 7);
        assert_eq!(new.annotation(&[1, 2]), Some((3, 7)));
        assert_eq!(new.annotation(&[9, 9]), None);

        // Keep-first: a later (higher) derivation never wins the lookup.
        new.record_annotation(&[1, 2], 5, 8);
        assert_eq!(new.annotation(&[1, 2]), Some((3, 7)));

        // MERGE copies annotations of freshly inserted tuples only.
        let mut full = two_index_relation();
        full.enable_annotations();
        full.insert(&[1, 2]);
        full.record_annotation(&[1, 2], 1, 0);
        let mut delta = two_index_relation();
        delta.enable_annotations();
        full.merge_from(&new);
        assert_eq!(full.annotation(&[1, 2]), Some((1, 0)), "kept original");

        // SWAP exchanges annotation stores with the data.
        delta.swap_data(&mut new);
        assert_eq!(delta.annotation(&[1, 2]), Some((3, 7)));
        assert_eq!(new.annotation(&[1, 2]), None);

        // CLEAR drops annotations with the tuples.
        delta.clear();
        assert_eq!(delta.annotation(&[1, 2]), None);

        // Nullary relations annotate their single empty tuple.
        let mut flag = Relation::new("flag", 0, vec![]);
        flag.enable_annotations();
        flag.insert(&[]);
        flag.record_annotation(&[], 2, 4);
        assert_eq!(flag.annotation(&[]), Some((2, 4)));
        let mut flag2 = Relation::new("flag2", 0, vec![]);
        flag2.enable_annotations();
        flag2.merge_from(&flag);
        assert_eq!(flag2.annotation(&[]), Some((2, 4)));
    }

    #[test]
    fn erase_reaches_all_indexes_and_annotations() {
        let mut rel = two_index_relation();
        rel.enable_annotations();
        rel.insert(&[1, 9]);
        rel.insert(&[2, 8]);
        rel.record_annotation(&[1, 9], 0, 3);
        rel.record_annotation(&[1, 9], 4, 5); // a later, higher derivation
        rel.record_annotation(&[2, 8], 1, 1);

        assert!(rel.erase(&[1, 9]));
        assert!(!rel.erase(&[1, 9]), "double erase is a no-op");
        assert!(!rel.contains(&[1, 9]));
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.index(0).len(), 1);
        assert_eq!(rel.index(1).len(), 1, "secondary indexes shrink too");
        assert_eq!(rel.annotation(&[1, 9]), None, "all annotation rows gone");
        assert_eq!(rel.annotation(&[2, 8]), Some((1, 1)), "others untouched");
        assert_eq!(
            rel.index(1).scan().collect_tuples(),
            vec![vec![8, 2]],
            "permuted secondary stays consistent"
        );
        // Reinsertion after erase is fresh.
        assert!(rel.insert(&[1, 9]));
        rel.record_annotation(&[1, 9], 7, 7);
        assert_eq!(rel.annotation(&[1, 9]), Some((7, 7)));
    }

    #[test]
    fn erase_heterogeneous_and_legacy_relations() {
        let mut mixed = heterogeneous_relation();
        mixed.insert(&[1, 9]);
        mixed.insert(&[2, 8]);
        assert!(mixed.erase(&[2, 8]));
        assert_eq!(mixed.index(0).len(), 1);
        assert_eq!(mixed.index(1).len(), 1);
        assert_eq!(
            mixed.index(1).scan().collect_tuples(),
            vec![vec![9, 1]],
            "brie secondary erased through its permuted order"
        );

        use crate::dynindex::DynBTreeIndex;
        let mut legacy = Relation::from_adapters(
            "legacy",
            2,
            vec![Box::new(DynBTreeIndex::new(Order::new(vec![1, 0]))) as Box<dyn IndexAdapter>],
        );
        legacy.insert(&[4, 6]);
        legacy.insert(&[5, 5]);
        assert!(legacy.erase(&[4, 6]));
        assert!(!legacy.contains(&[4, 6]));
        assert!(legacy.contains(&[5, 5]));
        assert_eq!(legacy.to_sorted_tuples(), vec![vec![5, 5]]);
    }

    #[test]
    fn erase_nullary_clears_the_flag() {
        let mut flag = Relation::new("flag", 0, vec![]);
        flag.enable_annotations();
        assert!(!flag.erase(&[]));
        flag.insert(&[]);
        flag.record_annotation(&[], 0, 0);
        assert!(flag.erase(&[]));
        assert!(flag.is_empty());
        assert_eq!(flag.annotation(&[]), None);
    }

    #[test]
    fn merge_after_erase_restores_tuples_and_annotations() {
        let mut full = two_index_relation();
        full.enable_annotations();
        full.insert(&[1, 2]);
        full.record_annotation(&[1, 2], 0, 0);
        full.erase(&[1, 2]);

        let mut upd = two_index_relation();
        upd.enable_annotations();
        upd.insert(&[1, 2]);
        upd.record_annotation(&[1, 2], 2, 9);
        full.merge_from(&upd);
        assert!(full.contains(&[1, 2]));
        assert_eq!(
            full.annotation(&[1, 2]),
            Some((2, 9)),
            "re-merged tuple carries the new derivation, not the erased one"
        );
    }

    #[test]
    fn eqrel_relation_works() {
        let mut rel = Relation::new(
            "eq",
            2,
            vec![IndexSpec::new(Representation::EqRel, Order::natural(2))],
        );
        rel.insert(&[1, 2]);
        assert!(rel.contains(&[2, 1]));
        assert_eq!(rel.len(), 4);
    }
}
