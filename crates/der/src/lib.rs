//! Datalog-Enabled Relational (DER) data structures, de-specialized.
//!
//! This crate is the substrate of the STIR engine: the in-memory set data
//! structures that store relation tuples and accelerate the *primitive
//! searches* (prefix range queries) that dominate Datalog evaluation.
//!
//! Following the PLDI'21 paper *"An Efficient Interpreter for Datalog by
//! De-specializing Relations"*, the portfolio consists of
//!
//! * a fixed-arity **B-tree** ([`btree::BTreeIndexSet`]),
//! * a fixed-arity **Brie** (trie, [`brie::Brie`]), and
//! * a binary **equivalence relation** backed by a union-find
//!   ([`eqrel::EquivalenceRelation`]).
//!
//! All structures store tuples of [`RamDomain`] values (`u32` bit patterns)
//! in the **natural lexicographic order** only. The two de-specialization
//! steps of the paper are realized as:
//!
//! 1. *Order de-specialization*: arbitrary lexicographic orders are obtained
//!    by permuting tuples through an [`order::Order`] **before insertion**,
//!    so the data structures themselves only ever compare element 0 first,
//!    then element 1, and so on.
//! 2. *Type de-specialization*: every element is a `u32` bit pattern;
//!    signed/float semantics live in the interpreter's functors, not in the
//!    index comparator (with the documented trade-off that index order is
//!    bit order).
//!
//! The remaining parameter space — representation × arity — is small enough
//! to pre-instantiate: the [`factory`] module materializes every combination
//! for arities `1..=16` behind the object-safe [`adapter::IndexAdapter`]
//! trait, mirroring the paper's `BTreeIndexFactory`.
//!
//! # Example
//!
//! ```
//! use stir_der::factory::{new_index, IndexSpec, Representation};
//! use stir_der::iter::TupleIter;
//! use stir_der::order::Order;
//!
//! let spec = IndexSpec::new(Representation::BTree, Order::natural(2));
//! let mut edge = new_index(&spec);
//! edge.insert(&[1, 2]);
//! edge.insert(&[1, 3]);
//! edge.insert(&[2, 3]);
//! assert!(edge.contains(&[1, 2]));
//! // primitive search: all tuples whose first element is 1
//! let hits: Vec<_> = edge.range(&[1, 0], &[1, u32::MAX]).collect_tuples();
//! assert_eq!(hits, vec![vec![1, 2], vec![1, 3]]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adapter;
pub mod brie;
pub mod btree;
pub mod buffer;
pub mod disk;
pub mod dump;
pub mod dynindex;
pub mod eqrel;
pub mod factory;
pub mod iter;
pub mod order;
pub mod relation;
pub mod tuple;

pub use adapter::{IndexAdapter, Morsels};
pub use buffer::InsertBuffer;
pub use factory::{new_index, IndexSpec, Representation};
pub use order::Order;
pub use relation::Relation;
pub use tuple::{RamDomain, Tuple, MAX_ARITY};
