//! The value domain and fixed-arity tuples.
//!
//! Everything stored in a DER index is a [`RamDomain`] — a 32-bit bit
//! pattern. Numbers are stored as two's-complement `i32` bits, unsigned
//! numbers directly, floats as IEEE-754 `f32` bits, and symbols as indices
//! into the engine's symbol table. This is the paper's second
//! de-specialization step: indexes compare raw bits only.

use std::cmp::Ordering;

/// The single runtime value type of the engine: a 32-bit bit pattern.
///
/// Interpretation (signed, unsigned, float, symbol id) is applied by
/// functors and by I/O, never by the data structures.
pub type RamDomain = u32;

/// The largest relation arity for which indexes are pre-instantiated.
///
/// Matches the paper's observation that real-world programs use arities up
/// to 16. The [`crate::factory`] rejects larger arities.
pub const MAX_ARITY: usize = 16;

/// A fixed-arity tuple of [`RamDomain`] values.
///
/// The `const N` parameter is the Rust analogue of the paper's C++ template
/// arity parameter: operations on `Tuple<N>` are fully monomorphized, so
/// comparisons unroll and tuples live on the stack.
pub type Tuple<const N: usize> = [RamDomain; N];

/// Converts a dynamically sized slice into a fixed-arity tuple.
///
/// This is the boundary between the interpreter's dynamic world (slices)
/// and the data structures' static world (arrays).
///
/// # Panics
///
/// Panics if `slice.len() != N`; the caller (the factory-produced adapter)
/// guarantees matching arity.
#[inline]
pub fn tuple_from_slice<const N: usize>(slice: &[RamDomain]) -> Tuple<N> {
    debug_assert_eq!(slice.len(), N, "arity mismatch");
    let mut t = [0; N];
    t.copy_from_slice(slice);
    t
}

/// Compares two tuples in the natural lexicographic order on raw bits.
///
/// Provided as a named function (rather than relying on `Ord` for arrays)
/// so call sites in performance-critical loops are explicit about the
/// comparison semantics.
#[inline]
pub fn cmp_tuples<const N: usize>(a: &Tuple<N>, b: &Tuple<N>) -> Ordering {
    for i in 0..N {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// Compares two equal-length slices in the natural lexicographic order.
///
/// Dynamic-arity counterpart of [`cmp_tuples`], used by the legacy
/// (non-de-specialized) code paths.
#[inline]
pub fn cmp_slices(a: &[RamDomain], b: &[RamDomain]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// Returns the smallest tuple of arity `N`: all components zero.
#[inline]
pub fn min_tuple<const N: usize>() -> Tuple<N> {
    [0; N]
}

/// Returns the largest tuple of arity `N`: all components `u32::MAX`.
#[inline]
pub fn max_tuple<const N: usize>() -> Tuple<N> {
    [RamDomain::MAX; N]
}

/// Converts a signed number to its stored bit pattern.
#[inline]
pub fn from_signed(v: i32) -> RamDomain {
    v as u32
}

/// Reads a stored bit pattern as a signed number.
#[inline]
pub fn to_signed(v: RamDomain) -> i32 {
    v as i32
}

/// Converts a float to its stored bit pattern.
#[inline]
pub fn from_float(v: f32) -> RamDomain {
    v.to_bits()
}

/// Reads a stored bit pattern as a float.
#[inline]
pub fn to_float(v: RamDomain) -> f32 {
    f32::from_bits(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slice_round_trips() {
        let t: Tuple<3> = tuple_from_slice(&[7, 8, 9]);
        assert_eq!(t, [7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn from_slice_rejects_wrong_arity() {
        // Only checked in debug builds; tests run in debug.
        let _: Tuple<2> = tuple_from_slice(&[1, 2, 3]);
    }

    #[test]
    fn lexicographic_comparison_is_natural() {
        assert_eq!(cmp_tuples(&[1, 9], &[2, 0]), Ordering::Less);
        assert_eq!(cmp_tuples(&[2, 0], &[2, 1]), Ordering::Less);
        assert_eq!(cmp_tuples(&[2, 1], &[2, 1]), Ordering::Equal);
        assert_eq!(cmp_tuples(&[3, 0], &[2, 9]), Ordering::Greater);
    }

    #[test]
    fn slice_comparison_matches_tuple_comparison() {
        let pairs = [([1u32, 2], [1u32, 3]), ([5, 5], [5, 5]), ([9, 0], [1, 1])];
        for (a, b) in pairs {
            assert_eq!(cmp_tuples(&a, &b), cmp_slices(&a, &b));
        }
    }

    #[test]
    fn signed_and_float_round_trip_through_bits() {
        for v in [-5i32, 0, 7, i32::MIN, i32::MAX] {
            assert_eq!(to_signed(from_signed(v)), v);
        }
        for v in [-1.5f32, 0.0, 3.25, f32::MAX] {
            assert_eq!(to_float(from_float(v)), v);
        }
    }

    #[test]
    fn min_and_max_tuples_bound_everything() {
        let t: Tuple<2> = [42, 7];
        assert_eq!(cmp_tuples(&min_tuple(), &t), Ordering::Less);
        assert_eq!(cmp_tuples(&t, &max_tuple()), Ordering::Less);
    }
}
