//! The legacy, fully dynamic index: a B-tree with a *runtime* comparator.
//!
//! Soufflé's pre-STI interpreter represented every relation with a single
//! generic structure whose lexicographic order was an array consulted on
//! **every comparison** (paper §5.1). Tuples are stored un-permuted in
//! source order and boxed (the arity is not a compile-time constant), so
//! each insert/lookup pays pointer-chasing and order indirection — this is
//! precisely the cost profile the de-specialized structures eliminate, and
//! it is what the legacy-interpreter baseline of Fig. 15 measures.

use crate::adapter::{IndexAdapter, IndexStats};
use crate::iter::{TupleIter, VecTupleIter};
use crate::order::Order;
use crate::tuple::RamDomain;
use std::any::Any;
use std::cmp::Ordering;

/// Maximum keys per node; matches [`crate::btree`] so tree shapes are
/// comparable and only the comparator/layout differ.
const MAX_KEYS: usize = 31;

/// Compares two source-order tuples through a runtime order array.
#[inline]
fn cmp_with_order(a: &[RamDomain], b: &[RamDomain], order: &Order) -> Ordering {
    for &c in order.columns() {
        match a[c].cmp(&b[c]) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

#[derive(Debug, Clone)]
struct DynNode {
    keys: Vec<Box<[RamDomain]>>,
    // One heap allocation per node, mirroring the static B-tree.
    #[allow(clippy::vec_box)]
    children: Vec<Box<DynNode>>,
}

impl DynNode {
    fn new_leaf() -> Self {
        DynNode {
            keys: Vec::with_capacity(MAX_KEYS),
            children: Vec::new(),
        }
    }

    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    fn is_full(&self) -> bool {
        self.keys.len() == MAX_KEYS
    }

    fn find(&self, key: &[RamDomain], order: &Order) -> Result<usize, usize> {
        self.keys
            .binary_search_by(|k| cmp_with_order(k, key, order))
    }

    fn split_child(&mut self, idx: usize) {
        let mid = MAX_KEYS / 2;
        let child = &mut self.children[idx];
        let right = Box::new(DynNode {
            keys: child.keys.split_off(mid + 1),
            children: if child.is_leaf() {
                Vec::new()
            } else {
                child.children.split_off(mid + 1)
            },
        });
        let median = child.keys.pop().expect("full child has a median");
        self.keys.insert(idx, median);
        self.children.insert(idx + 1, right);
    }

    fn insert_nonfull(&mut self, key: Box<[RamDomain]>, order: &Order) -> bool {
        match self.find(&key, order) {
            Ok(_) => false,
            Err(mut pos) => {
                if self.is_leaf() {
                    self.keys.insert(pos, key);
                    return true;
                }
                if self.children[pos].is_full() {
                    self.split_child(pos);
                    match cmp_with_order(&key, &self.keys[pos], order) {
                        Ordering::Equal => return false,
                        Ordering::Greater => pos += 1,
                        Ordering::Less => {}
                    }
                }
                self.children[pos].insert_nonfull(key, order)
            }
        }
    }

    fn contains(&self, key: &[RamDomain], order: &Order) -> bool {
        match self.find(key, order) {
            Ok(_) => true,
            Err(pos) => !self.is_leaf() && self.children[pos].contains(key, order),
        }
    }

    /// Structural lazy removal, mirroring
    /// [`crate::btree::BTreeIndexSet::remove`]: internal keys are
    /// replaced by their in-order predecessor or successor, nodes are
    /// never rebalanced, and `children.len() == keys.len() + 1` is
    /// preserved throughout.
    fn remove(&mut self, key: &[RamDomain], order: &Order) -> bool {
        match self.find(key, order) {
            Ok(pos) => {
                if self.is_leaf() {
                    self.keys.remove(pos);
                } else if let Some(pred) = self.children[pos].pop_max() {
                    self.keys[pos] = pred;
                } else if let Some(succ) = self.children[pos + 1].pop_min() {
                    self.keys[pos] = succ;
                } else {
                    self.keys.remove(pos);
                    self.children.remove(pos);
                }
                true
            }
            Err(pos) => !self.is_leaf() && self.children[pos].remove(key, order),
        }
    }

    fn pop_max(&mut self) -> Option<Box<[RamDomain]>> {
        if self.is_leaf() {
            return self.keys.pop();
        }
        let last = self.children.len() - 1;
        if let Some(k) = self.children[last].pop_max() {
            return Some(k);
        }
        let k = self.keys.pop()?;
        self.children.pop();
        Some(k)
    }

    fn pop_min(&mut self) -> Option<Box<[RamDomain]>> {
        if self.is_leaf() {
            if self.keys.is_empty() {
                return None;
            }
            return Some(self.keys.remove(0));
        }
        if let Some(k) = self.children[0].pop_min() {
            return Some(k);
        }
        if self.keys.is_empty() {
            return None;
        }
        let k = self.keys.remove(0);
        self.children.remove(0);
        Some(k)
    }

    fn collect_range(
        &self,
        lo: &[RamDomain],
        hi: &[RamDomain],
        order: &Order,
        out: &mut Vec<RamDomain>,
    ) {
        // In-order walk, pruned by the bounds. `start` is the first key
        // `>= lo`; the subtree left of it can only contain in-range keys if
        // `lo` fell strictly between keys (Err), not on a key (Ok).
        let (start, visit_left_subtree) = match self.find(lo, order) {
            Ok(p) => (p, false),
            Err(p) => (p, true),
        };
        if !self.is_leaf() && visit_left_subtree {
            self.children[start].collect_range(lo, hi, order, out);
        }
        for i in start..self.keys.len() {
            if cmp_with_order(&self.keys[i], hi, order) == Ordering::Greater {
                return;
            }
            out.extend_from_slice(&self.keys[i]);
            if !self.is_leaf() {
                self.children[i + 1].collect_range(lo, hi, order, out);
            }
        }
    }
}

/// A dynamically-typed B-tree index with a runtime comparator.
///
/// # Example
///
/// ```
/// use stir_der::dynindex::DynBTreeIndex;
/// use stir_der::iter::TupleIter;
/// use stir_der::order::Order;
/// use stir_der::adapter::IndexAdapter;
///
/// let mut idx = DynBTreeIndex::new(Order::new(vec![1, 0]));
/// idx.insert(&[1, 50]);
/// idx.insert(&[2, 40]);
/// // iteration follows the runtime order: column 1 first
/// let all = idx.scan().collect_tuples();
/// assert_eq!(all, vec![vec![2, 40], vec![1, 50]]);
/// ```
#[derive(Debug, Clone)]
pub struct DynBTreeIndex {
    order: Order,
    root: Box<DynNode>,
    len: usize,
}

impl DynBTreeIndex {
    /// Creates an empty index ordered by the runtime comparator `order`.
    pub fn new(order: Order) -> Self {
        DynBTreeIndex {
            order,
            root: Box::new(DynNode::new_leaf()),
            len: 0,
        }
    }
}

impl IndexAdapter for DynBTreeIndex {
    fn order(&self) -> &Order {
        &self.order
    }

    fn arity(&self) -> usize {
        self.order.arity()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> IndexStats {
        fn walk(n: &DynNode, arity: usize) -> (usize, usize) {
            let mut nodes = 1;
            let mut bytes = std::mem::size_of::<DynNode>()
                + n.keys.capacity() * std::mem::size_of::<Box<[RamDomain]>>()
                + n.keys.len() * arity * std::mem::size_of::<RamDomain>()
                + n.children.capacity() * std::mem::size_of::<Box<DynNode>>();
            for c in &n.children {
                let (cn, cb) = walk(c, arity);
                nodes += cn;
                bytes += cb;
            }
            (nodes, bytes)
        }
        let (nodes, bytes) = walk(&self.root, self.arity());
        IndexStats {
            tuples: self.len,
            nodes,
            bytes,
        }
    }

    fn clear(&mut self) {
        *self.root = DynNode::new_leaf();
        self.len = 0;
    }

    fn insert(&mut self, t: &[RamDomain]) -> bool {
        debug_assert_eq!(t.len(), self.arity());
        if self.root.is_full() {
            let old_root = std::mem::replace(&mut *self.root, DynNode::new_leaf());
            self.root.children.push(Box::new(old_root));
            self.root.split_child(0);
        }
        let inserted = self
            .root
            .insert_nonfull(t.to_vec().into_boxed_slice(), &self.order);
        if inserted {
            self.len += 1;
        }
        inserted
    }

    fn erase(&mut self, t: &[RamDomain]) -> bool {
        debug_assert_eq!(t.len(), self.arity());
        let removed = self.root.remove(t, &self.order);
        if removed {
            self.len -= 1;
            while self.root.keys.is_empty() && self.root.children.len() == 1 {
                let child = self.root.children.pop().expect("single child");
                *self.root = *child;
            }
        }
        removed
    }

    /// Tuples are stored in source layout, so a "stored-order" prefix
    /// constrains the first `prefix.len()` columns of the runtime
    /// comparator order — the same convention the prefix special case
    /// of [`DynBTreeIndex::range`] realizes with source-order bounds.
    fn erase_prefix(&mut self, prefix: &[RamDomain]) -> usize {
        let arity = self.arity();
        debug_assert!(prefix.len() <= arity);
        let mut lo = vec![0; arity];
        let mut hi = vec![RamDomain::MAX; arity];
        for (i, &v) in prefix.iter().enumerate() {
            let c = self.order.columns()[i];
            lo[c] = v;
            hi[c] = v;
        }
        let doomed = self.range(&lo, &hi).collect_tuples();
        let mut erased = 0;
        for t in &doomed {
            if self.erase(t) {
                erased += 1;
            }
        }
        erased
    }

    fn contains(&self, t: &[RamDomain]) -> bool {
        self.root.contains(t, &self.order)
    }

    /// For this index "stored" order *is* source order (tuples are kept
    /// un-permuted; the comparator does the reordering).
    fn contains_stored(&self, t: &[RamDomain]) -> bool {
        self.contains(t)
    }

    fn stores_source_order(&self) -> bool {
        true
    }

    fn scan(&self) -> Box<dyn TupleIter + Send + '_> {
        let lo = vec![0; self.arity()];
        let hi = vec![RamDomain::MAX; self.arity()];
        self.range(&lo, &hi)
    }

    /// Range scan with **source-order** bounds compared through the runtime
    /// order (the legacy interpreter builds its bounds in source order).
    ///
    /// The scan materializes into one flat buffer; parallel evaluation
    /// streams morsels out of it via the default
    /// [`IndexAdapter::morsels`] instead of copying per-worker slices.
    fn range(&self, lo: &[RamDomain], hi: &[RamDomain]) -> Box<dyn TupleIter + Send + '_> {
        let mut out = Vec::new();
        if self.len > 0 && cmp_with_order(lo, hi, &self.order) != Ordering::Greater {
            self.root.collect_range(lo, hi, &self.order, &mut out);
        }
        Box::new(VecTupleIter::new(out, self.arity()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::BTreeIndex;

    #[test]
    fn matches_static_btree_under_permuted_order() {
        let order = Order::new(vec![2, 0, 1]);
        let mut dynamic = DynBTreeIndex::new(order.clone());
        let mut static_ = BTreeIndex::<3>::new(order.clone());
        let mut seed = 3u32;
        for _ in 0..2000 {
            seed = seed.wrapping_mul(48271) % 0x7fff_ffff;
            let t = [seed % 19, seed % 23, seed % 13];
            assert_eq!(dynamic.insert(&t), static_.insert(&t));
        }
        assert_eq!(dynamic.len(), static_.len());
        // Dynamic yields source order; static yields stored order. Decode
        // the static side for comparison.
        let dyn_all = dynamic.scan().collect_tuples();
        let static_all: Vec<Vec<u32>> = static_
            .scan()
            .collect_tuples()
            .into_iter()
            .map(|t| order.decode_vec(&t))
            .collect();
        assert_eq!(dyn_all, static_all);
    }

    #[test]
    fn range_with_source_bounds_matches_filter() {
        let order = Order::new(vec![1, 0]);
        let mut idx = DynBTreeIndex::new(order.clone());
        for a in 0..20u32 {
            for b in 0..20u32 {
                idx.insert(&[a, b]);
            }
        }
        // All tuples whose column 1 equals 7 (a prefix search on the order).
        let mut lo = vec![0u32, 7];
        let mut hi = vec![u32::MAX, 7];
        let hits = idx.range(&lo, &hi).collect_tuples();
        assert_eq!(hits.len(), 20);
        assert!(hits.iter().all(|t| t[1] == 7));
        // Inverted bounds yield nothing.
        lo[1] = 9;
        hi[1] = 8;
        assert_eq!(idx.range(&lo, &hi).count_tuples(), 0);
    }

    #[test]
    fn dedupes_like_a_set() {
        let mut idx = DynBTreeIndex::new(Order::natural(2));
        assert!(idx.insert(&[1, 2]));
        assert!(!idx.insert(&[1, 2]));
        assert_eq!(idx.len(), 1);
        idx.clear();
        assert!(idx.is_empty());
    }

    #[test]
    fn erase_matches_oracle_under_permuted_order() {
        let order = Order::new(vec![1, 0]);
        let mut idx = DynBTreeIndex::new(order);
        let mut oracle = std::collections::BTreeSet::new();
        let mut seed = 17u32;
        for step in 0..10_000u32 {
            seed = seed.wrapping_mul(48271) % 0x7fff_ffff;
            let t = vec![seed % 37, seed % 41];
            if step % 3 == 0 {
                assert_eq!(idx.erase(&t), oracle.remove(&t), "step {step}");
            } else {
                assert_eq!(idx.insert(&t), oracle.insert(t.clone()), "step {step}");
            }
            assert_eq!(idx.len(), oracle.len(), "step {step}");
        }
        let mut got = idx.scan().collect_tuples();
        got.sort();
        let want: Vec<Vec<u32>> = oracle.iter().cloned().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn erase_prefix_follows_the_comparator_order() {
        // Order [1, 0]: a stored-order prefix constrains source column 1.
        let mut idx = DynBTreeIndex::new(Order::new(vec![1, 0]));
        for a in 0..10u32 {
            for b in 0..4u32 {
                idx.insert(&[a, b]);
            }
        }
        assert_eq!(idx.erase_prefix(&[2]), 10, "all tuples with col1 == 2");
        assert_eq!(idx.len(), 30);
        assert!(idx.scan().collect_tuples().iter().all(|t| t[1] != 2));
        // Widened-annotation idiom: natural order, prefix = the base tuple.
        let mut ann = DynBTreeIndex::new(Order::natural(4));
        ann.insert(&[1, 2, 0, 3]);
        ann.insert(&[1, 2, 5, 8]);
        ann.insert(&[1, 3, 0, 0]);
        assert_eq!(ann.erase_prefix(&[1, 2]), 2);
        assert_eq!(ann.len(), 1);
        assert!(ann.contains(&[1, 3, 0, 0]));
    }
}
