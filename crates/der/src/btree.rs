//! A B-tree set specialized for fixed-arity tuples.
//!
//! This is the workhorse DER structure (the paper's reference 30): a set of `[u32; N]`
//! tuples ordered by the natural lexicographic order, supporting inserts,
//! membership tests, full scans, and — crucially — *primitive searches*:
//! iteration over all tuples between an inclusive lower and upper bound,
//! which the RAM level uses to realize prefix queries such as
//! "all tuples whose first column equals `v`".
//!
//! The arity is a `const` generic, so every comparison and copy below is
//! monomorphized and unrolled by the compiler — the Rust analogue of the
//! C++ template specialization the paper de-specializes. The structure
//! deliberately supports **only** the natural order; other orders are
//! obtained by permuting tuples before insertion (see [`crate::order`]).

use crate::tuple::{cmp_tuples, Tuple};
use std::cmp::Ordering;

/// Maximum number of keys per node (`2*B - 1` for minimum degree `B = 16`).
///
/// Wide nodes keep the tree shallow and make the per-node binary search
/// cache-friendly, mirroring Soufflé's wide-node B-tree design.
const MAX_KEYS: usize = 31;

/// A node: `children` is empty for leaves, otherwise
/// `children.len() == keys.len() + 1`.
#[derive(Debug, Clone)]
struct Node<const N: usize> {
    keys: Vec<Tuple<N>>,
    // One heap allocation per node (not inline in the parent's vec), as
    // in the paper's C++ B-tree; `bytes()` counts nodes on that basis.
    #[allow(clippy::vec_box)]
    children: Vec<Box<Node<N>>>,
}

impl<const N: usize> Node<N> {
    fn new_leaf() -> Self {
        Node {
            keys: Vec::with_capacity(MAX_KEYS),
            children: Vec::new(),
        }
    }

    #[inline]
    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    #[inline]
    fn is_full(&self) -> bool {
        self.keys.len() == MAX_KEYS
    }

    /// Binary search within the node.
    #[inline]
    fn find(&self, key: &Tuple<N>) -> Result<usize, usize> {
        self.keys.binary_search_by(|k| cmp_tuples(k, key))
    }

    /// Splits the full child at `idx`, promoting its median key into `self`.
    fn split_child(&mut self, idx: usize) {
        let mid = MAX_KEYS / 2;
        let child = &mut self.children[idx];
        let mut right = Box::new(Node {
            keys: child.keys.split_off(mid + 1),
            children: if child.is_leaf() {
                Vec::new()
            } else {
                child.children.split_off(mid + 1)
            },
        });
        right.keys.reserve(MAX_KEYS - right.keys.len());
        let median = child.keys.pop().expect("full child has a median");
        self.keys.insert(idx, median);
        self.children.insert(idx + 1, right);
    }

    /// Inserts into a node that is known not to be full.
    fn insert_nonfull(&mut self, key: Tuple<N>) -> bool {
        match self.find(&key) {
            Ok(_) => false,
            Err(mut pos) => {
                if self.is_leaf() {
                    self.keys.insert(pos, key);
                    return true;
                }
                if self.children[pos].is_full() {
                    self.split_child(pos);
                    match cmp_tuples(&key, &self.keys[pos]) {
                        Ordering::Equal => return false,
                        Ordering::Greater => pos += 1,
                        Ordering::Less => {}
                    }
                }
                self.children[pos].insert_nonfull(key)
            }
        }
    }

    fn contains(&self, key: &Tuple<N>) -> bool {
        match self.find(key) {
            Ok(_) => true,
            Err(pos) => !self.is_leaf() && self.children[pos].contains(key),
        }
    }
}

/// An ordered set of fixed-arity tuples backed by a B-tree.
///
/// # Example
///
/// ```
/// use stir_der::btree::BTreeIndexSet;
///
/// let mut set = BTreeIndexSet::<2>::new();
/// assert!(set.insert([1, 2]));
/// assert!(!set.insert([1, 2])); // set semantics
/// assert!(set.contains(&[1, 2]));
/// let all: Vec<_> = set.iter().copied().collect();
/// assert_eq!(all, vec![[1, 2]]);
/// ```
#[derive(Debug, Clone)]
pub struct BTreeIndexSet<const N: usize> {
    root: Box<Node<N>>,
    len: usize,
}

impl<const N: usize> BTreeIndexSet<N> {
    /// Creates an empty set.
    pub fn new() -> Self {
        BTreeIndexSet {
            root: Box::new(Node::new_leaf()),
            len: 0,
        }
    }

    /// Number of tuples stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all tuples.
    pub fn clear(&mut self) {
        *self.root = Node::new_leaf();
        self.len = 0;
    }

    /// Number of allocated B-tree nodes, including the (possibly empty)
    /// root.
    pub fn node_count(&self) -> usize {
        fn walk<const N: usize>(n: &Node<N>) -> usize {
            1 + n.children.iter().map(|c| walk(c)).sum::<usize>()
        }
        walk(&self.root)
    }

    /// Estimated heap bytes held by the tree: node headers, key storage
    /// and child pointers, counted at allocated capacity.
    pub fn estimated_bytes(&self) -> usize {
        fn walk<const N: usize>(n: &Node<N>) -> usize {
            std::mem::size_of::<Node<N>>()
                + n.keys.capacity() * std::mem::size_of::<Tuple<N>>()
                + n.children.capacity() * std::mem::size_of::<Box<Node<N>>>()
                + n.children.iter().map(|c| walk(c)).sum::<usize>()
        }
        walk(&self.root)
    }

    /// Inserts a tuple, returning `true` if it was not already present.
    pub fn insert(&mut self, key: Tuple<N>) -> bool {
        if self.root.is_full() {
            let old_root = std::mem::replace(&mut *self.root, Node::new_leaf());
            self.root.children.push(Box::new(old_root));
            self.root.split_child(0);
        }
        let inserted = self.root.insert_nonfull(key);
        if inserted {
            self.len += 1;
        }
        inserted
    }

    /// Membership test.
    pub fn contains(&self, key: &Tuple<N>) -> bool {
        self.root.contains(key)
    }

    /// Removes a tuple, returning `true` if it was present.
    ///
    /// Deletion is structural but *lazy*: keys leave their node (an
    /// internal key is replaced by its in-order predecessor or
    /// successor) and no underflow rebalancing happens, so nodes may
    /// shrink below the usual B-tree minimum. Search, iteration and
    /// partitioning only rely on sorted keys and
    /// `children.len() == keys.len() + 1`, both of which are preserved;
    /// the empty root chain is collapsed so the tree height tracks the
    /// live population.
    pub fn remove(&mut self, key: &Tuple<N>) -> bool {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed {
            self.len -= 1;
            while self.root.keys.is_empty() && self.root.children.len() == 1 {
                let child = self.root.children.pop().expect("single child");
                *self.root = *child;
            }
        }
        removed
    }

    fn remove_rec(node: &mut Node<N>, key: &Tuple<N>) -> bool {
        match node.find(key) {
            Ok(pos) => {
                if node.is_leaf() {
                    node.keys.remove(pos);
                } else if let Some(pred) = Self::pop_max(&mut node.children[pos]) {
                    node.keys[pos] = pred;
                } else if let Some(succ) = Self::pop_min(&mut node.children[pos + 1]) {
                    node.keys[pos] = succ;
                } else {
                    // Both adjacent subtrees are drained: drop the key and
                    // one empty child to keep children.len() == keys.len()+1.
                    node.keys.remove(pos);
                    node.children.remove(pos);
                }
                true
            }
            Err(pos) => !node.is_leaf() && Self::remove_rec(&mut node.children[pos], key),
        }
    }

    /// Extracts the largest key of the subtree, or `None` if it is empty.
    fn pop_max(node: &mut Node<N>) -> Option<Tuple<N>> {
        if node.is_leaf() {
            return node.keys.pop();
        }
        let last = node.children.len() - 1;
        if let Some(k) = Self::pop_max(&mut node.children[last]) {
            return Some(k);
        }
        // Rightmost subtree is empty: yield the node's own last key and
        // drop the drained child alongside it.
        let k = node.keys.pop()?;
        node.children.pop();
        Some(k)
    }

    /// Extracts the smallest key of the subtree, or `None` if it is empty.
    fn pop_min(node: &mut Node<N>) -> Option<Tuple<N>> {
        if node.is_leaf() {
            if node.keys.is_empty() {
                return None;
            }
            return Some(node.keys.remove(0));
        }
        if let Some(k) = Self::pop_min(&mut node.children[0]) {
            return Some(k);
        }
        if node.keys.is_empty() {
            return None;
        }
        let k = node.keys.remove(0);
        node.children.remove(0);
        Some(k)
    }

    /// Iterates over all tuples in lexicographic order.
    pub fn iter(&self) -> Iter<'_, N> {
        let mut iter = Iter {
            stack: Vec::new(),
            hi: None,
            hi_exclusive: false,
        };
        if self.len > 0 {
            iter.descend_left(&self.root);
        }
        iter
    }

    /// Iterates over tuples `t` with `lo <= t <= hi` in lexicographic order.
    ///
    /// This is the *primitive search* operation: the RAM layer materializes
    /// a prefix query on the first `k` columns as
    /// `lo = (v1..vk, 0, ..)`, `hi = (v1..vk, MAX, ..)`.
    pub fn range(&self, lo: &Tuple<N>, hi: &Tuple<N>) -> Iter<'_, N> {
        let mut iter = Iter {
            stack: Vec::new(),
            hi: Some(*hi),
            hi_exclusive: false,
        };
        if self.len > 0 && cmp_tuples(lo, hi) != Ordering::Greater {
            iter.descend_lower_bound(&self.root, lo);
        }
        iter
    }

    /// Iterates starting from the first tuple `>= lo`.
    pub fn lower_bound(&self, lo: &Tuple<N>) -> Iter<'_, N> {
        let mut iter = Iter {
            stack: Vec::new(),
            hi: None,
            hi_exclusive: false,
        };
        if self.len > 0 {
            iter.descend_lower_bound(&self.root, lo);
        }
        iter
    }

    /// Splits the inclusive window `[lo, hi]` into at most `n` disjoint
    /// sub-iterators that together yield exactly `range(lo, hi)`.
    ///
    /// Split keys are drawn from the top two node levels (Soufflé's
    /// partitioning scheme for parallel scans), so each partition is
    /// balanced to within one third-level subtree. Partitions are
    /// half-open `[start, split)` except the last, which is closed at
    /// `hi`; concatenating them in order reproduces the sequential scan.
    pub fn partition_range(&self, lo: &Tuple<N>, hi: &Tuple<N>, n: usize) -> Vec<Iter<'_, N>> {
        if n <= 1 || self.len == 0 || cmp_tuples(lo, hi) == Ordering::Greater {
            return vec![self.range(lo, hi)];
        }
        // Candidate split keys: every key in the top two levels that lies
        // strictly inside the window (a split equal to `lo` would leave an
        // empty first partition).
        let mut cands: Vec<Tuple<N>> = Vec::new();
        {
            let mut push = |k: &Tuple<N>| {
                if cmp_tuples(k, lo) == Ordering::Greater && cmp_tuples(k, hi) != Ordering::Greater
                {
                    cands.push(*k);
                }
            };
            let root = &self.root;
            if root.is_leaf() {
                root.keys.iter().for_each(&mut push);
            } else {
                for (i, child) in root.children.iter().enumerate() {
                    child.keys.iter().for_each(&mut push);
                    if i < root.keys.len() {
                        push(&root.keys[i]);
                    }
                }
            }
        }
        if cands.is_empty() {
            return vec![self.range(lo, hi)];
        }
        let k = (n - 1).min(cands.len());
        let splits: Vec<Tuple<N>> = if cands.len() == k {
            cands
        } else {
            // Evenly spaced picks; indices are strictly increasing because
            // cands.len() >= k + 1, and keys are distinct.
            (0..k)
                .map(|j| cands[(j + 1) * cands.len() / (k + 1)])
                .collect()
        };
        let mut parts = Vec::with_capacity(splits.len() + 1);
        let mut start = *lo;
        for split in &splits {
            let mut it = Iter {
                stack: Vec::new(),
                hi: Some(*split),
                hi_exclusive: true,
            };
            it.descend_lower_bound(&self.root, &start);
            parts.push(it);
            start = *split;
        }
        let mut last = Iter {
            stack: Vec::new(),
            hi: Some(*hi),
            hi_exclusive: false,
        };
        last.descend_lower_bound(&self.root, &start);
        parts.push(last);
        parts
    }

    /// Splits the full scan into at most `n` disjoint sub-iterators (see
    /// [`BTreeIndexSet::partition_range`]).
    pub fn partition(&self, n: usize) -> Vec<Iter<'_, N>> {
        self.partition_range(&[0; N], &[u32::MAX; N], n)
    }
}

impl<const N: usize> Default for BTreeIndexSet<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> Extend<Tuple<N>> for BTreeIndexSet<N> {
    fn extend<I: IntoIterator<Item = Tuple<N>>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl<const N: usize> FromIterator<Tuple<N>> for BTreeIndexSet<N> {
    fn from_iter<I: IntoIterator<Item = Tuple<N>>>(iter: I) -> Self {
        let mut set = Self::new();
        set.extend(iter);
        set
    }
}

/// In-order iterator over a [`BTreeIndexSet`], optionally bounded above.
///
/// Stack frames are `(node, i)` where key `i` of `node` is the next key to
/// visit and the subtree `children[i]` has already been visited (or
/// skipped, for lower-bound starts).
#[derive(Debug)]
pub struct Iter<'a, const N: usize> {
    stack: Vec<(&'a Node<N>, usize)>,
    hi: Option<Tuple<N>>,
    /// When set, `hi` is an *exclusive* upper bound — used by
    /// [`BTreeIndexSet::partition_range`] so that a split key starts the
    /// next partition instead of ending this one.
    hi_exclusive: bool,
}

impl<'a, const N: usize> Iter<'a, N> {
    fn descend_left(&mut self, mut node: &'a Node<N>) {
        loop {
            self.stack.push((node, 0));
            if node.is_leaf() {
                return;
            }
            node = &node.children[0];
        }
    }

    /// Positions the stack at the first key `>= lo`.
    fn descend_lower_bound(&mut self, mut node: &'a Node<N>, lo: &Tuple<N>) {
        loop {
            let pos = match node.find(lo) {
                Ok(p) => {
                    // Exact hit: the subtree left of `keys[p]` holds only
                    // smaller keys, so start right at the key.
                    self.stack.push((node, p));
                    return;
                }
                Err(p) => p,
            };
            self.stack.push((node, pos));
            if node.is_leaf() {
                return;
            }
            node = &node.children[pos];
        }
    }
}

impl<'a, const N: usize> Iterator for Iter<'a, N> {
    type Item = &'a Tuple<N>;

    fn next(&mut self) -> Option<&'a Tuple<N>> {
        loop {
            let (node, i) = *self.stack.last()?;
            if i >= node.keys.len() {
                self.stack.pop();
                continue;
            }
            let key = &node.keys[i];
            if let Some(hi) = &self.hi {
                let past = match cmp_tuples(key, hi) {
                    Ordering::Greater => true,
                    Ordering::Equal => self.hi_exclusive,
                    Ordering::Less => false,
                };
                if past {
                    // Keys only grow from here; fuse the iterator.
                    self.stack.clear();
                    return None;
                }
            }
            self.stack.last_mut().expect("frame exists").1 = i + 1;
            if !node.is_leaf() {
                self.descend_left(&node.children[i + 1]);
            }
            return Some(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect<const N: usize>(it: Iter<'_, N>) -> Vec<Tuple<N>> {
        it.copied().collect()
    }

    #[test]
    fn empty_set_behaves() {
        let set = BTreeIndexSet::<2>::new();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(!set.contains(&[0, 0]));
        assert_eq!(collect(set.iter()), Vec::<Tuple<2>>::new());
    }

    #[test]
    fn insert_dedupes_and_counts() {
        let mut set = BTreeIndexSet::<1>::new();
        assert!(set.insert([5]));
        assert!(set.insert([3]));
        assert!(!set.insert([5]));
        assert_eq!(set.len(), 2);
        assert_eq!(collect(set.iter()), vec![[3], [5]]);
    }

    #[test]
    fn many_inserts_stay_sorted_and_complete() {
        let mut set = BTreeIndexSet::<2>::new();
        // Insert in a scrambled order large enough to force many splits.
        let n = 10_000u32;
        let mut key = 1u32;
        for _ in 0..n {
            key = key.wrapping_mul(48271) % 0x7fff_ffff;
            set.insert([key % 500, key % 991]);
        }
        let all = collect(set.iter());
        let mut expected: Vec<Tuple<2>> = all.clone();
        expected.sort();
        expected.dedup();
        assert_eq!(all, expected, "iteration is sorted and duplicate-free");
        for t in &all {
            assert!(set.contains(t));
        }
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn range_returns_inclusive_window() {
        let mut set = BTreeIndexSet::<2>::new();
        for a in 0..10 {
            for b in 0..10 {
                set.insert([a, b]);
            }
        }
        let hits = collect(set.range(&[3, 0], &[3, u32::MAX]));
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|t| t[0] == 3));

        let window = collect(set.range(&[4, 7], &[5, 2]));
        assert_eq!(window, vec![[4, 7], [4, 8], [4, 9], [5, 0], [5, 1], [5, 2]]);
    }

    #[test]
    fn empty_range_yields_nothing() {
        let mut set = BTreeIndexSet::<1>::new();
        set.insert([10]);
        assert_eq!(collect(set.range(&[11], &[20])), Vec::<Tuple<1>>::new());
        assert_eq!(collect(set.range(&[5], &[3])), Vec::<Tuple<1>>::new());
    }

    #[test]
    fn lower_bound_starts_at_first_ge() {
        let mut set = BTreeIndexSet::<1>::new();
        for v in [2u32, 4, 6, 8] {
            set.insert([v]);
        }
        assert_eq!(collect(set.lower_bound(&[5])), vec![[6], [8]]);
        assert_eq!(collect(set.lower_bound(&[4])), vec![[4], [6], [8]]);
        assert_eq!(collect(set.lower_bound(&[9])), Vec::<Tuple<1>>::new());
    }

    #[test]
    fn clear_empties_the_set() {
        let mut set: BTreeIndexSet<1> = (0..100u32).map(|v| [v]).collect();
        assert_eq!(set.len(), 100);
        set.clear();
        assert!(set.is_empty());
        assert!(!set.contains(&[42]));
        set.insert([7]);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn partitions_cover_the_scan_disjointly() {
        let mut set = BTreeIndexSet::<2>::new();
        let mut key = 1u32;
        for _ in 0..5_000 {
            key = key.wrapping_mul(48271) % 0x7fff_ffff;
            set.insert([key % 700, key % 991]);
        }
        let expected = collect(set.iter());
        for n in [1usize, 2, 3, 4, 7, 16] {
            let parts = set.partition(n);
            assert!(parts.len() <= n.max(1), "at most {n} partitions");
            let mut joined: Vec<Tuple<2>> = Vec::new();
            for p in parts {
                joined.extend(p.copied());
            }
            // Concatenation in order == sequential scan, which also
            // proves disjointness (no duplicates) and coverage.
            assert_eq!(joined, expected, "n = {n}");
        }
    }

    #[test]
    fn partition_range_matches_range() {
        let mut set = BTreeIndexSet::<2>::new();
        for a in 0..60u32 {
            for b in 0..20u32 {
                set.insert([a, b]);
            }
        }
        let lo = [7u32, 3];
        let hi = [41u32, 11];
        let expected = collect(set.range(&lo, &hi));
        for n in [1usize, 2, 4, 8] {
            let mut joined: Vec<Tuple<2>> = Vec::new();
            for p in set.partition_range(&lo, &hi, n) {
                joined.extend(p.copied());
            }
            assert_eq!(joined, expected, "n = {n}");
        }
        // Degenerate windows still behave.
        assert!(set
            .partition_range(&[5, 5], &[5, 5], 4)
            .into_iter()
            .flatten()
            .copied()
            .eq([[5u32, 5]]));
        assert_eq!(
            set.partition_range(&[9, 9], &[2, 2], 4)
                .into_iter()
                .flatten()
                .count(),
            0
        );
    }

    #[test]
    fn partitioning_tiny_and_empty_sets() {
        let empty = BTreeIndexSet::<1>::new();
        assert_eq!(empty.partition(4).into_iter().flatten().count(), 0);
        let mut tiny = BTreeIndexSet::<1>::new();
        tiny.insert([3]);
        tiny.insert([8]);
        let joined: Vec<Tuple<1>> = tiny.partition(4).into_iter().flatten().copied().collect();
        assert_eq!(joined, vec![[3], [8]]);
    }

    #[test]
    fn remove_matches_std_btreeset_oracle() {
        let mut set = BTreeIndexSet::<2>::new();
        let mut oracle = std::collections::BTreeSet::new();
        let mut key = 1u32;
        // Interleave inserts and removes over a small key space so
        // removals hit leaves, internal keys, and absent tuples alike.
        for step in 0..20_000u32 {
            key = key.wrapping_mul(48271) % 0x7fff_ffff;
            let t = [key % 89, key % 97];
            if step % 3 == 0 {
                assert_eq!(set.remove(&t), oracle.remove(&t), "step {step}");
            } else {
                assert_eq!(set.insert(t), oracle.insert(t), "step {step}");
            }
            assert_eq!(set.len(), oracle.len(), "step {step}");
        }
        let got = collect(set.iter());
        let want: Vec<Tuple<2>> = oracle.iter().copied().collect();
        assert_eq!(got, want, "iteration after mixed insert/remove");
        for t in &want {
            assert!(set.contains(t));
        }
    }

    #[test]
    fn remove_drains_to_empty_and_reuses() {
        let mut set: BTreeIndexSet<1> = (0..2_000u32).map(|v| [v]).collect();
        for v in 0..2_000u32 {
            assert!(set.remove(&[v]));
            assert!(!set.remove(&[v]), "double remove is a no-op");
        }
        assert!(set.is_empty());
        assert_eq!(collect(set.iter()), Vec::<Tuple<1>>::new());
        assert!(set.insert([7]));
        assert!(set.contains(&[7]));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn range_and_partition_survive_removals() {
        let mut set = BTreeIndexSet::<2>::new();
        for a in 0..50u32 {
            for b in 0..10u32 {
                set.insert([a, b]);
            }
        }
        for a in 0..50u32 {
            for b in 0..10u32 {
                if (a + b) % 3 == 0 {
                    assert!(set.remove(&[a, b]));
                }
            }
        }
        let expected = collect(set.iter());
        assert!(expected.iter().all(|[a, b]| (a + b) % 3 != 0));
        for n in [1usize, 2, 4, 8] {
            let mut joined: Vec<Tuple<2>> = Vec::new();
            for p in set.partition(n) {
                joined.extend(p.copied());
            }
            assert_eq!(joined, expected, "n = {n}");
        }
        let hits = collect(set.range(&[7, 0], &[7, u32::MAX]));
        assert!(hits.iter().all(|t| t[0] == 7 && (t[0] + t[1]) % 3 != 0));
    }

    #[test]
    fn extremes_are_storable() {
        let mut set = BTreeIndexSet::<2>::new();
        set.insert([0, 0]);
        set.insert([u32::MAX, u32::MAX]);
        assert!(set.contains(&[0, 0]));
        assert!(set.contains(&[u32::MAX, u32::MAX]));
        assert_eq!(collect(set.range(&[0, 0], &[u32::MAX, u32::MAX])).len(), 2);
    }
}
