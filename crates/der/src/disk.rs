//! Disk-backed indexes: an immutable paged base run plus a delta overlay.
//!
//! This is the storage de-specialization step: because every index access
//! already goes through the object-safe [`IndexAdapter`] interface (or is
//! routed back onto it by the interpreter-tree builder), a relation can be
//! served straight off a file without the engine noticing. A [`DiskIndex`]
//! is the moral equivalent of an LSM level pair:
//!
//! * the **base run** — a sorted, immutable region of a snapshot-v2 file,
//!   read page-at-a-time through a budgeted pinned-page cache
//!   ([`RunFile`]), located by a sparse in-memory fence index (the first
//!   stored tuple of every page);
//! * the **delta overlay** — two in-memory sorted sets: fresh inserts
//!   (disjoint from the base) and erase tombstones (a subset of the base),
//!   merged with the base at iteration time.
//!
//! The merge preserves the exact set semantics of the in-memory adapters:
//! `insert`/`erase`/`erase_prefix` report the same freshness booleans and
//! counts, scans and ranges yield the same tuples in the same stored
//! order, and morsels concatenate to the sequential scan — so the
//! work-stealing parallel scans of the interpreter run unchanged over
//! paged data.
//!
//! Tuples are kept in **stored (encoded) order** on disk and in the
//! overlay, exactly like [`crate::adapter::BTreeIndex`]. For the legacy
//! data layer (which talks to its indexes in source order, see
//! [`crate::dynindex::DynBTreeIndex`]) a `DiskIndex` can be built in
//! *source-layout* mode: bounds are encoded on the way in and tuples
//! decoded on the way out, so "stored" order coincides with source order
//! for its callers while the on-disk bytes stay layout-canonical.

use crate::adapter::{IndexAdapter, IndexStats, Morsels};
use crate::iter::TupleIter;
use crate::order::Order;
use crate::tuple::{cmp_slices, RamDomain};
use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};
use std::fs::File;
use std::io::Write;
use std::ops::Bound;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

/// Bytes per page of a base run. Pages are the cache/eviction unit; 16 KiB
/// keeps the sparse fence index tiny (one tuple per ~4k tuples at arity 2)
/// while a handful of pages covers a typical range scan.
pub const DEFAULT_PAGE_BYTES: usize = 16 * 1024;

/// Default page-cache budget in bytes (per opened snapshot file).
pub const DEFAULT_CACHE_BYTES: usize = 4 * 1024 * 1024;

/// Tuples per page for a given arity (at least one).
pub fn page_tuples(arity: usize) -> usize {
    (DEFAULT_PAGE_BYTES / (arity.max(1) * std::mem::size_of::<RamDomain>())).max(1)
}

/// The page-cache budget: `STIR_PAGE_CACHE` (bytes) when set to a positive
/// integer, otherwise [`DEFAULT_CACHE_BYTES`]. The env knob exists so
/// tests and soaks can shrink the cache far below the data size and prove
/// residency stays bounded.
pub fn cache_budget_from_env() -> usize {
    std::env::var("STIR_PAGE_CACHE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_CACHE_BYTES)
}

/// Passively-sampled counters of one page cache, for the engine's metrics
/// registry (`storage.page_cache.*` gauges and `stir_page_cache_*` on the
/// admin endpoint).
#[derive(Debug, Default)]
pub struct PageCacheStats {
    /// Page requests served from the cache.
    pub hits: AtomicU64,
    /// Page requests that went to the file.
    pub misses: AtomicU64,
    /// Pages dropped to stay within the budget.
    pub evictions: AtomicU64,
    /// Bytes currently pinned in the cache.
    pub resident_bytes: AtomicU64,
}

#[derive(Debug)]
struct CachedPage {
    data: Arc<Vec<RamDomain>>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct PageCacheInner {
    pages: HashMap<u64, CachedPage>,
    bytes: usize,
    tick: u64,
}

/// A read-only snapshot-v2 file shared by every [`DiskIndex`] it backs,
/// with one budgeted page cache for all of them.
///
/// Pages are keyed by their absolute byte offset and evicted
/// least-recently-used once the budget is exceeded, so a database larger
/// than the budget scans in bounded memory.
#[derive(Debug)]
pub struct RunFile {
    file: File,
    budget: usize,
    stats: PageCacheStats,
    cache: Mutex<PageCacheInner>,
}

impl RunFile {
    /// Opens `path` for paged reads with the given cache budget in bytes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `File::open` error.
    pub fn open(path: &Path, budget: usize) -> std::io::Result<Arc<RunFile>> {
        let file = File::open(path)?;
        Ok(Arc::new(RunFile {
            file,
            budget: budget.max(1),
            stats: PageCacheStats::default(),
            cache: Mutex::new(PageCacheInner::default()),
        }))
    }

    /// The cache counters (shared by all indexes over this file).
    pub fn stats(&self) -> &PageCacheStats {
        &self.stats
    }

    /// The configured cache budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Loads `words` `u32`s starting at byte `offset`, through the cache.
    ///
    /// # Panics
    ///
    /// Panics if the file shrank or the read fails: the snapshot was
    /// integrity-checked at open, so a failing page read means the storage
    /// was yanked from under a live database — there is no correct answer
    /// to serve.
    fn load(&self, offset: u64, words: usize) -> Arc<Vec<RamDomain>> {
        {
            let mut inner = self.cache.lock().expect("page cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(p) = inner.pages.get_mut(&offset) {
                p.last_used = tick;
                self.stats.hits.fetch_add(1, AtomicOrdering::Relaxed);
                return Arc::clone(&p.data);
            }
        }
        // Read outside the lock so a miss does not stall other readers.
        let mut buf = vec![0u8; words * std::mem::size_of::<RamDomain>()];
        read_exact_at(&self.file, &mut buf, offset)
            .unwrap_or_else(|e| panic!("disk storage read failed at byte offset {offset}: {e}"));
        let mut data = Vec::with_capacity(words);
        for w in buf.chunks_exact(4) {
            data.push(RamDomain::from_le_bytes([w[0], w[1], w[2], w[3]]));
        }
        let data = Arc::new(data);
        let page_bytes = buf.len();
        self.stats.misses.fetch_add(1, AtomicOrdering::Relaxed);

        let mut inner = self.cache.lock().expect("page cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if inner.pages.contains_key(&offset) {
            // Raced with another reader; keep theirs.
            return Arc::clone(&inner.pages[&offset].data);
        }
        inner.pages.insert(
            offset,
            CachedPage {
                data: Arc::clone(&data),
                last_used: tick,
            },
        );
        inner.bytes += page_bytes;
        while inner.bytes > self.budget && inner.pages.len() > 1 {
            let victim = inner
                .pages
                .iter()
                .filter(|(&k, _)| k != offset)
                .min_by_key(|(_, p)| p.last_used)
                .map(|(&k, _)| k)
                .expect("more than one cached page");
            let dropped = inner.pages.remove(&victim).expect("victim present");
            inner.bytes -= dropped.data.len() * std::mem::size_of::<RamDomain>();
            self.stats.evictions.fetch_add(1, AtomicOrdering::Relaxed);
        }
        self.stats
            .resident_bytes
            .store(inner.bytes as u64, AtomicOrdering::Relaxed);
        data
    }
}

/// `pread(2)` without touching the shared file cursor, so concurrent
/// workers can page in independently.
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file.try_clone()?;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }
}

/// One sorted, immutable tuple run inside a [`RunFile`]: the base level of
/// a [`DiskIndex`].
///
/// `fence` holds the first stored tuple of each page (the sparse page
/// index); binary searches descend fence → page → tuple, touching at most
/// one page per probe.
#[derive(Debug, Clone)]
pub struct BaseRun {
    file: Arc<RunFile>,
    /// Absolute byte offset of the first tuple word.
    offset: u64,
    count: usize,
    arity: usize,
    page_tuples: usize,
    fence: Arc<Vec<RamDomain>>,
}

impl BaseRun {
    /// Wraps a run region of `file`.
    ///
    /// # Panics
    ///
    /// Panics if the fence length disagrees with the page geometry — the
    /// snapshot reader validates this before construction, so a mismatch
    /// is a caller bug.
    pub fn new(
        file: Arc<RunFile>,
        offset: u64,
        count: usize,
        arity: usize,
        page_tuples: usize,
        fence: Vec<RamDomain>,
    ) -> Self {
        let pages = count.div_ceil(page_tuples.max(1));
        assert_eq!(
            fence.len(),
            pages * arity,
            "sparse page index disagrees with run geometry"
        );
        BaseRun {
            file,
            offset,
            count,
            arity,
            page_tuples: page_tuples.max(1),
            fence: Arc::new(fence),
        }
    }

    /// Number of tuples in the run.
    pub fn count(&self) -> usize {
        self.count
    }

    fn pages(&self) -> usize {
        self.count.div_ceil(self.page_tuples)
    }

    fn page_len(&self, p: usize) -> usize {
        if (p + 1) * self.page_tuples <= self.count {
            self.page_tuples
        } else {
            self.count - p * self.page_tuples
        }
    }

    fn page(&self, p: usize) -> Arc<Vec<RamDomain>> {
        let words_before = p * self.page_tuples * self.arity;
        let offset = self.offset + (words_before * std::mem::size_of::<RamDomain>()) as u64;
        self.file.load(offset, self.page_len(p) * self.arity)
    }

    fn fence_tuple(&self, p: usize) -> &[RamDomain] {
        &self.fence[p * self.arity..(p + 1) * self.arity]
    }

    /// First global tuple index whose tuple is `>= key` (`upper == false`)
    /// or `> key` (`upper == true`).
    fn bound(&self, key: &[RamDomain], upper: bool) -> usize {
        if self.count == 0 {
            return 0;
        }
        let below = |t: &[RamDomain]| {
            let ord = cmp_slices(t, key);
            if upper {
                ord != Ordering::Greater
            } else {
                ord == Ordering::Less
            }
        };
        // Number of pages whose first tuple is below the target.
        let p = partition_point(self.pages(), |i| below(self.fence_tuple(i)));
        if p == 0 {
            return 0;
        }
        let page_no = p - 1;
        let page = self.page(page_no);
        let len = self.page_len(page_no);
        let pos = partition_point(len, |i| below(&page[i * self.arity..(i + 1) * self.arity]));
        page_no * self.page_tuples + pos
    }

    fn contains(&self, key: &[RamDomain]) -> bool {
        let i = self.bound(key, false);
        if i >= self.count {
            return false;
        }
        let p = i / self.page_tuples;
        let page = self.page(p);
        let k = (i - p * self.page_tuples) * self.arity;
        &page[k..k + self.arity] == key
    }
}

/// Binary search over `0..n`: the first index where `pred` turns false
/// (`pred` must be monotone true-then-false).
fn partition_point(n: usize, mut pred: impl FnMut(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// A sequential cursor over a slice `[pos, end)` of a base run, holding at
/// most one pinned page at a time.
#[derive(Debug)]
struct BaseCursor {
    run: BaseRun,
    pos: usize,
    end: usize,
    page_no: usize,
    page: Option<Arc<Vec<RamDomain>>>,
}

impl BaseCursor {
    fn new(run: BaseRun, pos: usize, end: usize) -> Self {
        BaseCursor {
            run,
            pos,
            end,
            page_no: usize::MAX,
            page: None,
        }
    }

    /// Copies the current tuple into `out`; `false` when exhausted.
    fn peek_into(&mut self, out: &mut Vec<RamDomain>) -> bool {
        if self.pos >= self.end {
            return false;
        }
        let p = self.pos / self.run.page_tuples;
        if self.page.is_none() || p != self.page_no {
            self.page = Some(self.run.page(p));
            self.page_no = p;
        }
        let page = self.page.as_ref().expect("page just loaded");
        let k = (self.pos - p * self.run.page_tuples) * self.run.arity;
        out.clear();
        out.extend_from_slice(&page[k..k + self.run.arity]);
        true
    }

    fn advance(&mut self) {
        self.pos += 1;
    }
}

type OverlayRange<'a> = std::iter::Peekable<std::collections::btree_set::Range<'a, Vec<RamDomain>>>;

/// The merge of (base minus tombstones) with the overlay inserts, in
/// stored order — the single iterator type behind `scan`, `range`, and
/// every morsel chunk of a [`DiskIndex`].
struct MergedIter<'a> {
    arity: usize,
    base: Option<BaseCursor>,
    base_cur: Vec<RamDomain>,
    base_valid: bool,
    inserts: OverlayRange<'a>,
    tombs: &'a BTreeSet<Vec<RamDomain>>,
    /// `Some(order)`: decode each yielded tuple back to source order
    /// (source-layout mode for the legacy data layer).
    decode: Option<Order>,
    out: Vec<RamDomain>,
}

impl std::fmt::Debug for MergedIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergedIter")
            .field("arity", &self.arity)
            .field("base", &self.base.as_ref().map(|c| (c.pos, c.end)))
            .finish()
    }
}

impl TupleIter for MergedIter<'_> {
    fn arity(&self) -> usize {
        self.arity
    }

    fn next_tuple(&mut self) -> Option<&[RamDomain]> {
        loop {
            if !self.base_valid {
                if let Some(c) = self.base.as_mut() {
                    self.base_valid = c.peek_into(&mut self.base_cur);
                }
            }
            // Base and overlay are disjoint, so a strict comparison fully
            // decides the merge; equality cannot occur.
            let take_base = match (self.base_valid, self.inserts.peek()) {
                (false, None) => return None,
                (true, None) => true,
                (false, Some(_)) => false,
                (true, Some(ins)) => cmp_slices(&self.base_cur, ins) == Ordering::Less,
            };
            if take_base {
                self.base.as_mut().expect("base valid").advance();
                self.base_valid = false;
                if self.tombs.contains(self.base_cur.as_slice()) {
                    continue;
                }
                return Some(match &self.decode {
                    Some(o) => {
                        o.decode(&self.base_cur, &mut self.out);
                        &self.out
                    }
                    None => &self.base_cur,
                });
            }
            let ins = self.inserts.next().expect("peeked");
            return Some(match &self.decode {
                Some(o) => {
                    o.decode(ins, &mut self.out);
                    &self.out
                }
                None => ins,
            });
        }
    }
}

/// A disk-backed index: immutable paged base run + in-memory delta
/// overlay, behind the ordinary [`IndexAdapter`] interface.
///
/// Invariants (maintained by `insert`/`erase`): `inserts` is disjoint from
/// the base run, `tombs` is a subset of it — so
/// `len = base + inserts - tombs` and merge iteration never sees equal
/// keys on both sides.
pub struct DiskIndex {
    order: Order,
    natural: bool,
    source_layout: bool,
    base: Option<BaseRun>,
    inserts: BTreeSet<Vec<RamDomain>>,
    tombs: BTreeSet<Vec<RamDomain>>,
}

impl std::fmt::Debug for DiskIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskIndex")
            .field("order", &self.order)
            .field("source_layout", &self.source_layout)
            .field("base", &self.base.as_ref().map(|b| b.count))
            .field("inserts", &self.inserts.len())
            .field("tombs", &self.tombs.len())
            .finish()
    }
}

impl DiskIndex {
    /// An overlay-only index (no base run yet): the construction state of
    /// a fresh `--storage disk` database before any snapshot exists.
    pub fn new(order: Order, source_layout: bool) -> Self {
        let natural = order.is_natural();
        DiskIndex {
            order,
            natural,
            source_layout,
            base: None,
            inserts: BTreeSet::new(),
            tombs: BTreeSet::new(),
        }
    }

    /// An index served off `base` with an empty overlay (cold start).
    pub fn with_base(order: Order, source_layout: bool, base: BaseRun) -> Self {
        assert_eq!(order.arity(), base.arity, "run arity must match order");
        let mut idx = DiskIndex::new(order, source_layout);
        idx.base = Some(base);
        idx
    }

    /// Replaces the base run and drops the overlay — the in-memory side of
    /// compaction, after base+delta were rewritten into a fresh file.
    pub fn rebase(&mut self, base: BaseRun) {
        assert_eq!(self.order.arity(), base.arity, "run arity must match order");
        self.base = Some(base);
        self.inserts.clear();
        self.tombs.clear();
    }

    /// `(inserts, tombstones)` sizes of the delta overlay.
    pub fn overlay_len(&self) -> (usize, usize) {
        (self.inserts.len(), self.tombs.len())
    }

    /// Whether a base run is attached.
    pub fn has_base(&self) -> bool {
        self.base.is_some()
    }

    /// Encodes a source-order tuple into the internal stored order.
    fn enc(&self, t: &[RamDomain]) -> Vec<RamDomain> {
        debug_assert_eq!(t.len(), self.order.arity());
        if self.natural {
            t.to_vec()
        } else {
            self.order.encode_vec(t)
        }
    }

    fn base_count(&self) -> usize {
        self.base.as_ref().map(|b| b.count).unwrap_or(0)
    }

    fn base_contains(&self, enc: &[RamDomain]) -> bool {
        self.base.as_ref().is_some_and(|b| b.contains(enc))
    }

    fn contains_enc(&self, enc: &[RamDomain]) -> bool {
        self.inserts.contains(enc) || (self.base_contains(enc) && !self.tombs.contains(enc))
    }

    fn erase_enc(&mut self, enc: &[RamDomain]) -> bool {
        if self.inserts.remove(enc) {
            return true;
        }
        if !self.tombs.contains(enc) && self.base_contains(enc) {
            self.tombs.insert(enc.to_vec());
            return true;
        }
        false
    }

    /// The merge over stored-order bounds `[lo, hi]` (inclusive); `None`
    /// bounds mean unbounded. `base_range` overrides the base slice when
    /// the caller already knows it (morsel chunks).
    fn merged(
        &self,
        lo: Option<&[RamDomain]>,
        hi: Option<&[RamDomain]>,
        base_range: Option<(usize, usize)>,
    ) -> MergedIter<'_> {
        let arity = self.order.arity();
        let (start, end) = base_range.unwrap_or_else(|| match (&self.base, lo, hi) {
            (None, _, _) => (0, 0),
            (Some(b), None, None) => (0, b.count),
            (Some(b), lo, hi) => (
                lo.map(|l| b.bound(l, false)).unwrap_or(0),
                hi.map(|h| b.bound(h, true)).unwrap_or(b.count),
            ),
        });
        let base = self
            .base
            .as_ref()
            .filter(|_| end > start)
            .map(|b| BaseCursor::new(b.clone(), start, end));
        let lo_bound = match lo {
            Some(l) => Bound::Included(l.to_vec()),
            None => Bound::Unbounded,
        };
        let hi_bound = match hi {
            Some(h) => Bound::Included(h.to_vec()),
            None => Bound::Unbounded,
        };
        MergedIter {
            arity,
            base,
            base_cur: Vec::with_capacity(arity),
            base_valid: false,
            inserts: self.inserts.range((lo_bound, hi_bound)).peekable(),
            tombs: &self.tombs,
            decode: if self.source_layout && !self.natural {
                Some(self.order.clone())
            } else {
                None
            },
            out: vec![0; arity],
        }
    }

    /// Morsel chunk bounded by insert-overlay keys (`lo` exclusive-side
    /// handled by the caller passing fence tuples).
    fn chunk(
        &self,
        base_start: usize,
        base_end: usize,
        ins_lo: Bound<Vec<RamDomain>>,
        ins_hi: Bound<Vec<RamDomain>>,
    ) -> MergedIter<'_> {
        let arity = self.order.arity();
        let base = self
            .base
            .as_ref()
            .filter(|_| base_end > base_start)
            .map(|b| BaseCursor::new(b.clone(), base_start, base_end));
        MergedIter {
            arity,
            base,
            base_cur: Vec::with_capacity(arity),
            base_valid: false,
            inserts: self.inserts.range((ins_lo, ins_hi)).peekable(),
            tombs: &self.tombs,
            decode: if self.source_layout && !self.natural {
                Some(self.order.clone())
            } else {
                None
            },
            out: vec![0; arity],
        }
    }
}

impl IndexAdapter for DiskIndex {
    fn order(&self) -> &Order {
        &self.order
    }

    fn arity(&self) -> usize {
        self.order.arity()
    }

    fn len(&self) -> usize {
        self.base_count() + self.inserts.len() - self.tombs.len()
    }

    fn stats(&self) -> IndexStats {
        // Resident bytes only: the base run lives on disk; what this index
        // pins in RAM is the fence index and the overlay sets (BTreeSet
        // node overhead approximated at 48 bytes/entry).
        let arity = self.order.arity();
        let tuple_bytes = arity * std::mem::size_of::<RamDomain>();
        let overlay = self.inserts.len() + self.tombs.len();
        let fence_bytes = self
            .base
            .as_ref()
            .map(|b| b.fence.len() * std::mem::size_of::<RamDomain>())
            .unwrap_or(0);
        IndexStats {
            tuples: self.len(),
            nodes: self.base.as_ref().map(|b| b.pages()).unwrap_or(0) + overlay,
            bytes: std::mem::size_of::<Self>() + fence_bytes + overlay * (tuple_bytes + 48),
        }
    }

    fn clear(&mut self) {
        self.base = None;
        self.inserts.clear();
        self.tombs.clear();
    }

    fn insert(&mut self, t: &[RamDomain]) -> bool {
        let enc = self.enc(t);
        if self.tombs.remove(&enc) {
            return true; // resurrect a tombstoned base tuple
        }
        if self.inserts.contains(&enc) || self.base_contains(&enc) {
            return false;
        }
        self.inserts.insert(enc)
    }

    fn erase(&mut self, t: &[RamDomain]) -> bool {
        let enc = self.enc(t);
        self.erase_enc(&enc)
    }

    fn erase_prefix(&mut self, prefix: &[RamDomain]) -> usize {
        let arity = self.order.arity();
        debug_assert!(prefix.len() <= arity);
        let mut lo = vec![0; arity];
        let mut hi = vec![RamDomain::MAX; arity];
        lo[..prefix.len()].copy_from_slice(prefix);
        hi[..prefix.len()].copy_from_slice(prefix);
        let doomed: Vec<Vec<RamDomain>> = {
            let mut it = self.merged(Some(&lo), Some(&hi), None);
            // Collect encoded keys regardless of layout mode: the erase
            // below works on the internal stored order directly.
            it.decode = None;
            let mut out = Vec::new();
            while let Some(t) = it.next_tuple() {
                out.push(t.to_vec());
            }
            out
        };
        let mut erased = 0;
        for t in &doomed {
            if self.erase_enc(t) {
                erased += 1;
            }
        }
        erased
    }

    fn contains(&self, t: &[RamDomain]) -> bool {
        let enc = self.enc(t);
        self.contains_enc(&enc)
    }

    fn contains_stored(&self, t: &[RamDomain]) -> bool {
        if self.source_layout {
            // "Stored" order coincides with source order for callers of a
            // source-layout index.
            self.contains(t)
        } else {
            self.contains_enc(t)
        }
    }

    fn stores_source_order(&self) -> bool {
        self.source_layout
    }

    fn scan(&self) -> Box<dyn TupleIter + Send + '_> {
        Box::new(self.merged(None, None, None))
    }

    fn range(&self, lo: &[RamDomain], hi: &[RamDomain]) -> Box<dyn TupleIter + Send + '_> {
        // Source-layout callers build bounds in source order; encode them
        // into the internal stored order (component-wise bounds permute).
        let (lo, hi) = if self.source_layout && !self.natural {
            (self.order.encode_vec(lo), self.order.encode_vec(hi))
        } else {
            (lo.to_vec(), hi.to_vec())
        };
        if cmp_slices(&lo, &hi) == Ordering::Greater {
            return Box::new(self.chunk(
                0,
                0,
                Bound::Unbounded,
                Bound::Excluded(vec![0; lo.len()]),
            ));
        }
        Box::new(self.merged(Some(&lo), Some(&hi), None))
    }

    fn morsels(&self, target: usize) -> Morsels<'_> {
        let Some(b) = &self.base else {
            return Morsels::Stream(self.scan());
        };
        if b.count == 0 {
            return Morsels::Stream(self.scan());
        }
        let pages_per_chunk = target.max(1).div_ceil(b.page_tuples).max(1);
        let pages = b.pages();
        let chunks_n = pages.div_ceil(pages_per_chunk);
        let mut chunks: Vec<Box<dyn TupleIter + Send + '_>> = Vec::with_capacity(chunks_n);
        for c in 0..chunks_n {
            let first_page = c * pages_per_chunk;
            let end_page = ((c + 1) * pages_per_chunk).min(pages);
            let base_start = first_page * b.page_tuples;
            let base_end = (end_page * b.page_tuples).min(b.count);
            // Overlay inserts fall into the chunk whose base key span
            // covers them; the first chunk also takes everything below the
            // base, the last everything above.
            let ins_lo = if c == 0 {
                Bound::Unbounded
            } else {
                Bound::Included(b.fence_tuple(first_page).to_vec())
            };
            let ins_hi = if end_page == pages {
                Bound::Unbounded
            } else {
                Bound::Excluded(b.fence_tuple(end_page).to_vec())
            };
            chunks.push(Box::new(self.chunk(base_start, base_end, ins_lo, ins_hi)));
        }
        Morsels::Chunks(chunks)
    }

    fn morsels_range(&self, lo: &[RamDomain], hi: &[RamDomain], target: usize) -> Morsels<'_> {
        let _ = target;
        Morsels::Stream(self.range(lo, hi))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Writes one sorted run — `[u64 count]` then `count` packed stored-order
/// tuples — and returns the sparse page index (the first tuple of each
/// page, flattened).
///
/// `encode` re-permutes source-order tuples (from adapters that store
/// source order) into the canonical stored order on the way out, so the
/// on-disk bytes are identical no matter which adapter produced them.
///
/// # Errors
///
/// Propagates I/O errors; reports a count mismatch (the iterator must
/// yield exactly `count` tuples) as `InvalidData`.
pub fn write_run(
    w: &mut dyn Write,
    iter: &mut dyn TupleIter,
    count: u64,
    arity: usize,
    page_tuples: usize,
    encode: Option<&Order>,
) -> std::io::Result<Vec<RamDomain>> {
    w.write_all(&count.to_le_bytes())?;
    let page_tuples = page_tuples.max(1);
    let mut fence = Vec::new();
    let mut written = 0u64;
    let mut enc = vec![0; arity];
    while let Some(t) = iter.next_tuple() {
        let stored: &[RamDomain] = match encode {
            Some(o) if !o.is_natural() => {
                o.encode(t, &mut enc);
                &enc
            }
            _ => t,
        };
        if written.is_multiple_of(page_tuples as u64) {
            fence.extend_from_slice(stored);
        }
        for &v in stored {
            w.write_all(&v.to_le_bytes())?;
        }
        written += 1;
    }
    if written != count {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("run length changed during write: expected {count} tuples, saw {written}"),
        ));
    }
    Ok(fence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::BTreeIndex;
    use crate::dynindex::DynBTreeIndex;
    use std::path::PathBuf;

    fn tmpfile(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stir-disk-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir.join(format!("{tag}.run"))
    }

    /// Builds a run file from `tuples` (source order) under `order` and
    /// returns a DiskIndex served off it with the given page size.
    fn disk_with_base(
        tag: &str,
        order: &Order,
        source_layout: bool,
        tuples: &[Vec<RamDomain>],
        page_tuples: usize,
        budget: usize,
    ) -> DiskIndex {
        let arity = order.arity();
        let mut stored: Vec<Vec<RamDomain>> = tuples.iter().map(|t| order.encode_vec(t)).collect();
        stored.sort_unstable();
        stored.dedup();
        let mut flat = Vec::new();
        for t in &stored {
            flat.extend_from_slice(t);
        }
        let mut it = crate::iter::VecTupleIter::new(flat, arity);
        let mut buf = Vec::new();
        let fence = write_run(
            &mut buf,
            &mut it,
            stored.len() as u64,
            arity,
            page_tuples,
            None,
        )
        .expect("writes");
        let path = tmpfile(tag);
        std::fs::write(&path, &buf).expect("run file");
        let file = RunFile::open(&path, budget).expect("opens");
        let base = BaseRun::new(file, 8, stored.len(), arity, page_tuples, fence);
        DiskIndex::with_base(order.clone(), source_layout, base)
    }

    fn drain(m: Morsels<'_>) -> Vec<Vec<RamDomain>> {
        match m {
            Morsels::Chunks(chunks) => {
                let mut out = Vec::new();
                for mut c in chunks {
                    out.extend(c.collect_tuples());
                }
                out
            }
            Morsels::Stream(mut it) => it.collect_tuples(),
        }
    }

    #[test]
    fn overlay_only_matches_btree_adapter() {
        let order = Order::new(vec![1, 0]);
        let mut disk = DiskIndex::new(order.clone(), false);
        let mut mem = BTreeIndex::<2>::new(order);
        let mut seed = 5u32;
        for step in 0..3000u32 {
            seed = seed.wrapping_mul(48271) % 0x7fff_ffff;
            let t = [seed % 29, seed % 17];
            if step % 4 == 3 {
                assert_eq!(disk.erase(&t), mem.erase(&t), "step {step}");
            } else {
                assert_eq!(disk.insert(&t), mem.insert(&t), "step {step}");
            }
            assert_eq!(disk.len(), mem.len(), "step {step}");
        }
        assert_eq!(disk.scan().collect_tuples(), mem.scan().collect_tuples());
        let (lo, hi) = ([4u32, 0], [12u32, u32::MAX]);
        assert_eq!(
            disk.range(&lo, &hi).collect_tuples(),
            mem.range(&lo, &hi).collect_tuples()
        );
        assert_eq!(disk.contains(&[3, 4]), mem.contains(&[3, 4]));
    }

    #[test]
    fn base_plus_overlay_matches_btree_oracle() {
        let order = Order::new(vec![1, 0]);
        let mut base_tuples = Vec::new();
        for i in 0..500u32 {
            base_tuples.push(vec![i % 37, i % 23]);
        }
        // Tiny pages so every operation crosses page boundaries.
        let mut disk = disk_with_base("oracle", &order, false, &base_tuples, 7, 1 << 20);
        let mut mem = BTreeIndex::<2>::new(order);
        for t in &base_tuples {
            mem.insert(t);
        }
        assert_eq!(disk.len(), mem.len());

        let mut seed = 11u32;
        for step in 0..4000u32 {
            seed = seed.wrapping_mul(48271) % 0x7fff_ffff;
            let t = [seed % 41, seed % 31];
            match step % 5 {
                0 | 1 => assert_eq!(disk.insert(&t), mem.insert(&t), "step {step}"),
                2 | 3 => assert_eq!(disk.erase(&t), mem.erase(&t), "step {step}"),
                _ => assert_eq!(disk.contains(&t), mem.contains(&t), "step {step}"),
            }
            assert_eq!(disk.len(), mem.len(), "step {step}");
        }
        assert_eq!(disk.scan().collect_tuples(), mem.scan().collect_tuples());
        let (lo, hi) = ([9u32, 0], [22u32, u32::MAX]);
        assert_eq!(
            disk.range(&lo, &hi).collect_tuples(),
            mem.range(&lo, &hi).collect_tuples()
        );
        // Stored-order prefix erase agrees too.
        assert_eq!(disk.erase_prefix(&[13]), mem.erase_prefix(&[13]));
        assert_eq!(disk.scan().collect_tuples(), mem.scan().collect_tuples());
    }

    #[test]
    fn source_layout_matches_dyn_btree() {
        let order = Order::new(vec![1, 0]);
        let base: Vec<Vec<RamDomain>> = (0..200u32).map(|i| vec![i % 19, i % 11]).collect();
        let mut disk = disk_with_base("legacy", &order, true, &base, 5, 1 << 20);
        let mut mem = DynBTreeIndex::new(order);
        for t in &base {
            mem.insert(t);
        }
        let mut seed = 23u32;
        for step in 0..1500u32 {
            seed = seed.wrapping_mul(48271) % 0x7fff_ffff;
            let t = [seed % 23, seed % 13];
            if step % 3 == 0 {
                assert_eq!(disk.erase(&t), mem.erase(&t), "step {step}");
            } else {
                assert_eq!(disk.insert(&t), mem.insert(&t), "step {step}");
            }
        }
        assert_eq!(disk.len(), mem.len());
        // Source-layout scans yield source order, like the legacy index.
        assert_eq!(disk.scan().collect_tuples(), mem.scan().collect_tuples());
        // Source-order bounds (all tuples with column 1 == 7).
        let lo = vec![0u32, 7];
        let hi = vec![u32::MAX, 7];
        assert_eq!(
            disk.range(&lo, &hi).collect_tuples(),
            mem.range(&lo, &hi).collect_tuples()
        );
        assert_eq!(disk.erase_prefix(&[7]), mem.erase_prefix(&[7]));
        assert_eq!(disk.scan().collect_tuples(), mem.scan().collect_tuples());
    }

    #[test]
    fn morsels_concatenate_to_scan_across_page_boundaries() {
        let order = Order::natural(2);
        let base: Vec<Vec<RamDomain>> = (0..700u32).map(|i| vec![i / 3, i % 53]).collect();
        let mut disk = disk_with_base("morsels", &order, false, &base, 11, 1 << 20);
        // Mix the overlay in: fresh inserts below, between, and above the
        // base keys, plus tombstones.
        for i in 0..300u32 {
            disk.insert(&[i * 3 + 1, 1000 + i]);
        }
        for i in 0..100u32 {
            disk.erase(&[i / 3 * 3, (i * 3) % 53]);
        }
        let expected = disk.scan().collect_tuples();
        assert_eq!(expected.len(), disk.len());
        for target in [1usize, 8, 64, 1000, usize::MAX] {
            assert_eq!(drain(disk.morsels(target)), expected, "target {target}");
        }
        match disk.morsels(8) {
            Morsels::Chunks(c) => assert!(c.len() > 4, "{}", c.len()),
            Morsels::Stream(_) => panic!("based disk index should chunk"),
        };
    }

    #[test]
    fn page_cache_stays_within_budget_and_counts() {
        let order = Order::natural(2);
        let base: Vec<Vec<RamDomain>> = (0..20_000u32).map(|i| vec![i, i * 7]).collect();
        // Page = 128 tuples * 8 bytes = 1 KiB; budget of 4 KiB holds only
        // 4 of ~157 pages.
        let disk = disk_with_base("budget", &order, false, &base, 128, 4 * 1024);
        let stats = disk.base.as_ref().expect("base").file.stats();
        for _ in 0..3 {
            assert_eq!(disk.scan().count_tuples(), 20_000);
        }
        let resident = stats.resident_bytes.load(AtomicOrdering::Relaxed);
        assert!(resident <= 5 * 1024, "resident {resident} over budget");
        assert!(stats.evictions.load(AtomicOrdering::Relaxed) > 100);
        assert!(stats.misses.load(AtomicOrdering::Relaxed) > 100);
        // Point probes on a warm page hit the cache.
        assert!(disk.contains(&[42, 42 * 7]));
        assert!(disk.contains(&[42, 42 * 7]));
        assert!(stats.hits.load(AtomicOrdering::Relaxed) > 0);
    }

    #[test]
    fn inverted_and_empty_ranges_yield_nothing() {
        let order = Order::natural(2);
        let disk = disk_with_base(
            "empty",
            &order,
            false,
            &[vec![5, 5], vec![6, 6]],
            4,
            1 << 20,
        );
        assert_eq!(disk.range(&[9, 0], &[8, 0]).count_tuples(), 0);
        assert_eq!(disk.range(&[7, 0], &[7, u32::MAX]).count_tuples(), 0);
        let empty = DiskIndex::new(Order::natural(2), false);
        assert_eq!(empty.scan().count_tuples(), 0);
        assert!(matches!(empty.morsels(8), Morsels::Stream(_)));
        assert_eq!(drain(empty.morsels(8)), Vec::<Vec<u32>>::new());
    }

    #[test]
    fn resurrecting_a_tombstoned_tuple_round_trips() {
        let order = Order::natural(2);
        let mut disk = disk_with_base("tomb", &order, false, &[vec![1, 2]], 4, 1 << 20);
        assert!(disk.erase(&[1, 2]));
        assert!(!disk.contains(&[1, 2]));
        assert_eq!(disk.len(), 0);
        assert!(disk.insert(&[1, 2]), "resurrection is a fresh insert");
        assert!(disk.contains(&[1, 2]));
        assert_eq!(disk.len(), 1);
        assert_eq!(disk.overlay_len(), (0, 0), "no overlay left after undo");
    }

    #[test]
    fn rebase_drops_the_overlay() {
        let order = Order::natural(1);
        let mut disk = DiskIndex::new(order.clone(), false);
        disk.insert(&[3]);
        disk.insert(&[9]);
        let other = disk_with_base("rebase", &order, false, &[vec![3], vec![9]], 4, 1 << 20);
        let base = other.base.clone().expect("base");
        disk.rebase(base);
        assert_eq!(disk.overlay_len(), (0, 0));
        assert_eq!(disk.len(), 2);
        assert_eq!(disk.scan().collect_tuples(), vec![vec![3], vec![9]]);
    }
}
