//! Thread-local insert buffers for parallel evaluation.
//!
//! When a rule's outer scan is partitioned across workers, each worker
//! diverts its projections into a private [`InsertBuffer`] instead of
//! writing the destination relation directly. Buffers need no locking —
//! each is owned by exactly one worker — and the coordinator merges them
//! into the relation (with set-semantics deduplication) once the workers
//! join. Because a query never reads the relation it projects into,
//! deferring the inserts to the end of the rule is semantically
//! transparent, and because relation insertion is a set union, the merge
//! produces the same contents regardless of worker interleaving.

use crate::tuple::RamDomain;

/// A flat, append-only buffer of same-arity tuples owned by one worker.
///
/// Duplicates are *not* eliminated here (that would require the
/// destination's index order); the coordinator's merge performs the
/// deduplicating insert, so fresh-insert counts match a sequential run.
#[derive(Debug, Clone)]
pub struct InsertBuffer {
    arity: usize,
    data: Vec<RamDomain>,
    /// Tuple count; carries the buffer's length for nullary relations,
    /// whose tuples occupy no `data` slots.
    count: usize,
}

impl InsertBuffer {
    /// Creates an empty buffer for tuples of the given arity (0 allowed).
    pub fn new(arity: usize) -> Self {
        InsertBuffer {
            arity,
            data: Vec::new(),
            count: 0,
        }
    }

    /// Tuple arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of buffered tuples (including duplicates).
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the buffer holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Appends one tuple.
    ///
    /// # Panics
    ///
    /// Panics if `t.len()` differs from the buffer's arity.
    pub fn push(&mut self, t: &[RamDomain]) {
        assert_eq!(t.len(), self.arity, "arity mismatch");
        self.data.extend_from_slice(t);
        self.count += 1;
    }

    /// Iterates over the buffered tuples in insertion order.
    pub fn tuples(&self) -> impl Iterator<Item = &[RamDomain]> + '_ {
        let empty: &[RamDomain] = &[];
        (0..self.count).map(move |i| {
            if self.arity == 0 {
                empty
            } else {
                &self.data[i * self.arity..(i + 1) * self.arity]
            }
        })
    }

    /// Removes all tuples, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut buf = InsertBuffer::new(3);
        buf.push(&[1, 2, 3]);
        buf.push(&[4, 5, 6]);
        assert_eq!(buf.len(), 2);
        let all: Vec<Vec<RamDomain>> = buf.tuples().map(<[RamDomain]>::to_vec).collect();
        assert_eq!(all, vec![vec![1, 2, 3], vec![4, 5, 6]]);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.tuples().count(), 0);
    }

    #[test]
    fn nullary_tuples_are_counted() {
        let mut buf = InsertBuffer::new(0);
        buf.push(&[]);
        buf.push(&[]);
        assert_eq!(buf.len(), 2);
        assert!(buf.tuples().all(|t| t.is_empty()));
        assert_eq!(buf.tuples().count(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_rejected() {
        InsertBuffer::new(2).push(&[1]);
    }
}
