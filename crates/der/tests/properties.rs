//! Property-based tests: every DER structure must behave exactly like a
//! reference `std::collections::BTreeSet` model under random workloads.

use proptest::prelude::*;
use std::collections::BTreeSet;
use stir_der::adapter::IndexAdapter;
use stir_der::brie::Brie;
use stir_der::btree::BTreeIndexSet;
use stir_der::dynindex::DynBTreeIndex;
use stir_der::eqrel::EquivalenceRelation;
use stir_der::factory::{new_index, IndexSpec, Representation};
use stir_der::iter::{BufferedTupleIter, TupleIter};
use stir_der::order::Order;

fn tuple3() -> impl Strategy<Value = [u32; 3]> {
    // Small domains provoke duplicates and shared prefixes.
    [(0u32..20), (0u32..20), (0u32..20)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_std_model(tuples in prop::collection::vec(tuple3(), 0..400),
                               lo in tuple3(), hi in tuple3()) {
        let mut ours = BTreeIndexSet::<3>::new();
        let mut model = BTreeSet::new();
        for t in &tuples {
            prop_assert_eq!(ours.insert(*t), model.insert(*t));
        }
        prop_assert_eq!(ours.len(), model.len());
        let ours_all: Vec<_> = ours.iter().copied().collect();
        let model_all: Vec<_> = model.iter().copied().collect();
        prop_assert_eq!(ours_all, model_all);
        let ours_range: Vec<_> = ours.range(&lo, &hi).copied().collect();
        let model_range: Vec<_> = if lo <= hi {
            model.range(lo..=hi).copied().collect()
        } else {
            Vec::new() // inverted bounds: our API returns empty, std panics
        };
        prop_assert_eq!(ours_range, model_range);
        for probe in &tuples {
            prop_assert!(ours.contains(probe));
        }
    }

    #[test]
    fn brie_matches_std_model(tuples in prop::collection::vec(tuple3(), 0..400),
                              lo in tuple3(), hi in tuple3()) {
        let mut ours = Brie::<3>::new();
        let mut model = BTreeSet::new();
        for t in &tuples {
            prop_assert_eq!(ours.insert(*t), model.insert(*t));
        }
        prop_assert_eq!(ours.len(), model.len());
        let ours_all: Vec<_> = ours.iter().collect();
        let model_all: Vec<_> = model.iter().copied().collect();
        prop_assert_eq!(ours_all, model_all);
        let ours_range: Vec<_> = ours.range(&lo, &hi).collect();
        let model_range: Vec<_> = if lo <= hi {
            model.range(lo..=hi).copied().collect()
        } else {
            Vec::new()
        };
        prop_assert_eq!(ours_range, model_range);
    }

    #[test]
    fn dyn_btree_matches_static_btree_under_any_order(
        tuples in prop::collection::vec(tuple3(), 0..300),
        perm in Just(()).prop_flat_map(|_| prop::sample::select(vec![
            vec![0usize, 1, 2], vec![0, 2, 1], vec![1, 0, 2],
            vec![1, 2, 0], vec![2, 0, 1], vec![2, 1, 0],
        ])),
    ) {
        let order = Order::new(perm);
        let mut dynamic = DynBTreeIndex::new(order.clone());
        let mut static_ = new_index(&IndexSpec::new(Representation::BTree, order.clone()));
        for t in &tuples {
            prop_assert_eq!(dynamic.insert(t), static_.insert(t));
        }
        prop_assert_eq!(dynamic.len(), static_.len());
        let dyn_all = dynamic.scan().collect_tuples();
        let static_all: Vec<Vec<u32>> = {
            let mut out = Vec::new();
            let mut it = static_.scan();
            while let Some(t) = it.next_tuple() {
                out.push(order.decode_vec(t));
            }
            out
        };
        prop_assert_eq!(dyn_all, static_all);
    }

    #[test]
    fn buffered_iteration_is_invisible(tuples in prop::collection::vec(tuple3(), 0..500)) {
        let set: BTreeIndexSet<3> = tuples.iter().copied().collect();
        let idx = stir_der::adapter::BTreeIndex::<3>::new(Order::natural(3));
        let mut idx = idx;
        for t in &tuples { idx.insert(t); }
        let plain = idx.scan().collect_tuples();
        let buffered = BufferedTupleIter::new(idx.scan()).collect_tuples();
        prop_assert_eq!(&plain, &buffered);
        prop_assert_eq!(plain.len(), set.len());
    }

    #[test]
    fn eqrel_matches_closure_model(pairs in prop::collection::vec((0u32..12, 0u32..12), 0..40)) {
        let mut ours = EquivalenceRelation::new();
        for (a, b) in &pairs {
            ours.insert(*a, *b);
        }
        // Reference: naive fixpoint closure over the inserted pairs plus
        // reflexivity and symmetry.
        let mut model: BTreeSet<(u32, u32)> = BTreeSet::new();
        for (a, b) in &pairs {
            model.insert((*a, *b));
            model.insert((*b, *a));
            model.insert((*a, *a));
            model.insert((*b, *b));
        }
        loop {
            let mut grew = false;
            let snapshot: Vec<_> = model.iter().copied().collect();
            for &(a, b) in &snapshot {
                for &(c, d) in &snapshot {
                    if b == c && model.insert((a, d)) {
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        prop_assert_eq!(ours.len(), model.len());
        let ours_pairs: Vec<(u32, u32)> =
            ours.iter_pairs().into_iter().map(|p| (p[0], p[1])).collect();
        let model_pairs: Vec<(u32, u32)> = model.into_iter().collect();
        prop_assert_eq!(ours_pairs, model_pairs);
    }

    #[test]
    fn relation_multi_index_views_agree(tuples in prop::collection::vec(tuple3(), 0..200)) {
        let mut rel = stir_der::relation::Relation::new(
            "r",
            3,
            vec![
                IndexSpec::btree_natural(3),
                IndexSpec::new(Representation::BTree, Order::new(vec![2, 1, 0])),
                IndexSpec::new(Representation::Brie, Order::new(vec![1, 0, 2])),
            ],
        );
        for t in &tuples {
            rel.insert(t);
        }
        // All indexes hold the same logical set.
        let primary: BTreeSet<Vec<u32>> = rel.scan_source().collect_tuples().into_iter().collect();
        for k in 1..rel.index_count() {
            let idx = rel.index(k);
            let ord = idx.order().clone();
            let mut it = idx.scan();
            let mut decoded = BTreeSet::new();
            while let Some(t) = it.next_tuple() {
                decoded.insert(ord.decode_vec(t));
            }
            prop_assert_eq!(&primary, &decoded, "index {}", k);
        }
    }
}

/// A Fisher–Yates permutation driven by proptest indices.
fn permutation(n: usize, picks: &[usize]) -> Vec<usize> {
    let mut cols: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(n);
    for (i, &p) in picks.iter().enumerate().take(n) {
        out.push(cols.remove(p % (n - i)));
    }
    out.extend(cols);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn order_encode_decode_are_inverse(
        picks in prop::collection::vec(0usize..16, 8),
        tuple in prop::collection::vec(any::<u32>(), 8),
    ) {
        let order = Order::new(permutation(8, &picks));
        let enc = order.encode_vec(&tuple);
        prop_assert_eq!(order.decode_vec(&enc), tuple.clone());
        for c in 0..8 {
            prop_assert_eq!(enc[order.stored_position_of(c)], tuple[c]);
        }
    }

    #[test]
    fn arity_eight_btree_matches_model(
        tuples in prop::collection::vec([0u32..4, 0u32..4, 0u32..4, 0u32..4,
                                         0u32..4, 0u32..4, 0u32..4, 0u32..4], 0..300),
        picks in prop::collection::vec(0usize..16, 8),
    ) {
        use std::collections::BTreeSet as Model;
        let order = Order::new(permutation(8, &picks));
        let mut idx = new_index(&IndexSpec::new(Representation::BTree, order.clone()));
        let mut model: Model<Vec<u32>> = Model::new();
        for t in &tuples {
            prop_assert_eq!(idx.insert(t), model.insert(t.to_vec()));
        }
        prop_assert_eq!(idx.len(), model.len());
        // Every tuple is found; prefix queries agree with filtering.
        for t in &tuples {
            prop_assert!(idx.contains(t));
        }
        if let Some(t) = tuples.first() {
            // Prefix search: first three stored positions bound.
            let enc = order.encode_vec(t);
            let mut lo = vec![0u32; 8];
            let mut hi = vec![u32::MAX; 8];
            for i in 0..3 {
                lo[i] = enc[i];
                hi[i] = enc[i];
            }
            let got = idx.range(&lo, &hi).count_tuples();
            let want = model
                .iter()
                .filter(|m| {
                    let e = order.encode_vec(m);
                    e[..3] == enc[..3]
                })
                .count();
            prop_assert_eq!(got, want);
        }
    }
}
