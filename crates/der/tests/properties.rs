//! Randomized model tests: every DER structure must behave exactly like a
//! reference `std::collections::BTreeSet` model under random workloads.
//!
//! Deterministic seeded generation (splitmix64) stands in for proptest,
//! which is not vendored; each case runs over a fixed set of seeds so
//! failures reproduce exactly.

use std::collections::BTreeSet;
use stir_der::adapter::IndexAdapter;
use stir_der::brie::Brie;
use stir_der::btree::BTreeIndexSet;
use stir_der::dynindex::DynBTreeIndex;
use stir_der::eqrel::EquivalenceRelation;
use stir_der::factory::{new_index, IndexSpec, Representation};
use stir_der::iter::{BufferedTupleIter, TupleIter};
use stir_der::order::Order;

struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            state: seed.wrapping_mul(2654435769).wrapping_add(1),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Small domains provoke duplicates and shared prefixes.
    fn tuple3(&mut self) -> [u32; 3] {
        [
            self.below(20) as u32,
            self.below(20) as u32,
            self.below(20) as u32,
        ]
    }

    fn tuples3(&mut self, max: u64) -> Vec<[u32; 3]> {
        let n = self.below(max);
        (0..n).map(|_| self.tuple3()).collect()
    }
}

#[test]
fn btree_matches_std_model() {
    for seed in 0..64 {
        let mut g = Gen::new(seed);
        let tuples = g.tuples3(400);
        let (lo, hi) = (g.tuple3(), g.tuple3());
        let mut ours = BTreeIndexSet::<3>::new();
        let mut model = BTreeSet::new();
        for t in &tuples {
            assert_eq!(ours.insert(*t), model.insert(*t), "seed {seed}");
        }
        assert_eq!(ours.len(), model.len());
        let ours_all: Vec<_> = ours.iter().copied().collect();
        let model_all: Vec<_> = model.iter().copied().collect();
        assert_eq!(ours_all, model_all, "seed {seed}");
        let ours_range: Vec<_> = ours.range(&lo, &hi).copied().collect();
        let model_range: Vec<_> = if lo <= hi {
            model.range(lo..=hi).copied().collect()
        } else {
            Vec::new() // inverted bounds: our API returns empty, std panics
        };
        assert_eq!(ours_range, model_range, "seed {seed}");
        for probe in &tuples {
            assert!(ours.contains(probe), "seed {seed}");
        }
    }
}

#[test]
fn brie_matches_std_model() {
    for seed in 0..64 {
        let mut g = Gen::new(seed ^ 0xB41E);
        let tuples = g.tuples3(400);
        let (lo, hi) = (g.tuple3(), g.tuple3());
        let mut ours = Brie::<3>::new();
        let mut model = BTreeSet::new();
        for t in &tuples {
            assert_eq!(ours.insert(*t), model.insert(*t), "seed {seed}");
        }
        assert_eq!(ours.len(), model.len());
        let ours_all: Vec<_> = ours.iter().collect();
        let model_all: Vec<_> = model.iter().copied().collect();
        assert_eq!(ours_all, model_all, "seed {seed}");
        let ours_range: Vec<_> = ours.range(&lo, &hi).collect();
        let model_range: Vec<_> = if lo <= hi {
            model.range(lo..=hi).copied().collect()
        } else {
            Vec::new()
        };
        assert_eq!(ours_range, model_range, "seed {seed}");
    }
}

#[test]
fn dyn_btree_matches_static_btree_under_any_order() {
    let perms: [&[usize]; 6] = [
        &[0, 1, 2],
        &[0, 2, 1],
        &[1, 0, 2],
        &[1, 2, 0],
        &[2, 0, 1],
        &[2, 1, 0],
    ];
    for seed in 0..64u64 {
        let mut g = Gen::new(seed ^ 0xD1A);
        let tuples = g.tuples3(300);
        let order = Order::new(perms[(seed % 6) as usize].to_vec());
        let mut dynamic = DynBTreeIndex::new(order.clone());
        let mut static_ = new_index(&IndexSpec::new(Representation::BTree, order.clone()));
        for t in &tuples {
            assert_eq!(dynamic.insert(t), static_.insert(t), "seed {seed}");
        }
        assert_eq!(dynamic.len(), static_.len());
        let dyn_all = dynamic.scan().collect_tuples();
        let static_all: Vec<Vec<u32>> = {
            let mut out = Vec::new();
            let mut it = static_.scan();
            while let Some(t) = it.next_tuple() {
                out.push(order.decode_vec(t));
            }
            out
        };
        assert_eq!(dyn_all, static_all, "seed {seed}");
    }
}

#[test]
fn buffered_iteration_is_invisible() {
    for seed in 0..32 {
        let mut g = Gen::new(seed ^ 0xBFF);
        let tuples = g.tuples3(500);
        let set: BTreeIndexSet<3> = tuples.iter().copied().collect();
        let mut idx = stir_der::adapter::BTreeIndex::<3>::new(Order::natural(3));
        for t in &tuples {
            idx.insert(t);
        }
        let plain = idx.scan().collect_tuples();
        let buffered = BufferedTupleIter::new(idx.scan()).collect_tuples();
        assert_eq!(&plain, &buffered, "seed {seed}");
        assert_eq!(plain.len(), set.len());
    }
}

#[test]
fn eqrel_matches_closure_model() {
    for seed in 0..64 {
        let mut g = Gen::new(seed ^ 0xE04E1);
        let n = g.below(40);
        let pairs: Vec<(u32, u32)> = (0..n)
            .map(|_| (g.below(12) as u32, g.below(12) as u32))
            .collect();
        let mut ours = EquivalenceRelation::new();
        for (a, b) in &pairs {
            ours.insert(*a, *b);
        }
        // Reference: naive fixpoint closure over the inserted pairs plus
        // reflexivity and symmetry.
        let mut model: BTreeSet<(u32, u32)> = BTreeSet::new();
        for (a, b) in &pairs {
            model.insert((*a, *b));
            model.insert((*b, *a));
            model.insert((*a, *a));
            model.insert((*b, *b));
        }
        loop {
            let mut grew = false;
            let snapshot: Vec<_> = model.iter().copied().collect();
            for &(a, b) in &snapshot {
                for &(c, d) in &snapshot {
                    if b == c && model.insert((a, d)) {
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        assert_eq!(ours.len(), model.len(), "seed {seed}");
        let ours_pairs: Vec<(u32, u32)> = ours
            .iter_pairs()
            .into_iter()
            .map(|p| (p[0], p[1]))
            .collect();
        let model_pairs: Vec<(u32, u32)> = model.into_iter().collect();
        assert_eq!(ours_pairs, model_pairs, "seed {seed}");
    }
}

#[test]
fn relation_multi_index_views_agree() {
    for seed in 0..32 {
        let mut g = Gen::new(seed ^ 0x8E1);
        let tuples = g.tuples3(200);
        let mut rel = stir_der::relation::Relation::new(
            "r",
            3,
            vec![
                IndexSpec::btree_natural(3),
                IndexSpec::new(Representation::BTree, Order::new(vec![2, 1, 0])),
                IndexSpec::new(Representation::Brie, Order::new(vec![1, 0, 2])),
            ],
        );
        for t in &tuples {
            rel.insert(t);
        }
        // All indexes hold the same logical set.
        let primary: BTreeSet<Vec<u32>> = rel.scan_source().collect_tuples().into_iter().collect();
        for k in 1..rel.index_count() {
            let idx = rel.index(k);
            let ord = idx.order().clone();
            let mut it = idx.scan();
            let mut decoded = BTreeSet::new();
            while let Some(t) = it.next_tuple() {
                decoded.insert(ord.decode_vec(t));
            }
            assert_eq!(&primary, &decoded, "seed {seed} index {k}");
        }
    }
}

/// A Fisher–Yates permutation driven by generator picks.
fn permutation(n: usize, g: &mut Gen) -> Vec<usize> {
    let mut cols: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(cols.remove(g.below((n - i) as u64) as usize));
    }
    out
}

#[test]
fn order_encode_decode_are_inverse() {
    for seed in 0..64 {
        let mut g = Gen::new(seed ^ 0x0EDE);
        let order = Order::new(permutation(8, &mut g));
        let tuple: Vec<u32> = (0..8).map(|_| g.next() as u32).collect();
        let enc = order.encode_vec(&tuple);
        assert_eq!(order.decode_vec(&enc), tuple.clone(), "seed {seed}");
        for c in 0..8 {
            assert_eq!(enc[order.stored_position_of(c)], tuple[c], "seed {seed}");
        }
    }
}

#[test]
fn arity_eight_btree_matches_model() {
    for seed in 0..64 {
        let mut g = Gen::new(seed ^ 0xA817);
        let order = Order::new(permutation(8, &mut g));
        let n = g.below(300);
        let tuples: Vec<[u32; 8]> = (0..n)
            .map(|_| std::array::from_fn(|_| g.below(4) as u32))
            .collect();
        let mut idx = new_index(&IndexSpec::new(Representation::BTree, order.clone()));
        let mut model: BTreeSet<Vec<u32>> = BTreeSet::new();
        for t in &tuples {
            assert_eq!(idx.insert(t), model.insert(t.to_vec()), "seed {seed}");
        }
        assert_eq!(idx.len(), model.len());
        // Every tuple is found; prefix queries agree with filtering.
        for t in &tuples {
            assert!(idx.contains(t), "seed {seed}");
        }
        if let Some(t) = tuples.first() {
            // Prefix search: first three stored positions bound.
            let enc = order.encode_vec(t);
            let mut lo = vec![0u32; 8];
            let mut hi = vec![u32::MAX; 8];
            lo[..3].copy_from_slice(&enc[..3]);
            hi[..3].copy_from_slice(&enc[..3]);
            let got = idx.range(&lo, &hi).count_tuples();
            let want = model
                .iter()
                .filter(|m| {
                    let e = order.encode_vec(m);
                    e[..3] == enc[..3]
                })
                .count();
            assert_eq!(got, want, "seed {seed}");
        }
    }
}
