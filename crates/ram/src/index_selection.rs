//! Automatic index selection by minimum chain cover.
//!
//! Implements the MinIndex algorithm of Subotic et al., *Automatic Index
//! Selection for Large-Scale Datalog Computation* (VLDB 2018) — reference
//! 48 of the STI paper. Every primitive search on a relation has a
//! *search signature*: the set of columns it binds. A lexicographic order
//! can service a signature iff the signature's columns form a prefix of
//! the order, so a single order can service any *chain* of signatures
//! `s1 ⊂ s2 ⊂ ... ⊂ sk`. The minimum number of indexes is therefore the
//! minimum number of chains covering the signature set which, by
//! Dilworth/König, equals `|S| − |maximum matching|` in the bipartite
//! containment graph. We compute the matching with Kuhn's augmenting-path
//! algorithm (signature sets are small) and read the chains off the
//! matching.

use crate::program::{ColumnOrder, RamProgram, ReprKind};
use crate::stmt::{RamCond, RamOp, RamStmt};
use std::collections::{BTreeSet, HashMap};

/// A search signature: bit `c` set ⇔ source column `c` is bound.
pub type Signature = u32;

/// Computes the signature of a pattern.
pub fn signature_of<T>(pattern: &[Option<T>]) -> Signature {
    let mut sig = 0;
    for (c, p) in pattern.iter().enumerate() {
        if p.is_some() {
            sig |= 1 << c;
        }
    }
    sig
}

/// The outcome of index selection for one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionResult {
    /// The chosen index orders; `orders[0]` is the primary index.
    pub orders: Vec<ColumnOrder>,
    /// Which index services each signature.
    pub index_of: HashMap<Signature, usize>,
}

/// Runs minimum-chain-cover index selection for one relation.
///
/// The empty signature (full scan) and the full signature (whole-tuple
/// existence check) are serviceable by any index; they are mapped to the
/// primary index / folded into a chain respectively.
pub fn select_indexes(arity: usize, signatures: &BTreeSet<Signature>) -> SelectionResult {
    // Full scans need no dedicated index.
    let sigs: Vec<Signature> = signatures.iter().copied().filter(|&s| s != 0).collect();
    if sigs.is_empty() {
        return SelectionResult {
            orders: vec![(0..arity).collect()],
            index_of: [(0, 0)].into_iter().collect(),
        };
    }

    let n = sigs.len();
    // Bipartite containment graph: left i → right j iff sigs[i] ⊂ sigs[j].
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| i != j && sigs[i] & sigs[j] == sigs[i] && sigs[i] != sigs[j])
                .collect()
        })
        .collect();

    // Kuhn's algorithm.
    let mut match_right: Vec<Option<usize>> = vec![None; n]; // right j ← left i
    let mut match_left: Vec<Option<usize>> = vec![None; n]; // left i → right j
    fn try_augment(
        u: usize,
        adj: &[Vec<usize>],
        seen: &mut [bool],
        match_right: &mut [Option<usize>],
        match_left: &mut [Option<usize>],
    ) -> bool {
        for &v in &adj[u] {
            if seen[v] {
                continue;
            }
            seen[v] = true;
            if match_right[v].is_none()
                || try_augment(
                    match_right[v].expect("checked"),
                    adj,
                    seen,
                    match_right,
                    match_left,
                )
            {
                match_right[v] = Some(u);
                match_left[u] = Some(v);
                return true;
            }
        }
        false
    }
    for u in 0..n {
        let mut seen = vec![false; n];
        try_augment(u, &adj, &mut seen, &mut match_right, &mut match_left);
    }

    // Chains: heads are left nodes that are not any edge's target.
    let mut orders: Vec<ColumnOrder> = Vec::new();
    let mut index_of: HashMap<Signature, usize> = HashMap::new();
    for (head, preceded) in match_right.iter().enumerate() {
        if preceded.is_some() {
            continue; // not a chain head: something precedes it
        }
        let index_id = orders.len();
        let mut order: ColumnOrder = Vec::with_capacity(arity);
        let mut covered: Signature = 0;
        let mut cur = Some(head);
        while let Some(i) = cur {
            let sig = sigs[i];
            // Append the newly bound columns in ascending order.
            for c in 0..arity {
                if sig & (1 << c) != 0 && covered & (1 << c) == 0 {
                    order.push(c);
                }
            }
            covered = sig;
            index_of.insert(sig, index_id);
            cur = match_left[i];
        }
        // Pad with the unused columns for a total order.
        for c in 0..arity {
            if covered & (1 << c) == 0 {
                order.push(c);
            }
        }
        orders.push(order);
    }
    index_of.insert(0, 0); // full scans use the primary index
    SelectionResult { orders, index_of }
}

/// Collects all search signatures per relation, runs selection, stores the
/// chosen orders on each [`crate::program::RamRelation`], and patches the
/// `index` field of every `IndexScan`/`ExistenceCheck`/`Aggregate`.
///
/// Equivalence relations keep their single natural-order index; the
/// translator has already flipped `{1}` signatures into `{0}` using
/// symmetry.
pub fn assign_indexes(program: &mut RamProgram) {
    let nrels = program.relations.len();
    let mut signatures: Vec<BTreeSet<Signature>> = vec![BTreeSet::new(); nrels];

    let mut collect = |stmt: &RamStmt| {
        if let RamStmt::Query { op, .. } = stmt {
            op.walk(&mut |op| match op {
                RamOp::IndexScan { rel, pattern, .. } | RamOp::Aggregate { rel, pattern, .. } => {
                    signatures[rel.0].insert(signature_of(pattern));
                }
                RamOp::Filter { cond, .. } => collect_cond(cond, &mut signatures),
                _ => {}
            });
        }
        if let RamStmt::Exit(cond) = stmt {
            collect_cond(cond, &mut signatures);
        }
    };
    program.main.walk(&mut collect);
    for stratum in &program.strata {
        if let Some(update) = &stratum.update {
            update.walk(&mut collect);
        }
    }

    // Provenance annotation columns are excluded by construction: the two
    // widened `(height, rule)` columns live in a dedicated side store
    // outside the queryable index set, so no search signature may bind
    // them — every signature must fit the relation's declared arity.
    debug_assert!(
        signatures
            .iter()
            .zip(&program.relations)
            .all(|(sigs, r)| sigs.iter().all(|s| (s >> r.arity) == 0)),
        "search signature covers columns beyond the declared arity"
    );

    // A relation and its `delta_`/`new_` versions are one logical relation:
    // they exchange contents via MERGE/SWAP, so they must share one index
    // layout. Union their signatures and select once per group (this is
    // also what Soufflé's index analysis does).
    let group_of: Vec<usize> = program
        .relations
        .iter()
        .map(|r| match r.role {
            crate::program::Role::Delta(base)
            | crate::program::Role::New(base)
            | crate::program::Role::Upd(base) => base.0,
            crate::program::Role::Standard => r.id.0,
        })
        .collect();
    let mut group_signatures: Vec<BTreeSet<Signature>> = vec![BTreeSet::new(); nrels];
    for (i, sigs) in signatures.iter().enumerate() {
        group_signatures[group_of[i]].extend(sigs.iter().copied());
    }

    let mut results: Vec<Option<SelectionResult>> = vec![None; nrels];
    for (i, rel) in program.relations.iter().enumerate() {
        if group_of[i] != i {
            continue;
        }
        let res = if rel.repr == ReprKind::EqRel {
            let mut index_of = HashMap::new();
            for &sig in &group_signatures[i] {
                index_of.insert(sig, 0);
            }
            index_of.insert(0, 0);
            SelectionResult {
                orders: vec![vec![0, 1]],
                index_of,
            }
        } else {
            select_indexes(rel.arity, &group_signatures[i])
        };
        results[i] = Some(res);
    }
    let results: Vec<SelectionResult> = group_of
        .iter()
        .map(|&g| results[g].clone().expect("group representative selected"))
        .collect();
    for (rel, res) in program.relations.iter_mut().zip(&results) {
        rel.orders = res.orders.clone();
    }

    let mut patch = |stmt: &mut RamStmt| match stmt {
        RamStmt::Query { op, .. } => {
            op.walk_mut(&mut |op| match op {
                RamOp::IndexScan {
                    rel,
                    index,
                    pattern,
                    ..
                }
                | RamOp::Aggregate {
                    rel,
                    index,
                    pattern,
                    ..
                } => {
                    *index = results[rel.0].index_of[&signature_of(pattern)];
                }
                RamOp::Filter { cond, .. } => patch_cond(cond, &results),
                _ => {}
            });
        }
        RamStmt::Exit(cond) => patch_cond(cond, &results),
        _ => {}
    };
    program.main.walk_mut(&mut patch);
    for stratum in &mut program.strata {
        if let Some(update) = &mut stratum.update {
            update.walk_mut(&mut patch);
        }
    }
}

fn collect_cond(cond: &RamCond, signatures: &mut [BTreeSet<Signature>]) {
    match cond {
        RamCond::Conjunction(cs) => {
            for c in cs {
                collect_cond(c, signatures);
            }
        }
        RamCond::Negation(c) => collect_cond(c, signatures),
        RamCond::ExistenceCheck { rel, pattern, .. } => {
            signatures[rel.0].insert(signature_of(pattern));
        }
        _ => {}
    }
}

fn patch_cond(cond: &mut RamCond, results: &[SelectionResult]) {
    match cond {
        RamCond::Conjunction(cs) => {
            for c in cs {
                patch_cond(c, results);
            }
        }
        RamCond::Negation(c) => patch_cond(c, results),
        RamCond::ExistenceCheck {
            rel,
            index,
            pattern,
        } => {
            *index = results[rel.0].index_of[&signature_of(pattern)];
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigs(list: &[&[usize]]) -> BTreeSet<Signature> {
        list.iter()
            .map(|cols| cols.iter().fold(0u32, |acc, &c| acc | (1 << c)))
            .collect()
    }

    fn covers(order: &[usize], sig: Signature) -> bool {
        // sig's columns must be a prefix of order.
        let k = sig.count_ones() as usize;
        let prefix: BTreeSet<usize> = order[..k].iter().copied().collect();
        (0..32)
            .filter(|c| sig & (1 << c) != 0)
            .all(|c| prefix.contains(&c))
    }

    #[test]
    fn no_searches_yield_one_natural_index() {
        let res = select_indexes(3, &BTreeSet::new());
        assert_eq!(res.orders, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn chain_of_subsets_shares_one_index() {
        // {0} ⊂ {0,1} ⊂ {0,1,2}: a single index covers all three.
        let res = select_indexes(3, &sigs(&[&[0], &[0, 1], &[0, 1, 2]]));
        assert_eq!(res.orders.len(), 1);
        for (&sig, &idx) in &res.index_of {
            assert!(covers(&res.orders[idx], sig), "sig {sig:b}");
        }
    }

    #[test]
    fn incomparable_signatures_need_two_indexes() {
        // {0} and {1} cannot share a prefix.
        let res = select_indexes(2, &sigs(&[&[0], &[1]]));
        assert_eq!(res.orders.len(), 2);
        for (&sig, &idx) in &res.index_of {
            assert!(covers(&res.orders[idx], sig));
        }
    }

    #[test]
    fn diamond_is_covered_by_two_chains() {
        // {0}, {1}, {0,1}: minimum cover is 2 chains
        // (e.g. {0}⊂{0,1} and {1}).
        let res = select_indexes(2, &sigs(&[&[0], &[1], &[0, 1]]));
        assert_eq!(res.orders.len(), 2);
        for (&sig, &idx) in &res.index_of {
            assert!(covers(&res.orders[idx], sig));
        }
    }

    #[test]
    fn paper_style_example_minimizes() {
        // Signatures {0}, {2}, {0,2}, {0,1,2} over arity 3:
        // chains {0} ⊂ {0,2} ⊂ {0,1,2} and {2} → 2 indexes.
        let res = select_indexes(3, &sigs(&[&[0], &[2], &[0, 2], &[0, 1, 2]]));
        assert_eq!(res.orders.len(), 2);
        for (&sig, &idx) in &res.index_of {
            assert!(covers(&res.orders[idx], sig));
        }
    }

    #[test]
    fn every_order_is_a_permutation() {
        let res = select_indexes(4, &sigs(&[&[1], &[1, 3], &[2], &[0, 2], &[3]]));
        for order in &res.orders {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn full_scan_signature_maps_to_primary() {
        let res = select_indexes(2, &sigs(&[&[1]]));
        assert_eq!(res.index_of[&0], 0);
    }
}
