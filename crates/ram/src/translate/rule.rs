//! Translation of a single Datalog rule into a RAM query.
//!
//! The body is processed left to right. Positive atoms become scans
//! (indexed when previously-bound values constrain columns); negations and
//! constraints are placed at the earliest point where all their variables
//! are bound; equalities `X = e` with unbound `X` become substitutions
//! (every later use of `X` re-evaluates `e`, exactly like Soufflé — this
//! is what produces the dispatch-heavy filters of the paper's §5.2 case
//! study); aggregates (already desugared to single-atom bodies) become
//! `Aggregate` operations.

use crate::expr::{CmpKind, IntrinsicOp, RamExpr};
use crate::program::{RamRelation, RelId, ReprKind};
use crate::stmt::{AggFunc, RamCond, RamOp, RamStmt};
use crate::translate::typing::{infer_var_types, join_numeric};
use crate::translate::TranslateError;
use std::collections::{BTreeSet, HashMap};
use stir_frontend::analysis::CheckedProgram;
use stir_frontend::ast::{
    AggKind, Atom, AttrType, BinOp, CmpOp, Constraint, Expr, Functor, Literal, Rule, UnOp,
};
use stir_frontend::SymbolTable;

/// Shared translation context for one rule.
pub struct RuleCx<'a> {
    /// The checked program (declarations, types).
    pub checked: &'a CheckedProgram,
    /// Relation name → id.
    pub rel_ids: &'a HashMap<String, RelId>,
    /// Relation metadata (for representations).
    pub relations: &'a [RamRelation],
    /// The engine-wide symbol table (string constants intern here).
    pub symbols: &'a mut SymbolTable,
    /// Index (into the desugared rule list) of the source rule currently
    /// being translated; stamped onto the query's `Project` so annotated
    /// evaluation can attribute derived tuples to their rule.
    pub current_rule: Option<u32>,
}

/// Which relation each positive SCC occurrence should scan.
#[derive(Debug, Clone, Default)]
pub struct RecursiveInfo {
    /// Relations of the current SCC.
    pub scc: BTreeSet<String>,
    /// `R → (delta_R, new_R)`.
    pub aux: HashMap<String, (RelId, RelId)>,
    /// Among the positive SCC body occurrences (counted left to right),
    /// which one scans `delta_R` (the others scan the full relation).
    /// `usize::MAX` makes every SCC occurrence scan the full relation
    /// (used by update-seed variants).
    pub delta_occurrence: usize,
    /// Among the positive non-SCC body occurrences of relations with
    /// `upd_` siblings (counted left to right), which one scans the
    /// `upd_` sibling instead of the full relation. Update-seed variants
    /// only; `None` leaves all non-SCC atoms on their full relations.
    pub upd_occurrence: Option<usize>,
    /// `U → upd_U` for every relation with an update sibling.
    pub upd: HashMap<String, RelId>,
    /// Permits the `$` counter. Update variants set this: any rule they
    /// re-translate already passed the main translation, which rejects
    /// `$` inside genuinely recursive rules.
    pub allow_counter: bool,
}

enum Step {
    Scan {
        rel: RelId,
        level: usize,
    },
    IndexScan {
        rel: RelId,
        level: usize,
        pattern: Vec<Option<RamExpr>>,
        eqrel_swap: bool,
    },
    Filter(RamCond),
    Aggregate {
        level: usize,
        func: AggFunc,
        rel: RelId,
        pattern: Vec<Option<RamExpr>>,
        value: Option<RamExpr>,
    },
}

enum Pending {
    Neg(Atom),
    Con(Constraint),
}

struct Builder<'a, 'b> {
    cx: &'b mut RuleCx<'a>,
    bindings: HashMap<String, (RamExpr, AttrType)>,
    steps: Vec<Step>,
    level_arity: Vec<usize>,
    scanned: Vec<RelId>,
    recursive: bool,
}

/// Translates one rule (or one delta-version of a recursive rule) into a
/// [`RamStmt::Query`].
///
/// `rec` carries semi-naive information; `None` translates the rule
/// non-recursively (head projects into the relation itself).
///
/// # Errors
///
/// Fails on type-incoherent expressions, `$` in recursive rules, and
/// internal invariant violations.
pub fn translate_rule(
    cx: &mut RuleCx<'_>,
    rule: &Rule,
    rec: Option<&RecursiveInfo>,
) -> Result<RamStmt, TranslateError> {
    // Variable types flow through `bindings`; atom-position types come
    // from declarations at bind time (infer_var_types is used by tests and
    // kept for external consumers).
    let _ = infer_var_types(rule, cx.checked);
    let mut b = Builder {
        cx,
        bindings: HashMap::new(),
        steps: Vec::new(),
        level_arity: Vec::new(),
        scanned: Vec::new(),
        recursive: rec.is_some_and(|i| !i.allow_counter),
    };

    let mut pending: Vec<Pending> = Vec::new();
    let mut scc_occurrence = 0usize;
    let mut upd_occurrence = 0usize;
    for lit in &rule.body {
        match lit {
            Literal::Positive(atom) => {
                let rel = match rec {
                    Some(info) if info.scc.contains(&atom.name) => {
                        let (delta, _) = info.aux[&atom.name];
                        let r = if scc_occurrence == info.delta_occurrence {
                            delta
                        } else {
                            b.cx.rel_ids[&atom.name]
                        };
                        scc_occurrence += 1;
                        r
                    }
                    Some(info) if info.upd.contains_key(&atom.name) => {
                        let r = if Some(upd_occurrence) == info.upd_occurrence {
                            info.upd[&atom.name]
                        } else {
                            b.cx.rel_ids[&atom.name]
                        };
                        upd_occurrence += 1;
                        r
                    }
                    _ => b.cx.rel_ids[&atom.name],
                };
                b.emit_positive(atom, rel)?;
            }
            Literal::Negative(atom) => pending.push(Pending::Neg(atom.clone())),
            Literal::Constraint(c) => pending.push(Pending::Con(c.clone())),
        }
        b.flush_pending(&mut pending, false)?;
    }
    // Final flush: aggregates are only placed here, once every variable
    // that the outer rule can bind is bound, so helper-atom variables
    // split correctly into keys (bound) and locals (unbound).
    b.flush_pending(&mut pending, true)?;
    if let Some(p) = pending.first() {
        let what = match p {
            Pending::Neg(a) => format!("negation !{a}"),
            Pending::Con(c) => format!("constraint {c}"),
        };
        return Err(TranslateError::new(format!(
            "internal error: could not place {what} (groundedness should have caught this)"
        )));
    }

    // Head values.
    let mut values = Vec::with_capacity(rule.head.args.len());
    for arg in &rule.head.args {
        let (e, _) = b.lower_expr(arg)?;
        values.push(e);
    }

    // Destination and duplicate guard.
    let (dest, guard) = match rec {
        Some(info) if info.scc.contains(&rule.head.name) => {
            let (_, new_rel) = info.aux[&rule.head.name];
            (new_rel, Some(b.cx.rel_ids[&rule.head.name]))
        }
        _ => (b.cx.rel_ids[&rule.head.name], None),
    };

    let mut op = RamOp::Project {
        rel: dest,
        values: values.clone(),
        rule: b.cx.current_rule,
    };
    if let Some(full) = guard {
        op = RamOp::Filter {
            cond: RamCond::Negation(Box::new(RamCond::ExistenceCheck {
                rel: full,
                index: usize::MAX,
                pattern: values.into_iter().map(Some).collect(),
            })),
            body: Box::new(op),
        };
    }

    // Fold the steps around the projection, innermost last.
    for step in b.steps.into_iter().rev() {
        op = match step {
            Step::Scan { rel, level } => RamOp::Scan {
                rel,
                level,
                parallel: false,
                body: Box::new(op),
            },
            Step::IndexScan {
                rel,
                level,
                pattern,
                eqrel_swap,
            } => RamOp::IndexScan {
                rel,
                index: usize::MAX,
                level,
                pattern,
                eqrel_swap,
                parallel: false,
                body: Box::new(op),
            },
            Step::Filter(cond) => RamOp::Filter {
                cond,
                body: Box::new(op),
            },
            Step::Aggregate {
                level,
                func,
                rel,
                pattern,
                value,
            } => RamOp::Aggregate {
                level,
                func,
                rel,
                index: usize::MAX,
                pattern,
                value,
                body: Box::new(op),
            },
        };
    }

    // Outermost short-circuit: skip the query if any scanned relation is
    // empty (paper Fig. 3, line 5).
    let mut unique: Vec<RelId> = Vec::new();
    for r in b.scanned {
        if !unique.contains(&r) {
            unique.push(r);
        }
    }
    if !unique.is_empty() {
        let cond = unique
            .into_iter()
            .map(|rel| RamCond::Negation(Box::new(RamCond::EmptinessCheck { rel })))
            .reduce(RamCond::and)
            .expect("nonempty");
        op = RamOp::Filter {
            cond,
            body: Box::new(op),
        };
    }

    // Mark every scan level for morsel-driven execution. The interpreter
    // decides at runtime which marked scan actually fans out: worker
    // frames never re-fan (their projections go to a sink), and a scan
    // whose index fits in a single morsel stays sequential — so in
    // practice the outermost scan over a large index parallelizes, but
    // when that one is small (a thin delta, say) an inner scan over a
    // large index still can. Rules drawing fresh auto-increment values
    // stay sequential — the values a worker draws would depend on the
    // schedule.
    if !op.uses_autoincrement() {
        mark_scans_parallel(&mut op);
    }

    let mut label = rule.to_string();
    if let Some(info) = rec {
        if let Some(u) = info.upd_occurrence {
            label.push_str(&format!(" [upd #{u}]"));
        } else {
            label.push_str(&format!(" [delta #{}]", info.delta_occurrence));
        }
    }
    Ok(RamStmt::Query {
        label,
        levels: b.level_arity.len(),
        level_arity: b.level_arity,
        op,
    })
}

/// Marks every `Scan`/`IndexScan` in an operation tree for parallel
/// execution, descending through filters, scans, and aggregate
/// continuations. Which marked scan actually fans out is a runtime
/// decision (see the interpreter's morsel-size gate and worker-frame
/// check).
fn mark_scans_parallel(op: &mut RamOp) {
    match op {
        RamOp::Filter { body, .. } => mark_scans_parallel(body),
        RamOp::Scan { parallel, body, .. } | RamOp::IndexScan { parallel, body, .. } => {
            *parallel = true;
            mark_scans_parallel(body);
        }
        RamOp::Aggregate { body, .. } => mark_scans_parallel(body),
        _ => {}
    }
}

impl Builder<'_, '_> {
    fn emit_positive(&mut self, atom: &Atom, rel: RelId) -> Result<(), TranslateError> {
        let arity = atom.args.len();
        if arity == 0 {
            // A nullary atom is a presence test.
            self.steps.push(Step::Filter(RamCond::Negation(Box::new(
                RamCond::EmptinessCheck { rel },
            ))));
            return Ok(());
        }
        self.scanned.push(rel);
        let level = self.level_arity.len();
        self.level_arity.push(arity);

        let decl = self.cx.checked.decl(&atom.name);
        // Pass 1: bind the fresh variables of this atom, remembering which
        // columns are already constrained by earlier bindings.
        let mut bound_before: Vec<Option<RamExpr>> = vec![None; arity];
        for (c, arg) in atom.args.iter().enumerate() {
            if let Expr::Var(v, _) = arg {
                match self.bindings.get(v) {
                    None => {
                        self.bindings.insert(
                            v.clone(),
                            (RamExpr::TupleElement { level, column: c }, decl.attrs[c].ty),
                        );
                    }
                    Some((expr, _)) => bound_before[c] = Some(expr.clone()),
                }
            }
        }
        // Pass 2: build the search pattern; anything touching this very
        // level (intra-tuple equalities, expressions over freshly bound
        // variables) becomes a filter inside the scan instead.
        let mut pattern: Vec<Option<RamExpr>> = vec![None; arity];
        let mut intra: Vec<RamCond> = Vec::new();
        for (c, arg) in atom.args.iter().enumerate() {
            let expr = match arg {
                Expr::Wildcard(_) => continue,
                Expr::Var(_, _) => match bound_before[c].take() {
                    Some(e) => e,
                    None => continue, // freshly bound at this column
                },
                other => self.lower_expr(other)?.0,
            };
            if refers_to_level(&expr, level) {
                intra.push(RamCond::Comparison {
                    kind: CmpKind::Eq,
                    lhs: RamExpr::TupleElement { level, column: c },
                    rhs: expr,
                });
            } else {
                pattern[c] = Some(expr);
            }
        }

        let all_free = pattern.iter().all(Option::is_none);
        if all_free {
            self.steps.push(Step::Scan { rel, level });
        } else {
            let mut pattern = pattern;
            let mut eqrel_swap = false;
            // Equivalence relations are symmetric: a second-column-only
            // probe can flip to a first-column probe.
            if self.cx.relations[rel.0].repr == ReprKind::EqRel
                && pattern[0].is_none()
                && pattern[1].is_some()
            {
                pattern.swap(0, 1);
                eqrel_swap = true;
            }
            self.steps.push(Step::IndexScan {
                rel,
                level,
                pattern,
                eqrel_swap,
            });
        }
        for cond in intra {
            self.steps.push(Step::Filter(cond));
        }
        Ok(())
    }

    /// Repeatedly places pending negations/constraints that have become
    /// evaluable. Constraints containing aggregates are held back until the
    /// final flush (`aggregates_too`), so that aggregate keys are fully
    /// bound before key/local splitting.
    fn flush_pending(
        &mut self,
        pending: &mut Vec<Pending>,
        aggregates_too: bool,
    ) -> Result<(), TranslateError> {
        loop {
            let mut placed_any = false;
            let mut i = 0;
            while i < pending.len() {
                let ready = match &pending[i] {
                    Pending::Neg(atom) => atom
                        .args
                        .iter()
                        .all(|a| matches!(a, Expr::Wildcard(_)) || self.expr_ready(a)),
                    Pending::Con(c) => {
                        (aggregates_too
                            || (!contains_aggregate(&c.lhs) && !contains_aggregate(&c.rhs)))
                            && self.constraint_ready(c)
                    }
                };
                if ready {
                    match pending.remove(i) {
                        Pending::Neg(atom) => self.place_negation(&atom)?,
                        Pending::Con(c) => self.place_constraint(&c)?,
                    }
                    placed_any = true;
                } else {
                    i += 1;
                }
            }
            if !placed_any {
                return Ok(());
            }
        }
    }

    fn expr_ready(&self, e: &Expr) -> bool {
        match e {
            Expr::Var(v, _) => self.bindings.contains_key(v),
            Expr::Wildcard(_) => false,
            Expr::Number(..) | Expr::Float(..) | Expr::Str(..) | Expr::Counter(_) => true,
            Expr::Binary { lhs, rhs, .. } => self.expr_ready(lhs) && self.expr_ready(rhs),
            Expr::Unary { expr, .. } => self.expr_ready(expr),
            Expr::Call { args, .. } => args.iter().all(|a| self.expr_ready(a)),
            Expr::Aggregate { body, value, .. } => {
                // Ready when the key columns (outer-bound vars) are bound,
                // i.e. every body-atom var is either bound outside or local
                // (locals are always "ready" — the aggregate binds them).
                // After desugaring, the body is a single helper atom whose
                // args are all vars; aggregate readiness only needs outer
                // vars, so it is always placeable once its keys resolve.
                // Keys are exactly the vars that are bound at some point in
                // the outer rule; to keep placement simple we require that
                // every var that *can* be bound outside already is. In
                // practice: a var is a key iff it is currently bound; the
                // rest are locals.
                let _ = (body, value);
                true
            }
        }
    }

    fn constraint_ready(&self, c: &Constraint) -> bool {
        // An equality with a lone unbound variable on one side becomes a
        // binding as soon as the other side is ready.
        if c.op == CmpOp::Eq {
            match (&c.lhs, &c.rhs) {
                (Expr::Var(v, _), rhs) if !self.bindings.contains_key(v) => {
                    return self.expr_ready(rhs)
                }
                (lhs, Expr::Var(v, _)) if !self.bindings.contains_key(v) => {
                    return self.expr_ready(lhs)
                }
                _ => {}
            }
        }
        self.expr_ready(&c.lhs) && self.expr_ready(&c.rhs)
    }

    fn place_negation(&mut self, atom: &Atom) -> Result<(), TranslateError> {
        let rel = self.cx.rel_ids[&atom.name];
        if atom.args.is_empty() {
            self.steps
                .push(Step::Filter(RamCond::EmptinessCheck { rel }));
            return Ok(());
        }
        let mut pattern = Vec::with_capacity(atom.args.len());
        for arg in &atom.args {
            if matches!(arg, Expr::Wildcard(_)) {
                pattern.push(None);
            } else {
                let (e, _) = self.lower_expr(arg)?;
                pattern.push(Some(e));
            }
        }
        self.steps.push(Step::Filter(RamCond::Negation(Box::new(
            RamCond::ExistenceCheck {
                rel,
                index: usize::MAX,
                pattern,
            },
        ))));
        Ok(())
    }

    fn place_constraint(&mut self, c: &Constraint) -> Result<(), TranslateError> {
        // Binding equality?
        if c.op == CmpOp::Eq {
            match (&c.lhs, &c.rhs) {
                (Expr::Var(v, _), rhs) if !self.bindings.contains_key(v) => {
                    let (e, ty) = self.lower_expr(rhs)?;
                    self.bindings.insert(v.clone(), (e, ty));
                    return Ok(());
                }
                (lhs, Expr::Var(v, _)) if !self.bindings.contains_key(v) => {
                    let (e, ty) = self.lower_expr(lhs)?;
                    self.bindings.insert(v.clone(), (e, ty));
                    return Ok(());
                }
                _ => {}
            }
        }
        let (lhs, lty) = self.lower_expr(&c.lhs)?;
        let (rhs, rty) = self.lower_expr(&c.rhs)?;
        let kind = cmp_kind(c.op, lty, rty)?;
        self.steps
            .push(Step::Filter(RamCond::Comparison { kind, lhs, rhs }));
        Ok(())
    }

    /// Emits an aggregate operation and returns the expression referring
    /// to its result.
    fn place_aggregate(
        &mut self,
        kind: AggKind,
        value: &Option<Box<Expr>>,
        body: &[Literal],
    ) -> Result<(RamExpr, AttrType), TranslateError> {
        // After desugaring, the body is exactly one positive helper atom.
        let [Literal::Positive(helper)] = body else {
            return Err(TranslateError::new(
                "internal error: aggregate body was not desugared to a single atom",
            ));
        };
        let rel = self.cx.rel_ids[&helper.name];
        let arity = helper.args.len();
        let level = self.level_arity.len();
        self.level_arity.push(arity.max(1));
        self.scanned.push(rel);

        // Pattern: bound vars are keys; locals bind at the aggregate level
        // (visible only to the value expression).
        let decl = self.cx.checked.decl(&helper.name);
        let mut pattern: Vec<Option<RamExpr>> = vec![None; arity];
        let mut locals: Vec<String> = Vec::new();
        for (c, arg) in helper.args.iter().enumerate() {
            let Expr::Var(v, _) = arg else {
                return Err(TranslateError::new(
                    "internal error: helper atom argument is not a variable",
                ));
            };
            match self.bindings.get(v) {
                Some((e, _)) => pattern[c] = Some(e.clone()),
                None => {
                    self.bindings.insert(
                        v.clone(),
                        (RamExpr::TupleElement { level, column: c }, decl.attrs[c].ty),
                    );
                    locals.push(v.clone());
                }
            }
        }

        let (value_expr, vty) = match value {
            Some(v) => {
                let (e, ty) = self.lower_expr(v)?;
                (Some(e), ty)
            }
            None => (None, AttrType::Number),
        };
        // Locals go out of scope after the aggregate.
        for v in locals {
            self.bindings.remove(&v);
        }

        let (func, result_ty) = match (kind, vty) {
            (AggKind::Count, _) => (AggFunc::Count, AttrType::Number),
            (AggKind::Sum, AttrType::Float) => (AggFunc::SumF, AttrType::Float),
            (AggKind::Sum, AttrType::Unsigned) => (AggFunc::SumU, AttrType::Unsigned),
            (AggKind::Sum, _) => (AggFunc::SumS, AttrType::Number),
            (AggKind::Min, AttrType::Float) => (AggFunc::MinF, AttrType::Float),
            (AggKind::Min, AttrType::Unsigned) => (AggFunc::MinU, AttrType::Unsigned),
            (AggKind::Min, _) => (AggFunc::MinS, AttrType::Number),
            (AggKind::Max, AttrType::Float) => (AggFunc::MaxF, AttrType::Float),
            (AggKind::Max, AttrType::Unsigned) => (AggFunc::MaxU, AttrType::Unsigned),
            (AggKind::Max, _) => (AggFunc::MaxS, AttrType::Number),
        };
        self.steps.push(Step::Aggregate {
            level,
            func,
            rel,
            pattern,
            value: value_expr,
        });
        Ok((RamExpr::TupleElement { level, column: 0 }, result_ty))
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<(RamExpr, AttrType), TranslateError> {
        match e {
            Expr::Var(v, _) => self
                .bindings
                .get(v)
                .cloned()
                .ok_or_else(|| TranslateError::new(format!("internal error: unbound `{v}`"))),
            Expr::Wildcard(_) => Err(TranslateError::new(
                "internal error: wildcard in value position",
            )),
            Expr::Number(n, _) => {
                if let Ok(v) = i32::try_from(*n) {
                    Ok((RamExpr::Constant(v as u32), AttrType::Number))
                } else if let Ok(v) = u32::try_from(*n) {
                    Ok((RamExpr::Constant(v), AttrType::Unsigned))
                } else {
                    Err(TranslateError::new(format!(
                        "integer literal {n} out of 32-bit range"
                    )))
                }
            }
            Expr::Float(x, _) => Ok((RamExpr::Constant(x.to_bits()), AttrType::Float)),
            Expr::Str(s, _) => Ok((
                RamExpr::Constant(self.cx.symbols.intern(s)),
                AttrType::Symbol,
            )),
            Expr::Counter(_) => {
                if self.recursive {
                    return Err(TranslateError::new(
                        "the counter `$` is not allowed in recursive rules",
                    ));
                }
                Ok((RamExpr::AutoIncrement, AttrType::Number))
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let (l, lt) = self.lower_expr(lhs)?;
                let (r, rt) = self.lower_expr(rhs)?;
                let (iop, ty) = bin_op(*op, lt, rt)?;
                Ok((RamExpr::intrinsic(iop, vec![l, r]), ty))
            }
            Expr::Unary { op, expr, .. } => {
                let (x, ty) = self.lower_expr(expr)?;
                let (iop, ty) = un_op(*op, ty)?;
                Ok((RamExpr::intrinsic(iop, vec![x]), ty))
            }
            Expr::Call { func, args, .. } => {
                let mut lowered = Vec::with_capacity(args.len());
                let mut types = Vec::with_capacity(args.len());
                for a in args {
                    let (e, t) = self.lower_expr(a)?;
                    lowered.push(e);
                    types.push(t);
                }
                let (iop, ty) = functor_op(*func, &types)?;
                Ok((RamExpr::intrinsic(iop, lowered), ty))
            }
            Expr::Aggregate {
                kind, value, body, ..
            } => self.place_aggregate(*kind, value, body),
        }
    }
}

fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Aggregate { .. } => true,
        Expr::Binary { lhs, rhs, .. } => contains_aggregate(lhs) || contains_aggregate(rhs),
        Expr::Unary { expr, .. } => contains_aggregate(expr),
        Expr::Call { args, .. } => args.iter().any(contains_aggregate),
        _ => false,
    }
}

fn refers_to_level(e: &RamExpr, level: usize) -> bool {
    match e {
        RamExpr::TupleElement { level: l, .. } => *l == level,
        RamExpr::Intrinsic { args, .. } => args.iter().any(|a| refers_to_level(a, level)),
        _ => false,
    }
}

fn bin_op(
    op: BinOp,
    lt: AttrType,
    rt: AttrType,
) -> Result<(IntrinsicOp, AttrType), TranslateError> {
    use AttrType::*;
    use IntrinsicOp::*;
    // String-typed operands are only legal in string functors.
    let ty = join_numeric(lt, rt, &format!("operator `{op}`"))?;
    let iop = match (op, ty) {
        (BinOp::Add, Float) => AddF,
        (BinOp::Add, _) => Add,
        (BinOp::Sub, Float) => SubF,
        (BinOp::Sub, _) => Sub,
        (BinOp::Mul, Float) => MulF,
        (BinOp::Mul, _) => Mul,
        (BinOp::Div, Float) => DivF,
        (BinOp::Div, Unsigned) => DivU,
        (BinOp::Div, _) => DivS,
        (BinOp::Mod, Unsigned) => ModU,
        (BinOp::Mod, Number) => ModS,
        (BinOp::Mod, _) => return Err(TranslateError::new("`%` is not defined on floats")),
        (BinOp::Pow, Float) => PowF,
        (BinOp::Pow, Unsigned) => PowU,
        (BinOp::Pow, _) => PowS,
        (BinOp::Band | BinOp::Bor | BinOp::Bxor | BinOp::Bshl | BinOp::Bshr, Float) => {
            return Err(TranslateError::new(
                "bitwise operators are not defined on floats",
            ))
        }
        (BinOp::Band, _) => BAnd,
        (BinOp::Bor, _) => BOr,
        (BinOp::Bxor, _) => BXor,
        (BinOp::Bshl, _) => BShl,
        (BinOp::Bshr, Unsigned) => BShrU,
        (BinOp::Bshr, _) => BShrS,
        (BinOp::Land, Float) | (BinOp::Lor, Float) => {
            return Err(TranslateError::new(
                "logical operators are not defined on floats",
            ))
        }
        (BinOp::Land, _) => LAnd,
        (BinOp::Lor, _) => LOr,
    };
    Ok((iop, ty))
}

fn un_op(op: UnOp, ty: AttrType) -> Result<(IntrinsicOp, AttrType), TranslateError> {
    use AttrType::*;
    match (op, ty) {
        (_, Symbol) => Err(TranslateError::new(
            "symbol value used in numeric operation",
        )),
        (UnOp::Neg, Float) => Ok((IntrinsicOp::NegF, Float)),
        (UnOp::Neg, _) => Ok((IntrinsicOp::Neg, Number)),
        (UnOp::Bnot, Float) | (UnOp::Lnot, Float) => Err(TranslateError::new(
            "bitwise/logical not is not defined on floats",
        )),
        (UnOp::Bnot, t) => Ok((IntrinsicOp::BNot, t)),
        (UnOp::Lnot, t) => Ok((IntrinsicOp::LNot, t)),
    }
}

fn functor_op(
    func: Functor,
    types: &[AttrType],
) -> Result<(IntrinsicOp, AttrType), TranslateError> {
    use AttrType::*;
    use IntrinsicOp::*;
    let expect_symbol = |i: usize| -> Result<(), TranslateError> {
        if types[i] != Symbol {
            return Err(TranslateError::new(format!(
                "functor `{}` expects a symbol argument",
                func.name()
            )));
        }
        Ok(())
    };
    match func {
        Functor::Cat => {
            expect_symbol(0)?;
            expect_symbol(1)?;
            Ok((Cat, Symbol))
        }
        Functor::Ord => {
            expect_symbol(0)?;
            Ok((Ord, Number))
        }
        Functor::Strlen => {
            expect_symbol(0)?;
            Ok((Strlen, Number))
        }
        Functor::Substr => {
            expect_symbol(0)?;
            Ok((Substr, Symbol))
        }
        Functor::ToNumber => {
            expect_symbol(0)?;
            Ok((ToNumber, Number))
        }
        Functor::ToString => Ok((ToString, Symbol)),
        Functor::Min | Functor::Max => {
            let ty = join_numeric(types[0], types[1], "min/max")?;
            let iop = match (func, ty) {
                (Functor::Min, Float) => MinF,
                (Functor::Min, Unsigned) => MinU,
                (Functor::Min, _) => MinS,
                (Functor::Max, Float) => MaxF,
                (Functor::Max, Unsigned) => MaxU,
                (Functor::Max, _) => MaxS,
                _ => unreachable!(),
            };
            Ok((iop, ty))
        }
    }
}

fn cmp_kind(op: CmpOp, lt: AttrType, rt: AttrType) -> Result<CmpKind, TranslateError> {
    use AttrType::*;
    if op == CmpOp::Eq {
        return Ok(CmpKind::Eq);
    }
    if op == CmpOp::Ne {
        return Ok(CmpKind::Ne);
    }
    if lt == Symbol || rt == Symbol {
        return Err(TranslateError::new(
            "ordered comparison of symbols is not supported",
        ));
    }
    let ty = join_numeric(lt, rt, "comparison")?;
    Ok(match (op, ty) {
        (CmpOp::Lt, Float) => CmpKind::LtF,
        (CmpOp::Lt, Unsigned) => CmpKind::LtU,
        (CmpOp::Lt, _) => CmpKind::LtS,
        (CmpOp::Le, Float) => CmpKind::LeF,
        (CmpOp::Le, Unsigned) => CmpKind::LeU,
        (CmpOp::Le, _) => CmpKind::LeS,
        (CmpOp::Gt, Float) => CmpKind::GtF,
        (CmpOp::Gt, Unsigned) => CmpKind::GtU,
        (CmpOp::Gt, _) => CmpKind::GtS,
        (CmpOp::Ge, Float) => CmpKind::GeF,
        (CmpOp::Ge, Unsigned) => CmpKind::GeU,
        (CmpOp::Ge, _) => CmpKind::GeS,
        (CmpOp::Eq | CmpOp::Ne, _) => unreachable!(),
    })
}
