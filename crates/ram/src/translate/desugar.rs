//! Aggregate desugaring: aggregate bodies become helper relations.
//!
//! A rule `h(..) :- outer, V = sum x*y : { f(x, k), g(y), x > 0 }` is
//! rewritten so the RAM level only ever aggregates over one indexed scan:
//!
//! ```text
//! .decl __agg0(k, x, y)                 // outer-shared vars + local vars
//! __agg0(k, x, y) :- f(x, k), g(y), x > 0.
//! h(..) :- outer, V = sum x*y : { __agg0(k, x, y) }.
//! ```
//!
//! The helper captures *all* local variables so multiplicity under set
//! semantics is preserved (distinct bindings, not distinct values), and
//! the outer-shared variables so the aggregate can be keyed per outer
//! binding. Wildcards in aggregate bodies are renamed to fresh variables
//! for the same reason. Stratification (aggregate edges are negative)
//! places the helper strictly below the consuming rule.

use std::collections::BTreeSet;
use stir_frontend::ast::*;
use stir_frontend::span::Span;

/// Rewrites all aggregates in `ast`; returns the new program and whether
/// anything changed (callers re-run semantic analysis if so).
pub fn desugar_aggregates(ast: &Program) -> (Program, bool) {
    let mut out = ast.clone();
    let mut helpers: Vec<(RelationDecl, Rule)> = Vec::new();
    let mut counter = 0usize;

    for rule in &mut out.rules {
        // Variables visible outside the aggregates of this rule.
        let mut outer_vars: Vec<&str> = Vec::new();
        for arg in &rule.head.args {
            arg.collect_vars(&mut outer_vars);
        }
        for lit in &rule.body {
            match lit {
                Literal::Positive(a) | Literal::Negative(a) => {
                    for arg in &a.args {
                        arg.collect_vars(&mut outer_vars);
                    }
                }
                Literal::Constraint(c) => {
                    // Only the non-aggregate parts contribute: aggregates
                    // are scopes of their own. `collect_vars` already skips
                    // aggregate bodies.
                    c.lhs.collect_vars(&mut outer_vars);
                    c.rhs.collect_vars(&mut outer_vars);
                }
            }
        }
        let outer: BTreeSet<String> = outer_vars.iter().map(|s| (*s).to_owned()).collect();

        for lit in &mut rule.body {
            if let Literal::Constraint(c) = lit {
                for side in [&mut c.lhs, &mut c.rhs] {
                    rewrite_expr(side, &outer, &mut helpers, &mut counter);
                }
            }
        }
    }

    let changed = !helpers.is_empty();
    for (decl, rule) in helpers {
        out.decls.push(decl);
        out.rules.push(rule);
    }
    (out, changed)
}

fn rewrite_expr(
    e: &mut Expr,
    outer: &BTreeSet<String>,
    helpers: &mut Vec<(RelationDecl, Rule)>,
    counter: &mut usize,
) {
    match e {
        Expr::Aggregate {
            value, body, span, ..
        } => {
            // Fresh names for wildcards so they count as distinct bindings.
            let mut body = std::mem::take(body);
            let mut wild = 0usize;
            for lit in &mut body {
                if let Literal::Positive(a) | Literal::Negative(a) = lit {
                    for arg in &mut a.args {
                        if matches!(arg, Expr::Wildcard(_)) {
                            let name = format!("__w{wild}");
                            wild += 1;
                            *arg = Expr::Var(name, arg.span());
                        }
                    }
                }
            }

            // Column set: outer-shared vars first (the aggregate key),
            // then the remaining local vars.
            let mut locals: Vec<String> = Vec::new();
            let mut body_vars: Vec<&str> = Vec::new();
            for lit in &body {
                match lit {
                    Literal::Positive(a) | Literal::Negative(a) => {
                        for arg in &a.args {
                            arg.collect_vars(&mut body_vars);
                        }
                    }
                    Literal::Constraint(c) => {
                        c.lhs.collect_vars(&mut body_vars);
                        c.rhs.collect_vars(&mut body_vars);
                    }
                }
            }
            let mut seen = BTreeSet::new();
            let mut keys: Vec<String> = Vec::new();
            for v in body_vars {
                if !seen.insert(v.to_owned()) {
                    continue;
                }
                if outer.contains(v) {
                    keys.push(v.to_owned());
                } else {
                    locals.push(v.to_owned());
                }
            }

            let name = format!("__agg{}", *counter);
            *counter += 1;
            let mk_var = |v: &String| Expr::Var(v.clone(), Span::default());
            let args: Vec<Expr> = keys.iter().chain(locals.iter()).map(mk_var).collect();
            let attrs: Vec<Attribute> = keys
                .iter()
                .chain(locals.iter())
                .map(|v| Attribute {
                    // Types are re-inferred by `analyze` on the desugared
                    // program through the *body* occurrences; the declared
                    // type here is refined by `fix_helper_types`.
                    name: v.clone(),
                    ty: AttrType::Number,
                })
                .collect();
            let helper_atom = Atom {
                name: name.clone(),
                args: args.clone(),
                span: *span,
            };
            helpers.push((
                RelationDecl {
                    name: name.clone(),
                    attrs,
                    repr: ReprHint::Default,
                    span: *span,
                },
                Rule {
                    head: helper_atom.clone(),
                    body,
                    span: *span,
                },
            ));
            let _ = value; // the value expression stays in place
                           // Replace the aggregate's body with the single helper atom.
            if let Expr::Aggregate { body, .. } = e {
                *body = vec![Literal::Positive(helper_atom)];
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            rewrite_expr(lhs, outer, helpers, counter);
            rewrite_expr(rhs, outer, helpers, counter);
        }
        Expr::Unary { expr, .. } => rewrite_expr(expr, outer, helpers, counter),
        Expr::Call { args, .. } => {
            for a in args {
                rewrite_expr(a, outer, helpers, counter);
            }
        }
        _ => {}
    }
}

/// Patches helper declarations so each column's declared type matches the
/// type its variable has in the helper rule's body (the desugarer declares
/// everything `number` first because it has no type context).
pub fn fix_helper_types(ast: &mut Program) {
    use std::collections::HashMap;
    let decl_types: HashMap<String, Vec<AttrType>> = ast
        .decls
        .iter()
        .map(|d| (d.name.clone(), d.attrs.iter().map(|a| a.ty).collect()))
        .collect();
    // Infer each helper's column types from its defining rule body.
    let mut fixes: Vec<(String, HashMap<String, AttrType>)> = Vec::new();
    for rule in &ast.rules {
        if !rule.head.name.starts_with("__agg") {
            continue;
        }
        let mut var_types: HashMap<String, AttrType> = HashMap::new();
        for lit in &rule.body {
            if let Literal::Positive(a) | Literal::Negative(a) = lit {
                if let Some(types) = decl_types.get(&a.name) {
                    for (arg, ty) in a.args.iter().zip(types) {
                        if let Expr::Var(v, _) = arg {
                            var_types.entry(v.clone()).or_insert(*ty);
                        }
                    }
                }
            }
        }
        fixes.push((rule.head.name.clone(), var_types));
    }
    for (name, var_types) in fixes {
        if let Some(decl) = ast.decls.iter_mut().find(|d| d.name == name) {
            for attr in &mut decl.attrs {
                if let Some(ty) = var_types.get(&attr.name) {
                    attr.ty = *ty;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_frontend::parser::parse;

    #[test]
    fn count_over_wildcards_keeps_multiplicity() {
        let ast = parse(
            ".decl e(x: number, y: number)\n.decl t(n: number)\n\
             t(n) :- n = count : { e(_, _) }.",
        )
        .expect("parses");
        let (out, changed) = desugar_aggregates(&ast);
        assert!(changed);
        // Helper has two columns (the two renamed wildcards).
        let helper = out.decl("__agg0").expect("helper declared");
        assert_eq!(helper.arity(), 2);
        let helper_rule = out
            .rules
            .iter()
            .find(|r| r.head.name == "__agg0")
            .expect("helper rule");
        assert_eq!(helper_rule.body.len(), 1);
        // The consuming aggregate now scans the helper.
        let Literal::Constraint(c) = &out.rules[0].body[0] else {
            panic!()
        };
        let Expr::Aggregate { body, .. } = &c.rhs else {
            panic!()
        };
        let Literal::Positive(a) = &body[0] else {
            panic!()
        };
        assert_eq!(a.name, "__agg0");
    }

    #[test]
    fn outer_shared_vars_become_leading_key_columns() {
        let ast = parse(
            ".decl f(k: number, x: number)\n.decl g(k: number)\n.decl t(k: number, n: number)\n\
             t(k, n) :- g(k), n = sum x : { f(k, x) }.",
        )
        .expect("parses");
        let (out, _) = desugar_aggregates(&ast);
        let helper = out.decl("__agg0").expect("helper");
        assert_eq!(helper.attrs[0].name, "k");
        assert_eq!(helper.attrs[1].name, "x");
    }

    #[test]
    fn no_aggregates_means_no_change() {
        let ast = parse(".decl e(x: number)\n.decl p(x: number)\np(x) :- e(x).").unwrap();
        let (out, changed) = desugar_aggregates(&ast);
        assert!(!changed);
        assert_eq!(out, ast);
    }

    #[test]
    fn helper_types_are_fixed_up() {
        let ast = parse(
            ".decl f(s: symbol)\n.decl t(n: number)\n\
             t(n) :- n = count : { f(s) }.",
        )
        .expect("parses");
        let (mut out, _) = desugar_aggregates(&ast);
        fix_helper_types(&mut out);
        let helper = out.decl("__agg0").expect("helper");
        assert_eq!(helper.attrs[0].ty, AttrType::Symbol);
    }
}
