//! Variable and expression typing for RAM lowering.
//!
//! The RAM level is untyped bits, so every type-sensitive operation must
//! be resolved to a typed variant (`DivS` vs `DivU` vs `DivF`, ...) during
//! translation. Variable types come from the positions they occupy in
//! atoms; numeric literals default to `number` and widen as needed.

use crate::translate::TranslateError;
use std::collections::HashMap;
use stir_frontend::analysis::CheckedProgram;
use stir_frontend::ast::{AttrType, Expr, Literal, Rule};

/// Infers the type of every variable of `rule` from the atom positions it
/// occupies (head, body, and aggregate bodies). Variables bound only by
/// equalities keep whatever their defining expression produces and are
/// absent from the map.
pub fn infer_var_types(rule: &Rule, checked: &CheckedProgram) -> HashMap<String, AttrType> {
    let mut types = HashMap::new();
    let mut visit_atom = |atom: &stir_frontend::ast::Atom,
                          types: &mut HashMap<String, AttrType>| {
        if let Some(info) = checked.relations.get(&atom.name) {
            let decl = &checked.ast.decls[info.decl_index];
            for (arg, attr) in atom.args.iter().zip(&decl.attrs) {
                if let Expr::Var(v, _) = arg {
                    types.entry(v.clone()).or_insert(attr.ty);
                }
            }
        }
    };
    fn visit_literals(
        body: &[Literal],
        visit_atom: &mut dyn FnMut(&stir_frontend::ast::Atom, &mut HashMap<String, AttrType>),
        types: &mut HashMap<String, AttrType>,
    ) {
        for lit in body {
            match lit {
                Literal::Positive(a) | Literal::Negative(a) => visit_atom(a, types),
                Literal::Constraint(c) => {
                    for side in [&c.lhs, &c.rhs] {
                        visit_expr(side, visit_atom, types);
                    }
                }
            }
        }
    }
    fn visit_expr(
        e: &Expr,
        visit_atom: &mut dyn FnMut(&stir_frontend::ast::Atom, &mut HashMap<String, AttrType>),
        types: &mut HashMap<String, AttrType>,
    ) {
        match e {
            Expr::Aggregate { body, .. } => visit_literals(body, visit_atom, types),
            Expr::Binary { lhs, rhs, .. } => {
                visit_expr(lhs, visit_atom, types);
                visit_expr(rhs, visit_atom, types);
            }
            Expr::Unary { expr, .. } => visit_expr(expr, visit_atom, types),
            Expr::Call { args, .. } => {
                for a in args {
                    visit_expr(a, visit_atom, types);
                }
            }
            _ => {}
        }
    }
    visit_atom(&rule.head, &mut types);
    visit_literals(&rule.body, &mut visit_atom, &mut types);
    types
}

/// Joins two operand types for a binary numeric operation.
///
/// # Errors
///
/// Symbols never join with anything (no implicit string arithmetic).
pub fn join_numeric(a: AttrType, b: AttrType, what: &str) -> Result<AttrType, TranslateError> {
    use AttrType::*;
    match (a, b) {
        (Symbol, _) | (_, Symbol) => Err(TranslateError::new(format!(
            "symbol value used in numeric {what}"
        ))),
        (Float, _) | (_, Float) => Ok(Float),
        (Unsigned, _) | (_, Unsigned) => Ok(Unsigned),
        _ => Ok(Number),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_frontend::parse_and_check;

    #[test]
    fn types_flow_from_atom_positions() {
        let checked = parse_and_check(
            ".decl e(x: number, s: symbol)\n.decl p(s: symbol)\n\
             p(s) :- e(n, s), n > 0.",
        )
        .expect("checks");
        let types = infer_var_types(&checked.ast.rules[0], &checked);
        assert_eq!(types["n"], AttrType::Number);
        assert_eq!(types["s"], AttrType::Symbol);
    }

    #[test]
    fn aggregate_body_vars_are_typed() {
        let checked = parse_and_check(
            ".decl e(x: unsigned)\n.decl p(n: number)\n\
             p(n) :- n = count : { e(u), u > 0 }.",
        )
        .expect("checks");
        let types = infer_var_types(&checked.ast.rules[0], &checked);
        assert_eq!(types["u"], AttrType::Unsigned);
        assert_eq!(types["n"], AttrType::Number);
    }

    #[test]
    fn join_prefers_float_then_unsigned() {
        use AttrType::*;
        assert_eq!(join_numeric(Number, Number, "op").unwrap(), Number);
        assert_eq!(join_numeric(Number, Unsigned, "op").unwrap(), Unsigned);
        assert_eq!(join_numeric(Unsigned, Float, "op").unwrap(), Float);
        assert!(join_numeric(Symbol, Number, "op").is_err());
    }
}
