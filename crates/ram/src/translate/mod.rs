//! AST → RAM translation.
//!
//! Strata are lowered in bottom-up order. A non-recursive stratum is a
//! sequence of queries; a recursive stratum becomes the semi-naive loop of
//! the paper's Fig. 3, with one `delta_R`/`new_R` pair per SCC relation
//! and one query per (rule, delta-occurrence) combination. After
//! translation, [`crate::index_selection::assign_indexes`] computes each
//! relation's index set and patches every search site.

pub mod desugar;
pub mod rule;
pub mod typing;

use crate::expr::RamDomain;
use crate::index_selection::assign_indexes;
use crate::program::{RamProgram, RamRelation, RelId, ReprKind, Role, TranslateStats};
use crate::stmt::{RamCond, RamStmt};
use crate::translate::rule::{translate_rule, RecursiveInfo, RuleCx};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use stir_frontend::analysis::CheckedProgram;
use stir_frontend::ast::{AttrType, Expr, Literal, ReprHint, Rule};
use stir_frontend::SymbolTable;

/// A translation failure (type-incoherent expression, unsupported
/// construct, or internal invariant violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslateError {
    /// Human-readable description.
    pub msg: String,
}

impl TranslateError {
    /// Creates an error.
    pub fn new(msg: impl Into<String>) -> Self {
        TranslateError { msg: msg.into() }
    }
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "translation error: {}", self.msg)
    }
}

impl std::error::Error for TranslateError {}

/// Translates a checked program into RAM.
///
/// # Errors
///
/// See [`TranslateError`]; notably, `eqrel` relations may not be heads of
/// recursive strata (their union-find representation computes closures
/// eagerly and has no delta semantics).
pub fn translate(checked: &CheckedProgram) -> Result<RamProgram, TranslateError> {
    // Aggregates become helper relations; re-analyze if anything changed.
    let (desugared, changed) = desugar::desugar_aggregates(&checked.ast);
    let owned;
    let checked = if changed {
        let mut desugared = desugared;
        desugar::fix_helper_types(&mut desugared);
        owned = stir_frontend::analyze(desugared)
            .map_err(|e| TranslateError::new(format!("internal desugaring error: {e}")))?;
        &owned
    } else {
        checked
    };

    let mut relations: Vec<RamRelation> = Vec::new();
    let mut rel_ids: HashMap<String, RelId> = HashMap::new();
    for (i, d) in checked.ast.decls.iter().enumerate() {
        let info = &checked.relations[&d.name];
        debug_assert_eq!(info.decl_index, i);
        let id = RelId(relations.len());
        rel_ids.insert(d.name.clone(), id);
        relations.push(RamRelation {
            id,
            name: d.name.clone(),
            arity: d.arity(),
            attr_types: d.attrs.iter().map(|a| a.ty).collect(),
            repr: match d.repr {
                ReprHint::Default | ReprHint::BTree => ReprKind::BTree,
                ReprHint::Brie => ReprKind::Brie,
                ReprHint::EqRel => ReprKind::EqRel,
            },
            orders: Vec::new(),
            role: Role::Standard,
            is_input: info.is_input,
            is_output: info.is_output,
        });
    }

    // delta_R / new_R for recursive strata.
    let mut aux: HashMap<String, (RelId, RelId)> = HashMap::new();
    for stratum in &checked.strata {
        if !stratum.recursive {
            continue;
        }
        for name in &stratum.relations {
            let base = rel_ids[name];
            let base_rel = relations[base.0].clone();
            if base_rel.repr == ReprKind::EqRel {
                return Err(TranslateError::new(format!(
                    "eqrel relation `{name}` may not be recursive (its union-find \
                     representation computes closures eagerly; define it with \
                     non-recursive rules instead)"
                )));
            }
            let mut mk = |prefix: &str, role: Role| {
                let id = RelId(relations.len());
                rel_ids.insert(format!("{prefix}{name}"), id);
                relations.push(RamRelation {
                    id,
                    name: format!("{prefix}{name}"),
                    arity: base_rel.arity,
                    attr_types: base_rel.attr_types.clone(),
                    repr: base_rel.repr,
                    orders: Vec::new(),
                    role,
                    is_input: false,
                    is_output: false,
                });
                id
            };
            let delta = mk("delta_", Role::Delta(base));
            let new = mk("new_", Role::New(base));
            aux.insert(name.clone(), (delta, new));
        }
    }

    // Facts.
    let mut symbols = SymbolTable::new();
    let mut facts: Vec<(RelId, Vec<RamDomain>)> = Vec::new();
    for fact in &checked.ast.facts {
        let decl = checked.decl(&fact.atom.name);
        let rel = rel_ids[&fact.atom.name];
        let mut tuple = Vec::with_capacity(decl.arity());
        for (arg, attr) in fact.atom.args.iter().zip(&decl.attrs) {
            tuple.push(encode_constant(arg, attr.ty, &mut symbols)?);
        }
        facts.push((rel, tuple));
    }

    // Strata.
    let mut cx = RuleCx {
        checked,
        rel_ids: &rel_ids,
        relations: &relations,
        symbols: &mut symbols,
    };
    let mut main: Vec<RamStmt> = Vec::new();
    for stratum in &checked.strata {
        if stratum.rules.is_empty() {
            continue;
        }
        if !stratum.recursive {
            for &ri in &stratum.rules {
                main.push(translate_rule(&mut cx, &checked.ast.rules[ri], None)?);
            }
            continue;
        }

        let scc: BTreeSet<String> = stratum.relations.iter().cloned().collect();
        let mut seq: Vec<RamStmt> = Vec::new();

        // Exit rules (no positive SCC body atom) run once, into R.
        let mut recursive_rules: Vec<&Rule> = Vec::new();
        for &ri in &stratum.rules {
            let r = &checked.ast.rules[ri];
            if count_scc_occurrences(r, &scc) == 0 {
                seq.push(translate_rule(&mut cx, r, None)?);
            } else {
                recursive_rules.push(r);
            }
        }

        // delta_R := R.
        for name in &scc {
            let (delta, _) = aux[name];
            seq.push(RamStmt::Merge {
                into: delta,
                from: rel_ids[name],
            });
        }

        // The fixpoint loop.
        let mut loop_body: Vec<RamStmt> = Vec::new();
        for r in &recursive_rules {
            let n = count_scc_occurrences(r, &scc);
            for occurrence in 0..n {
                let info = RecursiveInfo {
                    scc: scc.clone(),
                    aux: aux
                        .iter()
                        .filter(|(k, _)| scc.contains(*k))
                        .map(|(k, v)| (k.clone(), *v))
                        .collect(),
                    delta_occurrence: occurrence,
                };
                loop_body.push(translate_rule(&mut cx, r, Some(&info))?);
            }
        }
        let exit_cond = scc
            .iter()
            .map(|name| RamCond::EmptinessCheck { rel: aux[name].1 })
            .reduce(RamCond::and)
            .expect("SCC is nonempty");
        loop_body.push(RamStmt::Exit(exit_cond));
        for name in &scc {
            let (delta, new) = aux[name];
            loop_body.push(RamStmt::Merge {
                into: rel_ids[name],
                from: new,
            });
            loop_body.push(RamStmt::Swap(delta, new));
            loop_body.push(RamStmt::Clear(new));
        }
        seq.push(RamStmt::Loop(Box::new(RamStmt::Seq(loop_body))));

        // Hygiene: the auxiliaries are dead after the stratum.
        for name in &scc {
            let (delta, new) = aux[name];
            seq.push(RamStmt::Clear(delta));
            seq.push(RamStmt::Clear(new));
        }
        main.push(RamStmt::Seq(seq));
    }

    let mut program = RamProgram {
        relations,
        facts,
        main: RamStmt::Seq(main),
        symbols,
        stats: TranslateStats::default(),
    };
    crate::transform::optimize(&mut program);
    let started = std::time::Instant::now();
    assign_indexes(&mut program);
    program.stats = TranslateStats {
        index_selection_ns: started.elapsed().as_nanos() as u64,
        index_count: program.relations.iter().map(|r| r.orders.len()).sum(),
    };
    Ok(program)
}

/// Counts positive body occurrences of SCC relations.
fn count_scc_occurrences(rule: &Rule, scc: &BTreeSet<String>) -> usize {
    rule.body
        .iter()
        .filter(|l| matches!(l, Literal::Positive(a) if scc.contains(&a.name)))
        .count()
}

/// Encodes a constant fact argument as its bit pattern.
fn encode_constant(
    arg: &Expr,
    ty: AttrType,
    symbols: &mut SymbolTable,
) -> Result<RamDomain, TranslateError> {
    match (arg, ty) {
        (Expr::Number(n, _), AttrType::Number) => i32::try_from(*n)
            .map(|v| v as u32)
            .map_err(|_| TranslateError::new(format!("{n} out of number range"))),
        (Expr::Number(n, _), AttrType::Unsigned) => {
            u32::try_from(*n).map_err(|_| TranslateError::new(format!("{n} out of unsigned range")))
        }
        (Expr::Number(n, _), AttrType::Float) => Ok((*n as f32).to_bits()),
        (Expr::Float(x, _), AttrType::Float) => Ok(x.to_bits()),
        (Expr::Str(s, _), AttrType::Symbol) => Ok(symbols.intern(s)),
        (e, t) => Err(TranslateError::new(format!(
            "fact constant `{e}` does not fit type `{t}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::program_to_string;
    use crate::stmt::RamOp;
    use stir_frontend::parse_and_check;

    fn ram_of(src: &str) -> RamProgram {
        translate(&parse_and_check(src).expect("checks")).expect("translates")
    }

    const TC: &str = "\
        .decl e(x: number, y: number)\n\
        .decl p(x: number, y: number)\n\
        .output p\n\
        e(1, 2). e(2, 3).\n\
        p(x, y) :- e(x, y).\n\
        p(x, z) :- p(x, y), e(y, z).\n";

    #[test]
    fn transitive_closure_shape() {
        let ram = ram_of(TC);
        // Relations: e, p, delta_p, new_p.
        let names: Vec<&str> = ram.relations.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["e", "p", "delta_p", "new_p"]);
        assert_eq!(ram.facts.len(), 2);
        let listing = program_to_string(&ram);
        assert!(listing.contains("LOOP"), "{listing}");
        assert!(listing.contains("MERGE new_p INTO p"), "{listing}");
        assert!(listing.contains("SWAP (delta_p, new_p)"), "{listing}");
        assert!(listing.contains("EXIT"), "{listing}");
    }

    #[test]
    fn join_uses_an_index_scan_on_the_join_column() {
        let ram = ram_of(TC);
        // The recursive query scans delta_p then e with column 0 bound.
        let mut found = false;
        ram.main.walk(&mut |s| {
            if let RamStmt::Query { op, label, .. } = s {
                if label.contains("delta") {
                    op.walk(&mut |o| {
                        if let RamOp::IndexScan {
                            rel,
                            pattern,
                            index,
                            ..
                        } = o
                        {
                            assert_eq!(ram.relation(*rel).name, "e");
                            assert!(pattern[0].is_some());
                            assert!(pattern[1].is_none());
                            assert_ne!(*index, usize::MAX, "index was assigned");
                            found = true;
                        }
                    });
                }
            }
        });
        assert!(found, "expected an IndexScan in the delta rule");
    }

    #[test]
    fn recursive_head_projects_into_new_with_guard() {
        let ram = ram_of(TC);
        let listing = program_to_string(&ram);
        assert!(listing.contains("INTO new_p"), "{listing}");
        assert!(listing.contains("∈ p"), "{listing}");
    }

    #[test]
    fn index_orders_are_assigned_and_cover_searches() {
        let ram = ram_of(TC);
        let e = ram.relation_by_name("e").unwrap();
        // e is searched on column 0 → natural order works, one index.
        assert_eq!(e.orders.len(), 1);
        assert_eq!(e.orders[0], vec![0, 1]);
    }

    #[test]
    fn two_incompatible_searches_get_two_indexes() {
        let ram = ram_of(
            ".decl e(x: number, y: number)\n.decl a(x: number)\n.decl r1(x: number, y: number)\n.decl r2(x: number, y: number)\n\
             r1(x, y) :- a(x), e(x, y).\n\
             r2(x, y) :- a(y), e(x, y).\n",
        );
        let e = ram.relation_by_name("e").unwrap();
        assert_eq!(
            e.orders.len(),
            2,
            "searches {{0}} and {{1}} are incomparable"
        );
    }

    #[test]
    fn negation_becomes_existence_filter() {
        let ram = ram_of(
            ".decl a(x: number)\n.decl b(x: number)\n.decl r(x: number)\n\
             r(x) :- a(x), !b(x).",
        );
        let listing = program_to_string(&ram);
        assert!(listing.contains("NOT ((t0.0) ∈ b)"), "{listing}");
    }

    #[test]
    fn equality_bindings_substitute() {
        let ram = ram_of(
            ".decl a(x: number)\n.decl r(x: number, y: number)\n\
             r(x, y) :- a(x), y = x * 2 + 1.",
        );
        let listing = program_to_string(&ram);
        // y's definition is inlined into the projection.
        assert!(
            listing.contains("INSERT (t0.0, ((t0.0 * 2) + 1)) INTO r"),
            "{listing}"
        );
    }

    #[test]
    fn facts_encode_types() {
        let ram = ram_of(
            ".decl m(a: number, b: unsigned, c: float, d: symbol)\n\
             m(-1, 7, 1.5, \"hi\").",
        );
        let (_, tuple) = &ram.facts[0];
        assert_eq!(tuple[0], (-1i32) as u32);
        assert_eq!(tuple[1], 7);
        assert_eq!(tuple[2], 1.5f32.to_bits());
        assert_eq!(ram.symbols.resolve(tuple[3]), "hi");
    }

    #[test]
    fn aggregates_translate_via_helpers() {
        let ram = ram_of(
            ".decl e(x: number, y: number)\n.decl t(n: number)\n\
             e(1, 2). e(1, 3).\n\
             t(n) :- n = count : { e(1, _) }.",
        );
        assert!(ram.relation_by_name("__agg0").is_some());
        let listing = program_to_string(&ram);
        assert!(listing.contains("COUNT"), "{listing}");
    }

    #[test]
    fn eqrel_recursion_is_rejected() {
        let checked = parse_and_check(
            ".decl eq(x: number, y: number) eqrel\n.decl s(x: number, y: number)\n\
             eq(x, y) :- s(x, y).\n\
             eq(x, y) :- eq(x, z), s(z, y).\n",
        )
        .expect("checks");
        let err = translate(&checked).unwrap_err();
        assert!(err.msg.contains("eqrel"));
    }

    #[test]
    fn eqrel_second_column_probe_swaps() {
        let ram = ram_of(
            ".decl eq(x: number, y: number) eqrel\n.decl s(x: number)\n.decl r(x: number, y: number)\n\
             r(x, y) :- s(y), eq(x, y).",
        );
        let listing = program_to_string(&ram);
        assert!(listing.contains("(swapped)"), "{listing}");
    }

    #[test]
    fn counter_in_recursive_rule_is_rejected() {
        let checked = parse_and_check(
            ".decl s(x: number)\n.decl p(x: number, y: number)\n\
             p(x, $) :- s(x).\n\
             p(x, $) :- p(x, _), s(x).\n",
        )
        .expect("checks");
        let err = translate(&checked).unwrap_err();
        assert!(err.msg.contains("counter"));
    }

    #[test]
    fn mutual_recursion_produces_joint_loop() {
        let ram = ram_of(
            ".decl s(x: number)\n.decl a(x: number)\n.decl b(x: number)\n\
             s(1). s(2).\n\
             a(x) :- s(x).\n\
             b(x) :- a(x).\n\
             a(x) :- b(x), s(x).\n",
        );
        let listing = program_to_string(&ram);
        assert!(listing.contains("delta_a"));
        assert!(listing.contains("delta_b"));
        // Single loop merges both.
        assert_eq!(listing.matches("LOOP").count(), 2); // "LOOP" + "END LOOP"
    }

    #[test]
    fn delta_new_and_base_share_index_layout() {
        // The delta version is probed on column 1 inside the recursive
        // rule; base and new must still end up with identical layouts so
        // MERGE/SWAP are well-defined.
        let ram = ram_of(
            ".decl e(x: number, y: number)\n.decl p(x: number, y: number)\n\
             e(1, 2).\n\
             p(x, y) :- e(x, y).\n\
             p(x, z) :- e(x, y), p(y, z).\n",
        );
        let base = ram.relation_by_name("p").unwrap();
        let delta = ram.relation_by_name("delta_p").unwrap();
        let new = ram.relation_by_name("new_p").unwrap();
        assert_eq!(base.orders, delta.orders);
        assert_eq!(base.orders, new.orders);
    }

    #[test]
    fn emptiness_guard_wraps_queries() {
        let ram = ram_of(TC);
        let listing = program_to_string(&ram);
        assert!(listing.contains("NOT (e = ∅)"), "{listing}");
    }
}
