//! AST → RAM translation.
//!
//! Strata are lowered in bottom-up order. A non-recursive stratum is a
//! sequence of queries; a recursive stratum becomes the semi-naive loop of
//! the paper's Fig. 3, with one `delta_R`/`new_R` pair per SCC relation
//! and one query per (rule, delta-occurrence) combination. After
//! translation, [`crate::index_selection::assign_indexes`] computes each
//! relation's index set and patches every search site.

pub mod desugar;
pub mod rule;
pub mod typing;

use crate::expr::RamDomain;
use crate::index_selection::assign_indexes;
use crate::program::{RamProgram, RamRelation, RamStratum, RelId, ReprKind, Role, TranslateStats};
use crate::stmt::{RamCond, RamStmt};
use crate::translate::rule::{translate_rule, RecursiveInfo, RuleCx};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use stir_frontend::analysis::CheckedProgram;
use stir_frontend::ast::{AttrType, Expr, Literal, ReprHint, Rule};
use stir_frontend::SymbolTable;

/// A translation failure (type-incoherent expression, unsupported
/// construct, or internal invariant violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslateError {
    /// Human-readable description.
    pub msg: String,
}

impl TranslateError {
    /// Creates an error.
    pub fn new(msg: impl Into<String>) -> Self {
        TranslateError { msg: msg.into() }
    }
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "translation error: {}", self.msg)
    }
}

impl std::error::Error for TranslateError {}

/// Translates a checked program into RAM.
///
/// # Errors
///
/// See [`TranslateError`]; notably, `eqrel` relations may not be heads of
/// recursive strata (their union-find representation computes closures
/// eagerly and has no delta semantics).
pub fn translate(checked: &CheckedProgram) -> Result<RamProgram, TranslateError> {
    // Aggregates become helper relations; re-analyze if anything changed.
    let (desugared, changed) = desugar::desugar_aggregates(&checked.ast);
    let owned;
    let checked = if changed {
        let mut desugared = desugared;
        desugar::fix_helper_types(&mut desugared);
        owned = stir_frontend::analyze(desugared)
            .map_err(|e| TranslateError::new(format!("internal desugaring error: {e}")))?;
        &owned
    } else {
        checked
    };

    let mut relations: Vec<RamRelation> = Vec::new();
    let mut rel_ids: HashMap<String, RelId> = HashMap::new();
    for (i, d) in checked.ast.decls.iter().enumerate() {
        let info = &checked.relations[&d.name];
        debug_assert_eq!(info.decl_index, i);
        let id = RelId(relations.len());
        rel_ids.insert(d.name.clone(), id);
        relations.push(RamRelation {
            id,
            name: d.name.clone(),
            arity: d.arity(),
            attr_types: d.attrs.iter().map(|a| a.ty).collect(),
            repr: match d.repr {
                ReprHint::Default | ReprHint::BTree => ReprKind::BTree,
                ReprHint::Brie => ReprKind::Brie,
                ReprHint::EqRel => ReprKind::EqRel,
            },
            orders: Vec::new(),
            role: Role::Standard,
            is_input: info.is_input,
            is_output: info.is_output,
        });
    }

    // delta_R / new_R for recursive strata.
    let mut aux: HashMap<String, (RelId, RelId)> = HashMap::new();
    for stratum in &checked.strata {
        if !stratum.recursive {
            continue;
        }
        for name in &stratum.relations {
            let base = rel_ids[name];
            let base_rel = relations[base.0].clone();
            if base_rel.repr == ReprKind::EqRel {
                return Err(TranslateError::new(format!(
                    "eqrel relation `{name}` may not be recursive (its union-find \
                     representation computes closures eagerly; define it with \
                     non-recursive rules instead)"
                )));
            }
            let mut mk = |prefix: &str, role: Role| {
                let id = RelId(relations.len());
                rel_ids.insert(format!("{prefix}{name}"), id);
                relations.push(RamRelation {
                    id,
                    name: format!("{prefix}{name}"),
                    arity: base_rel.arity,
                    attr_types: base_rel.attr_types.clone(),
                    repr: base_rel.repr,
                    orders: Vec::new(),
                    role,
                    is_input: false,
                    is_output: false,
                });
                id
            };
            let delta = mk("delta_", Role::Delta(base));
            let new = mk("new_", Role::New(base));
            aux.insert(name.clone(), (delta, new));
        }
    }

    // upd_R for every servable relation: the staging area a resident
    // engine fills with the tuples added to R during one incremental
    // update cycle (user inserts plus newly derived tuples), consumed by
    // the update statements of downstream strata. EqRel relations are
    // excluded — their eager closure has no delta semantics, so their
    // strata recompute instead.
    let mut upd_ids: HashMap<String, RelId> = HashMap::new();
    for i in 0..relations.len() {
        let base = relations[i].clone();
        if base.role != Role::Standard || base.repr == ReprKind::EqRel {
            continue;
        }
        let id = RelId(relations.len());
        let name = format!("upd_{}", base.name);
        rel_ids.insert(name.clone(), id);
        relations.push(RamRelation {
            id,
            name,
            arity: base.arity,
            attr_types: base.attr_types.clone(),
            repr: base.repr,
            orders: Vec::new(),
            role: Role::Upd(base.id),
            is_input: false,
            is_output: false,
        });
        upd_ids.insert(base.name.clone(), id);
    }

    // Facts.
    let mut symbols = SymbolTable::new();
    let mut facts: Vec<(RelId, Vec<RamDomain>)> = Vec::new();
    for fact in &checked.ast.facts {
        let decl = checked.decl(&fact.atom.name);
        let rel = rel_ids[&fact.atom.name];
        let mut tuple = Vec::with_capacity(decl.arity());
        for (arg, attr) in fact.atom.args.iter().zip(&decl.attrs) {
            tuple.push(encode_constant(arg, attr.ty, &mut symbols)?);
        }
        facts.push((rel, tuple));
    }

    // Strata.
    let mut cx = RuleCx {
        checked,
        rel_ids: &rel_ids,
        relations: &relations,
        symbols: &mut symbols,
        current_rule: None,
    };
    let mut main: Vec<RamStmt> = Vec::new();
    let mut strata: Vec<RamStratum> = Vec::new();
    for stratum in &checked.strata {
        if stratum.rules.is_empty() {
            continue;
        }
        let defined: BTreeSet<String> = stratum.relations.iter().cloned().collect();

        // AST-level read sets, for stratum-selective incremental updates.
        let mut pos_reads: BTreeSet<RelId> = BTreeSet::new();
        let mut neg_agg_reads: BTreeSet<RelId> = BTreeSet::new();
        for &ri in &stratum.rules {
            let r = &checked.ast.rules[ri];
            for lit in &r.body {
                match lit {
                    Literal::Positive(a) => {
                        if !defined.contains(&a.name) {
                            pos_reads.insert(rel_ids[&a.name]);
                        }
                        for arg in &a.args {
                            collect_agg_reads(arg, &rel_ids, &mut neg_agg_reads);
                        }
                    }
                    Literal::Negative(a) => {
                        neg_agg_reads.insert(rel_ids[&a.name]);
                    }
                    Literal::Constraint(c) => {
                        collect_agg_reads(&c.lhs, &rel_ids, &mut neg_agg_reads);
                        collect_agg_reads(&c.rhs, &rel_ids, &mut neg_agg_reads);
                    }
                }
            }
            for arg in &r.head.args {
                collect_agg_reads(arg, &rel_ids, &mut neg_agg_reads);
            }
        }
        let meta = |update, main_index| RamStratum {
            defines: stratum.relations.iter().map(|n| rel_ids[n]).collect(),
            pos_reads: pos_reads.iter().copied().collect(),
            neg_agg_reads: neg_agg_reads.iter().copied().collect(),
            recursive: stratum.recursive,
            main_index,
            update,
        };

        if !stratum.recursive {
            let mut seq: Vec<RamStmt> = Vec::new();
            for &ri in &stratum.rules {
                cx.current_rule = Some(ri as u32);
                seq.push(translate_rule(&mut cx, &checked.ast.rules[ri], None)?);
            }

            // Update statement: re-derive with one upstream occurrence at
            // a time reading its upd_ sibling, projecting fresh tuples
            // into upd_head, then merge them in. A non-recursive SCC is a
            // single relation.
            let head_name = &stratum.relations[0];
            let update = if let Some(&upd_h) = upd_ids.get(head_name) {
                let scc1: BTreeSet<String> = std::iter::once(head_name.clone()).collect();
                let aux1: HashMap<String, (RelId, RelId)> =
                    std::iter::once((head_name.clone(), (upd_h, upd_h))).collect();
                let mut useq: Vec<RamStmt> = Vec::new();
                for &ri in &stratum.rules {
                    let r = &checked.ast.rules[ri];
                    cx.current_rule = Some(ri as u32);
                    for k in 0..count_upd_occurrences(r, &scc1, &upd_ids) {
                        useq.push(seed_variant(&mut cx, r, k, &scc1, &aux1, &upd_ids)?);
                    }
                }
                useq.push(RamStmt::Merge {
                    into: rel_ids[head_name],
                    from: upd_h,
                });
                Some(RamStmt::Seq(useq))
            } else {
                None // eqrel head: recompute instead
            };

            strata.push(meta(update, main.len()));
            main.push(RamStmt::Seq(seq));
            continue;
        }

        let scc: BTreeSet<String> = stratum.relations.iter().cloned().collect();
        let scc_aux: HashMap<String, (RelId, RelId)> = aux
            .iter()
            .filter(|(k, _)| scc.contains(*k))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let mut seq: Vec<RamStmt> = Vec::new();

        // Exit rules (no positive SCC body atom) run once, into R.
        let mut recursive_rules: Vec<(u32, &Rule)> = Vec::new();
        for &ri in &stratum.rules {
            let r = &checked.ast.rules[ri];
            if count_scc_occurrences(r, &scc) == 0 {
                cx.current_rule = Some(ri as u32);
                seq.push(translate_rule(&mut cx, r, None)?);
            } else {
                recursive_rules.push((ri as u32, r));
            }
        }

        // delta_R := R.
        for name in &scc {
            let (delta, _) = aux[name];
            seq.push(RamStmt::Merge {
                into: delta,
                from: rel_ids[name],
            });
        }

        // The fixpoint loop.
        let loop_body = fixpoint_loop_body(
            &mut cx,
            &recursive_rules,
            &scc,
            &scc_aux,
            &aux,
            &rel_ids,
            None,
        )?;
        seq.push(RamStmt::Loop(Box::new(RamStmt::Seq(loop_body))));

        // Hygiene: the auxiliaries are dead after the stratum.
        for name in &scc {
            let (delta, new) = aux[name];
            seq.push(RamStmt::Clear(delta));
            seq.push(RamStmt::Clear(new));
        }

        // Update statement: a seed round re-derives every rule (exit and
        // recursive) with one changed upstream occurrence reading its
        // upd_ sibling and SCC occurrences reading the full (already
        // grown) relations; the seed derivations plus the direct user
        // inserts staged in upd_R become the delta frontier of a regular
        // semi-naive loop. Every rule already passed the main
        // translation, so re-translating cannot fail semantically.
        let update = {
            let mut useq: Vec<RamStmt> = Vec::new();
            for &ri in &stratum.rules {
                let r = &checked.ast.rules[ri];
                cx.current_rule = Some(ri as u32);
                for k in 0..count_upd_occurrences(r, &scc, &upd_ids) {
                    useq.push(seed_variant(&mut cx, r, k, &scc, &scc_aux, &upd_ids)?);
                }
            }
            // Direct user inserts (already merged into R) seed the
            // frontier alongside the seed-round derivations.
            for name in &scc {
                useq.push(RamStmt::Merge {
                    into: aux[name].0,
                    from: upd_ids[name],
                });
            }
            for name in &scc {
                let (delta, new) = aux[name];
                useq.push(RamStmt::Merge {
                    into: rel_ids[name],
                    from: new,
                });
                useq.push(RamStmt::Merge {
                    into: delta,
                    from: new,
                });
                useq.push(RamStmt::Merge {
                    into: upd_ids[name],
                    from: new,
                });
                useq.push(RamStmt::Clear(new));
            }
            let loop_body = fixpoint_loop_body(
                &mut cx,
                &recursive_rules,
                &scc,
                &scc_aux,
                &aux,
                &rel_ids,
                Some(&upd_ids),
            )?;
            useq.push(RamStmt::Loop(Box::new(RamStmt::Seq(loop_body))));
            for name in &scc {
                let (delta, new) = aux[name];
                useq.push(RamStmt::Clear(delta));
                useq.push(RamStmt::Clear(new));
            }
            Some(RamStmt::Seq(useq))
        };

        strata.push(meta(update, main.len()));
        main.push(RamStmt::Seq(seq));
    }

    // Provenance plans: each desugared rule lowered once more over the
    // full base relations (no recursion info), for proof-tree matching.
    // Constants were interned by the main translation above, so this adds
    // no symbols; the plans live outside `main`, so the optimizer and
    // index selection never see them and plain evaluation is unaffected.
    let mut prov = crate::prov::ProvInfo::default();
    for (ri, rule) in checked.ast.rules.iter().enumerate() {
        cx.current_rule = Some(ri as u32);
        let stmt = translate_rule(&mut cx, rule, None).ok();
        let opaque = match &stmt {
            Some(RamStmt::Query { op, .. }) => op.uses_autoincrement(),
            _ => true,
        };
        prov.rules.push(crate::prov::ProvRule {
            head: rel_ids[&rule.head.name],
            label: rule.to_string(),
            stmt,
            opaque,
        });
    }

    let mut program = RamProgram {
        relations,
        facts,
        main: RamStmt::Seq(main),
        strata,
        symbols,
        stats: TranslateStats::default(),
        prov,
    };
    crate::transform::optimize(&mut program);
    let started = std::time::Instant::now();
    assign_indexes(&mut program);
    program.stats = TranslateStats {
        index_selection_ns: started.elapsed().as_nanos() as u64,
        index_count: program.relations.iter().map(|r| r.orders.len()).sum(),
    };
    Ok(program)
}

/// Counts positive body occurrences of SCC relations.
fn count_scc_occurrences(rule: &Rule, scc: &BTreeSet<String>) -> usize {
    rule.body
        .iter()
        .filter(|l| matches!(l, Literal::Positive(a) if scc.contains(&a.name)))
        .count()
}

/// Counts positive non-SCC body occurrences of relations with `upd_`
/// siblings — the occurrences an update-seed variant can substitute.
/// Mirrors the occurrence counting of [`translate_rule`] exactly.
fn count_upd_occurrences(
    rule: &Rule,
    scc: &BTreeSet<String>,
    upd_ids: &HashMap<String, RelId>,
) -> usize {
    rule.body
        .iter()
        .filter(
            |l| matches!(l, Literal::Positive(a) if !scc.contains(&a.name) && upd_ids.contains_key(&a.name)),
        )
        .count()
}

/// Translates the `k`-th update-seed variant of `rule`: the variant
/// whose `k`-th substitutable upstream occurrence reads its staged
/// `upd_` sibling. The substituted literal is rotated to the front of
/// the join so the (typically tiny) staging relation drives it instead
/// of a full scan of whatever literal happens to be written first —
/// this is what keeps a single-fact update sublinear in the database.
/// Moving a positive literal forward only accumulates bindings earlier,
/// so groundedness survives; the one exception is an argument
/// *expression* of the moved atom that references variables bound by a
/// later literal, which fails to lower — in that case the original
/// literal order is kept.
fn seed_variant(
    cx: &mut RuleCx<'_>,
    rule: &Rule,
    k: usize,
    scc: &BTreeSet<String>,
    aux: &HashMap<String, (RelId, RelId)>,
    upd_ids: &HashMap<String, RelId>,
) -> Result<RamStmt, TranslateError> {
    let info = |occurrence| RecursiveInfo {
        scc: scc.clone(),
        aux: aux.clone(),
        delta_occurrence: usize::MAX,
        upd_occurrence: Some(occurrence),
        upd: upd_ids.clone(),
        allow_counter: true,
    };
    let mut seen = 0usize;
    let pos = rule.body.iter().position(|l| {
        matches!(l, Literal::Positive(a) if !scc.contains(&a.name) && upd_ids.contains_key(&a.name))
            && {
                let hit = seen == k;
                seen += 1;
                hit
            }
    });
    if let Some(i) = pos.filter(|&i| i > 0) {
        let mut rotated = rule.clone();
        let lit = rotated.body.remove(i);
        rotated.body.insert(0, lit);
        if let Ok(stmt) = translate_rule(cx, &rotated, Some(&info(0))) {
            return Ok(stmt);
        }
    }
    translate_rule(cx, rule, Some(&info(k)))
}

/// Collects the helper relations read inside aggregate expressions
/// (post-desugaring, each aggregate body is one positive helper atom).
fn collect_agg_reads(e: &Expr, rel_ids: &HashMap<String, RelId>, out: &mut BTreeSet<RelId>) {
    match e {
        Expr::Binary { lhs, rhs, .. } => {
            collect_agg_reads(lhs, rel_ids, out);
            collect_agg_reads(rhs, rel_ids, out);
        }
        Expr::Unary { expr, .. } => collect_agg_reads(expr, rel_ids, out),
        Expr::Call { args, .. } => {
            for a in args {
                collect_agg_reads(a, rel_ids, out);
            }
        }
        Expr::Aggregate { body, value, .. } => {
            for lit in body {
                if let Literal::Positive(a) = lit {
                    out.insert(rel_ids[&a.name]);
                }
            }
            if let Some(v) = value {
                collect_agg_reads(v, rel_ids, out);
            }
        }
        _ => {}
    }
}

/// Builds the body of a semi-naive fixpoint loop: one query per
/// (recursive rule, delta occurrence), the exit test, and the per-relation
/// merge/swap epilogue. When `upd_ids` is given (incremental update
/// loops), each iteration's new tuples are additionally merged into the
/// `upd_` staging relations so downstream strata see them.
#[allow(clippy::too_many_arguments)]
fn fixpoint_loop_body(
    cx: &mut RuleCx<'_>,
    recursive_rules: &[(u32, &Rule)],
    scc: &BTreeSet<String>,
    scc_aux: &HashMap<String, (RelId, RelId)>,
    aux: &HashMap<String, (RelId, RelId)>,
    rel_ids: &HashMap<String, RelId>,
    upd_ids: Option<&HashMap<String, RelId>>,
) -> Result<Vec<RamStmt>, TranslateError> {
    let mut loop_body: Vec<RamStmt> = Vec::new();
    for (ri, r) in recursive_rules {
        cx.current_rule = Some(*ri);
        let n = count_scc_occurrences(r, scc);
        for occurrence in 0..n {
            let info = RecursiveInfo {
                scc: scc.clone(),
                aux: scc_aux.clone(),
                delta_occurrence: occurrence,
                ..RecursiveInfo::default()
            };
            loop_body.push(translate_rule(cx, r, Some(&info))?);
        }
    }
    let exit_cond = scc
        .iter()
        .map(|name| RamCond::EmptinessCheck { rel: aux[name].1 })
        .reduce(RamCond::and)
        .expect("SCC is nonempty");
    loop_body.push(RamStmt::Exit(exit_cond));
    for name in scc {
        let (delta, new) = aux[name];
        loop_body.push(RamStmt::Merge {
            into: rel_ids[name],
            from: new,
        });
        if let Some(upd) = upd_ids {
            loop_body.push(RamStmt::Merge {
                into: upd[name],
                from: new,
            });
        }
        loop_body.push(RamStmt::Swap(delta, new));
        loop_body.push(RamStmt::Clear(new));
    }
    Ok(loop_body)
}

/// Encodes a constant fact argument as its bit pattern.
fn encode_constant(
    arg: &Expr,
    ty: AttrType,
    symbols: &mut SymbolTable,
) -> Result<RamDomain, TranslateError> {
    match (arg, ty) {
        (Expr::Number(n, _), AttrType::Number) => i32::try_from(*n)
            .map(|v| v as u32)
            .map_err(|_| TranslateError::new(format!("{n} out of number range"))),
        (Expr::Number(n, _), AttrType::Unsigned) => {
            u32::try_from(*n).map_err(|_| TranslateError::new(format!("{n} out of unsigned range")))
        }
        (Expr::Number(n, _), AttrType::Float) => Ok((*n as f32).to_bits()),
        (Expr::Float(x, _), AttrType::Float) => Ok(x.to_bits()),
        (Expr::Str(s, _), AttrType::Symbol) => Ok(symbols.intern(s)),
        (e, t) => Err(TranslateError::new(format!(
            "fact constant `{e}` does not fit type `{t}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::program_to_string;
    use crate::stmt::RamOp;
    use stir_frontend::parse_and_check;

    fn ram_of(src: &str) -> RamProgram {
        translate(&parse_and_check(src).expect("checks")).expect("translates")
    }

    const TC: &str = "\
        .decl e(x: number, y: number)\n\
        .decl p(x: number, y: number)\n\
        .output p\n\
        e(1, 2). e(2, 3).\n\
        p(x, y) :- e(x, y).\n\
        p(x, z) :- p(x, y), e(y, z).\n";

    #[test]
    fn transitive_closure_shape() {
        let ram = ram_of(TC);
        // Relations: e, p, delta_p, new_p, plus the upd_ staging siblings.
        let names: Vec<&str> = ram.relations.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["e", "p", "delta_p", "new_p", "upd_e", "upd_p"]);
        assert_eq!(ram.facts.len(), 2);
        let listing = program_to_string(&ram);
        assert!(listing.contains("LOOP"), "{listing}");
        assert!(listing.contains("MERGE new_p INTO p"), "{listing}");
        assert!(listing.contains("SWAP (delta_p, new_p)"), "{listing}");
        assert!(listing.contains("EXIT"), "{listing}");
    }

    #[test]
    fn join_uses_an_index_scan_on_the_join_column() {
        let ram = ram_of(TC);
        // The recursive query scans delta_p then e with column 0 bound.
        let mut found = false;
        ram.main.walk(&mut |s| {
            if let RamStmt::Query { op, label, .. } = s {
                if label.contains("delta") {
                    op.walk(&mut |o| {
                        if let RamOp::IndexScan {
                            rel,
                            pattern,
                            index,
                            ..
                        } = o
                        {
                            assert_eq!(ram.relation(*rel).name, "e");
                            assert!(pattern[0].is_some());
                            assert!(pattern[1].is_none());
                            assert_ne!(*index, usize::MAX, "index was assigned");
                            found = true;
                        }
                    });
                }
            }
        });
        assert!(found, "expected an IndexScan in the delta rule");
    }

    #[test]
    fn every_scan_level_is_marked_parallel() {
        let ram = ram_of(TC);
        // Every scan of every query — outer loops and inner join loops —
        // is marked; the interpreter picks the fan-out level at runtime
        // (worker frames and single-morsel indexes stay sequential).
        ram.main.walk(&mut |s| {
            if let RamStmt::Query { op, label, .. } = s {
                let mut scans = 0usize;
                let mut marked = 0usize;
                op.walk(&mut |o| {
                    if let RamOp::Scan { parallel, .. } | RamOp::IndexScan { parallel, .. } = o {
                        scans += 1;
                        marked += usize::from(*parallel);
                    }
                });
                assert!(scans > 0, "query without scans: {label:?}");
                assert_eq!(scans, marked, "unmarked scan in {label:?}");
            }
        });
        let listing = program_to_string(&ram);
        assert!(listing.contains("PARALLEL FOR"), "{listing}");
    }

    #[test]
    fn autoincrement_rules_stay_sequential() {
        let ram = ram_of(
            ".decl src(x: number)\n\
             .decl tagged(x: number, id: number)\n\
             .output tagged\n\
             src(10). src(20).\n\
             tagged(x, $) :- src(x).\n",
        );
        ram.main.walk(&mut |s| {
            if let RamStmt::Query { op, label, .. } = s {
                if label.contains("tagged") {
                    op.walk(&mut |o| {
                        if let RamOp::Scan { parallel, .. } | RamOp::IndexScan { parallel, .. } = o
                        {
                            assert!(!parallel, "auto-increment rule marked parallel: {label:?}");
                        }
                    });
                }
            }
        });
    }

    #[test]
    fn recursive_head_projects_into_new_with_guard() {
        let ram = ram_of(TC);
        let listing = program_to_string(&ram);
        assert!(listing.contains("INTO new_p"), "{listing}");
        assert!(listing.contains("∈ p"), "{listing}");
    }

    #[test]
    fn index_orders_are_assigned_and_cover_searches() {
        let ram = ram_of(TC);
        let e = ram.relation_by_name("e").unwrap();
        // e is searched on column 0 → natural order works, one index.
        assert_eq!(e.orders.len(), 1);
        assert_eq!(e.orders[0], vec![0, 1]);
    }

    #[test]
    fn two_incompatible_searches_get_two_indexes() {
        let ram = ram_of(
            ".decl e(x: number, y: number)\n.decl a(x: number)\n.decl r1(x: number, y: number)\n.decl r2(x: number, y: number)\n\
             r1(x, y) :- a(x), e(x, y).\n\
             r2(x, y) :- a(y), e(x, y).\n",
        );
        let e = ram.relation_by_name("e").unwrap();
        assert_eq!(
            e.orders.len(),
            2,
            "searches {{0}} and {{1}} are incomparable"
        );
    }

    #[test]
    fn negation_becomes_existence_filter() {
        let ram = ram_of(
            ".decl a(x: number)\n.decl b(x: number)\n.decl r(x: number)\n\
             r(x) :- a(x), !b(x).",
        );
        let listing = program_to_string(&ram);
        assert!(listing.contains("NOT ((t0.0) ∈ b)"), "{listing}");
    }

    #[test]
    fn equality_bindings_substitute() {
        let ram = ram_of(
            ".decl a(x: number)\n.decl r(x: number, y: number)\n\
             r(x, y) :- a(x), y = x * 2 + 1.",
        );
        let listing = program_to_string(&ram);
        // y's definition is inlined into the projection.
        assert!(
            listing.contains("INSERT (t0.0, ((t0.0 * 2) + 1)) INTO r"),
            "{listing}"
        );
    }

    #[test]
    fn facts_encode_types() {
        let ram = ram_of(
            ".decl m(a: number, b: unsigned, c: float, d: symbol)\n\
             m(-1, 7, 1.5, \"hi\").",
        );
        let (_, tuple) = &ram.facts[0];
        assert_eq!(tuple[0], (-1i32) as u32);
        assert_eq!(tuple[1], 7);
        assert_eq!(tuple[2], 1.5f32.to_bits());
        assert_eq!(ram.symbols.resolve(tuple[3]), "hi");
    }

    #[test]
    fn aggregates_translate_via_helpers() {
        let ram = ram_of(
            ".decl e(x: number, y: number)\n.decl t(n: number)\n\
             e(1, 2). e(1, 3).\n\
             t(n) :- n = count : { e(1, _) }.",
        );
        assert!(ram.relation_by_name("__agg0").is_some());
        let listing = program_to_string(&ram);
        assert!(listing.contains("COUNT"), "{listing}");
    }

    #[test]
    fn eqrel_recursion_is_rejected() {
        let checked = parse_and_check(
            ".decl eq(x: number, y: number) eqrel\n.decl s(x: number, y: number)\n\
             eq(x, y) :- s(x, y).\n\
             eq(x, y) :- eq(x, z), s(z, y).\n",
        )
        .expect("checks");
        let err = translate(&checked).unwrap_err();
        assert!(err.msg.contains("eqrel"));
    }

    #[test]
    fn eqrel_second_column_probe_swaps() {
        let ram = ram_of(
            ".decl eq(x: number, y: number) eqrel\n.decl s(x: number)\n.decl r(x: number, y: number)\n\
             r(x, y) :- s(y), eq(x, y).",
        );
        let listing = program_to_string(&ram);
        assert!(listing.contains("(swapped)"), "{listing}");
    }

    #[test]
    fn counter_in_recursive_rule_is_rejected() {
        let checked = parse_and_check(
            ".decl s(x: number)\n.decl p(x: number, y: number)\n\
             p(x, $) :- s(x).\n\
             p(x, $) :- p(x, _), s(x).\n",
        )
        .expect("checks");
        let err = translate(&checked).unwrap_err();
        assert!(err.msg.contains("counter"));
    }

    #[test]
    fn mutual_recursion_produces_joint_loop() {
        let ram = ram_of(
            ".decl s(x: number)\n.decl a(x: number)\n.decl b(x: number)\n\
             s(1). s(2).\n\
             a(x) :- s(x).\n\
             b(x) :- a(x).\n\
             a(x) :- b(x), s(x).\n",
        );
        let listing = program_to_string(&ram);
        assert!(listing.contains("delta_a"));
        assert!(listing.contains("delta_b"));
        // Single loop merges both.
        assert_eq!(listing.matches("LOOP").count(), 2); // "LOOP" + "END LOOP"
    }

    #[test]
    fn delta_new_and_base_share_index_layout() {
        // The delta version is probed on column 1 inside the recursive
        // rule; base and new must still end up with identical layouts so
        // MERGE/SWAP are well-defined.
        let ram = ram_of(
            ".decl e(x: number, y: number)\n.decl p(x: number, y: number)\n\
             e(1, 2).\n\
             p(x, y) :- e(x, y).\n\
             p(x, z) :- e(x, y), p(y, z).\n",
        );
        let base = ram.relation_by_name("p").unwrap();
        let delta = ram.relation_by_name("delta_p").unwrap();
        let new = ram.relation_by_name("new_p").unwrap();
        let upd = ram.relation_by_name("upd_p").unwrap();
        assert_eq!(base.orders, delta.orders);
        assert_eq!(base.orders, new.orders);
        assert_eq!(base.orders, upd.orders);
    }

    #[test]
    fn strata_align_with_main_and_carry_update_statements() {
        let ram = ram_of(TC);
        // One rule-bearing stratum (p); e has no rules.
        assert_eq!(ram.strata.len(), 1);
        let s = &ram.strata[0];
        assert!(s.recursive);
        assert_eq!(s.defines, vec![ram.relation_by_name("p").unwrap().id]);
        assert_eq!(s.pos_reads, vec![ram.relation_by_name("e").unwrap().id]);
        assert!(s.neg_agg_reads.is_empty());
        assert!(matches!(ram.stratum_stmt(0), RamStmt::Seq(_)));
        // The update statement seeds from upd_e / upd_p and re-enters the
        // fixpoint loop.
        let update = s.update.as_ref().expect("recursive non-eqrel stratum");
        let mut saw_loop = false;
        let mut saw_upd_label = false;
        update.walk(&mut |st| {
            if matches!(st, RamStmt::Loop(_)) {
                saw_loop = true;
            }
            if let RamStmt::Query { label, .. } = st {
                if label.contains("[upd #") {
                    saw_upd_label = true;
                }
            }
        });
        assert!(saw_loop);
        assert!(saw_upd_label);
    }

    #[test]
    fn negation_reads_are_recorded_per_stratum() {
        let ram = ram_of(
            ".decl a(x: number)\n.decl b(x: number)\n.decl r(x: number)\n\
             a(1). b(2).\n\
             r(x) :- a(x), !b(x).",
        );
        let s = ram
            .strata
            .iter()
            .find(|s| s.defines == vec![ram.relation_by_name("r").unwrap().id])
            .expect("stratum for r");
        assert_eq!(s.pos_reads, vec![ram.relation_by_name("a").unwrap().id]);
        assert_eq!(s.neg_agg_reads, vec![ram.relation_by_name("b").unwrap().id]);
    }

    #[test]
    fn eqrel_strata_have_no_update_statement() {
        let ram = ram_of(
            ".decl s(x: number, y: number)\n.decl eq(x: number, y: number) eqrel\n\
             s(1, 2).\n\
             eq(x, y) :- s(x, y).",
        );
        assert!(ram.relation_by_name("upd_eq").is_none());
        assert!(ram.relation_by_name("upd_s").is_some());
        let s = ram
            .strata
            .iter()
            .find(|s| s.defines == vec![ram.relation_by_name("eq").unwrap().id])
            .expect("stratum for eq");
        assert!(s.update.is_none());
    }

    #[test]
    fn emptiness_guard_wraps_queries() {
        let ram = ram_of(TC);
        let listing = program_to_string(&ram);
        assert!(listing.contains("NOT (e = ∅)"), "{listing}");
    }
}
