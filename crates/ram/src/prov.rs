//! Provenance metadata carried alongside a translated program.
//!
//! Annotated evaluation stamps every derived tuple with `(height, rule)`:
//! the global iteration height at which it was first derived and the index
//! of the source rule that derived it. Reconstructing a proof tree then
//! needs the *rule bodies themselves* back in executable form — not the
//! semi-naive delta variants of the main statement, but each rule lowered
//! once over the full base relations. [`ProvRule`] holds exactly that: a
//! plain re-translation of the rule (`translate_rule` with no recursion
//! info), which a height-constrained top-down matcher can drive to find
//! the premises of a tuple.

use crate::program::RelId;
use crate::stmt::RamStmt;

/// Sentinel rule id for tuples that were not derived by any rule: ground
/// facts from the source text, external inputs, and tuples inserted over
/// the serving protocol. They are the leaves of every proof tree.
pub const RULE_INPUT: u32 = u32::MAX;

/// One source rule in provenance form.
#[derive(Debug, Clone)]
pub struct ProvRule {
    /// The head relation.
    pub head: RelId,
    /// The rule's source text (proof-tree rendering).
    pub label: String,
    /// The rule lowered non-recursively over the full base relations
    /// (always a [`RamStmt::Query`]); `None` if the plain lowering failed,
    /// which makes the rule opaque.
    pub stmt: Option<RamStmt>,
    /// Opaque rules cannot be re-matched against the database: they draw
    /// from the `$` auto-increment counter, so the values they produced
    /// cannot be re-derived. Their proof-tree nodes carry no premises.
    pub opaque: bool,
}

/// Provenance metadata for a whole program: one entry per desugared
/// source rule, indexed by the rule ids stamped onto `Project` operations.
#[derive(Debug, Clone, Default)]
pub struct ProvInfo {
    /// Rules in desugared order (aggregate helper rules included).
    pub rules: Vec<ProvRule>,
}
