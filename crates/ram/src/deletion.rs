//! Deletion-mode rewriting of incremental update statements.
//!
//! Retraction needs the *over-delete* step of DRed (delete-and-re-derive):
//! given the tuples removed from upstream relations, compute every tuple of
//! a stratum that has at least one derivation touching a removed tuple.
//! That is exactly the fixpoint the stratum's insertion-mode update
//! statement already computes — the same seed variants driven by the `upd_`
//! staging relations, the same semi-naive loop — with two twists:
//!
//! * the base relations must stay **unmutated** (the cone is collected, not
//!   applied; erasure happens afterwards, once the engine knows the full
//!   extent), so every `MERGE ... INTO R` targeting a stratum-defined
//!   base relation is dropped; and
//! * the head freshness guard flips: insertion skips consequences already
//!   in `R` (`∉ R`), while over-deletion visits consequences that *are* in
//!   `R` but have not been collected yet (`∈ R ∧ ∉ upd_R`). The `upd_R`
//!   accumulator strictly grows and is bounded by `|R|`, which is what
//!   makes the rewritten loop terminate.
//!
//! The rewrite runs on a clone of the already-optimized, already-indexed
//! update statement, so no re-optimization or index re-selection is
//! needed: the inserted membership conjunct reuses the guard's assigned
//! index, and the `∉ upd_R` probe is a *full-tuple* existence check, which
//! the interpreter services on any index (index 0 here) via a plain
//! membership test.

use crate::program::{RamProgram, RelId};
use crate::stmt::{RamCond, RamOp, RamStmt};

/// Builds the deletion-mode twin of stratum `i`'s incremental update
/// statement.
///
/// Run it with the deleted upstream tuples staged in their `upd_`
/// relations (and direct deletions of the stratum's own relations staged
/// in theirs); it leaves the over-delete cone of each defined relation
/// `R` accumulated in `upd_R` and every base relation untouched.
///
/// Returns `None` when the stratum has no update statement (eqrel heads)
/// or a defined relation has no `upd_` sibling — callers fall back to
/// full recomputation, exactly as they do for insertion.
pub fn deletion_stmt(program: &RamProgram, stratum: usize) -> Option<RamStmt> {
    let meta = &program.strata[stratum];
    let mut stmt = meta.update.clone()?;
    let acc: Vec<(RelId, RelId)> = meta
        .defines
        .iter()
        .map(|&r| program.upd_of(r).map(|u| (r, u)))
        .collect::<Option<_>>()?;
    let is_base = |id: RelId| acc.iter().any(|&(r, _)| r == id);
    let acc_of = |id: RelId| acc.iter().find(|&&(r, _)| r == id).map(|&(_, u)| u);

    strip_base_merges(&mut stmt, &is_base);
    stmt.walk_mut(&mut |s| {
        if let RamStmt::Query { op, .. } = s {
            op.walk_mut(&mut |o| {
                if let RamOp::Filter { cond, .. } = o {
                    rewrite_guards(cond, &acc_of);
                }
            });
        }
    });
    Some(stmt)
}

/// Drops every `MERGE ... INTO R` whose destination is a stratum-defined
/// base relation, recursively. Merges into `delta_`/`new_`/`upd_`
/// auxiliaries survive — they are the machinery that drives the frontier
/// and collects the cone.
fn strip_base_merges(stmt: &mut RamStmt, is_base: &dyn Fn(RelId) -> bool) {
    match stmt {
        RamStmt::Seq(children) => {
            children.retain(|c| !matches!(c, RamStmt::Merge { into, .. } if is_base(*into)));
            for c in children {
                strip_base_merges(c, is_base);
            }
        }
        RamStmt::Loop(body) => strip_base_merges(body, is_base),
        _ => {}
    }
}

/// Rewrites head freshness guards `∉ R` (for stratum-defined `R`) into
/// `∈ R ∧ ∉ upd_R`. Negations over other relations — user-written
/// negation is always on earlier strata — are left alone. Head guards
/// always constrain every column, so the `upd_R` probe is a full-tuple
/// check and its index choice is immaterial.
fn rewrite_guards(cond: &mut RamCond, acc_of: &dyn Fn(RelId) -> Option<RelId>) {
    match cond {
        RamCond::Conjunction(cs) => {
            for c in cs {
                rewrite_guards(c, acc_of);
            }
        }
        RamCond::Negation(inner) => {
            if let RamCond::ExistenceCheck { rel, pattern, .. } = inner.as_ref() {
                if pattern.iter().all(Option::is_some) {
                    if let Some(upd) = acc_of(*rel) {
                        let member = (**inner).clone();
                        let unseen = RamCond::Negation(Box::new(RamCond::ExistenceCheck {
                            rel: upd,
                            index: 0,
                            pattern: pattern.clone(),
                        }));
                        *cond = RamCond::Conjunction(vec![member, unseen]);
                        return;
                    }
                }
            }
            rewrite_guards(inner, acc_of);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::stmt_to_string;
    use crate::translate::translate;
    use stir_frontend::parse_and_check;

    fn ram(src: &str) -> RamProgram {
        translate(&parse_and_check(src).expect("checks")).expect("translates")
    }

    const TC: &str = "\
        .decl e(x: number, y: number)\n\
        .decl p(x: number, y: number)\n\
        .output p\n\
        e(1, 2). e(2, 3).\n\
        p(x, y) :- e(x, y).\n\
        p(x, z) :- p(x, y), e(y, z).\n";

    #[test]
    fn recursive_stratum_keeps_the_loop_but_never_merges_into_the_base() {
        let p = ram(TC);
        let del = deletion_stmt(&p, 0).expect("p has an update statement");
        let listing = stmt_to_string(&p, &del);
        assert!(listing.contains("LOOP"), "{listing}");
        assert!(listing.contains("EXIT"), "{listing}");
        assert!(!listing.contains("INTO p"), "base mutated: {listing}");
        assert!(listing.contains("MERGE new_p INTO upd_p"), "{listing}");
        assert!(listing.contains("MERGE upd_p INTO delta_p"), "{listing}");
        // The insertion statement it was cloned from still merges into p.
        let upd = p.strata[0].update.as_ref().unwrap();
        assert!(stmt_to_string(&p, upd).contains("INTO p"));
    }

    #[test]
    fn freshness_guards_flip_to_membership_plus_unseen() {
        let p = ram(TC);
        let del = deletion_stmt(&p, 0).unwrap();
        let listing = stmt_to_string(&p, &del);
        // ∈ p conjoined with ∉ upd_p, replacing the plain ∉ p.
        assert!(listing.contains("∈ p"), "{listing}");
        assert!(listing.contains("(NOT ((t0.0,t0.1) ∈ upd_p))"), "{listing}");
        let mut flipped = 0usize;
        del.walk(&mut |s| {
            if let RamStmt::Query { op, .. } = s {
                op.walk(&mut |o| {
                    if let RamOp::Filter { cond, .. } = o {
                        cond_walk(cond, &mut |c| {
                            if let RamCond::Conjunction(cs) = c {
                                let member = cs.iter().any(|c| {
                                    matches!(c,
                                    RamCond::ExistenceCheck { rel, .. }
                                        if p.name_of(*rel) == "p")
                                });
                                let unseen = cs.iter().any(|c| {
                                    matches!(c,
                                    RamCond::Negation(n) if matches!(n.as_ref(),
                                        RamCond::ExistenceCheck { rel, index: 0, .. }
                                            if p.name_of(*rel) == "upd_p"))
                                });
                                if member && unseen {
                                    flipped += 1;
                                }
                            }
                        });
                    }
                });
            }
        });
        // Two seed variants (one per upd_e/upd_p-occurrence rule form)
        // plus the delta-loop query all carry the flipped guard.
        assert!(flipped >= 3, "only {flipped} flipped guards:\n{listing}");
    }

    #[test]
    fn non_recursive_stratum_drops_the_final_merge_and_flips_its_guard() {
        let p = ram(".decl e(x: number)\n.decl q(x: number)\n.output q\n\
             e(1).\n\
             q(x) :- e(x).\n");
        let s = p
            .strata
            .iter()
            .position(|s| s.defines == vec![p.relation_by_name("q").unwrap().id])
            .unwrap();
        let del = deletion_stmt(&p, s).unwrap();
        let listing = stmt_to_string(&p, &del);
        assert!(!listing.contains("INTO q"), "{listing}");
        assert!(listing.contains("∈ q"), "{listing}");
        assert!(listing.contains("∈ upd_q"), "{listing}");
    }

    #[test]
    fn upstream_negation_survives_untouched() {
        let p = ram(
            ".decl a(x: number)\n.decl b(x: number)\n.decl r(x: number)\n\
             a(1). b(2).\n\
             r(x) :- a(x), !b(x).\n",
        );
        let s = p
            .strata
            .iter()
            .position(|s| s.defines == vec![p.relation_by_name("r").unwrap().id])
            .unwrap();
        let del = deletion_stmt(&p, s).unwrap();
        let listing = stmt_to_string(&p, &del);
        // `!b(x)` stays a plain negation (b is upstream, not a head).
        assert!(listing.contains("NOT ((t0.0) ∈ b)"), "{listing}");
        // The head guard on r still flips.
        assert!(listing.contains("∈ r"), "{listing}");
        assert!(listing.contains("∈ upd_r"), "{listing}");
    }

    #[test]
    fn eqrel_heads_have_no_deletion_statement() {
        let p = ram(".decl s(x: number, y: number)\n\
             .decl eq(x: number, y: number) eqrel\n\
             s(1, 2).\n\
             eq(x, y) :- s(x, y).\n");
        let s = p
            .strata
            .iter()
            .position(|s| s.defines == vec![p.relation_by_name("eq").unwrap().id])
            .unwrap();
        assert!(deletion_stmt(&p, s).is_none());
    }

    fn cond_walk(c: &RamCond, f: &mut dyn FnMut(&RamCond)) {
        f(c);
        match c {
            RamCond::Conjunction(cs) => cs.iter().for_each(|c| cond_walk(c, f)),
            RamCond::Negation(inner) => cond_walk(inner, f),
            _ => {}
        }
    }
}
