//! RAM value expressions.
//!
//! Expressions evaluate to a single [`RamDomain`] (`u32` bit pattern).
//! Typing was resolved during translation: every operation that depends on
//! the interpretation of the bits (division, comparison, float arithmetic,
//! ...) is a distinct [`IntrinsicOp`]/[`CmpKind`] variant, so the runtime
//! never consults types.

/// The runtime value type (mirrors `stir_der::RamDomain`; duplicated so the
/// RAM crate stays independent of the data-structure crate).
pub type RamDomain = u32;

/// A value expression in a RAM operation tree.
#[derive(Debug, Clone, PartialEq)]
pub enum RamExpr {
    /// A literal bit pattern (numbers, float bits, or symbol ids).
    Constant(RamDomain),
    /// Element `column` of the tuple bound at loop `level`.
    TupleElement {
        /// Which loop binding (0-based, outermost first).
        level: usize,
        /// Which column of that tuple.
        column: usize,
    },
    /// A built-in operation over evaluated arguments.
    Intrinsic {
        /// The operation.
        op: IntrinsicOp,
        /// Argument expressions.
        args: Vec<RamExpr>,
    },
    /// The global auto-increment counter (`$`).
    AutoIncrement,
}

impl RamExpr {
    /// Convenience constructor for an intrinsic.
    pub fn intrinsic(op: IntrinsicOp, args: Vec<RamExpr>) -> RamExpr {
        RamExpr::Intrinsic { op, args }
    }

    /// Whether the expression draws from the global auto-increment
    /// counter (`$`).
    pub fn uses_autoincrement(&self) -> bool {
        match self {
            RamExpr::AutoIncrement => true,
            RamExpr::Intrinsic { args, .. } => args.iter().any(RamExpr::uses_autoincrement),
            RamExpr::Constant(_) | RamExpr::TupleElement { .. } => false,
        }
    }

    /// Counts the nodes of the expression tree — each node is one
    /// interpreter dispatch, the quantity the paper's §5.2 case study
    /// measures.
    pub fn dispatch_count(&self) -> usize {
        match self {
            RamExpr::Constant(_) | RamExpr::TupleElement { .. } | RamExpr::AutoIncrement => 1,
            RamExpr::Intrinsic { args, .. } => {
                1 + args.iter().map(RamExpr::dispatch_count).sum::<usize>()
            }
        }
    }
}

/// Built-in value operations, pre-typed at translation time.
///
/// Bit-identical operations (`+`, `-`, `*`, bitwise ops on two's
/// complement) have a single variant; sign/float-sensitive ones are split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntrinsicOp {
    /// Wrapping addition (numbers and unsigned share bits).
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division.
    DivS,
    /// Unsigned division.
    DivU,
    /// Signed remainder.
    ModS,
    /// Unsigned remainder.
    ModU,
    /// Signed exponentiation (wrapping).
    PowS,
    /// Unsigned exponentiation (wrapping).
    PowU,
    /// Wrapping negation.
    Neg,
    /// Float addition.
    AddF,
    /// Float subtraction.
    SubF,
    /// Float multiplication.
    MulF,
    /// Float division.
    DivF,
    /// Float exponentiation.
    PowF,
    /// Float negation.
    NegF,
    /// Bitwise and.
    BAnd,
    /// Bitwise or.
    BOr,
    /// Bitwise xor.
    BXor,
    /// Bitwise complement.
    BNot,
    /// Shift left.
    BShl,
    /// Logical (unsigned) shift right.
    BShrU,
    /// Arithmetic (signed) shift right.
    BShrS,
    /// Logical and (both nonzero).
    LAnd,
    /// Logical or.
    LOr,
    /// Logical not.
    LNot,
    /// Signed minimum.
    MinS,
    /// Unsigned minimum.
    MinU,
    /// Float minimum.
    MinF,
    /// Signed maximum.
    MaxS,
    /// Unsigned maximum.
    MaxU,
    /// Float maximum.
    MaxF,
    /// String concatenation (symbol ids in, symbol id out).
    Cat,
    /// Identity on the symbol id (`ord`).
    Ord,
    /// String length.
    Strlen,
    /// Substring `substr(s, from, len)`.
    Substr,
    /// Parse a symbol as a number.
    ToNumber,
    /// Render a number as a symbol.
    ToString,
}

impl IntrinsicOp {
    /// Whether evaluating this op requires the symbol table.
    pub fn needs_symbols(self) -> bool {
        matches!(
            self,
            IntrinsicOp::Cat
                | IntrinsicOp::Strlen
                | IntrinsicOp::Substr
                | IntrinsicOp::ToNumber
                | IntrinsicOp::ToString
        )
    }
}

impl std::fmt::Display for IntrinsicOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IntrinsicOp::Add => "+",
            IntrinsicOp::Sub => "-",
            IntrinsicOp::Mul => "*",
            IntrinsicOp::DivS => "/s",
            IntrinsicOp::DivU => "/u",
            IntrinsicOp::ModS => "%s",
            IntrinsicOp::ModU => "%u",
            IntrinsicOp::PowS => "^s",
            IntrinsicOp::PowU => "^u",
            IntrinsicOp::Neg => "neg",
            IntrinsicOp::AddF => "+f",
            IntrinsicOp::SubF => "-f",
            IntrinsicOp::MulF => "*f",
            IntrinsicOp::DivF => "/f",
            IntrinsicOp::PowF => "^f",
            IntrinsicOp::NegF => "negf",
            IntrinsicOp::BAnd => "band",
            IntrinsicOp::BOr => "bor",
            IntrinsicOp::BXor => "bxor",
            IntrinsicOp::BNot => "bnot",
            IntrinsicOp::BShl => "bshl",
            IntrinsicOp::BShrU => "bshru",
            IntrinsicOp::BShrS => "bshrs",
            IntrinsicOp::LAnd => "land",
            IntrinsicOp::LOr => "lor",
            IntrinsicOp::LNot => "lnot",
            IntrinsicOp::MinS => "min_s",
            IntrinsicOp::MinU => "min_u",
            IntrinsicOp::MinF => "min_f",
            IntrinsicOp::MaxS => "max_s",
            IntrinsicOp::MaxU => "max_u",
            IntrinsicOp::MaxF => "max_f",
            IntrinsicOp::Cat => "cat",
            IntrinsicOp::Ord => "ord",
            IntrinsicOp::Strlen => "strlen",
            IntrinsicOp::Substr => "substr",
            IntrinsicOp::ToNumber => "to_number",
            IntrinsicOp::ToString => "to_string",
        };
        write!(f, "{s}")
    }
}

/// Comparison kinds, pre-typed at translation time.
///
/// `Eq`/`Ne` compare raw bits (for floats this means bit equality, the
/// documented trade-off of type de-specialization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// Bit equality.
    Eq,
    /// Bit inequality.
    Ne,
    /// Signed `<`.
    LtS,
    /// Signed `<=`.
    LeS,
    /// Signed `>`.
    GtS,
    /// Signed `>=`.
    GeS,
    /// Unsigned `<`.
    LtU,
    /// Unsigned `<=`.
    LeU,
    /// Unsigned `>`.
    GtU,
    /// Unsigned `>=`.
    GeU,
    /// Float `<`.
    LtF,
    /// Float `<=`.
    LeF,
    /// Float `>`.
    GtF,
    /// Float `>=`.
    GeF,
}

impl std::fmt::Display for CmpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpKind::Eq => "=",
            CmpKind::Ne => "!=",
            CmpKind::LtS => "<s",
            CmpKind::LeS => "<=s",
            CmpKind::GtS => ">s",
            CmpKind::GeS => ">=s",
            CmpKind::LtU => "<u",
            CmpKind::LeU => "<=u",
            CmpKind::GtU => ">u",
            CmpKind::GeU => ">=u",
            CmpKind::LtF => "<f",
            CmpKind::LeF => "<=f",
            CmpKind::GtF => ">f",
            CmpKind::GeF => ">=f",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_count_counts_nodes() {
        // (t0.0 + 1) * 2  → 5 nodes
        let e = RamExpr::intrinsic(
            IntrinsicOp::Mul,
            vec![
                RamExpr::intrinsic(
                    IntrinsicOp::Add,
                    vec![
                        RamExpr::TupleElement {
                            level: 0,
                            column: 0,
                        },
                        RamExpr::Constant(1),
                    ],
                ),
                RamExpr::Constant(2),
            ],
        );
        assert_eq!(e.dispatch_count(), 5);
    }

    #[test]
    fn symbol_ops_are_flagged() {
        assert!(IntrinsicOp::Cat.needs_symbols());
        assert!(!IntrinsicOp::Add.needs_symbols());
    }
}
