//! RAM statements, operations, and conditions.

use crate::expr::{CmpKind, RamExpr};
use crate::program::RelId;

/// A condition evaluated against the current runtime context.
#[derive(Debug, Clone, PartialEq)]
pub enum RamCond {
    /// Always true.
    True,
    /// All conjuncts hold (kept flattened).
    Conjunction(Vec<RamCond>),
    /// The inner condition does not hold.
    Negation(Box<RamCond>),
    /// A binary comparison of two value expressions.
    Comparison {
        /// Pre-typed comparison operator.
        kind: CmpKind,
        /// Left operand.
        lhs: RamExpr,
        /// Right operand.
        rhs: RamExpr,
    },
    /// `rel = ∅`.
    EmptinessCheck {
        /// The relation to test.
        rel: RelId,
    },
    /// Some tuple matching `pattern` exists in `rel`.
    ///
    /// `pattern[c]` constrains source column `c`; `None` columns are
    /// unconstrained. The bound columns are guaranteed (by index
    /// selection) to be a prefix of index `index`'s order.
    ExistenceCheck {
        /// The relation to probe.
        rel: RelId,
        /// Which of the relation's indexes services the probe.
        index: usize,
        /// Per-source-column constraints.
        pattern: Vec<Option<RamExpr>>,
    },
}

impl RamCond {
    /// Conjoins two conditions, flattening and dropping `True`s.
    pub fn and(self, other: RamCond) -> RamCond {
        match (self, other) {
            (RamCond::True, c) | (c, RamCond::True) => c,
            (RamCond::Conjunction(mut a), RamCond::Conjunction(b)) => {
                a.extend(b);
                RamCond::Conjunction(a)
            }
            (RamCond::Conjunction(mut a), c) => {
                a.push(c);
                RamCond::Conjunction(a)
            }
            (c, RamCond::Conjunction(mut b)) => {
                b.insert(0, c);
                RamCond::Conjunction(b)
            }
            (a, b) => RamCond::Conjunction(vec![a, b]),
        }
    }

    /// Total dispatch count of the condition tree (cf.
    /// [`RamExpr::dispatch_count`]).
    pub fn dispatch_count(&self) -> usize {
        match self {
            RamCond::True | RamCond::EmptinessCheck { .. } => 1,
            RamCond::Conjunction(cs) => 1 + cs.iter().map(RamCond::dispatch_count).sum::<usize>(),
            RamCond::Negation(c) => 1 + c.dispatch_count(),
            RamCond::Comparison { lhs, rhs, .. } => 1 + lhs.dispatch_count() + rhs.dispatch_count(),
            RamCond::ExistenceCheck { pattern, .. } => {
                1 + pattern
                    .iter()
                    .flatten()
                    .map(RamExpr::dispatch_count)
                    .sum::<usize>()
            }
        }
    }

    /// Whether any expression in the condition draws from the
    /// auto-increment counter.
    pub fn uses_autoincrement(&self) -> bool {
        match self {
            RamCond::True | RamCond::EmptinessCheck { .. } => false,
            RamCond::Conjunction(cs) => cs.iter().any(RamCond::uses_autoincrement),
            RamCond::Negation(c) => c.uses_autoincrement(),
            RamCond::Comparison { lhs, rhs, .. } => {
                lhs.uses_autoincrement() || rhs.uses_autoincrement()
            }
            RamCond::ExistenceCheck { pattern, .. } => {
                pattern.iter().flatten().any(RamExpr::uses_autoincrement)
            }
        }
    }
}

/// Aggregate functions at the RAM level (pre-typed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of matching tuples.
    Count,
    /// Signed sum.
    SumS,
    /// Unsigned sum.
    SumU,
    /// Float sum.
    SumF,
    /// Signed minimum.
    MinS,
    /// Unsigned minimum.
    MinU,
    /// Float minimum.
    MinF,
    /// Signed maximum.
    MaxS,
    /// Unsigned maximum.
    MaxU,
    /// Float maximum.
    MaxF,
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::SumS => "SUM",
            AggFunc::SumU => "SUM_U",
            AggFunc::SumF => "SUM_F",
            AggFunc::MinS => "MIN",
            AggFunc::MinU => "MIN_U",
            AggFunc::MinF => "MIN_F",
            AggFunc::MaxS => "MAX",
            AggFunc::MaxU => "MAX_U",
            AggFunc::MaxF => "MAX_F",
        };
        write!(f, "{s}")
    }
}

/// One node of a query's nested operation tree.
///
/// Each `Scan`/`IndexScan`/`Aggregate` binds a tuple at its `level`; inner
/// operations refer to bound tuples through
/// [`RamExpr::TupleElement`].
#[derive(Debug, Clone, PartialEq)]
pub enum RamOp {
    /// `FOR t IN rel`.
    Scan {
        /// Scanned relation.
        rel: RelId,
        /// Binding level of the scanned tuple.
        level: usize,
        /// Whether a parallel interpreter may chunk this scan into
        /// morsels drained by a worker pool. Translation marks every
        /// scan in a rule body (unless the rule draws auto-increment
        /// values); at runtime the outermost scan that clears the
        /// size gate fans out and the rest run inline in its workers.
        parallel: bool,
        /// Inner operation.
        body: Box<RamOp>,
    },
    /// `FOR t IN rel ON INDEX pattern`.
    IndexScan {
        /// Scanned relation.
        rel: RelId,
        /// Which index services the scan.
        index: usize,
        /// Binding level of the scanned tuple.
        level: usize,
        /// Per-source-column constraints (see
        /// [`RamCond::ExistenceCheck`]).
        pattern: Vec<Option<RamExpr>>,
        /// For equivalence relations only: the pattern was flipped to
        /// exploit symmetry, so yielded tuples must be presented reversed.
        eqrel_swap: bool,
        /// Whether a parallel interpreter may partition this scan (see
        /// [`RamOp::Scan::parallel`]).
        parallel: bool,
        /// Inner operation.
        body: Box<RamOp>,
    },
    /// `IF cond`.
    Filter {
        /// The guard.
        cond: RamCond,
        /// Inner operation.
        body: Box<RamOp>,
    },
    /// `INSERT (v1, ..., vn) INTO rel` — the leaf of every query.
    Project {
        /// Destination relation.
        rel: RelId,
        /// Value expressions, one per column.
        values: Vec<RamExpr>,
        /// Index of the source rule this projection implements (into the
        /// desugared rule list), for provenance annotation writes. The
        /// rule id is a per-query constant, so annotated inserts absorb it
        /// the same way super-instructions absorb constant columns; plain
        /// evaluation ignores it entirely. `None` for synthetic
        /// projections that implement no source rule.
        rule: Option<u32>,
    },
    /// Scan `rel` on `pattern`, folding `value` over the matches; then
    /// bind the result as a 1-column tuple at `level` and run `body` once.
    ///
    /// During the internal scan, the *scanned* tuple is bound at `level`
    /// (so `value` refers to it); afterwards the same slot holds the
    /// single aggregate result — mirroring Soufflé's context reuse.
    Aggregate {
        /// Binding level of the scanned tuple / 1-column result.
        level: usize,
        /// The aggregate function.
        func: AggFunc,
        /// Aggregated relation (a desugared helper or an EDB relation).
        rel: RelId,
        /// Which index services the scan.
        index: usize,
        /// Per-source-column constraints.
        pattern: Vec<Option<RamExpr>>,
        /// The folded expression (`None` for `COUNT`).
        value: Option<RamExpr>,
        /// Inner operation, executed exactly once.
        body: Box<RamOp>,
    },
}

impl RamOp {
    /// Visits every operation node (pre-order).
    pub fn walk(&self, f: &mut dyn FnMut(&RamOp)) {
        f(self);
        match self {
            RamOp::Scan { body, .. }
            | RamOp::IndexScan { body, .. }
            | RamOp::Filter { body, .. }
            | RamOp::Aggregate { body, .. } => body.walk(f),
            RamOp::Project { .. } => {}
        }
    }

    /// Mutably visits every operation node (pre-order).
    pub fn walk_mut(&mut self, f: &mut dyn FnMut(&mut RamOp)) {
        f(self);
        match self {
            RamOp::Scan { body, .. }
            | RamOp::IndexScan { body, .. }
            | RamOp::Filter { body, .. }
            | RamOp::Aggregate { body, .. } => body.walk_mut(f),
            RamOp::Project { .. } => {}
        }
    }

    /// Whether any expression under this operation draws from the
    /// auto-increment counter. Such rules must stay sequential: the
    /// values a worker draws would depend on partition interleaving.
    pub fn uses_autoincrement(&self) -> bool {
        let autoinc_in =
            |p: &[Option<RamExpr>]| p.iter().flatten().any(RamExpr::uses_autoincrement);
        let mut found = false;
        self.walk(&mut |op| {
            found |= match op {
                RamOp::Scan { .. } => false,
                RamOp::IndexScan { pattern, .. } => autoinc_in(pattern),
                RamOp::Filter { cond, .. } => cond.uses_autoincrement(),
                RamOp::Project { values, .. } => values.iter().any(RamExpr::uses_autoincrement),
                RamOp::Aggregate { pattern, value, .. } => {
                    autoinc_in(pattern) || value.as_ref().is_some_and(RamExpr::uses_autoincrement)
                }
            };
        });
        found
    }
}

/// A RAM statement.
#[derive(Debug, Clone, PartialEq)]
pub enum RamStmt {
    /// Run statements in order.
    Seq(Vec<RamStmt>),
    /// Repeat the body until an inner [`RamStmt::Exit`] fires.
    Loop(Box<RamStmt>),
    /// Break the innermost loop when the condition holds.
    Exit(RamCond),
    /// Evaluate one rule (a nested operation tree).
    Query {
        /// Human-readable rule label (for the profiler and listings).
        label: String,
        /// Number of tuple-binding levels in `op`.
        levels: usize,
        /// Arity of the tuple bound at each level.
        level_arity: Vec<usize>,
        /// The operation tree.
        op: RamOp,
    },
    /// Remove all tuples of a relation.
    Clear(RelId),
    /// Insert all tuples of `from` into `into`.
    Merge {
        /// Destination.
        into: RelId,
        /// Source (unchanged).
        from: RelId,
    },
    /// Exchange the contents of two relations.
    Swap(RelId, RelId),
}

impl RamStmt {
    /// Visits every statement (pre-order).
    pub fn walk(&self, f: &mut dyn FnMut(&RamStmt)) {
        f(self);
        match self {
            RamStmt::Seq(stmts) => {
                for s in stmts {
                    s.walk(f);
                }
            }
            RamStmt::Loop(body) => body.walk(f),
            _ => {}
        }
    }

    /// Mutably visits every statement (pre-order).
    pub fn walk_mut(&mut self, f: &mut dyn FnMut(&mut RamStmt)) {
        f(self);
        match self {
            RamStmt::Seq(stmts) => {
                for s in stmts {
                    s.walk_mut(f);
                }
            }
            RamStmt::Loop(body) => body.walk_mut(f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_flattens() {
        let c = RamCond::True
            .and(RamCond::EmptinessCheck { rel: RelId(0) })
            .and(RamCond::True)
            .and(RamCond::EmptinessCheck { rel: RelId(1) });
        match c {
            RamCond::Conjunction(cs) => assert_eq!(cs.len(), 2),
            other => panic!("expected conjunction, got {other:?}"),
        }
        assert!(matches!(RamCond::True.and(RamCond::True), RamCond::True));
    }

    #[test]
    fn walk_visits_all_ops() {
        let op = RamOp::Scan {
            rel: RelId(0),
            level: 0,
            parallel: false,
            body: Box::new(RamOp::Filter {
                cond: RamCond::True,
                body: Box::new(RamOp::Project {
                    rel: RelId(1),
                    values: vec![],
                    rule: None,
                }),
            }),
        };
        let mut n = 0;
        op.walk(&mut |_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn condition_dispatch_counts() {
        let c = RamCond::Comparison {
            kind: CmpKind::LtS,
            lhs: RamExpr::TupleElement {
                level: 0,
                column: 0,
            },
            rhs: RamExpr::Constant(3),
        };
        assert_eq!(c.dispatch_count(), 3);
    }
}
