//! RAM-to-RAM optimization passes.
//!
//! Soufflé performs "efficient pre-runtime optimizations" on the RAM
//! representation (paper §2); the two that matter for a faithful
//! reproduction are implemented here:
//!
//! * **filter merging** — consecutive `IF` operations fuse into one
//!   filter with a conjunction, the shape visible in the paper's Figs. 3
//!   and 17 (`IF (c1 AND c2 AND ...)`). One filter dispatch guards the
//!   whole chain; the conjuncts still dispatch individually, which is
//!   exactly what the §5.2 hand-crafted super-instructions then remove.
//! * **constant folding** — pure numeric intrinsics over constant
//!   operands are evaluated at translation time (the synthesizer gets
//!   this for free from `rustc`; the interpreter must do it itself).

use crate::expr::{RamDomain, RamExpr};
use crate::program::RamProgram;
use crate::stmt::{RamCond, RamOp, RamStmt};
use crate::IntrinsicOp;

/// Runs all passes in place, over the main statement and every stratum's
/// incremental update statement.
pub fn optimize(program: &mut RamProgram) {
    let mut pass = |stmt: &mut RamStmt| {
        if let RamStmt::Query { op, .. } = stmt {
            merge_filters(op);
            fold_op(op);
        }
        if let RamStmt::Exit(cond) = stmt {
            fold_cond(cond);
        }
    };
    program.main.walk_mut(&mut pass);
    for stratum in &mut program.strata {
        if let Some(update) = &mut stratum.update {
            update.walk_mut(&mut pass);
        }
    }
}

/// Fuses `Filter(c1, Filter(c2, body))` into `Filter(c1 ∧ c2, body)`,
/// recursively.
pub fn merge_filters(op: &mut RamOp) {
    // Bottom-up: merge inside children first.
    match op {
        RamOp::Scan { body, .. }
        | RamOp::IndexScan { body, .. }
        | RamOp::Aggregate { body, .. } => merge_filters(body),
        RamOp::Filter { body, .. } => merge_filters(body),
        RamOp::Project { .. } => {}
    }
    if let RamOp::Filter { cond, body } = op {
        if let RamOp::Filter {
            cond: inner_cond,
            body: inner_body,
        } = body.as_mut()
        {
            let merged = std::mem::replace(cond, RamCond::True)
                .and(std::mem::replace(inner_cond, RamCond::True));
            let new_body = std::mem::replace(
                inner_body,
                Box::new(RamOp::Project {
                    rel: crate::program::RelId(0),
                    values: vec![],
                    rule: None,
                }),
            );
            *cond = merged;
            *body = new_body;
            // The merge may expose another mergeable pair.
            merge_filters(op);
        }
    }
}

fn fold_op(op: &mut RamOp) {
    match op {
        RamOp::Scan { body, .. } => fold_op(body),
        RamOp::IndexScan { pattern, body, .. } => {
            for p in pattern.iter_mut().flatten() {
                fold_expr(p);
            }
            fold_op(body);
        }
        RamOp::Filter { cond, body } => {
            fold_cond(cond);
            fold_op(body);
        }
        RamOp::Project { values, .. } => {
            for v in values {
                fold_expr(v);
            }
        }
        RamOp::Aggregate {
            pattern,
            value,
            body,
            ..
        } => {
            for p in pattern.iter_mut().flatten() {
                fold_expr(p);
            }
            if let Some(v) = value {
                fold_expr(v);
            }
            fold_op(body);
        }
    }
}

fn fold_cond(cond: &mut RamCond) {
    match cond {
        RamCond::Conjunction(cs) => cs.iter_mut().for_each(fold_cond),
        RamCond::Negation(c) => fold_cond(c),
        RamCond::Comparison { lhs, rhs, .. } => {
            fold_expr(lhs);
            fold_expr(rhs);
        }
        RamCond::ExistenceCheck { pattern, .. } => {
            for p in pattern.iter_mut().flatten() {
                fold_expr(p);
            }
        }
        RamCond::True | RamCond::EmptinessCheck { .. } => {}
    }
}

/// Folds pure numeric intrinsics over constant operands.
pub fn fold_expr(e: &mut RamExpr) {
    if let RamExpr::Intrinsic { args, op } = e {
        for a in args.iter_mut() {
            fold_expr(a);
        }
        let consts: Option<Vec<RamDomain>> = args
            .iter()
            .map(|a| match a {
                RamExpr::Constant(k) => Some(*k),
                _ => None,
            })
            .collect();
        if let Some(vals) = consts {
            if let Some(folded) = eval_pure(*op, &vals) {
                *e = RamExpr::Constant(folded);
            }
        }
    }
}

/// Compile-time evaluation of side-effect-free, always-total intrinsics.
/// Division/remainder by a constant zero is *not* folded: it must raise
/// at runtime, matching the interpreter's semantics.
fn eval_pure(op: IntrinsicOp, a: &[RamDomain]) -> Option<RamDomain> {
    use IntrinsicOp::*;
    let s = |i: usize| a[i] as i32;
    let f = |i: usize| f32::from_bits(a[i]);
    Some(match op {
        Add => a[0].wrapping_add(a[1]),
        Sub => a[0].wrapping_sub(a[1]),
        Mul => a[0].wrapping_mul(a[1]),
        DivS if s(1) != 0 => s(0).wrapping_div(s(1)) as u32,
        DivU if a[1] != 0 => a[0] / a[1],
        ModS if s(1) != 0 => s(0).wrapping_rem(s(1)) as u32,
        ModU if a[1] != 0 => a[0] % a[1],
        PowS => s(0).wrapping_pow(a[1]) as u32,
        PowU => a[0].wrapping_pow(a[1]),
        Neg => s(0).wrapping_neg() as u32,
        AddF => (f(0) + f(1)).to_bits(),
        SubF => (f(0) - f(1)).to_bits(),
        MulF => (f(0) * f(1)).to_bits(),
        DivF => (f(0) / f(1)).to_bits(),
        PowF => f(0).powf(f(1)).to_bits(),
        NegF => (-f(0)).to_bits(),
        BAnd => a[0] & a[1],
        BOr => a[0] | a[1],
        BXor => a[0] ^ a[1],
        BNot => !a[0],
        BShl => a[0].wrapping_shl(a[1]),
        BShrU => a[0].wrapping_shr(a[1]),
        BShrS => s(0).wrapping_shr(a[1]) as u32,
        LAnd => u32::from(a[0] != 0 && a[1] != 0),
        LOr => u32::from(a[0] != 0 || a[1] != 0),
        LNot => u32::from(a[0] == 0),
        MinS => s(0).min(s(1)) as u32,
        MinU => a[0].min(a[1]),
        MinF => f(0).min(f(1)).to_bits(),
        MaxS => s(0).max(s(1)) as u32,
        MaxU => a[0].max(a[1]),
        MaxF => f(0).max(f(1)).to_bits(),
        Ord => a[0],
        // Symbol-table-dependent or fallible ops stay dynamic.
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use stir_frontend::parse_and_check;

    fn ram(src: &str) -> RamProgram {
        translate(&parse_and_check(src).expect("checks")).expect("translates")
    }

    #[test]
    fn consecutive_filters_merge_into_conjunctions() {
        let ram = ram(".decl e(a: number, b: number)\n.decl r(a: number)\n\
             e(1, 2).\n\
             r(a) :- e(a, b), a < b, a != 0, b != 9.\n");
        let listing = crate::pretty::program_to_string(&ram);
        // One IF with a conjunction instead of three nested IFs.
        assert!(listing.contains("AND"), "{listing}");
        let if_count = listing.matches("IF (").count();
        // The emptiness guard + the merged condition filter.
        assert_eq!(if_count, 2, "{listing}");
    }

    #[test]
    fn constants_fold_in_projections() {
        let ram = ram(".decl e(a: number)\n.decl r(a: number)\n\
             e(1).\n\
             r(2 * 3 + 4) :- e(_).\n");
        let listing = crate::pretty::program_to_string(&ram);
        assert!(listing.contains("INSERT (10) INTO r"), "{listing}");
    }

    #[test]
    fn division_by_constant_zero_is_not_folded() {
        let mut e = RamExpr::intrinsic(
            IntrinsicOp::DivS,
            vec![RamExpr::Constant(1), RamExpr::Constant(0)],
        );
        fold_expr(&mut e);
        assert!(matches!(e, RamExpr::Intrinsic { .. }));
    }

    #[test]
    fn folding_is_recursive() {
        // (1 + 2) * (3 + t0.0): inner constant folds, outer stays.
        let mut e = RamExpr::intrinsic(
            IntrinsicOp::Mul,
            vec![
                RamExpr::intrinsic(
                    IntrinsicOp::Add,
                    vec![RamExpr::Constant(1), RamExpr::Constant(2)],
                ),
                RamExpr::intrinsic(
                    IntrinsicOp::Add,
                    vec![
                        RamExpr::Constant(3),
                        RamExpr::TupleElement {
                            level: 0,
                            column: 0,
                        },
                    ],
                ),
            ],
        );
        fold_expr(&mut e);
        let RamExpr::Intrinsic { op, args } = &e else {
            panic!("outer op remains");
        };
        assert_eq!(*op, IntrinsicOp::Mul);
        assert_eq!(args[0], RamExpr::Constant(3));
        assert!(matches!(&args[1], RamExpr::Intrinsic { .. }));
    }

    #[test]
    fn signed_folding_uses_wrapping_semantics() {
        let mut e = RamExpr::intrinsic(
            IntrinsicOp::Sub,
            vec![RamExpr::Constant(0), RamExpr::Constant(5)],
        );
        fold_expr(&mut e);
        assert_eq!(e, RamExpr::Constant((-5i32) as u32));
    }
}
