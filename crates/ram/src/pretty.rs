//! Human-readable RAM listings in the style of the paper's Figs. 3 and 17.

use crate::expr::RamExpr;
use crate::program::{RamProgram, RelId};
use crate::stmt::{RamCond, RamOp, RamStmt};
use std::fmt::Write as _;

/// Renders a whole program.
pub fn program_to_string(p: &RamProgram) -> String {
    let mut out = String::new();
    for r in &p.relations {
        let orders: Vec<String> = r
            .orders
            .iter()
            .map(|o| {
                let cols: Vec<String> = o.iter().map(usize::to_string).collect();
                format!("[{}]", cols.join(","))
            })
            .collect();
        let _ = writeln!(
            out,
            "DECL {} arity={} repr={:?} indexes={}",
            r.name,
            r.arity,
            r.repr,
            orders.join(" ")
        );
    }
    let _ = writeln!(out, "BEGIN MAIN");
    let mut pr = Printer { p, out };
    pr.stmt(&p.main, 1);
    let mut out = pr.out;
    let _ = writeln!(out, "END MAIN");
    out
}

impl std::fmt::Display for RamProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&program_to_string(self))
    }
}

/// A short one-line summary of a statement — no recursion into bodies.
/// Used by the telemetry layer as the frame name of statement spans, so
/// summaries must be stable and free of newlines.
pub fn stmt_summary(p: &RamProgram, stmt: &RamStmt) -> String {
    let name = |rel: &RelId| p.relations[rel.0].name.as_str();
    match stmt {
        RamStmt::Seq(_) => "seq".to_owned(),
        RamStmt::Loop(_) => "loop".to_owned(),
        RamStmt::Exit(_) => "exit".to_owned(),
        RamStmt::Query { label, .. } => format!("query:{label}"),
        RamStmt::Clear(rel) => format!("clear:{}", name(rel)),
        RamStmt::Merge { into, from } => format!("merge:{}->{}", name(from), name(into)),
        RamStmt::Swap(a, b) => format!("swap:{},{}", name(a), name(b)),
    }
}

/// Renders one statement subtree (used in tests and the case study bench).
pub fn stmt_to_string(p: &RamProgram, stmt: &RamStmt) -> String {
    let mut pr = Printer {
        p,
        out: String::new(),
    };
    pr.stmt(stmt, 0);
    pr.out
}

struct Printer<'a> {
    p: &'a RamProgram,
    out: String,
}

impl Printer<'_> {
    fn name(&self, rel: RelId) -> &str {
        &self.p.relations[rel.0].name
    }

    fn line(&mut self, indent: usize, text: &str) {
        for _ in 0..indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn stmt(&mut self, s: &RamStmt, ind: usize) {
        match s {
            RamStmt::Seq(stmts) => {
                for st in stmts {
                    self.stmt(st, ind);
                }
            }
            RamStmt::Loop(body) => {
                self.line(ind, "LOOP");
                self.stmt(body, ind + 1);
                self.line(ind, "END LOOP");
            }
            RamStmt::Exit(cond) => {
                let c = self.cond(cond);
                self.line(ind, &format!("EXIT {c}"));
            }
            RamStmt::Query { label, op, .. } => {
                self.line(ind, &format!("QUERY \"{label}\""));
                self.op(op, ind + 1);
            }
            RamStmt::Clear(rel) => {
                let n = self.name(*rel).to_owned();
                self.line(ind, &format!("CLEAR {n}"));
            }
            RamStmt::Merge { into, from } => {
                let t = format!("MERGE {} INTO {}", self.name(*from), self.name(*into));
                self.line(ind, &t);
            }
            RamStmt::Swap(a, b) => {
                let t = format!("SWAP ({}, {})", self.name(*a), self.name(*b));
                self.line(ind, &t);
            }
        }
    }

    fn op(&mut self, o: &RamOp, ind: usize) {
        match o {
            RamOp::Scan {
                rel,
                level,
                parallel,
                body,
            } => {
                let par = if *parallel { "PARALLEL " } else { "" };
                let t = format!("{par}FOR t{level} IN {}", self.name(*rel));
                self.line(ind, &t);
                self.op(body, ind + 1);
            }
            RamOp::IndexScan {
                rel,
                index,
                level,
                pattern,
                eqrel_swap,
                parallel,
                body,
            } => {
                let pat = self.pattern(pattern);
                let swap = if *eqrel_swap { " (swapped)" } else { "" };
                let par = if *parallel { "PARALLEL " } else { "" };
                let t = format!(
                    "{par}FOR t{level} IN {} ON INDEX#{index} {pat}{swap}",
                    self.name(*rel)
                );
                self.line(ind, &t);
                self.op(body, ind + 1);
            }
            RamOp::Filter { cond, body } => {
                let c = self.cond(cond);
                self.line(ind, &format!("IF {c}"));
                self.op(body, ind + 1);
            }
            RamOp::Project { rel, values, .. } => {
                let vals: Vec<String> = values.iter().map(|v| self.expr(v)).collect();
                let t = format!("INSERT ({}) INTO {}", vals.join(", "), self.name(*rel));
                self.line(ind, &t);
            }
            RamOp::Aggregate {
                level,
                func,
                rel,
                index,
                pattern,
                value,
                body,
            } => {
                let pat = self.pattern(pattern);
                let v = value
                    .as_ref()
                    .map(|e| format!(" OF {}", self.expr(e)))
                    .unwrap_or_default();
                let t = format!(
                    "t{level} := {func}{v} FOR ALL IN {} ON INDEX#{index} {pat}",
                    self.name(*rel)
                );
                self.line(ind, &t);
                self.op(body, ind + 1);
            }
        }
    }

    fn pattern(&self, pattern: &[Option<RamExpr>]) -> String {
        let parts: Vec<String> = pattern
            .iter()
            .enumerate()
            .filter_map(|(c, p)| p.as_ref().map(|e| format!(".{c}={}", self.expr(e))))
            .collect();
        if parts.is_empty() {
            "(full)".to_owned()
        } else {
            format!("ON {}", parts.join(" AND "))
        }
    }

    fn cond(&self, c: &RamCond) -> String {
        match c {
            RamCond::True => "TRUE".to_owned(),
            RamCond::Conjunction(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| self.cond(c)).collect();
                format!("({})", parts.join(" AND "))
            }
            RamCond::Negation(inner) => format!("(NOT {})", self.cond(inner)),
            RamCond::Comparison { kind, lhs, rhs } => {
                format!("({} {kind} {})", self.expr(lhs), self.expr(rhs))
            }
            RamCond::EmptinessCheck { rel } => format!("({} = ∅)", self.name(*rel)),
            RamCond::ExistenceCheck { rel, pattern, .. } => {
                let parts: Vec<String> = pattern
                    .iter()
                    .map(|p| match p {
                        Some(e) => self.expr(e),
                        None => "_".to_owned(),
                    })
                    .collect();
                format!("(({}) ∈ {})", parts.join(","), self.name(*rel))
            }
        }
    }

    fn expr(&self, e: &RamExpr) -> String {
        match e {
            RamExpr::Constant(v) => format!("{v}"),
            RamExpr::TupleElement { level, column } => format!("t{level}.{column}"),
            RamExpr::AutoIncrement => "$".to_owned(),
            RamExpr::Intrinsic { op, args } => {
                let parts: Vec<String> = args.iter().map(|a| self.expr(a)).collect();
                if args.len() == 2 {
                    format!("({} {op} {})", parts[0], parts[1])
                } else {
                    format!("{op}({})", parts.join(", "))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use stir_frontend::parse_and_check;

    #[test]
    fn stmt_summaries_are_one_line_and_name_their_relations() {
        let ram = translate(
            &parse_and_check(
                ".decl e(x: number, y: number)\n\
                 .decl p(x: number, y: number)\n\
                 .output p\n\
                 e(1, 2).\n\
                 p(x, y) :- e(x, y).\n\
                 p(x, z) :- p(x, y), e(y, z).\n",
            )
            .expect("checks"),
        )
        .expect("translates");

        // Walk the whole statement tree; every summary is short, stable,
        // and newline-free (they become telemetry frame names).
        let mut stack = vec![&ram.main];
        let mut summaries = Vec::new();
        while let Some(stmt) = stack.pop() {
            summaries.push(stmt_summary(&ram, stmt));
            match stmt {
                RamStmt::Seq(body) => stack.extend(body.iter()),
                RamStmt::Loop(body) => stack.push(body),
                _ => {}
            }
        }
        for s in &summaries {
            assert!(!s.contains('\n'), "summary {s:?} spans lines");
        }
        assert!(summaries.iter().any(|s| s == "loop"));
        assert!(summaries.iter().any(|s| s.starts_with("query:")));
        assert!(summaries.iter().any(|s| s == "merge:new_p->p"));
        assert!(summaries.iter().any(|s| s == "swap:delta_p,new_p"));
        assert!(summaries.iter().any(|s| s == "clear:new_p"));
    }
}
