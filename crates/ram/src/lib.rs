//! The Relational Algebra Machine (RAM): STIR's intermediate
//! representation, its translator from checked Datalog, and the automatic
//! index-selection pass.
//!
//! A [`program::RamProgram`] combines relational-algebra queries with
//! imperative control flow (paper §2, Fig. 3): `LOOP`/`EXIT` for fixpoints,
//! `MERGE`/`SWAP`/`CLEAR` for semi-naive delta bookkeeping, and nested
//! scan/filter/project operation trees for rule bodies.
//!
//! The [`translate`] module lowers a
//! [`stir_frontend::analysis::CheckedProgram`] stratum by stratum:
//! non-recursive strata become straight-line queries; recursive strata
//! become the classic semi-naive loop with `delta_R`/`new_R` relations.
//! Aggregates are desugared into helper relations first, so the RAM level
//! only ever aggregates over a single indexed scan.
//!
//! The [`index_selection`] module implements the minimum-chain-cover
//! algorithm of Subotic et al. (VLDB'18, the paper's reference 48): the set of
//! *search signatures* used on each relation is covered by a minimum
//! number of lexicographic orders, each of which becomes one index of the
//! relation.
//!
//! # Example
//!
//! ```
//! use stir_frontend::parse_and_check;
//! use stir_ram::translate::translate;
//!
//! let checked = parse_and_check(
//!     ".decl e(x: number, y: number)\n\
//!      .decl p(x: number, y: number)\n\
//!      .output p\n\
//!      e(1, 2). e(2, 3).\n\
//!      p(x, y) :- e(x, y).\n\
//!      p(x, z) :- p(x, y), e(y, z).",
//! ).unwrap();
//! let ram = translate(&checked).unwrap();
//! assert!(ram.relations.iter().any(|r| r.name == "delta_p"));
//! println!("{ram}"); // Fig. 3-style listing
//! ```

#![warn(missing_docs)]

pub mod deletion;
pub mod expr;
pub mod index_selection;
pub mod pretty;
pub mod program;
pub mod prov;
pub mod stmt;
pub mod transform;
pub mod translate;

pub use expr::{CmpKind, IntrinsicOp, RamExpr};
pub use program::{RamProgram, RamRelation, RelId, Role};
pub use stmt::{AggFunc, RamCond, RamOp, RamStmt};
