//! The RAM program container and relation metadata.

use crate::expr::RamDomain;
use crate::stmt::RamStmt;
use stir_frontend::ast::AttrType;
use stir_frontend::SymbolTable;

/// Dense id of a relation inside a [`RamProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub usize);

impl std::fmt::Display for RelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// How a relation participates in evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A source-program relation.
    Standard,
    /// The `delta_R` of a recursive relation (tuples new in the previous
    /// iteration); the payload is the base relation.
    Delta(RelId),
    /// The `new_R` of a recursive relation (tuples derived in the current
    /// iteration); the payload is the base relation.
    New(RelId),
    /// The `upd_R` of a servable relation: the tuples added to `R` during
    /// the current incremental update cycle (user inserts plus newly
    /// derived tuples), consumed by the update statements of downstream
    /// strata. The payload is the base relation.
    Upd(RelId),
}

/// The representation chosen for a relation's indexes.
///
/// Mirrors `stir_der::Representation`; duplicated to keep this crate
/// dependency-free of the data-structure crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReprKind {
    /// B-tree indexes.
    BTree,
    /// Brie (trie) indexes.
    Brie,
    /// Union-find equivalence relation (binary only, single index).
    EqRel,
}

/// A lexicographic order, as a permutation of source columns
/// (stored-position → source-column; mirrors `stir_der::Order`).
pub type ColumnOrder = Vec<usize>;

/// Metadata for one relation of a RAM program.
#[derive(Debug, Clone, PartialEq)]
pub struct RamRelation {
    /// The relation's id (its position in [`RamProgram::relations`]).
    pub id: RelId,
    /// Its name (`delta_`/`new_` prefixes for auxiliary relations).
    pub name: String,
    /// Tuple arity.
    pub arity: usize,
    /// Declared attribute types (drives I/O formatting).
    pub attr_types: Vec<AttrType>,
    /// Index representation.
    pub repr: ReprKind,
    /// The lexicographic orders of the relation's indexes
    /// (`orders[0]` is the primary index); filled by index selection.
    pub orders: Vec<ColumnOrder>,
    /// Evaluation role.
    pub role: Role,
    /// Whether facts are supplied externally.
    pub is_input: bool,
    /// Whether the relation is reported as output.
    pub is_output: bool,
}

/// Timings and tallies collected while translating, reported by the
/// telemetry layer as sub-phases of `ram-translate`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslateStats {
    /// Wall time of minimum-chain-cover index selection, in nanoseconds.
    pub index_selection_ns: u64,
    /// Total indexes assigned across all relations.
    pub index_count: usize,
}

/// Stratum-level metadata: which relations a stratum defines and reads,
/// plus its incremental update statement. Together with the 1:1 mapping
/// between strata and the children of the main `Seq`, this gives a
/// resident engine the re-entry points it needs to re-run individual
/// strata after a fact insertion.
#[derive(Debug, Clone)]
pub struct RamStratum {
    /// Relations whose rules live in this stratum.
    pub defines: Vec<RelId>,
    /// Relations of earlier strata read through positive body atoms.
    pub pos_reads: Vec<RelId>,
    /// Relations read under negation or inside aggregate bodies. Growth
    /// of these is non-monotone for this stratum, so an incremental
    /// update must fall back to recomputing the stratum.
    pub neg_agg_reads: Vec<RelId>,
    /// Whether the stratum is a recursive SCC.
    pub recursive: bool,
    /// Position of the stratum's statement among the children of the
    /// main `Seq`.
    pub main_index: usize,
    /// Insertion-only incremental update statement: assumes the new
    /// tuples of upstream relations are staged in their `upd_` siblings
    /// and re-derives this stratum's consequences without clearing it.
    /// `None` when the stratum cannot be updated incrementally (eqrel
    /// heads) and must be recomputed instead.
    pub update: Option<RamStmt>,
}

/// A complete translated program.
#[derive(Debug, Clone)]
pub struct RamProgram {
    /// All relations (source + delta/new/upd auxiliaries + aggregate
    /// helpers).
    pub relations: Vec<RamRelation>,
    /// Ground facts from the source text, already encoded as bit patterns.
    pub facts: Vec<(RelId, Vec<RamDomain>)>,
    /// The main statement (a `Seq` with one child per rule-bearing
    /// stratum, in bottom-up order).
    pub main: RamStmt,
    /// Stratum metadata, aligned 1:1 with the children of `main`.
    pub strata: Vec<RamStratum>,
    /// Symbols interned during translation (string constants).
    pub symbols: SymbolTable,
    /// Translation-time statistics (index-selection cost, index counts).
    pub stats: TranslateStats,
    /// Provenance metadata: each source rule re-lowered over the full
    /// base relations, for proof-tree reconstruction. Built once at
    /// translation; ignored entirely unless annotated evaluation is on.
    pub prov: crate::prov::ProvInfo,
}

impl RamProgram {
    /// Metadata for `id`.
    pub fn relation(&self, id: RelId) -> &RamRelation {
        &self.relations[id.0]
    }

    /// Finds a relation by name.
    pub fn relation_by_name(&self, name: &str) -> Option<&RamRelation> {
        self.relations.iter().find(|r| r.name == name)
    }

    /// Ids of `.input` relations.
    pub fn inputs(&self) -> impl Iterator<Item = &RamRelation> {
        self.relations.iter().filter(|r| r.is_input)
    }

    /// Ids of `.output` relations.
    pub fn outputs(&self) -> impl Iterator<Item = &RamRelation> {
        self.relations.iter().filter(|r| r.is_output)
    }

    /// The `delta_R` auxiliaries of recursive relations — the semi-naive
    /// frontier sampled per fixpoint iteration by the profiler.
    pub fn deltas(&self) -> impl Iterator<Item = &RamRelation> {
        self.relations
            .iter()
            .filter(|r| matches!(r.role, Role::Delta(_)))
    }

    /// The name of a relation.
    pub fn name_of(&self, id: RelId) -> &str {
        &self.relations[id.0].name
    }

    /// The `upd_R` sibling of `id`, if one was created (servable
    /// non-eqrel relations).
    pub fn upd_of(&self, id: RelId) -> Option<RelId> {
        self.relations
            .iter()
            .find(|r| r.role == Role::Upd(id))
            .map(|r| r.id)
    }

    /// The main-`Seq` child implementing stratum `i` (its full
    /// recomputation statement).
    ///
    /// # Panics
    ///
    /// Panics if `main` is not a `Seq` or `i` is out of range.
    pub fn stratum_stmt(&self, i: usize) -> &RamStmt {
        let RamStmt::Seq(children) = &self.main else {
            panic!("main is always a Seq");
        };
        &children[self.strata[i].main_index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_id_displays_compactly() {
        assert_eq!(RelId(7).to_string(), "r7");
    }

    #[test]
    fn roles_carry_base_relation() {
        let d = Role::Delta(RelId(3));
        assert!(matches!(d, Role::Delta(RelId(3))));
    }
}
