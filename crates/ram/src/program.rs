//! The RAM program container and relation metadata.

use crate::expr::RamDomain;
use crate::stmt::RamStmt;
use stir_frontend::ast::AttrType;
use stir_frontend::SymbolTable;

/// Dense id of a relation inside a [`RamProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub usize);

impl std::fmt::Display for RelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// How a relation participates in evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A source-program relation.
    Standard,
    /// The `delta_R` of a recursive relation (tuples new in the previous
    /// iteration); the payload is the base relation.
    Delta(RelId),
    /// The `new_R` of a recursive relation (tuples derived in the current
    /// iteration); the payload is the base relation.
    New(RelId),
}

/// The representation chosen for a relation's indexes.
///
/// Mirrors `stir_der::Representation`; duplicated to keep this crate
/// dependency-free of the data-structure crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReprKind {
    /// B-tree indexes.
    BTree,
    /// Brie (trie) indexes.
    Brie,
    /// Union-find equivalence relation (binary only, single index).
    EqRel,
}

/// A lexicographic order, as a permutation of source columns
/// (stored-position → source-column; mirrors `stir_der::Order`).
pub type ColumnOrder = Vec<usize>;

/// Metadata for one relation of a RAM program.
#[derive(Debug, Clone, PartialEq)]
pub struct RamRelation {
    /// The relation's id (its position in [`RamProgram::relations`]).
    pub id: RelId,
    /// Its name (`delta_`/`new_` prefixes for auxiliary relations).
    pub name: String,
    /// Tuple arity.
    pub arity: usize,
    /// Declared attribute types (drives I/O formatting).
    pub attr_types: Vec<AttrType>,
    /// Index representation.
    pub repr: ReprKind,
    /// The lexicographic orders of the relation's indexes
    /// (`orders[0]` is the primary index); filled by index selection.
    pub orders: Vec<ColumnOrder>,
    /// Evaluation role.
    pub role: Role,
    /// Whether facts are supplied externally.
    pub is_input: bool,
    /// Whether the relation is reported as output.
    pub is_output: bool,
}

/// Timings and tallies collected while translating, reported by the
/// telemetry layer as sub-phases of `ram-translate`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslateStats {
    /// Wall time of minimum-chain-cover index selection, in nanoseconds.
    pub index_selection_ns: u64,
    /// Total indexes assigned across all relations.
    pub index_count: usize,
}

/// A complete translated program.
#[derive(Debug, Clone)]
pub struct RamProgram {
    /// All relations (source + delta/new auxiliaries + aggregate helpers).
    pub relations: Vec<RamRelation>,
    /// Ground facts from the source text, already encoded as bit patterns.
    pub facts: Vec<(RelId, Vec<RamDomain>)>,
    /// The main statement (a `Seq` of strata).
    pub main: RamStmt,
    /// Symbols interned during translation (string constants).
    pub symbols: SymbolTable,
    /// Translation-time statistics (index-selection cost, index counts).
    pub stats: TranslateStats,
}

impl RamProgram {
    /// Metadata for `id`.
    pub fn relation(&self, id: RelId) -> &RamRelation {
        &self.relations[id.0]
    }

    /// Finds a relation by name.
    pub fn relation_by_name(&self, name: &str) -> Option<&RamRelation> {
        self.relations.iter().find(|r| r.name == name)
    }

    /// Ids of `.input` relations.
    pub fn inputs(&self) -> impl Iterator<Item = &RamRelation> {
        self.relations.iter().filter(|r| r.is_input)
    }

    /// Ids of `.output` relations.
    pub fn outputs(&self) -> impl Iterator<Item = &RamRelation> {
        self.relations.iter().filter(|r| r.is_output)
    }

    /// The `delta_R` auxiliaries of recursive relations — the semi-naive
    /// frontier sampled per fixpoint iteration by the profiler.
    pub fn deltas(&self) -> impl Iterator<Item = &RamRelation> {
        self.relations
            .iter()
            .filter(|r| matches!(r.role, Role::Delta(_)))
    }

    /// The name of a relation.
    pub fn name_of(&self, id: RelId) -> &str {
        &self.relations[id.0].name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_id_displays_compactly() {
        assert_eq!(RelId(7).to_string(), "r7");
    }

    #[test]
    fn roles_carry_base_relation() {
        let d = Role::Delta(RelId(3));
        assert!(matches!(d, Role::Delta(RelId(3))));
    }
}
