//! Properties of the minimum-chain-cover index selection (VLDB'18):
//!
//! 1. **Soundness** — every signature's bound columns form a prefix of
//!    its assigned index order, and every order is a permutation.
//! 2. **Minimality** — the number of indexes equals the optimum, checked
//!    against a brute-force minimum chain cover on small universes.
//!
//! Cases are generated from a seeded splitmix64 stream (proptest is not
//! vendored), so every failure reproduces from its seed.

use std::collections::BTreeSet;
use stir_ram::index_selection::{select_indexes, Signature};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn covers(order: &[usize], sig: Signature) -> bool {
    let k = sig.count_ones() as usize;
    let prefix: BTreeSet<usize> = order[..k].iter().copied().collect();
    (0..order.len())
        .filter(|c| sig & (1 << c) != 0)
        .all(|c| prefix.contains(&c))
}

/// Brute-force minimum chain cover via Dilworth on a tiny poset:
/// max matching in the containment DAG by exhaustive search.
fn brute_force_min_chains(sigs: &[Signature]) -> usize {
    let n = sigs.len();
    // Edges i -> j iff sigs[i] ⊂ sigs[j].
    let mut edges = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j && sigs[i] & sigs[j] == sigs[i] && sigs[i] != sigs[j] {
                edges.push((i, j));
            }
        }
    }
    // Exhaustive maximum matching (n is small).
    fn max_matching(
        edges: &[(usize, usize)],
        idx: usize,
        used_left: u32,
        used_right: u32,
    ) -> usize {
        if idx == edges.len() {
            return 0;
        }
        let (a, b) = edges[idx];
        let skip = max_matching(edges, idx + 1, used_left, used_right);
        if used_left & (1 << a) == 0 && used_right & (1 << b) == 0 {
            let take =
                1 + max_matching(edges, idx + 1, used_left | (1 << a), used_right | (1 << b));
            skip.max(take)
        } else {
            skip
        }
    }
    n - max_matching(&edges, 0, 0, 0)
}

#[test]
fn selection_is_sound_and_minimal() {
    for seed in 0..128u64 {
        let mut state = seed.wrapping_mul(0x9E3779B9) | 1;
        // 1..7 random signatures over an arity-5 universe.
        let count = 1 + (splitmix(&mut state) % 6) as usize;
        let mut sigs: BTreeSet<Signature> = BTreeSet::new();
        while sigs.len() < count {
            sigs.insert(1 + (splitmix(&mut state) % 31) as Signature);
        }
        let arity = 5;
        let result = select_indexes(arity, &sigs);

        // Soundness: permutations + prefix coverage.
        for order in &result.orders {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(&sorted, &(0..arity).collect::<Vec<_>>(), "seed {seed}");
        }
        for &sig in &sigs {
            let idx = result.index_of[&sig];
            assert!(
                covers(&result.orders[idx], sig),
                "seed {seed}: signature {sig:05b} not a prefix of order {:?}",
                result.orders[idx]
            );
        }

        // Minimality against brute force.
        let sig_vec: Vec<Signature> = sigs.iter().copied().collect();
        assert_eq!(
            result.orders.len(),
            brute_force_min_chains(&sig_vec),
            "seed {seed}"
        );
    }
}

#[test]
fn chains_of_nested_signatures_always_share() {
    for seed in 0..128u64 {
        let mut state = seed ^ 0xC41A15;
        // Build a strictly growing chain of signatures.
        let len = 1 + (splitmix(&mut state) % 7) as usize;
        let mut sig: Signature = 0;
        let mut chain = BTreeSet::new();
        for _ in 0..len {
            sig |= 1 << (splitmix(&mut state) % 8);
            chain.insert(sig);
        }
        let result = select_indexes(8, &chain);
        assert_eq!(
            result.orders.len(),
            1,
            "seed {seed}: a chain needs exactly one index"
        );
    }
}
