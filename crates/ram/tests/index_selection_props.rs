//! Properties of the minimum-chain-cover index selection (VLDB'18):
//!
//! 1. **Soundness** — every signature's bound columns form a prefix of
//!    its assigned index order, and every order is a permutation.
//! 2. **Minimality** — the number of indexes equals the optimum, checked
//!    against a brute-force minimum chain cover on small universes.

use proptest::prelude::*;
use std::collections::BTreeSet;
use stir_ram::index_selection::{select_indexes, Signature};

fn covers(order: &[usize], sig: Signature) -> bool {
    let k = sig.count_ones() as usize;
    let prefix: BTreeSet<usize> = order[..k].iter().copied().collect();
    (0..order.len())
        .filter(|c| sig & (1 << c) != 0)
        .all(|c| prefix.contains(&c))
}

/// Brute-force minimum chain cover via Dilworth on a tiny poset:
/// max matching in the containment DAG by exhaustive search.
fn brute_force_min_chains(sigs: &[Signature]) -> usize {
    let n = sigs.len();
    // Edges i -> j iff sigs[i] ⊂ sigs[j].
    let mut edges = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j && sigs[i] & sigs[j] == sigs[i] && sigs[i] != sigs[j] {
                edges.push((i, j));
            }
        }
    }
    // Exhaustive maximum matching (n is small).
    fn max_matching(
        edges: &[(usize, usize)],
        idx: usize,
        used_left: u32,
        used_right: u32,
    ) -> usize {
        if idx == edges.len() {
            return 0;
        }
        let (a, b) = edges[idx];
        let skip = max_matching(edges, idx + 1, used_left, used_right);
        if used_left & (1 << a) == 0 && used_right & (1 << b) == 0 {
            let take =
                1 + max_matching(edges, idx + 1, used_left | (1 << a), used_right | (1 << b));
            skip.max(take)
        } else {
            skip
        }
    }
    n - max_matching(&edges, 0, 0, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn selection_is_sound_and_minimal(
        raw_sigs in prop::collection::btree_set(1u32..32, 1..7), // arity 5 universe
    ) {
        let arity = 5;
        let sigs: BTreeSet<Signature> = raw_sigs;
        let result = select_indexes(arity, &sigs);

        // Soundness: permutations + prefix coverage.
        for order in &result.orders {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sorted, &(0..arity).collect::<Vec<_>>());
        }
        for &sig in &sigs {
            let idx = result.index_of[&sig];
            prop_assert!(
                covers(&result.orders[idx], sig),
                "signature {sig:05b} not a prefix of order {:?}",
                result.orders[idx]
            );
        }

        // Minimality against brute force.
        let sig_vec: Vec<Signature> = sigs.iter().copied().collect();
        prop_assert_eq!(result.orders.len(), brute_force_min_chains(&sig_vec));
    }

    #[test]
    fn chains_of_nested_signatures_always_share(
        cols in prop::collection::vec(0usize..8, 1..8),
    ) {
        // Build a strictly growing chain of signatures.
        let mut sig: Signature = 0;
        let mut chain = BTreeSet::new();
        for c in cols {
            sig |= 1 << c;
            chain.insert(sig);
        }
        let result = select_indexes(8, &chain);
        prop_assert_eq!(result.orders.len(), 1, "a chain needs exactly one index");
    }
}
