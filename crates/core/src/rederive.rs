//! One-step re-derivability checks for retraction (the *re-derive* half
//! of DRed).
//!
//! After the over-delete phase erases the deletion cone, every cone
//! member that still has a derivation from the surviving database must
//! come back. The seed of that recovery is a **one-step** check: does any
//! rule body of the tuple's relation re-match against the current
//! database? (Tuples that need a *multi*-step recovery — derivable only
//! from other restored tuples — are reached afterwards by running the
//! stratum's ordinary insertion-mode update statement with the seeds
//! staged in `upd_R`.)
//!
//! The check re-queries the [`stir_ram::prov::ProvInfo`] plans — the same
//! per-rule re-lowered bodies `.explain` matches against — but it cannot
//! share [`crate::prov`]'s matcher: that search is height-*constrained*
//! (it only admits premises strictly below the target's annotated height,
//! which after a retraction would wrongly reject survivors whose shortest
//! remaining derivation is taller) and it materializes whole relations
//! per scan.
//!
//! # The batched matcher
//!
//! A deletion cone asks the same question for hundreds or thousands of
//! tuples that differ only in their pinned head values, and the plans'
//! written join order is tuned for *forward* evaluation, not for
//! head-driven matching — `p(x, z) :- p(x, y), e(y, z)` enumerates all
//! `p(x, _)` before ever touching the `z` the head pins. So
//! [`derivable_batch`] flattens each plan into its scans plus a soup of
//! equality constraints (constants, head pins, and equi-joins, the last
//! usable in *either* direction), greedily re-orders the scans by
//! boundness (most constrained columns first, fully-bound point lookups
//! best, ties to the smaller relation), and builds one hash index per
//! enumerating scan over exactly its constrained columns — shared by
//! every target in the batch. The per-target work is then a handful of
//! hash probes instead of an index-order-driven enumeration. Plans the
//! flattener cannot handle (aggregates) fall back to the per-tuple
//! matcher [`derivable`], which walks the plan in written order.

use crate::database::Database;
use crate::error::EvalError;
use crate::functors::{eval_cmp, eval_intrinsic};
use crate::interp::AggAcc;
use std::collections::HashMap;
use stir_der::iter::TupleIter;
use stir_der::relation::Relation;
use stir_ram::expr::{RamDomain, RamExpr};
use stir_ram::program::{RamProgram, RelId};
use stir_ram::stmt::{RamCond, RamOp, RamStmt};

/// Whether `tuple` of relation `rel` is derivable in one rule application
/// from the database's current contents.
///
/// Conservative only in the direction retraction needs: `true` is always
/// backed by a concrete binding; `false` means no non-opaque rule of
/// `rel` re-matches. Callers must route relations with opaque
/// (auto-increment) rules to full recomputation before asking.
pub fn derivable(ram: &RamProgram, db: &Database, rel: RelId, tuple: &[RamDomain]) -> bool {
    for pr in &ram.prov.rules {
        if pr.head != rel || pr.opaque {
            continue;
        }
        let Some(RamStmt::Query { levels, op, .. }) = &pr.stmt else {
            continue;
        };
        if search_rule(db, *levels, op, tuple) {
            return true;
        }
    }
    false
}

/// [`derivable`] for a whole deletion cone at once — semantically the
/// same answers, but the matching work is shared across targets (see the
/// module docs). `out[i]` is the verdict for `targets[i]`.
pub fn derivable_batch(
    ram: &RamProgram,
    db: &Database,
    rel: RelId,
    targets: &[Vec<RamDomain>],
) -> Vec<bool> {
    let mut out = vec![false; targets.len()];
    for pr in &ram.prov.rules {
        if pr.head != rel || pr.opaque {
            continue;
        }
        if out.iter().all(|b| *b) {
            break;
        }
        let Some(RamStmt::Query { levels, op, .. }) = &pr.stmt else {
            continue;
        };
        match FlatPlan::flatten(op, *levels) {
            Some(plan) => {
                // Skip the index builds when no open target can even
                // satisfy this rule's constant head columns.
                if targets
                    .iter()
                    .zip(&out)
                    .any(|(t, done)| !done && plan.pins_for(t).is_some())
                {
                    BatchMatcher::new(db, &plan).run(targets, &mut out);
                }
            }
            None => {
                for (i, t) in targets.iter().enumerate() {
                    if !out[i] && search_rule(db, *levels, op, t) {
                        out[i] = true;
                    }
                }
            }
        }
    }
    out
}

/// Per-tuple re-match of one plan in its written order (the fallback
/// path; handles every plan shape, aggregates included).
fn search_rule(db: &Database, nlevels: usize, op: &RamOp, tuple: &[RamDomain]) -> bool {
    let Some(pins) = head_pins(op, tuple) else {
        return false; // a constant head column contradicts the target
    };
    let mut s = Search {
        db,
        target: tuple,
        levels: vec![Vec::new(); nlevels],
        pins,
        found: false,
    };
    s.search(op);
    s.found
}

/// Extracts the binding-level constraints implied by the head projection:
/// a head column projected from `TupleElement { level, column }` forces
/// that position of the level's candidate tuples to the target's value.
/// Returns `None` when a constant head column (or two pins on the same
/// position) contradicts the target — the rule cannot derive it at all.
fn head_pins(op: &RamOp, target: &[RamDomain]) -> Option<Vec<(usize, usize, RamDomain)>> {
    let mut pins: Vec<(usize, usize, RamDomain)> = Vec::new();
    let mut ok = true;
    op.walk(&mut |o| {
        if let RamOp::Project { values, .. } = o {
            for (c, v) in values.iter().enumerate() {
                match v {
                    RamExpr::Constant(k) if *k != target[c] => ok = false,
                    RamExpr::TupleElement { level, column } => {
                        match pins
                            .iter()
                            .find(|&&(l, col, _)| l == *level && col == *column)
                        {
                            Some(&(_, _, prev)) if prev != target[c] => ok = false,
                            Some(_) => {}
                            None => pins.push((*level, *column, target[c])),
                        }
                    }
                    _ => {}
                }
            }
        }
    });
    ok.then_some(pins)
}

/// The binding levels an expression reads.
fn expr_deps(e: &RamExpr, deps: &mut Vec<usize>) {
    match e {
        RamExpr::Constant(_) | RamExpr::AutoIncrement => {}
        RamExpr::TupleElement { level, .. } => {
            if !deps.contains(level) {
                deps.push(*level);
            }
        }
        RamExpr::Intrinsic { args, .. } => {
            for a in args {
                expr_deps(a, deps);
            }
        }
    }
}

/// The binding levels a condition reads.
fn cond_deps(c: &RamCond, deps: &mut Vec<usize>) {
    match c {
        RamCond::True | RamCond::EmptinessCheck { .. } => {}
        RamCond::Conjunction(cs) => {
            for c in cs {
                cond_deps(c, deps);
            }
        }
        RamCond::Negation(inner) => cond_deps(inner, deps),
        RamCond::Comparison { lhs, rhs, .. } => {
            expr_deps(lhs, deps);
            expr_deps(rhs, deps);
        }
        RamCond::ExistenceCheck { pattern, .. } => {
            for e in pattern.iter().flatten() {
                expr_deps(e, deps);
            }
        }
    }
}

/// A provenance plan flattened into scans plus equality constraints —
/// the form the batched matcher can re-order. `None` from
/// [`FlatPlan::flatten`] (aggregates) keeps the plan on the per-tuple
/// path.
struct FlatPlan<'a> {
    nlevels: usize,
    /// `(relation, binding slot)` per scan, in written order.
    scans: Vec<(RelId, usize)>,
    /// `slot.col == k`.
    consts: Vec<(usize, usize, RamDomain)>,
    /// `a.col_a == b.col_b` — an equi-join, usable in either direction.
    joins: Vec<(usize, usize, usize, usize)>,
    /// `slot.col == eval(expr)` — usable once the expr's levels bind.
    exprs: Vec<(usize, usize, &'a RamExpr)>,
    filters: Vec<&'a RamCond>,
    /// The head projection.
    project: &'a [RamExpr],
}

impl<'a> FlatPlan<'a> {
    fn flatten(op: &'a RamOp, nlevels: usize) -> Option<FlatPlan<'a>> {
        let mut plan = FlatPlan {
            nlevels,
            scans: Vec::new(),
            consts: Vec::new(),
            joins: Vec::new(),
            exprs: Vec::new(),
            filters: Vec::new(),
            project: &[],
        };
        let mut cur = op;
        loop {
            match cur {
                RamOp::Scan {
                    rel, level, body, ..
                } => {
                    plan.scans.push((*rel, *level));
                    cur = body;
                }
                RamOp::IndexScan {
                    rel,
                    level,
                    pattern,
                    eqrel_swap,
                    body,
                    ..
                } => {
                    plan.scans.push((*rel, *level));
                    for (col, p) in pattern.iter().enumerate() {
                        let Some(e) = p else { continue };
                        // An eqrel scan yields every ordered pair of each
                        // class, so swapping a symmetry probe's pattern
                        // back to source order loses no bindings.
                        let col = if *eqrel_swap { 1 - col } else { col };
                        match e {
                            RamExpr::Constant(k) => plan.consts.push((*level, col, *k)),
                            RamExpr::TupleElement { level: m, column } => {
                                plan.joins.push((*level, col, *m, *column));
                            }
                            other => plan.exprs.push((*level, col, other)),
                        }
                    }
                    cur = body;
                }
                RamOp::Filter { cond, body } => {
                    plan.filters.push(cond);
                    cur = body;
                }
                RamOp::Project { values, .. } => {
                    plan.project = values;
                    break;
                }
                RamOp::Aggregate { .. } => return None,
            }
        }
        Some(plan)
    }

    /// [`head_pins`] over the flattened projection.
    fn pins_for(&self, target: &[RamDomain]) -> Option<Vec<(usize, usize, RamDomain)>> {
        let mut pins: Vec<(usize, usize, RamDomain)> = Vec::new();
        for (c, v) in self.project.iter().enumerate() {
            match v {
                RamExpr::Constant(k) if *k != target[c] => return None,
                RamExpr::TupleElement { level, column } => {
                    match pins
                        .iter()
                        .find(|&&(l, col, _)| l == *level && col == *column)
                    {
                        Some(&(_, _, prev)) if prev != target[c] => return None,
                        Some(_) => {}
                        None => pins.push((*level, *column, target[c])),
                    }
                }
                _ => {} // verified against the target after binding
            }
        }
        Some(pins)
    }

    /// Columns of `slot` constrained given the already-bound slots: its
    /// constants and head pins, equi-join columns whose other side is
    /// bound, and expression columns whose reads are all bound.
    fn constrained_cols(&self, slot: usize, bound: &[bool]) -> Vec<usize> {
        let mut cols: Vec<usize> = Vec::new();
        for &(s, c, _) in &self.consts {
            if s == slot {
                cols.push(c);
            }
        }
        for (c, v) in self.project.iter().enumerate() {
            let _ = c;
            if let RamExpr::TupleElement { level, column } = v {
                if *level == slot {
                    cols.push(*column);
                }
            }
        }
        for &(a, ca, b, cb) in &self.joins {
            if a == slot && bound[b] {
                cols.push(ca);
            }
            if b == slot && bound[a] {
                cols.push(cb);
            }
        }
        for &(s, c, e) in &self.exprs {
            if s == slot {
                let mut deps = Vec::new();
                expr_deps(e, &mut deps);
                if deps.iter().all(|&d| bound[d]) {
                    cols.push(c);
                }
            }
        }
        cols.sort_unstable();
        cols.dedup();
        cols
    }
}

/// Where a constrained column's value comes from at match time.
enum Src<'a> {
    Const(RamDomain),
    /// Head pin on `(slot, col)` — looked up in the target's pins.
    Pin(usize, usize),
    /// The already-bound `other` level's column.
    Join {
        other: usize,
        col: usize,
    },
    Expr(&'a RamExpr),
}

/// A check that can only run once some later level binds.
enum Check<'a> {
    Cond(&'a RamCond),
    /// `slot.col == eval(expr)` where `expr` bound after `slot`.
    ExprEq {
        slot: usize,
        col: usize,
        expr: &'a RamExpr,
    },
}

/// The batched matcher for one flattened plan: a fixed evaluation order,
/// per-position value sources, and hash indexes shared by every target.
struct BatchMatcher<'a, 'b> {
    db: &'b Database,
    plan: &'b FlatPlan<'a>,
    /// Indices into `plan.scans`, in evaluation order.
    order: Vec<usize>,
    /// Constrained source columns per position (sorted, deduped).
    key_cols: Vec<Vec<usize>>,
    /// Value sources per position, one or more per key column.
    srcs: Vec<Vec<(usize, Src<'a>)>>,
    /// Checks to run right after each position binds.
    checks: Vec<Vec<Check<'a>>>,
    /// Hash index per enumerating position: constrained-column values →
    /// candidate tuples (source order).
    maps: Vec<Option<TupleIndex>>,
}

/// Constrained-column values → the candidate tuples carrying them.
type TupleIndex = HashMap<Vec<RamDomain>, Vec<Vec<RamDomain>>>;

impl<'a, 'b> BatchMatcher<'a, 'b> {
    fn new(db: &'b Database, plan: &'b FlatPlan<'a>) -> BatchMatcher<'a, 'b> {
        let n = plan.scans.len();
        let mut bound = vec![false; plan.nlevels];
        let mut done = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut key_cols: Vec<Vec<usize>> = Vec::with_capacity(n);
        // Greedy order: fully-bound levels first (they become point
        // lookups), then most constrained columns, ties to the smaller
        // relation.
        for _ in 0..n {
            let mut best: Option<(usize, (bool, usize, usize))> = None;
            for (i, taken) in done.iter().enumerate() {
                if *taken {
                    continue;
                }
                let (rel, slot) = plan.scans[i];
                let r = db.rd(rel);
                let (arity, len) = (r.arity(), r.len());
                drop(r);
                let cols = plan.constrained_cols(slot, &bound);
                let score = (
                    arity > 0 && cols.len() == arity,
                    cols.len(),
                    usize::MAX - len,
                );
                if best.as_ref().is_none_or(|&(_, s)| score > s) {
                    best = Some((i, score));
                }
            }
            let (i, _) = best.expect("an unscheduled scan remains");
            done[i] = true;
            let slot = plan.scans[i].1;
            key_cols.push(plan.constrained_cols(slot, &bound));
            bound[slot] = true;
            order.push(i);
        }
        // Slots bound after each position, for placing late checks.
        let mut bound_after: Vec<Vec<bool>> = Vec::with_capacity(n);
        let mut acc = vec![false; plan.nlevels];
        for &i in &order {
            acc[plan.scans[i].1] = true;
            bound_after.push(acc.clone());
        }
        let first_pos_with = |deps: &[usize]| -> usize {
            (0..n)
                .find(|&p| deps.iter().all(|&d| bound_after[p][d]))
                .unwrap_or(n - 1)
        };
        // Value sources per position (the same column sets as key_cols,
        // resolved to where each value comes from at match time).
        let mut srcs: Vec<Vec<(usize, Src<'a>)>> = (0..n).map(|_| Vec::new()).collect();
        let mut checks: Vec<Vec<Check<'a>>> = (0..n).map(|_| Vec::new()).collect();
        let mut bound = vec![false; plan.nlevels];
        for (pos, &i) in order.iter().enumerate() {
            let slot = plan.scans[i].1;
            for &(s, c, k) in &plan.consts {
                if s == slot {
                    srcs[pos].push((c, Src::Const(k)));
                }
            }
            for v in plan.project {
                if let RamExpr::TupleElement { level, column } = v {
                    if *level == slot {
                        srcs[pos].push((*column, Src::Pin(slot, *column)));
                    }
                }
            }
            for &(a, ca, b, cb) in &plan.joins {
                if a == slot && bound[b] {
                    srcs[pos].push((ca, Src::Join { other: b, col: cb }));
                }
                if b == slot && bound[a] {
                    srcs[pos].push((cb, Src::Join { other: a, col: ca }));
                }
            }
            for &(s, c, e) in &plan.exprs {
                if s == slot {
                    let mut deps = Vec::new();
                    expr_deps(e, &mut deps);
                    if deps.iter().all(|&d| bound[d]) {
                        srcs[pos].push((c, Src::Expr(e)));
                    } else {
                        // The expr binds later than its scan: enforce it
                        // as an equality check once its reads are bound.
                        checks[first_pos_with(&deps)].push(Check::ExprEq {
                            slot,
                            col: c,
                            expr: e,
                        });
                    }
                }
            }
            bound[slot] = true;
        }
        for cond in &plan.filters {
            let mut deps = Vec::new();
            cond_deps(cond, &mut deps);
            checks[first_pos_with(&deps)].push(Check::Cond(cond));
        }
        // Hash indexes for the enumerating positions (point lookups and
        // nullary scans need none).
        let mut maps: Vec<Option<TupleIndex>> = Vec::new();
        for (pos, &i) in order.iter().enumerate() {
            let (rel, _) = plan.scans[i];
            let r = db.rd(rel);
            let arity = r.arity();
            if arity == 0 || key_cols[pos].len() == arity {
                maps.push(None);
                continue;
            }
            let mut map: HashMap<Vec<RamDomain>, Vec<Vec<RamDomain>>> = HashMap::new();
            let mut it = r.scan_source();
            while let Some(t) = it.next_tuple() {
                let key: Vec<RamDomain> = key_cols[pos].iter().map(|&c| t[c]).collect();
                map.entry(key).or_default().push(t.to_vec());
            }
            drop(it);
            maps.push(Some(map));
        }
        BatchMatcher {
            db,
            plan,
            order,
            key_cols,
            srcs,
            checks,
            maps,
        }
    }

    fn run(&self, targets: &[Vec<RamDomain>], out: &mut [bool]) {
        for (ti, t) in targets.iter().enumerate() {
            if out[ti] {
                continue;
            }
            let Some(pins) = self.plan.pins_for(t) else {
                continue;
            };
            let mut levels = vec![Vec::new(); self.plan.nlevels];
            if self.go(0, &pins, t, &mut levels) {
                out[ti] = true;
            }
        }
    }

    fn go(
        &self,
        pos: usize,
        pins: &[(usize, usize, RamDomain)],
        target: &[RamDomain],
        levels: &mut Vec<Vec<RamDomain>>,
    ) -> bool {
        if pos == self.order.len() {
            // Verify the whole projection — this also covers head
            // columns computed by intrinsics, which cannot pin.
            for (c, v) in self.plan.project.iter().enumerate() {
                match eval_expr(self.db, levels, v) {
                    Ok(x) if x == target[c] => {}
                    _ => return false,
                }
            }
            return true;
        }
        let i = self.order[pos];
        let (rel, slot) = self.plan.scans[i];
        // Resolve this position's constrained-column values; two sources
        // disagreeing on a column is a dead end, not an error.
        let mut vals: Vec<(usize, RamDomain)> = Vec::new();
        for (c, src) in &self.srcs[pos] {
            let v = match src {
                Src::Const(k) => *k,
                Src::Pin(s, col) => {
                    match pins.iter().find(|&&(l, pc, _)| l == *s && pc == *col) {
                        Some(&(_, _, v)) => v,
                        None => continue, // head col is not a plain pin
                    }
                }
                Src::Join { other, col } => match levels[*other].get(*col) {
                    Some(&v) => v,
                    None => return false,
                },
                Src::Expr(e) => match eval_expr(self.db, levels, e) {
                    Ok(v) => v,
                    Err(_) => return false,
                },
            };
            match vals.iter().find(|&&(vc, _)| vc == *c) {
                Some(&(_, prev)) if prev != v => return false,
                Some(_) => {}
                None => vals.push((*c, v)),
            }
        }
        let r = self.db.rd(rel);
        let arity = r.arity();
        if arity == 0 {
            if r.is_empty() {
                return false;
            }
            drop(r);
            levels[slot] = Vec::new();
            return self.step(pos, pins, target, levels);
        }
        if vals.len() == arity {
            let mut t = vec![0; arity];
            for &(c, v) in &vals {
                t[c] = v;
            }
            if !r.contains(&t) {
                return false;
            }
            drop(r);
            levels[slot] = t;
            if self.step(pos, pins, target, levels) {
                return true;
            }
            levels[slot] = Vec::new();
            return false;
        }
        drop(r);
        let map = self.maps[pos].as_ref().expect("enumerating position");
        let key: Vec<RamDomain> = self.key_cols[pos]
            .iter()
            .map(|&c| {
                vals.iter()
                    .find(|&&(vc, _)| vc == c)
                    .map(|&(_, v)| v)
                    .expect("key columns are constrained")
            })
            .collect();
        let Some(bucket) = map.get(&key) else {
            return false;
        };
        for cand in bucket {
            levels[slot] = cand.clone();
            if self.step(pos, pins, target, levels) {
                return true;
            }
        }
        levels[slot] = Vec::new();
        false
    }

    /// Runs the checks due at `pos`, then recurses into the next level.
    fn step(
        &self,
        pos: usize,
        pins: &[(usize, usize, RamDomain)],
        target: &[RamDomain],
        levels: &mut Vec<Vec<RamDomain>>,
    ) -> bool {
        for check in &self.checks[pos] {
            let ok = match check {
                Check::Cond(c) => matches!(eval_cond(self.db, levels, c), Ok(true)),
                Check::ExprEq { slot, col, expr } => match eval_expr(self.db, levels, expr) {
                    Ok(v) => levels[*slot].get(*col) == Some(&v),
                    Err(_) => false,
                },
            };
            if !ok {
                return false;
            }
        }
        self.go(pos + 1, pins, target, levels)
    }
}

/// Depth-first re-match of one provenance plan, stopping at the first
/// binding whose projection equals the target tuple.
struct Search<'a> {
    db: &'a Database,
    target: &'a [RamDomain],
    /// Bound tuple per binding level (empty = unbound).
    levels: Vec<Vec<RamDomain>>,
    /// `(level, column, value)` constraints pinned by the head.
    pins: Vec<(usize, usize, RamDomain)>,
    found: bool,
}

impl Search<'_> {
    fn search(&mut self, op: &RamOp) {
        if self.found {
            return;
        }
        match op {
            RamOp::Scan {
                rel, level, body, ..
            } => self.scan_candidates(*rel, *level, &[], body),
            RamOp::IndexScan {
                rel,
                level,
                pattern,
                eqrel_swap,
                body,
                ..
            } => {
                // As in `crate::prov`: an eqrel scan yields every ordered
                // pair of each class, so swapping a symmetry probe's
                // pattern back to source order loses no bindings.
                let source_pattern: Vec<Option<RamExpr>> = if *eqrel_swap {
                    vec![pattern[1].clone(), pattern[0].clone()]
                } else {
                    pattern.clone()
                };
                let mut constraints = Vec::new();
                for (col, p) in source_pattern.iter().enumerate() {
                    if let Some(e) = p {
                        match eval_expr(self.db, &self.levels, e) {
                            Ok(v) => constraints.push((col, v)),
                            Err(_) => return, // dead end, not a failure
                        }
                    }
                }
                self.scan_candidates(*rel, *level, &constraints, body);
            }
            RamOp::Filter { cond, body } => {
                if matches!(eval_cond(self.db, &self.levels, cond), Ok(true)) {
                    self.search(body);
                }
            }
            RamOp::Project { values, .. } => {
                for (c, v) in values.iter().enumerate() {
                    match eval_expr(self.db, &self.levels, v) {
                        Ok(x) if x == self.target[c] => {}
                        _ => return,
                    }
                }
                self.found = true;
            }
            RamOp::Aggregate {
                level,
                func,
                rel,
                pattern,
                value,
                body,
                ..
            } => {
                // Recomputed over the current database, exactly as the
                // explain matcher does (aggregate reads sit on strictly
                // lower strata, which are final by the time re-derivation
                // visits this one).
                let mut constraints = Vec::new();
                for (col, p) in pattern.iter().enumerate() {
                    if let Some(e) = p {
                        match eval_expr(self.db, &self.levels, e) {
                            Ok(v) => constraints.push((col, v)),
                            Err(_) => return,
                        }
                    }
                }
                let r = self.db.rd(*rel);
                let mut acc = AggAcc::new(*func);
                let mut it = r.scan_source();
                while let Some(t) = it.next_tuple() {
                    if !constraints.iter().all(|&(c, v)| t[c] == v) {
                        continue;
                    }
                    let folded = match value {
                        Some(e) => {
                            self.levels[*level] = t.to_vec();
                            let folded = eval_expr(self.db, &self.levels, e);
                            self.levels[*level] = Vec::new();
                            match folded {
                                Ok(v) => v,
                                Err(_) => return,
                            }
                        }
                        None => 0,
                    };
                    acc.add(folded);
                }
                drop(it);
                drop(r);
                if let Some(result) = acc.finish() {
                    self.levels[*level] = vec![result];
                    self.search(body);
                    self.levels[*level] = Vec::new();
                }
            }
        }
    }

    /// Enumerates the candidates of `rel` satisfying `constraints` plus
    /// this level's head pins, binding each and recursing until a match
    /// is found. Constrained columns are turned into a range over the
    /// index with the longest usable stored-order prefix (the same
    /// selection rule as point queries); the remainder is post-filtered.
    fn scan_candidates(
        &mut self,
        rel: RelId,
        level: usize,
        constraints: &[(usize, RamDomain)],
        body: &RamOp,
    ) {
        let mut all: Vec<(usize, RamDomain)> = constraints.to_vec();
        for &(l, col, v) in &self.pins {
            if l == level && !all.iter().any(|&(c, _)| c == col) {
                all.push((col, v));
            }
        }
        // Contradictory constraints (pattern vs pin) match nothing.
        for &(c, v) in &all {
            if constraints.iter().any(|&(c2, v2)| c2 == c && v2 != v) {
                return;
            }
        }
        let r = self.db.rd(rel);
        let arity = r.arity();
        if arity == 0 {
            if !r.is_empty() {
                drop(r);
                self.levels[level] = Vec::new();
                self.search(body);
            }
            return;
        }
        let mut candidates: Vec<Vec<RamDomain>> = Vec::new();
        {
            let mut best = (0usize, 0usize);
            for k in 0..r.index_count() {
                let cols = r.index(k).order().columns();
                let m = cols
                    .iter()
                    .take_while(|&&c| all.iter().any(|&(ac, _)| ac == c))
                    .count();
                if m > best.1 {
                    best = (k, m);
                }
            }
            let (k, prefix) = best;
            let idx = r.index(k);
            let order = idx.order();
            let source_layout = idx.stores_source_order();
            let mut it = if prefix == 0 {
                idx.scan()
            } else {
                let mut lo = vec![RamDomain::MIN; arity];
                let mut hi = vec![RamDomain::MAX; arity];
                for (pos, &c) in order.columns().iter().enumerate().take(prefix) {
                    let v = all
                        .iter()
                        .find(|&&(ac, _)| ac == c)
                        .map(|&(_, v)| v)
                        .expect("prefix columns are constrained");
                    let at = if source_layout { c } else { pos };
                    lo[at] = v;
                    hi[at] = v;
                }
                idx.range(&lo, &hi)
            };
            let mut src = vec![0; arity];
            while let Some(stored) = it.next_tuple() {
                if source_layout {
                    src.copy_from_slice(stored);
                } else {
                    order.decode(stored, &mut src);
                }
                if all.iter().all(|&(c, v)| src[c] == v) {
                    candidates.push(src.clone());
                }
            }
        }
        drop(r);
        for t in candidates {
            if self.found {
                return;
            }
            self.levels[level] = t;
            self.search(body);
            self.levels[level] = Vec::new();
        }
    }
}

fn eval_expr(
    db: &Database,
    levels: &[Vec<RamDomain>],
    e: &RamExpr,
) -> Result<RamDomain, EvalError> {
    match e {
        RamExpr::Constant(k) => Ok(*k),
        RamExpr::TupleElement { level, column } => levels[*level]
            .get(*column)
            .copied()
            .ok_or_else(|| EvalError::new("unbound tuple element")),
        RamExpr::Intrinsic { op, args } => {
            let mut vs = Vec::with_capacity(args.len());
            for a in args {
                vs.push(eval_expr(db, levels, a)?);
            }
            eval_intrinsic(*op, &vs, &db.symbols)
        }
        RamExpr::AutoIncrement => Err(EvalError::new("auto-increment rules cannot be re-matched")),
    }
}

fn eval_cond(db: &Database, levels: &[Vec<RamDomain>], c: &RamCond) -> Result<bool, EvalError> {
    match c {
        RamCond::True => Ok(true),
        RamCond::Conjunction(cs) => {
            for c in cs {
                if !eval_cond(db, levels, c)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        RamCond::Negation(inner) => Ok(!eval_cond(db, levels, inner)?),
        RamCond::Comparison { kind, lhs, rhs } => Ok(eval_cmp(
            *kind,
            eval_expr(db, levels, lhs)?,
            eval_expr(db, levels, rhs)?,
        )),
        RamCond::EmptinessCheck { rel } => Ok(db.rd(*rel).is_empty()),
        RamCond::ExistenceCheck { rel, pattern, .. } => {
            let mut constraints = Vec::new();
            for (col, p) in pattern.iter().enumerate() {
                if let Some(e) = p {
                    constraints.push((col, eval_expr(db, levels, e)?));
                }
            }
            let r = db.rd(*rel);
            if constraints.len() == r.arity() {
                let mut t = vec![0u32; r.arity()];
                for &(c, v) in &constraints {
                    t[c] = v;
                }
                return Ok(r.contains(&t));
            }
            Ok(contains_matching(&r, &constraints))
        }
    }
}

fn contains_matching(r: &Relation, constraints: &[(usize, RamDomain)]) -> bool {
    let mut it = r.scan_source();
    while let Some(t) = it.next_tuple() {
        if constraints.iter().all(|&(c, v)| t[c] == v) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InterpreterConfig;
    use crate::database::DataMode;
    use crate::interp::Interpreter;
    use crate::itree;
    use stir_frontend::parse_and_check;
    use stir_ram::translate::translate;

    fn evaluated(src: &str) -> (RamProgram, Database) {
        let ram = translate(&parse_and_check(src).expect("checks")).expect("translates");
        let db = Database::new_with(&ram, DataMode::Specialized, false);
        let config = InterpreterConfig::optimized();
        let tree = itree::build(&ram, &config);
        Interpreter::new(&ram, &db, config)
            .run(&tree)
            .expect("runs");
        (ram, db)
    }

    const TC: &str = "\
        .decl e(x: number, y: number)\n\
        .decl p(x: number, y: number)\n\
        .output p\n\
        e(1, 2). e(2, 3). e(3, 4).\n\
        p(x, y) :- e(x, y).\n\
        p(x, z) :- p(x, y), e(y, z).\n";

    #[test]
    fn one_step_derivability_follows_the_database_not_the_annotations() {
        let (ram, db) = evaluated(TC);
        let p = ram.relation_by_name("p").unwrap().id;
        assert!(derivable(&ram, &db, p, &[1, 2]), "base rule re-matches");
        assert!(
            derivable(&ram, &db, p, &[1, 4]),
            "recursive rule re-matches"
        );
        assert!(!derivable(&ram, &db, p, &[4, 1]), "never derivable");

        // Erase the supporting facts: derivability must follow.
        let e = ram.relation_by_name("e").unwrap().id;
        db.wr(e).erase(&[1, 2]);
        assert!(
            !derivable(&ram, &db, p, &[1, 2]),
            "no surviving one-step derivation"
        );
        // p(1,4) still has p(1,?)... only via p(1,2)/p(1,3) which remain
        // *in p* for now — one-step checks read the current contents.
        assert!(derivable(&ram, &db, p, &[1, 4]));
        db.wr(p).erase(&[1, 3]);
        db.wr(p).erase(&[1, 2]);
        assert!(!derivable(&ram, &db, p, &[1, 4]));
    }

    #[test]
    fn batch_matches_the_per_tuple_matcher() {
        let (ram, db) = evaluated(TC);
        let p = ram.relation_by_name("p").unwrap().id;
        let e = ram.relation_by_name("e").unwrap().id;
        db.wr(e).erase(&[1, 2]);
        let targets: Vec<Vec<RamDomain>> = (0..6)
            .flat_map(|a| (0..6).map(move |b| vec![a, b]))
            .collect();
        let batch = derivable_batch(&ram, &db, p, &targets);
        for (t, got) in targets.iter().zip(&batch) {
            assert_eq!(*got, derivable(&ram, &db, p, t), "batch disagrees on {t:?}");
        }
    }

    #[test]
    fn constant_heads_and_negation_pin_correctly() {
        let src = "\
            .decl a(x: number)\n.decl b(x: number)\n\
            .decl r(x: number, y: number)\n.output r\n\
            a(1). a(2). b(2).\n\
            r(x, 7) :- a(x), !b(x).\n";
        let (ram, db) = evaluated(src);
        let r = ram.relation_by_name("r").unwrap().id;
        assert!(derivable(&ram, &db, r, &[1, 7]));
        assert!(!derivable(&ram, &db, r, &[2, 7]), "negation blocks");
        assert!(!derivable(&ram, &db, r, &[1, 8]), "constant head mismatch");
        let batch = derivable_batch(&ram, &db, r, &[vec![1, 7], vec![2, 7], vec![1, 8]]);
        assert_eq!(batch, vec![true, false, false]);
    }

    #[test]
    fn aggregates_recompute_over_current_contents() {
        let src = "\
            .decl e(x: number, y: number)\n.decl t(n: number)\n\
            .output t\n\
            e(1, 2). e(1, 3).\n\
            t(n) :- n = count : { e(1, _) }.\n";
        let (ram, db) = evaluated(src);
        let t = ram.relation_by_name("t").unwrap().id;
        assert!(derivable(&ram, &db, t, &[2]));
        assert!(!derivable(&ram, &db, t, &[1]));
        assert_eq!(
            derivable_batch(&ram, &db, t, &[vec![2], vec![1]]),
            vec![true, false],
            "aggregate plans take the per-tuple fallback"
        );
        // Aggregates read the desugared `__agg` helper, which sits on a
        // strictly lower stratum: by the time re-derivation visits `t`'s
        // stratum the helper is already final, so the one-step check sees
        // the post-retraction count through it.
        let helper = ram.relation_by_name("__agg0").unwrap().id;
        let surviving = db.rd(helper).to_sorted_tuples();
        db.wr(helper).erase(surviving.last().unwrap());
        assert!(!derivable(&ram, &db, t, &[2]), "count changed under it");
        assert!(derivable(&ram, &db, t, &[1]));
    }
}
