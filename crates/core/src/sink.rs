//! Per-worker insert sinks for parallel scans.
//!
//! A worker evaluating one partition of a parallel scan must not write
//! into the database: the projection target's lock is shared with every
//! other worker, and the partitioned design exists precisely so workers
//! never contend. Instead each worker owns an `InsertSink` — one lazily
//! created [`InsertBuffer`] per relation — that absorbs every projection
//! lock-free. The coordinator merges the buffers into the real relations
//! after the join; deduplication happens there, against the fully merged
//! relation, so fresh-insert counts come out identical to sequential
//! evaluation regardless of how tuples were split across workers.

use stir_der::InsertBuffer;
use stir_ram::program::{RamProgram, RelId};

/// One worker's buffered inserts, indexed by relation.
#[derive(Debug)]
pub struct InsertSink {
    /// Relation arities, so buffers can be created on first use.
    arities: Vec<usize>,
    buffers: Vec<Option<InsertBuffer>>,
}

impl InsertSink {
    /// Creates an empty sink with one (lazy) slot per relation of `ram`.
    pub fn new(ram: &RamProgram) -> Self {
        InsertSink {
            arities: ram.relations.iter().map(|r| r.arity).collect(),
            buffers: (0..ram.relations.len()).map(|_| None).collect(),
        }
    }

    /// Buffers one source-order tuple destined for `rel`.
    pub fn push(&mut self, rel: RelId, tuple: &[u32]) {
        let arity = self.arities[rel.0];
        self.buffers[rel.0]
            .get_or_insert_with(|| InsertBuffer::new(arity))
            .push(tuple);
    }

    /// Drains the sink into `(relation, buffer)` pairs that received
    /// at least one tuple.
    pub fn into_buffers(self) -> impl Iterator<Item = (RelId, InsertBuffer)> {
        self.buffers
            .into_iter()
            .enumerate()
            .filter_map(|(i, b)| b.map(|b| (RelId(i), b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_frontend::parse_and_check;
    use stir_ram::translate::translate;

    #[test]
    fn buffers_per_relation_and_drains_nonempty_ones() {
        let ram = translate(
            &parse_and_check(".decl a(x: number)\n.decl b(x: number, y: number)\na(1).\nb(1, 2).")
                .expect("checks"),
        )
        .expect("translates");
        let a = ram.relation_by_name("a").unwrap().id;
        let b = ram.relation_by_name("b").unwrap().id;

        let mut sink = InsertSink::new(&ram);
        sink.push(a, &[7]);
        sink.push(a, &[7]);
        sink.push(b, &[3, 4]);

        let drained: Vec<(RelId, Vec<Vec<u32>>)> = sink
            .into_buffers()
            .map(|(rel, buf)| (rel, buf.tuples().map(<[u32]>::to_vec).collect()))
            .collect();
        let a_tuples = &drained.iter().find(|(r, _)| *r == a).unwrap().1;
        // The sink does not deduplicate — that happens at merge time.
        assert_eq!(a_tuples, &vec![vec![7], vec![7]]);
        let b_tuples = &drained.iter().find(|(r, _)| *r == b).unwrap().1;
        assert_eq!(b_tuples, &vec![vec![3, 4]]);
        // Only relations that received tuples are drained.
        assert_eq!(drained.len(), 2);
    }
}
