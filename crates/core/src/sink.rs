//! Per-worker insert sinks for parallel scans.
//!
//! A worker draining morsels of a parallel scan must not write into the
//! database: the projection target's lock is shared with every other
//! worker, and the morsel design exists precisely so workers never
//! contend. Instead each worker owns an `InsertSink` — one lazily
//! created [`InsertBuffer`] per relation — that absorbs every projection
//! lock-free. The coordinator merges the buffers into the real relations
//! after the join, always in worker-id order; work stealing makes the
//! *split* of tuples across sinks schedule-dependent, but the merged
//! *set* is not, and deduplication happens at merge time against the
//! fully merged relation — so outputs and fresh-insert counts come out
//! identical to sequential evaluation regardless of the job count, the
//! morsel size, or which worker stole what.

use stir_der::InsertBuffer;
use stir_ram::program::{RamProgram, RelId};

/// One worker's buffered inserts, indexed by relation.
#[derive(Debug)]
pub struct InsertSink {
    /// Relation arities, so buffers can be created on first use.
    arities: Vec<usize>,
    buffers: Vec<Option<InsertBuffer>>,
    /// Annotated evaluation: buffers are widened by one column holding
    /// the firing rule's id, split back off at merge time. (The height
    /// needs no column — it is the coordinator's epoch, uniform across
    /// the whole merge.)
    prov: bool,
}

impl InsertSink {
    /// Creates an empty sink with one (lazy) slot per relation of `ram`.
    pub fn new(ram: &RamProgram) -> Self {
        Self::new_with(ram, false)
    }

    /// Creates an empty sink; with `prov`, buffered tuples carry a
    /// trailing rule-id column for annotation at merge time.
    pub fn new_with(ram: &RamProgram, prov: bool) -> Self {
        InsertSink {
            arities: ram.relations.iter().map(|r| r.arity).collect(),
            buffers: (0..ram.relations.len()).map(|_| None).collect(),
            prov,
        }
    }

    /// Whether buffered tuples carry a trailing rule-id column.
    pub fn prov(&self) -> bool {
        self.prov
    }

    /// Buffers one source-order tuple destined for `rel`.
    pub fn push(&mut self, rel: RelId, tuple: &[u32]) {
        debug_assert!(!self.prov, "annotated sinks take push_annotated");
        let arity = self.arities[rel.0];
        self.buffers[rel.0]
            .get_or_insert_with(|| InsertBuffer::new(arity))
            .push(tuple);
    }

    /// Buffers one source-order tuple together with the id of the rule
    /// that derived it (annotated evaluation).
    pub fn push_annotated(&mut self, rel: RelId, tuple: &[u32], rule: u32) {
        debug_assert!(self.prov, "plain sinks take push");
        let arity = self.arities[rel.0] + 1;
        let buf = self.buffers[rel.0].get_or_insert_with(|| InsertBuffer::new(arity));
        let mut widened = Vec::with_capacity(arity);
        widened.extend_from_slice(tuple);
        widened.push(rule);
        buf.push(&widened);
    }

    /// Drains the sink into `(relation, buffer)` pairs that received
    /// at least one tuple.
    pub fn into_buffers(self) -> impl Iterator<Item = (RelId, InsertBuffer)> {
        self.buffers
            .into_iter()
            .enumerate()
            .filter_map(|(i, b)| b.map(|b| (RelId(i), b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_frontend::parse_and_check;
    use stir_ram::translate::translate;

    #[test]
    fn buffers_per_relation_and_drains_nonempty_ones() {
        let ram = translate(
            &parse_and_check(".decl a(x: number)\n.decl b(x: number, y: number)\na(1).\nb(1, 2).")
                .expect("checks"),
        )
        .expect("translates");
        let a = ram.relation_by_name("a").unwrap().id;
        let b = ram.relation_by_name("b").unwrap().id;

        let mut sink = InsertSink::new(&ram);
        sink.push(a, &[7]);
        sink.push(a, &[7]);
        sink.push(b, &[3, 4]);

        let drained: Vec<(RelId, Vec<Vec<u32>>)> = sink
            .into_buffers()
            .map(|(rel, buf)| (rel, buf.tuples().map(<[u32]>::to_vec).collect()))
            .collect();
        let a_tuples = &drained.iter().find(|(r, _)| *r == a).unwrap().1;
        // The sink does not deduplicate — that happens at merge time.
        assert_eq!(a_tuples, &vec![vec![7], vec![7]]);
        let b_tuples = &drained.iter().find(|(r, _)| *r == b).unwrap().1;
        assert_eq!(b_tuples, &vec![vec![3, 4]]);
        // Only relations that received tuples are drained.
        assert_eq!(drained.len(), 2);
    }

    #[test]
    fn annotated_sink_widens_tuples_by_rule_id() {
        let ram = translate(&parse_and_check(".decl a(x: number)\na(1).").expect("checks"))
            .expect("translates");
        let a = ram.relation_by_name("a").unwrap().id;
        let mut sink = InsertSink::new_with(&ram, true);
        assert!(sink.prov());
        sink.push_annotated(a, &[7], 3);
        let (_, buf) = sink.into_buffers().next().unwrap();
        let tuples: Vec<Vec<u32>> = buf.tuples().map(<[u32]>::to_vec).collect();
        assert_eq!(tuples, vec![vec![7, 3]]);
    }
}
