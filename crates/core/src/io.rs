//! Facts-file I/O: Soufflé-style tab-separated `.facts` inputs and `.csv`
//! outputs.
//!
//! The on-disk format matches the synthesizer's generated binaries
//! (`stir_synth::support`): one tuple per line, fields tab-separated,
//! decoded/encoded per the relation's declared attribute types. A missing
//! `.facts` file means an empty input relation, as in Soufflé. Like
//! Soufflé's TSV format, symbols containing tab or newline characters are
//! not representable on disk (in-memory evaluation handles them fine).

use crate::database::InputData;
use crate::error::EvalError;
use crate::value::Value;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;
use stir_frontend::ast::AttrType;
use stir_ram::RamProgram;

/// Reads `<dir>/<rel>.facts` for every `.input` relation of `ram`.
///
/// # Errors
///
/// Fails when `dir` is missing or not a directory, on fact files that
/// exist but cannot be read, and on fields that do not parse as the
/// declared attribute type. An *absent* fact file is not an error (empty
/// relation, as in Soufflé) — only one that is present and unreadable.
pub fn read_facts_dir(ram: &RamProgram, dir: &Path) -> Result<InputData, EvalError> {
    if !dir.is_dir() {
        return Err(EvalError::new(format!(
            "fact directory {}: does not exist or is not a directory",
            dir.display()
        )));
    }
    let mut inputs = InputData::new();
    for rel in ram.inputs() {
        let path = dir.join(format!("{}.facts", rel.name));
        let content = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => {
                return Err(EvalError::new(format!(
                    "cannot read {}: {e}",
                    path.display()
                )));
            }
        };
        let mut rows = Vec::new();
        for (lineno, line) in content.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != rel.arity {
                return Err(EvalError::new(format!(
                    "{}:{}: expected {} fields, found {}",
                    path.display(),
                    lineno + 1,
                    rel.arity,
                    fields.len()
                )));
            }
            let mut row = Vec::with_capacity(rel.arity);
            for (field, &ty) in fields.iter().zip(&rel.attr_types) {
                row.push(parse_field(field, ty).map_err(|e| {
                    EvalError::new(format!("{}:{}: {e}", path.display(), lineno + 1))
                })?);
            }
            rows.push(row);
        }
        inputs.insert(rel.name.clone(), rows);
    }
    Ok(inputs)
}

/// Parses one text field as the declared attribute type (the `.facts`
/// on-disk convention; also reused by the serving protocol's terms).
pub fn parse_field(field: &str, ty: AttrType) -> Result<Value, String> {
    match ty {
        AttrType::Number => field
            .parse::<i32>()
            .map(Value::Number)
            .map_err(|_| format!("`{field}` is not a number")),
        AttrType::Unsigned => field
            .parse::<u32>()
            .map(Value::Unsigned)
            .map_err(|_| format!("`{field}` is not an unsigned number")),
        AttrType::Float => field
            .parse::<f32>()
            .map(Value::Float)
            .map_err(|_| format!("`{field}` is not a float")),
        AttrType::Symbol => Ok(Value::Symbol(field.to_owned())),
    }
}

/// Writes each output relation to `<dir>/<rel>.csv` (tab-separated).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_outputs_dir(
    outputs: &HashMap<String, Vec<Vec<Value>>>,
    dir: &Path,
) -> Result<(), EvalError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| EvalError::new(format!("cannot create {}: {e}", dir.display())))?;
    for (name, rows) in outputs {
        let path = dir.join(format!("{name}.csv"));
        let file = std::fs::File::create(&path)
            .map_err(|e| EvalError::new(format!("cannot create {}: {e}", path.display())))?;
        let mut out = std::io::BufWriter::new(file);
        for row in rows {
            let rendered: Vec<String> = row.iter().map(Value::to_string).collect();
            writeln!(out, "{}", rendered.join("\t"))
                .map_err(|e| EvalError::new(format!("write {}: {e}", path.display())))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::InterpreterConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("stir-io-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    const SRC: &str = "\
        .decl e(x: number, s: symbol, f: float, u: unsigned)\n.input e\n\
        .decl out(x: number, s: symbol)\n.output out\n\
        out(x, s) :- e(x, s, _, _).\n";

    #[test]
    fn round_trips_typed_facts() {
        let dir = tmp("round_trip");
        std::fs::write(
            dir.join("e.facts"),
            "-4\thello\t1.5\t4000000000\n7\tworld\t0\t0\n",
        )
        .expect("write facts");
        let engine = Engine::from_source(SRC).expect("compiles");
        let inputs = read_facts_dir(engine.ram(), &dir).expect("reads");
        assert_eq!(inputs["e"].len(), 2);
        assert_eq!(inputs["e"][0][0], Value::Number(-4));
        assert_eq!(inputs["e"][0][3], Value::Unsigned(4_000_000_000));

        let out = engine
            .run(InterpreterConfig::optimized(), &inputs)
            .expect("runs");
        let out_dir = dir.join("out");
        write_outputs_dir(&out.outputs, &out_dir).expect("writes");
        let written = std::fs::read_to_string(out_dir.join("out.csv")).expect("readable");
        assert!(written.contains("-4\thello"));
        assert!(written.contains("7\tworld"));
    }

    #[test]
    fn missing_files_mean_empty_relations() {
        let dir = tmp("missing");
        let engine = Engine::from_source(SRC).expect("compiles");
        let inputs = read_facts_dir(engine.ram(), &dir).expect("reads");
        assert!(!inputs.contains_key("e"));
    }

    #[test]
    fn missing_directory_is_an_error() {
        let dir = std::env::temp_dir()
            .join("stir-io-tests")
            .join("no-such-dir");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Engine::from_source(SRC).expect("compiles");
        let err = read_facts_dir(engine.ram(), &dir).unwrap_err();
        assert!(err.msg.contains("no-such-dir"));
        assert!(err.msg.contains("does not exist or is not a directory"));
    }

    #[test]
    fn unreadable_fact_file_is_an_error() {
        // A directory where the fact *file* should be: `read_to_string`
        // fails with something other than NotFound even when running as
        // root (which ignores permission bits).
        let dir = tmp("unreadable");
        std::fs::create_dir(dir.join("e.facts")).expect("decoy dir");
        let engine = Engine::from_source(SRC).expect("compiles");
        let err = read_facts_dir(engine.ram(), &dir).unwrap_err();
        assert!(err.msg.contains("cannot read"));
        assert!(err.msg.contains("e.facts"));
    }

    #[test]
    fn malformed_fields_are_reported_with_position() {
        let dir = tmp("malformed");
        std::fs::write(dir.join("e.facts"), "oops\thello\t1.5\t1\n").expect("write facts");
        let engine = Engine::from_source(SRC).expect("compiles");
        let err = read_facts_dir(engine.ram(), &dir).unwrap_err();
        assert!(err.msg.contains(":1:"));
        assert!(err.msg.contains("not a number"));
    }

    #[test]
    fn wrong_arity_is_reported() {
        let dir = tmp("arity");
        std::fs::write(dir.join("e.facts"), "1\ttwo\n").expect("write facts");
        let engine = Engine::from_source(SRC).expect("compiles");
        let err = read_facts_dir(engine.ram(), &dir).unwrap_err();
        assert!(err.msg.contains("expected 4 fields"));
    }
}
