//! Interpreter configuration: the paper's optimizations as toggles.
//!
//! Every optimization of §4 can be switched independently so the ablation
//! experiments (Figs. 18, 19 and §5.5) can measure its contribution. The
//! default configuration enables everything — that is "the STI".

/// Configuration of the Soufflé-style tree interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterpreterConfig {
    /// §4.1 *static access & instruction generation*: relational
    /// instructions are specialized on `(representation, arity)` and run
    /// monomorphized loops over the concrete index types. When off, all
    /// index access goes through the virtual `IndexAdapter` interface with
    /// 128-tuple buffered iterators (the "dynamic adapter" baseline of
    /// Fig. 18).
    pub static_dispatch: bool,
    /// §4.4 *super-instructions*: `Constant` and `TupleElement` children
    /// of projections, index bounds, and existence checks are folded into
    /// precomputed fields of the parent instruction instead of being
    /// dispatched individually (Fig. 19 ablation).
    pub super_instructions: bool,
    /// §4.2 *static tuple reordering*: tuple-element accesses are
    /// rewritten at interpreter-tree generation time into the stored order
    /// of each scan's index, so scanned tuples are never decoded at
    /// runtime. When off, every tuple yielded by a permuted index is
    /// decoded back to source order before the loop body runs.
    pub static_reordering: bool,
    /// §4.3 analogue (*reducing register pressure*): heavy instruction
    /// handlers are outlined into `#[inline(never)]` functions so the hot
    /// recursive dispatcher keeps a minimal stack frame. (Rust offers no
    /// direct control over callee-saved register spilling; outlining is
    /// the closest equivalent, trading an extra call on heavy instructions
    /// for cheaper dispatch of light ones.)
    ///
    /// **Reproduction finding:** unlike the paper's GCC/C++ setting, this
    /// trade *loses* under Rust/LLVM (≈7–15% slower) — LLVM already
    /// shrink-wraps the dispatcher and the extra call blocks optimization
    /// — so the optimized preset leaves it **off**; the §5.5 ablation
    /// bench measures it explicitly.
    pub outlined_handlers: bool,
    /// Record per-rule timings, tuple counts, and dispatch counts
    /// (§5.2's profiler; small overhead when enabled).
    pub profile: bool,
    /// Emit per-statement spans into an attached
    /// [`crate::telemetry::Telemetry`] tracer (folded-stack output).
    /// Implies the profiling interpreter instantiation; without an
    /// attached telemetry bundle the flag is inert.
    pub trace: bool,
    /// Use the *legacy* data layer (§5.1 baseline): every index is a
    /// dynamically-typed B-tree whose lexicographic order is a runtime
    /// comparator array consulted on every comparison. Tuples are stored
    /// un-permuted, so reordering questions vanish — and so does every
    /// specialization benefit.
    pub legacy_data: bool,
    /// Amortize virtual iterator calls with the 128-tuple buffer (paper
    /// §3). Only affects the dynamic (non-static-dispatch) paths; the
    /// legacy interpreter predates the buffer and runs without it.
    pub buffered_iterators: bool,
    /// Worker threads for parallel fixpoint evaluation. Scans marked
    /// `parallel` by translation are split into morsels drained by this
    /// many workers from a shared work-stealing queue; `1` (the default)
    /// keeps evaluation on the calling thread, bit-for-bit identical to
    /// the sequential interpreter.
    pub jobs: usize,
    /// Target tuples per morsel for work-stealing parallel scans. Scans
    /// over indexes no larger than this run sequentially (a single morsel
    /// is not worth a thread fan-out); larger scans are split into
    /// roughly `len / morsel_size` disjoint chunks that workers claim and
    /// steal until drained. Has no effect when `jobs == 1`. Results and
    /// profiles are invariant under this knob — only scheduling changes.
    pub morsel_size: usize,
    /// Storage backend for standard relations: `Mem` keeps every index
    /// fully in RAM (the classic configuration); `Disk` installs
    /// [`stir_der::disk::DiskIndex`] adapters — an immutable paged base
    /// run from the latest snapshot plus an in-memory delta overlay — so
    /// a database larger than RAM can be served within a bounded page
    /// cache and cold starts can map the snapshot instead of replaying a
    /// fixpoint. Auxiliary (delta/new) and equivalence relations always
    /// stay in memory. Results are bit-for-bit identical across backends.
    pub storage: StorageBackend,
    /// Annotated evaluation: every derived tuple additionally records a
    /// `(height, rule)` annotation pair — the fixpoint iteration that
    /// first produced it and the source rule that fired — enabling
    /// minimal-height proof-tree reconstruction (`.explain`). Annotations
    /// are carried as two extra de-specialized columns in a side index
    /// per relation and never affect the logical database. Off by
    /// default; when off, evaluation is bit-for-bit identical to an
    /// unannotated run.
    pub provenance: bool,
}

/// Where standard relations keep their tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageBackend {
    /// Fully in-memory indexes (B-tree / Brie / eqrel). The default.
    #[default]
    Mem,
    /// Disk-backed indexes: paged snapshot base runs + delta overlays.
    Disk,
}

impl StorageBackend {
    /// Parses a `--storage` / `$STIR_STORAGE` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "mem" => Some(StorageBackend::Mem),
            "disk" => Some(StorageBackend::Disk),
            _ => None,
        }
    }

    /// The flag spelling of this backend.
    pub fn as_str(&self) -> &'static str {
        match self {
            StorageBackend::Mem => "mem",
            StorageBackend::Disk => "disk",
        }
    }
}

impl std::fmt::Display for StorageBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The default storage backend: `STIR_STORAGE` when set to a valid value
/// (`mem`/`disk`), otherwise [`StorageBackend::Mem`]. The env knob is how
/// CI runs the whole workspace suite over the disk backend without
/// touching each test.
pub fn default_storage() -> StorageBackend {
    std::env::var("STIR_STORAGE")
        .ok()
        .and_then(|v| StorageBackend::parse(&v))
        .unwrap_or(StorageBackend::Mem)
}

/// The default worker count: `STIR_JOBS` when set to a positive integer,
/// otherwise `1` (sequential evaluation).
pub fn default_jobs() -> usize {
    std::env::var("STIR_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// The default morsel size: `STIR_MORSEL_SIZE` when set to a positive
/// integer, otherwise [`DEFAULT_MORSEL_SIZE`]. The env knob exists mainly
/// so tests and CI can shrink morsels far below real data sizes and force
/// the work-stealing machinery (including stolen morsels) onto small
/// inputs.
pub fn default_morsel_size() -> usize {
    std::env::var("STIR_MORSEL_SIZE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_MORSEL_SIZE)
}

/// Default target tuples per morsel. Small enough that any scan worth
/// parallelizing yields many more chunks than workers (the skew
/// insurance), large enough that per-morsel queue traffic is noise next
/// to evaluating the chunk.
pub const DEFAULT_MORSEL_SIZE: usize = 1024;

impl InterpreterConfig {
    /// The full STI: all optimizations on.
    pub fn optimized() -> Self {
        InterpreterConfig {
            static_dispatch: true,
            super_instructions: true,
            static_reordering: true,
            outlined_handlers: false,
            profile: false,
            trace: false,
            legacy_data: false,
            buffered_iterators: true,
            jobs: default_jobs(),
            morsel_size: default_morsel_size(),
            storage: default_storage(),
            provenance: false,
        }
    }

    /// The Fig. 18 baseline: dynamic adapters with buffered iterators,
    /// all other optimizations unchanged.
    pub fn dynamic_adapter() -> Self {
        InterpreterConfig {
            static_dispatch: false,
            ..Self::optimized()
        }
    }

    /// Everything off: a plain tree interpreter over de-specialized
    /// structures.
    pub fn unoptimized() -> Self {
        InterpreterConfig {
            static_dispatch: false,
            super_instructions: false,
            static_reordering: false,
            outlined_handlers: false,
            profile: false,
            trace: false,
            legacy_data: false,
            buffered_iterators: true,
            jobs: default_jobs(),
            morsel_size: default_morsel_size(),
            storage: default_storage(),
            provenance: false,
        }
    }

    /// The legacy interpreter (§5.1): runtime-comparator indexes, no
    /// specialization, no buffering, no interpreter optimizations.
    pub fn legacy() -> Self {
        InterpreterConfig {
            static_dispatch: false,
            super_instructions: false,
            static_reordering: false,
            outlined_handlers: false,
            profile: false,
            trace: false,
            legacy_data: true,
            buffered_iterators: false,
            jobs: default_jobs(),
            morsel_size: default_morsel_size(),
            storage: default_storage(),
            provenance: false,
        }
    }

    /// Enables profiling on any configuration.
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Enables statement tracing (and thereby the profiling
    /// instantiation) on any configuration.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Sets the worker count for parallel fixpoint evaluation. Values
    /// below `1` are clamped to `1`.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the morsel target size for work-stealing parallel scans.
    /// Values below `1` are clamped to `1`.
    pub fn with_morsel_size(mut self, target: usize) -> Self {
        self.morsel_size = target.max(1);
        self
    }

    /// Enables annotated evaluation (provenance recording) on any
    /// configuration.
    pub fn with_provenance(mut self) -> Self {
        self.provenance = true;
        self
    }

    /// Selects the storage backend for standard relations.
    pub fn with_storage(mut self, storage: StorageBackend) -> Self {
        self.storage = storage;
        self
    }
}

impl Default for InterpreterConfig {
    fn default() -> Self {
        Self::optimized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        let full = InterpreterConfig::optimized();
        assert!(full.static_dispatch && full.super_instructions);
        let dynamic = InterpreterConfig::dynamic_adapter();
        assert!(!dynamic.static_dispatch);
        assert!(dynamic.super_instructions);
        let none = InterpreterConfig::unoptimized();
        assert!(!none.static_dispatch && !none.super_instructions);
        assert!(InterpreterConfig::default().static_dispatch);
        assert!(none.with_profile().profile);
        assert!(!full.provenance && !none.provenance);
        assert!(none.with_provenance().provenance);
        assert!(!none.trace);
        assert!(none.with_trace().trace);
    }

    #[test]
    fn storage_backend_parses_and_round_trips() {
        assert_eq!(StorageBackend::parse("mem"), Some(StorageBackend::Mem));
        assert_eq!(StorageBackend::parse("disk"), Some(StorageBackend::Disk));
        assert_eq!(StorageBackend::parse("tape"), None);
        assert_eq!(StorageBackend::Disk.as_str(), "disk");
        assert_eq!(StorageBackend::default(), StorageBackend::Mem);
        let cfg = InterpreterConfig::optimized().with_storage(StorageBackend::Disk);
        assert_eq!(cfg.storage, StorageBackend::Disk);
    }

    #[test]
    fn jobs_clamp_to_at_least_one() {
        assert_eq!(InterpreterConfig::optimized().with_jobs(4).jobs, 4);
        assert_eq!(InterpreterConfig::optimized().with_jobs(0).jobs, 1);
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn morsel_size_clamps_to_at_least_one() {
        assert_eq!(
            InterpreterConfig::optimized()
                .with_morsel_size(64)
                .morsel_size,
            64
        );
        assert_eq!(
            InterpreterConfig::optimized()
                .with_morsel_size(0)
                .morsel_size,
            1
        );
        assert!(default_morsel_size() >= 1);
        assert_eq!(
            InterpreterConfig::dynamic_adapter().morsel_size,
            InterpreterConfig::optimized().morsel_size
        );
    }
}
