//! The monomorphic face of the de-specialized index types.
//!
//! The statically-dispatched instruction bodies (paper §4.1) are generic
//! over `S: StaticSet<N>`; each `(representation, arity)` match arm of the
//! dispatcher downcasts the relation's `dyn IndexAdapter` to its concrete
//! type and calls the generic body, which the compiler monomorphizes —
//! the Rust equivalent of the paper's `evalInsert<RelType>` template
//! functions (Fig. 11c). Inside the body, iteration and membership tests
//! are direct calls with no virtual dispatch and no buffering.

use stir_der::adapter::{BTreeIndex, BrieIndex};
use stir_der::brie::Brie;
use stir_der::btree::BTreeIndexSet;

/// Monomorphic set operations over fixed-arity tuples.
pub trait StaticSet<const N: usize> {
    /// Iterates all tuples in stored order.
    fn iter_tuples(&self) -> impl Iterator<Item = [u32; N]> + '_;

    /// Iterates tuples in the inclusive window `[lo, hi]`.
    fn range_tuples(&self, lo: &[u32; N], hi: &[u32; N]) -> impl Iterator<Item = [u32; N]> + '_;

    /// Membership test (stored order).
    fn contains_tuple(&self, t: &[u32; N]) -> bool;

    /// Whether any tuple falls in the window.
    fn range_nonempty(&self, lo: &[u32; N], hi: &[u32; N]) -> bool {
        self.range_tuples(lo, hi).next().is_some()
    }
}

impl<const N: usize> StaticSet<N> for BTreeIndexSet<N> {
    #[inline]
    fn iter_tuples(&self) -> impl Iterator<Item = [u32; N]> + '_ {
        self.iter().copied()
    }

    #[inline]
    fn range_tuples(&self, lo: &[u32; N], hi: &[u32; N]) -> impl Iterator<Item = [u32; N]> + '_ {
        self.range(lo, hi).copied()
    }

    #[inline]
    fn contains_tuple(&self, t: &[u32; N]) -> bool {
        self.contains(t)
    }
}

impl<const N: usize> StaticSet<N> for Brie<N> {
    #[inline]
    fn iter_tuples(&self) -> impl Iterator<Item = [u32; N]> + '_ {
        self.iter()
    }

    #[inline]
    fn range_tuples(&self, lo: &[u32; N], hi: &[u32; N]) -> impl Iterator<Item = [u32; N]> + '_ {
        self.range(lo, hi)
    }

    #[inline]
    fn contains_tuple(&self, t: &[u32; N]) -> bool {
        self.contains(t)
    }
}

/// Monomorphic insert face of the concrete index adapters: encode the
/// source-order tuple through the index's order and insert, with zero
/// virtual calls (the paper's `Insert_BTree_N` specializations).
pub trait StaticAdapter<const N: usize> {
    /// Permutes a source-order tuple into stored order.
    fn encode_tuple(&self, t: &[u32]) -> [u32; N];

    /// Inserts a stored-order tuple; `true` if new.
    fn insert_encoded(&mut self, t: [u32; N]) -> bool;
}

impl<const N: usize> StaticAdapter<N> for BTreeIndex<N> {
    #[inline]
    fn encode_tuple(&self, t: &[u32]) -> [u32; N] {
        self.encode(t)
    }

    #[inline]
    fn insert_encoded(&mut self, t: [u32; N]) -> bool {
        self.raw_mut().insert(t)
    }
}

impl<const N: usize> StaticAdapter<N> for BrieIndex<N> {
    #[inline]
    fn encode_tuple(&self, t: &[u32]) -> [u32; N] {
        self.encode(t)
    }

    #[inline]
    fn insert_encoded(&mut self, t: [u32; N]) -> bool {
        self.raw_mut().insert(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: StaticSet<2>>(set: &S) {
        assert!(set.contains_tuple(&[1, 2]));
        assert!(!set.contains_tuple(&[9, 9]));
        let all: Vec<_> = set.iter_tuples().collect();
        assert_eq!(all, vec![[1, 2], [1, 3], [2, 2]]);
        let hits: Vec<_> = set.range_tuples(&[1, 0], &[1, u32::MAX]).collect();
        assert_eq!(hits, vec![[1, 2], [1, 3]]);
        assert!(set.range_nonempty(&[2, 0], &[2, u32::MAX]));
        assert!(!set.range_nonempty(&[3, 0], &[3, u32::MAX]));
    }

    #[test]
    fn btree_and_brie_expose_the_same_face() {
        let tuples = [[1u32, 2], [1, 3], [2, 2]];
        let btree: BTreeIndexSet<2> = tuples.iter().copied().collect();
        let brie: Brie<2> = tuples.iter().copied().collect();
        exercise(&btree);
        exercise(&brie);
    }
}
